"""Tests for the Lustre striping simulator."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.iosim.lustre import LustreFilesystem, StripeLayout
from repro.units import GB, MiB


class TestStripeLayout:
    def test_ost_of_offset_round_robin(self):
        layout = StripeLayout(1 * MiB, 4, start_ost=10, ost_pool=248)
        assert layout.ost_of_offset(0) == 10
        assert layout.ost_of_offset(1 * MiB) == 11
        assert layout.ost_of_offset(4 * MiB) == 10  # wraps within count

    def test_osts_sequence(self):
        layout = StripeLayout(1 * MiB, 3, start_ost=246, ost_pool=248)
        np.testing.assert_array_equal(layout.osts(), [246, 247, 0])

    def test_parallelism_limited_by_size(self):
        layout = StripeLayout(1 * MiB, 8, start_ost=0, ost_pool=248)
        assert layout.parallelism(512 * 1024) == 1
        assert layout.parallelism(3 * MiB) == 3
        assert layout.parallelism(1 * GB) == 8

    def test_default_cori_file_is_serial(self):
        """Default stripe count 1 -> one OST no matter the size (§2.1.2)."""
        layout = StripeLayout(1 * MiB, 1, start_ost=5, ost_pool=248)
        assert layout.parallelism(10 * GB) == 1

    def test_validation(self):
        with pytest.raises(SimulationError):
            StripeLayout(0, 1, 0, 248)
        with pytest.raises(SimulationError):
            StripeLayout(1 * MiB, 300, 0, 248)
        with pytest.raises(SimulationError):
            StripeLayout(1 * MiB, 1, 248, 248)
        with pytest.raises(SimulationError):
            StripeLayout(1 * MiB, 1, 0, 248).ost_of_offset(-1)


class TestFilesystem:
    def test_defaults_match_cori(self, rng):
        fs = LustreFilesystem()
        layout = fs.create("/scratch/u/f.dat", rng)
        assert layout.stripe_size == 1 * MiB
        assert layout.stripe_count == 1

    def test_directory_inheritance(self, rng):
        fs = LustreFilesystem()
        fs.set_directory_stripe("/scratch/bigproj", 4 * MiB, 16)
        inherited = fs.create("/scratch/bigproj/data/x.h5", rng)
        assert inherited.stripe_count == 16
        assert inherited.stripe_size == 4 * MiB
        other = fs.create("/scratch/other/x.h5", rng)
        assert other.stripe_count == 1

    def test_longest_directory_match(self, rng):
        fs = LustreFilesystem()
        fs.set_directory_stripe("/a", 1 * MiB, 2)
        fs.set_directory_stripe("/a/b", 1 * MiB, 8)
        assert fs.create("/a/b/f", rng).stripe_count == 8
        assert fs.create("/a/f", rng).stripe_count == 2

    def test_explicit_override(self, rng):
        fs = LustreFilesystem()
        layout = fs.create("/x", rng, stripe_count=32, stripe_size=8 * MiB)
        assert layout.stripe_count == 32

    def test_invalid_directory_stripe(self):
        fs = LustreFilesystem()
        with pytest.raises(SimulationError):
            fs.set_directory_stripe("/a", 1 * MiB, 9999)

    def test_mds_partitioning(self):
        fs = LustreFilesystem(mds_count=5)
        paths = [f"/proj{i}/file{j}" for i in range(50) for j in range(20)]
        usage = fs.mds_usage(paths)
        assert usage.sum() == 1000
        # All files of one project land on one MDS.
        one_proj = fs.mds_usage([f"/proj7/f{j}" for j in range(20)])
        assert (one_proj > 0).sum() == 1

    def test_mds_stable(self):
        fs = LustreFilesystem()
        assert fs.mds_of("/proj/x") == fs.mds_of("/proj/y")

    def test_ost_usage(self, rng):
        fs = LustreFilesystem(ost_count=16)
        for i in range(64):
            fs.create(f"/f{i}", rng, stripe_count=4)
        usage = fs.ost_usage()
        assert usage.sum() == 64 * 4

    def test_duplicate_and_remove(self, rng):
        fs = LustreFilesystem()
        fs.create("/a", rng)
        with pytest.raises(SimulationError):
            fs.create("/a", rng)
        fs.remove("/a")
        with pytest.raises(SimulationError):
            fs.layout("/a")

    def test_file_parallelism(self, rng):
        fs = LustreFilesystem()
        fs.create("/wide", rng, stripe_count=8)
        assert fs.file_parallelism("/wide", 100 * GB) == 8
        assert fs.file_parallelism("/wide", 1) == 1

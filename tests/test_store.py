"""Tests for the columnar record store."""

import os

import numpy as np
import pytest

from repro.errors import StoreError
from repro.platforms.interfaces import IOInterface
from repro.store import load_store, save_store
from repro.store.recordstore import RecordStore
from repro.store.schema import (
    LAYER_INSYSTEM,
    LAYER_PFS,
    OPCLASS_READ_ONLY,
    OPCLASS_READ_WRITE,
    OPCLASS_WRITE_ONLY,
    empty_files,
    empty_jobs,
)


def tiny_store():
    files = empty_files(4)
    jobs = empty_jobs(2)
    jobs["job_id"] = [1, 2]
    jobs["nprocs"] = [8, 16]
    jobs["nnodes"] = [2, 4]
    jobs["runtime"] = [100.0, 200.0]
    files["job_id"] = [1, 1, 2, 2]
    files["log_id"] = [10, 10, 20, 21]
    files["layer"] = [LAYER_PFS, LAYER_INSYSTEM, LAYER_PFS, LAYER_PFS]
    files["interface"] = [1, 3, 2, 3]
    files["bytes_read"] = [100, 0, 50, 25]
    files["bytes_written"] = [0, 10, 50, 0]
    files["read_time"] = [1.0, 0.0, 2.0, 0.5]
    files["write_time"] = [0.0, 1.0, 1.0, 0.0]
    files["domain"] = [0, 0, 1, -1]
    files["rank"] = [-1, 0, -1, 3]
    return RecordStore("summit", files, jobs, domains=("physics", "biology"), scale=0.5)


class TestBasics:
    def test_len_and_counts(self):
        st = tiny_store()
        assert len(st) == 4
        assert st.njobs == 2
        assert st.nlogs == 3

    def test_scaled(self):
        assert tiny_store().scaled(2) == 4.0

    def test_schema_enforced(self):
        with pytest.raises(StoreError):
            RecordStore("x", np.zeros(3), empty_jobs(0))

    def test_bad_scale(self):
        with pytest.raises(StoreError):
            RecordStore("x", empty_files(0), empty_jobs(0), scale=0)

    def test_domain_code_range_checked(self):
        files = empty_files(1)
        files["domain"] = 5
        with pytest.raises(StoreError):
            RecordStore("x", files, empty_jobs(0), domains=("a",))


class TestDerivedColumns:
    def test_transfer_sizes(self):
        np.testing.assert_array_equal(
            tiny_store().transfer_sizes(), [100, 10, 100, 25]
        )

    def test_opclass(self):
        oc = tiny_store().opclass()
        assert oc[0] == OPCLASS_READ_ONLY
        assert oc[1] == OPCLASS_WRITE_ONLY
        assert oc[2] == OPCLASS_READ_WRITE
        assert oc[3] == OPCLASS_READ_ONLY

    def test_bandwidths_nan_without_time(self):
        st = tiny_store()
        rb = st.read_bandwidth()
        assert rb[0] == 100.0
        assert np.isnan(rb[1])
        wb = st.write_bandwidth()
        assert wb[1] == 10.0

    def test_domain_names(self):
        st = tiny_store()
        assert st.domain_names(st.files["domain"]) == [
            "physics", "physics", "biology", "",
        ]


class TestFiltering:
    def test_filter_restricts_jobs(self):
        st = tiny_store()
        out = st.filter(st.files["job_id"] == 1)
        assert len(out) == 2
        assert out.njobs == 1

    def test_filter_bad_mask(self):
        st = tiny_store()
        with pytest.raises(StoreError):
            st.filter(np.array([True]))
        with pytest.raises(StoreError):
            st.filter(np.zeros(4))

    def test_where_layer(self):
        st = tiny_store().where(layer="pfs")
        assert (st.files["layer"] == LAYER_PFS).all()

    def test_where_interface_and_shared(self):
        st = tiny_store().where(interface=IOInterface.STDIO, shared=False)
        assert len(st) == 2

    def test_where_domain(self):
        st = tiny_store().where(domain="biology")
        assert len(st) == 1
        with pytest.raises(StoreError):
            tiny_store().where(domain="astrology")

    def test_where_unknown_layer(self):
        with pytest.raises(StoreError):
            tiny_store().where(layer="cloud")

    def test_filter_jobs(self):
        st = tiny_store()
        out = st.filter_jobs(st.jobs["nprocs"] > 8)
        assert out.njobs == 1
        assert (out.files["job_id"] == 2).all()


class TestConcat:
    def test_concat(self):
        a, b = tiny_store(), tiny_store()
        both = RecordStore.concat([a, b])
        assert len(both) == 8

    def test_concat_mismatch(self):
        a = tiny_store()
        b = RecordStore("cori", empty_files(0), empty_jobs(0), scale=0.5)
        with pytest.raises(StoreError):
            RecordStore.concat([a, b])

    def test_concat_empty_list(self):
        with pytest.raises(StoreError):
            RecordStore.concat([])


class TestPersistence:
    def test_npz_round_trip(self, tmp_path):
        st = tiny_store()
        path = str(tmp_path / "store.npz")
        save_store(st, path)
        out = load_store(path)
        assert out.platform == st.platform
        assert out.scale == st.scale
        assert out.domains == st.domains
        np.testing.assert_array_equal(out.files, st.files)
        np.testing.assert_array_equal(out.jobs, st.jobs)

    def test_generated_round_trip(self, tmp_path, cori_store_small):
        path = str(tmp_path / "cori.npz")
        save_store(cori_store_small, path)
        out = load_store(path)
        np.testing.assert_array_equal(out.files, cori_store_small.files)

    def test_rejects_foreign_npz(self, tmp_path):
        path = str(tmp_path / "x.npz")
        np.savez(path, a=np.zeros(3))
        with pytest.raises(StoreError):
            load_store(path)

    def test_round_trip_preserves_catalogs(self, tmp_path, cori_store_small):
        """scale, domains, and extensions all survive save/load."""
        path = str(tmp_path / "cori.npz")
        save_store(cori_store_small, path)
        out = load_store(path)
        assert out.platform == cori_store_small.platform
        assert out.scale == cori_store_small.scale
        assert out.domains == cori_store_small.domains
        assert out.extensions == cori_store_small.extensions
        np.testing.assert_array_equal(out.jobs, cori_store_small.jobs)


class TestPersistenceCorruption:
    """Typed errors for corrupt stores — never a raw json/zip/unicode one."""

    def _resave_with_meta(self, tmp_path, meta_bytes: bytes) -> str:
        st = tiny_store()
        path = str(tmp_path / "bad.npz")
        np.savez(
            path,
            files=st.files,
            jobs=st.jobs,
            meta=np.frombuffer(meta_bytes, dtype=np.uint8),
        )
        return path

    def test_schema_version_is_recorded(self, tmp_path):
        import json

        from repro.store.io import SCHEMA_VERSION

        path = str(tmp_path / "v.npz")
        save_store(tiny_store(), path)
        with np.load(path) as npz:
            meta = json.loads(bytes(npz["meta"].tobytes()).decode("utf-8"))
        assert meta["schema_version"] == SCHEMA_VERSION
        assert meta["format"] == "repro-store-v1"

    def test_truncated_json_meta(self, tmp_path):
        path = self._resave_with_meta(
            tmp_path, b'{"format": "repro-store-v1", "platf'
        )
        with pytest.raises(StoreError, match="corrupt store meta"):
            load_store(path)

    def test_non_utf8_meta(self, tmp_path):
        path = self._resave_with_meta(tmp_path, b"\xff\xfe\x00{}")
        with pytest.raises(StoreError, match="corrupt store meta"):
            load_store(path)

    def test_non_object_meta(self, tmp_path):
        path = self._resave_with_meta(tmp_path, b'[1, 2, 3]')
        with pytest.raises(StoreError, match="JSON object"):
            load_store(path)

    def test_missing_meta_keys(self, tmp_path):
        path = self._resave_with_meta(
            tmp_path, b'{"format": "repro-store-v1", "platform": "summit"}'
        )
        with pytest.raises(StoreError, match="missing key"):
            load_store(path)

    def test_future_schema_version_refused(self, tmp_path):
        path = self._resave_with_meta(
            tmp_path,
            b'{"format": "repro-store-v1", "schema_version": 99, '
            b'"platform": "summit", "domains": [], "extensions": [], '
            b'"scale": 0.5}',
        )
        with pytest.raises(StoreError, match="newer than"):
            load_store(path)

    def test_legacy_meta_without_schema_version_loads(self, tmp_path):
        """Files written before the field existed stay readable."""
        path = self._resave_with_meta(
            tmp_path,
            b'{"format": "repro-store-v1", "platform": "summit", '
            b'"domains": ["physics", "biology"], "extensions": [], '
            b'"scale": 0.5}',
        )
        out = load_store(path)
        assert out.platform == "summit"
        assert out.domains == ("physics", "biology")

    def test_truncated_file(self, tmp_path):
        path = str(tmp_path / "trunc.npz")
        save_store(tiny_store(), path)
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.truncate(size // 3)
        with pytest.raises(StoreError):
            load_store(path)

    def test_missing_file_stays_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_store(str(tmp_path / "nope.npz"))


class TestRawLayout:
    """The mmap-able `.store` directory layout (DESIGN.md §12)."""

    def test_round_trip_matches_npz_twin(self, tmp_path):
        """One store, both layouts: identical tables and catalogs."""
        st = tiny_store()
        raw = str(tmp_path / "twin.store")
        npz = str(tmp_path / "twin.npz")
        save_store(st, raw)
        save_store(st, npz)
        a, b = load_store(raw), load_store(npz)
        assert a.platform == b.platform == st.platform
        assert a.scale == b.scale == st.scale
        assert a.domains == b.domains == st.domains
        assert a.extensions == b.extensions
        np.testing.assert_array_equal(np.asarray(a.files), b.files)
        np.testing.assert_array_equal(np.asarray(a.jobs), b.jobs)

    def test_suffix_selects_layout(self, tmp_path):
        raw = str(tmp_path / "auto.store")
        save_store(tiny_store(), raw)
        assert os.path.isdir(raw)
        assert sorted(os.listdir(raw)) == ["files.npy", "jobs.npy", "meta.json"]

    def test_explicit_layout_overrides_suffix(self, tmp_path):
        path = str(tmp_path / "odd-name")
        save_store(tiny_store(), path, layout="raw")
        assert os.path.isdir(path)
        out = load_store(path)
        assert out.platform == "summit"

    def test_unknown_layout_rejected(self, tmp_path):
        with pytest.raises(StoreError, match="unknown store layout"):
            save_store(tiny_store(), str(tmp_path / "x"), layout="parquet")

    def test_loads_memory_mapped_by_default(self, tmp_path):
        path = str(tmp_path / "m.store")
        save_store(tiny_store(), path)
        out = load_store(path)
        assert isinstance(out.files, np.memmap)
        assert isinstance(out.jobs, np.memmap)
        assert out.files_path == os.path.join(path, "files.npy")

    def test_mmap_false_reads_into_memory(self, tmp_path):
        path = str(tmp_path / "m.store")
        save_store(tiny_store(), path)
        out = load_store(path, mmap=False)
        assert not isinstance(out.files, np.memmap)
        np.testing.assert_array_equal(out.files, tiny_store().files)

    def test_missing_meta_is_typed(self, tmp_path):
        path = str(tmp_path / "bad.store")
        save_store(tiny_store(), path)
        os.remove(os.path.join(path, "meta.json"))
        with pytest.raises(StoreError, match="missing meta.json"):
            load_store(path)

    def test_missing_table_is_typed(self, tmp_path):
        path = str(tmp_path / "bad.store")
        save_store(tiny_store(), path)
        os.remove(os.path.join(path, "files.npy"))
        with pytest.raises(StoreError, match="missing array 'files'"):
            load_store(path)

    def test_corrupt_meta_json_is_typed(self, tmp_path):
        path = str(tmp_path / "bad.store")
        save_store(tiny_store(), path)
        with open(os.path.join(path, "meta.json"), "w") as fh:
            fh.write('{"format": "repro-store-v1", "plat')
        with pytest.raises(StoreError, match="corrupt store meta"):
            load_store(path)

    def test_future_schema_version_refused(self, tmp_path):
        import json

        path = str(tmp_path / "bad.store")
        save_store(tiny_store(), path)
        meta_path = os.path.join(path, "meta.json")
        with open(meta_path) as fh:
            meta = json.load(fh)
        meta["schema_version"] = 99
        with open(meta_path, "w") as fh:
            json.dump(meta, fh)
        with pytest.raises(StoreError, match="newer than"):
            load_store(path)

    def test_corrupt_table_is_typed(self, tmp_path):
        path = str(tmp_path / "bad.store")
        save_store(tiny_store(), path)
        with open(os.path.join(path, "jobs.npy"), "wb") as fh:
            fh.write(b"not a npy file at all")
        with pytest.raises(StoreError, match="corrupt array file"):
            load_store(path)


class TestSchemaVersionPlumbing:
    """The in-memory schema_version attribute and typed merge refusal."""

    def test_in_memory_store_carries_current_version(self):
        from repro.store.schema import SCHEMA_VERSION

        assert tiny_store().schema_version == SCHEMA_VERSION

    def test_version_survives_roundtrip_and_derivation(self, tmp_path):
        from repro.store.schema import SCHEMA_VERSION

        path = str(tmp_path / "v.npz")
        save_store(tiny_store(), path)
        out = load_store(path)
        assert out.schema_version == SCHEMA_VERSION
        assert out.filter(np.ones(len(out.files), bool)).schema_version == SCHEMA_VERSION
        assert out.filter_jobs(np.ones(len(out.jobs), bool)).schema_version == SCHEMA_VERSION
        assert RecordStore.concat([out]).schema_version == SCHEMA_VERSION

    def test_merging_mismatched_versions_is_typed(self):
        from repro.errors import MergeSchemaError
        from repro.store.merge import merge_stores

        a, b = tiny_store(), tiny_store()
        b.schema_version = a.schema_version + 1
        with pytest.raises(MergeSchemaError, match="schema versions"):
            merge_stores([a, b])
        # The typed error is a StoreError: existing handlers still catch it.
        assert issubclass(MergeSchemaError, StoreError)

    def test_merge_propagates_version(self):
        from repro.store.merge import merge_stores

        merged = merge_stores([tiny_store(), tiny_store()], remap_job_ids=True)
        assert merged.schema_version == tiny_store().schema_version

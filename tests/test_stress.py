"""Stress: the pipeline holds up at a 4x-bench scale in bounded time.

Not a micro-benchmark (that's ``benchmarks/bench_generator.py``) — a
guard that nothing in the generate→analyze path degrades to quadratic
behaviour or balloons memory when the population grows.
"""

import time

import numpy as np
import pytest

from repro.analysis import (
    layer_volumes,
    performance_by_bin,
    request_cdfs,
    transfer_cdfs,
)
from repro.workloads.generator import (
    GeneratorConfig,
    WorkloadGenerator,
    generate_with_shadows,
)


@pytest.mark.parametrize("platform", ["summit"])
def test_generate_and_analyze_at_4x_scale(platform):
    t0 = time.time()
    gen = WorkloadGenerator(platform, GeneratorConfig(scale=4e-3))
    store = generate_with_shadows(gen, 99)
    gen_seconds = time.time() - t0
    assert len(store.files) > 3_000_000

    t1 = time.time()
    layer_volumes(store)
    transfer_cdfs(store)
    request_cdfs(store)
    performance_by_bin(store)
    analyze_seconds = time.time() - t1

    # Rates, not absolute times: robust across machines. The vectorized
    # paths run millions of rows/second; a per-row regression would land
    # orders of magnitude below these floors.
    assert len(store.files) / gen_seconds > 100_000, gen_seconds
    assert len(store.files) / analyze_seconds > 300_000, analyze_seconds

    # Memory sanity: the file table dominates; its nbytes must stay near
    # the dtype's nominal row cost (no accidental object columns).
    per_row = store.files.nbytes / len(store.files)
    assert per_row < 400

"""Stress: the pipeline holds up at a 4x-bench scale in bounded time.

Not a micro-benchmark (that's ``benchmarks/bench_generator.py``) — a
guard that nothing in the generate→analyze path degrades to quadratic
behaviour or balloons memory when the population grows. Runs under the
``stress`` marker; ``make check`` skips it, ``make stress`` runs it.
"""

import time

import pytest

from repro.analysis import (
    layer_volumes,
    performance_by_bin,
    request_cdfs,
    transfer_cdfs,
)
from repro.workloads.generator import (
    GeneratorConfig,
    WorkloadGenerator,
    generate_with_shadows,
)

pytestmark = pytest.mark.stress


def _run_four_analyses(store):
    layer_volumes(store)
    transfer_cdfs(store)
    request_cdfs(store)
    performance_by_bin(store)


@pytest.mark.parametrize("platform", ["summit"])
def test_generate_and_analyze_at_4x_scale(platform):
    t0 = time.time()
    gen = WorkloadGenerator(platform, GeneratorConfig(scale=4e-3))
    store = generate_with_shadows(gen, 99)
    gen_seconds = time.time() - t0
    assert len(store.files) > 3_000_000

    t1 = time.time()
    _run_four_analyses(store)
    analyze_seconds = time.time() - t1

    # Rates, not absolute times: robust across machines. The shared
    # analysis context gathers columns instead of copying full rows, so
    # the cold pass runs well above this floor; a per-row regression
    # would land orders of magnitude below it.
    assert len(store.files) / gen_seconds > 100_000, gen_seconds
    assert len(store.files) / analyze_seconds > 300_000, analyze_seconds

    # A warm rerun serves memoized results off the shared context, so it
    # must beat the cold pass handily — if it doesn't, result caching
    # broke and every multi-exhibit report path pays the rescan again.
    t2 = time.time()
    _run_four_analyses(store)
    warm_seconds = time.time() - t2
    assert analyze_seconds > 5 * warm_seconds, (analyze_seconds, warm_seconds)

    # Memory sanity: the file table dominates; its nbytes must stay near
    # the dtype's nominal row cost (no accidental object columns).
    per_row = store.files.nbytes / len(store.files)
    assert per_row < 400

"""Scenario packs: golden characterizations and the end-to-end flow.

Each builtin pack's Table-3/Table-6 characterization (Summit,
``SMALL_SCALE``, the suite seed) is pinned in
``tests/goldens/spec_packs.json`` — any drift in a pack's population or
overlay behavior fails loudly and must be an intentional, regenerated
change. The directional tests then check the overlays push the physics
the right way (faults and contention slow I/O without touching the
sampled bytes), and the end-to-end class proves a spec-generated store
flows unchanged through analyze, serve, what-if, and federation.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

import repro
from repro.spec import generate_from_spec, pack_names
from repro.store.schema import LAYER_PFS
from tests.conftest import SEED, SMALL_SCALE

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "goldens", "spec_packs.json"
)

#: The three overlay packs with pinned characterizations (paper_mix is
#: pinned harder — byte-identity in tests/test_spec.py).
SCENARIO_PACKS = ("degraded_ost_month", "bb_eviction_storm", "noisy_neighbor")


def load_golden() -> dict:
    with open(GOLDEN_PATH) as fh:
        return json.load(fh)


@pytest.fixture(scope="module")
def pack_stores():
    """Every scenario pack's Summit store at the golden scale/seed."""
    return {
        pack: generate_from_spec(
            pack, platform="summit", scale=SMALL_SCALE, seed=SEED
        )
        for pack in SCENARIO_PACKS
    }


class TestGoldenCharacterizations:
    def test_golden_covers_every_scenario_pack(self):
        golden = load_golden()
        assert sorted(golden) == sorted(SCENARIO_PACKS)
        assert set(SCENARIO_PACKS) < set(pack_names())

    @pytest.mark.parametrize("pack", SCENARIO_PACKS)
    def test_table3_pinned(self, pack, pack_stores):
        golden = load_golden()[pack]
        assert golden["scale"] == SMALL_SCALE and golden["seed"] == SEED
        rows = repro.run_query(pack_stores[pack], "table3").to_rows()
        assert json.loads(json.dumps(rows)) == golden["table3"]

    @pytest.mark.parametrize("pack", SCENARIO_PACKS)
    def test_table6_pinned(self, pack, pack_stores):
        golden = load_golden()[pack]
        rows = repro.run_query(pack_stores[pack], "table6").to_rows()
        assert json.loads(json.dumps(rows)) == golden["table6"]


class TestOverlayDirections:
    """Overlays must bend times, not bytes, and in the right direction."""

    def test_degraded_ost_same_population_slower_pfs_writes(
        self, pack_stores, summit_store_small
    ):
        # degraded_ost_month is the paper population (same phases as
        # paper_mix) with only the machine/perf degraded, so the sampled
        # bytes are identical and only the times move.
        paper, degraded = summit_store_small, pack_stores["degraded_ost_month"]
        assert len(degraded.files) == len(paper.files)
        np.testing.assert_array_equal(
            degraded.files["bytes_written"], paper.files["bytes_written"]
        )
        pfs_d = degraded.files[degraded.files["layer"] == LAYER_PFS]
        pfs_p = paper.files[paper.files["layer"] == LAYER_PFS]
        assert pfs_d["write_time"].sum() > pfs_p["write_time"].sum()
        assert pfs_d["read_time"].sum() > pfs_p["read_time"].sum()

    def test_contention_overlay_slows_io_without_touching_bytes(
        self, summit_store_small
    ):
        crowded = generate_from_spec(
            {
                "name": "crowded_paper",
                "phases": [
                    {"name": "paper", "pattern": "paper", "weight": 1.0}
                ],
                "overlays": {"contention": {"factor": 2.5}},
            },
            platform="summit", scale=SMALL_SCALE, seed=SEED,
        )
        paper = summit_store_small
        np.testing.assert_array_equal(
            crowded.files["bytes_read"], paper.files["bytes_read"]
        )
        total = lambda s: (  # noqa: E731
            s.files["read_time"].sum() + s.files["write_time"].sum()
        )
        assert total(crowded) > total(paper)

    def test_eviction_storm_is_insystem_write_heavy(
        self, pack_stores, summit_store_small
    ):
        def insystem_write_share(store):
            on_bb = store.files["layer"] != LAYER_PFS
            written = store.files["bytes_written"]
            return written[on_bb].sum() / written.sum()

        assert insystem_write_share(
            pack_stores["bb_eviction_storm"]
        ) > 5 * insystem_write_share(summit_store_small)

    def test_noisy_neighbor_adds_phases_on_top_of_paper(
        self, pack_stores, summit_store_small
    ):
        noisy = pack_stores["noisy_neighbor"]
        assert len(noisy.jobs) == len(summit_store_small.jobs)
        # 0.7 paper + training + mdsweep: more files per job overall.
        assert len(noisy.files) > 0
        assert noisy.domains == summit_store_small.domains


class TestEndToEnd:
    """One pack store through every downstream subsystem, unchanged."""

    def test_analyze_and_serve_agree(self, pack_stores):
        from repro.serve.engine import QueryEngine

        store = pack_stores["bb_eviction_storm"]
        direct = repro.run_query(store, "table3").to_rows()
        engine = QueryEngine(store, max_workers=2)
        try:
            served = engine.query("table3").to_rows()
            assert served == direct
            stats = engine.stats()
            assert stats["counters"].get("requests", 0) >= 1
            assert stats["store"]["rows"] == len(store.files)
        finally:
            engine.close()

    def test_whatif_runs_on_pack_store(self, pack_stores):
        report = repro.run_query(
            pack_stores["noisy_neighbor"], "whatif_contention",
            {"factor": 2.0},
        )
        identity = repro.run_query(
            pack_stores["noisy_neighbor"], "whatif_identity"
        )
        # Doubling interfering load on an already-noisy month still
        # costs time; the identity reconfiguration costs nothing.
        assert report.time_ratio("pfs", "write") > 1.0
        assert identity.time_ratio("pfs", "write") == pytest.approx(1.0)

    def test_federated_query_over_pack_stores(self, tmp_path, pack_stores):
        from repro.federation import StoreCatalog
        from repro.federation.executor import FederationExecutor
        from repro.store.io import save_store

        catalog = StoreCatalog.init(str(tmp_path / "fleet.json"))
        for i, (pack, store) in enumerate(sorted(pack_stores.items())):
            path = str(tmp_path / f"{pack}.npz")
            save_store(store, path)
            catalog.add_store(pack, path, period=f"2020-{i + 1:02d}")
        executor = FederationExecutor(catalog, max_workers=2)
        direct = repro.run_query(
            pack_stores["noisy_neighbor"], "table3"
        ).to_rows()
        routed = executor.query(
            "table3", {"member": "noisy_neighbor"}
        )
        assert routed.to_rows() == direct

    def test_save_load_round_trip(self, tmp_path, pack_stores):
        from repro.store.io import load_store, save_store

        store = pack_stores["degraded_ost_month"]
        path = str(tmp_path / "pack.npz")
        save_store(store, path)
        loaded = load_store(path)
        np.testing.assert_array_equal(loaded.files, store.files)
        np.testing.assert_array_equal(loaded.jobs, store.jobs)

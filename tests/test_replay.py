"""Tests for the facility replay engine."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.iosim.replay import FacilityReplay
from repro.platforms import cori, summit
from repro.platforms.interfaces import IOInterface


class TestFacilityReplay:
    @pytest.fixture(scope="class")
    def replay(self, summit_store_small, summit_machine):
        return FacilityReplay(summit_store_small, summit_machine)

    def test_demand_series_exist(self, replay):
        demands = replay.demands()
        assert set(demands) == {
            ("pfs", "read"), ("pfs", "write"),
            ("insystem", "read"), ("insystem", "write"),
        }

    def test_volume_conserved(self, replay, summit_store_small):
        """Integrated demand equals the store's scaled byte totals."""
        f = summit_store_small.files
        unique = f[f["interface"] != int(IOInterface.MPIIO)]
        pfs_read = unique["bytes_read"][unique["layer"] == 0].sum()
        demand = replay.demand("pfs", "read")
        integrated = demand.series.sum() * demand.bin_seconds
        expected = pfs_read / summit_store_small.scale
        assert integrated == pytest.approx(expected, rel=0.02)

    def test_utilization_bounds(self, replay):
        for demand in replay.demands().values():
            assert demand.mean_utilization() >= 0
            assert 0 <= demand.saturated_fraction() <= 1

    def test_summit_story(self, replay):
        """Finding C, facility view: the PFS works, SCNL idles."""
        pfs_w = replay.demand("pfs", "write")
        scnl_w = replay.demand("insystem", "write")
        assert pfs_w.mean_utilization() > 10 * scnl_w.mean_utilization()
        # The paper-implied sustained write load is ~10% of Alpine peak.
        assert 0.01 < pfs_w.mean_utilization() < 0.6

    def test_write_demand_bursty(self, replay):
        """Peaks far above the mean — why burst buffers exist."""
        pfs_w = replay.demand("pfs", "write")
        assert pfs_w.peak_utilization() > 3 * pfs_w.mean_utilization()

    def test_summary_rows(self, replay):
        rows = replay.summary_rows()
        assert len(rows) == 4
        assert all(r[0] == "summit" for r in rows)

    def test_unknown_layer(self, replay):
        with pytest.raises(AnalysisError):
            replay.demand("cloud", "read")

    def test_bad_bin(self, summit_store_small, summit_machine):
        with pytest.raises(AnalysisError):
            FacilityReplay(summit_store_small, summit_machine, bin_seconds=0)

    def test_cori_read_dominance_facility_view(
        self, cori_store_small, cori_machine
    ):
        replay = FacilityReplay(cori_store_small, cori_machine)
        read = replay.demand("pfs", "read")
        write = replay.demand("pfs", "write")
        assert (
            read.series.sum() > 2 * write.series.sum()
        )  # Cori reads dominate

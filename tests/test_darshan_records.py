"""Tests for repro.darshan.records and log objects."""

import numpy as np
import pytest

from repro.darshan.constants import ModuleId
from repro.darshan.log import DarshanLog
from repro.darshan.records import (
    SHARED_FILE_RANK,
    FileRecord,
    JobRecord,
    NameRecord,
    iter_size_bins,
    record_id_for_path,
)


class TestJobRecord:
    def test_runtime(self):
        job = JobRecord(1, 2, 4, 100.0, 250.0)
        assert job.runtime == 150.0

    def test_rejects_bad_nprocs(self):
        with pytest.raises(ValueError):
            JobRecord(1, 2, 0, 0.0, 1.0)

    def test_rejects_time_travel(self):
        with pytest.raises(ValueError):
            JobRecord(1, 2, 4, 10.0, 5.0)


class TestNameRecord:
    def test_for_path_hashes_stably(self):
        a = NameRecord.for_path("/gpfs/alpine/x.h5")
        b = NameRecord.for_path("/gpfs/alpine/x.h5")
        assert a.record_id == b.record_id == record_id_for_path("/gpfs/alpine/x.h5")

    def test_distinct_paths_distinct_ids(self):
        ids = {record_id_for_path(f"/p/{i}") for i in range(1000)}
        assert len(ids) == 1000


class TestFileRecord:
    def test_default_zeroed(self):
        rec = FileRecord(ModuleId.POSIX, 42)
        assert rec.bytes_read == 0 and rec.bytes_written == 0
        assert rec.rank == SHARED_FILE_RANK and rec.is_shared

    def test_named_get_set_add(self):
        rec = FileRecord(ModuleId.POSIX, 42, rank=3)
        rec.set("BYTES_READ", 100)
        rec.add("BYTES_READ", 50)
        assert rec["POSIX_BYTES_READ"] == 150
        rec["F_READ_TIME"] = 2.0
        assert rec.read_time == 2.0
        assert not rec.is_shared

    def test_bandwidths(self):
        rec = FileRecord(ModuleId.STDIO, 1)
        rec.set("BYTES_WRITTEN", 10**6)
        rec.set("F_WRITE_TIME", 2.0)
        assert rec.write_bandwidth() == 500_000.0
        assert rec.read_bandwidth() == 0.0

    def test_transfer_size(self):
        rec = FileRecord(ModuleId.POSIX, 1)
        rec.set("BYTES_READ", 7)
        rec.set("BYTES_WRITTEN", 5)
        assert rec.transfer_size() == 12

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            FileRecord(ModuleId.POSIX, 1, counters=np.zeros(3, dtype=np.int64))

    def test_rank_validation(self):
        with pytest.raises(ValueError):
            FileRecord(ModuleId.POSIX, 1, rank=-2)

    def test_iter_size_bins(self):
        rec = FileRecord(ModuleId.POSIX, 1)
        rec.set("SIZE_READ_1K_10K", 5)
        bins = dict(iter_size_bins(rec, "read"))
        assert bins["1K_10K"] == 5
        assert len(bins) == 10

    def test_iter_size_bins_stdio_raises(self):
        rec = FileRecord(ModuleId.STDIO, 1)
        with pytest.raises(KeyError):
            list(iter_size_bins(rec, "read"))

    def test_iter_size_bins_bad_direction(self):
        rec = FileRecord(ModuleId.POSIX, 1)
        with pytest.raises(ValueError):
            list(iter_size_bins(rec, "sideways"))


class TestDarshanLog:
    def _log(self):
        return DarshanLog(JobRecord(9, 1, 2, 0.0, 10.0, platform="summit"))

    def test_requires_name_before_record(self):
        log = self._log()
        with pytest.raises(KeyError):
            log.add_record(FileRecord(ModuleId.POSIX, 123))

    def test_name_rebind_conflict(self):
        log = self._log()
        log.register_name(NameRecord(1, "/a"))
        log.register_name(NameRecord(1, "/a"))  # idempotent ok
        with pytest.raises(ValueError):
            log.register_name(NameRecord(1, "/b"))

    def test_total_bytes_skips_mpiio(self):
        """§3.1: MPI-IO traffic is counted via its POSIX record."""
        log = self._log()
        log.register_name(NameRecord(1, "/a"))
        posix = FileRecord(ModuleId.POSIX, 1)
        posix.set("BYTES_READ", 100)
        posix.set("F_READ_TIME", 1.0)
        mpiio = FileRecord(ModuleId.MPIIO, 1)
        mpiio.set("BYTES_READ", 100)
        log.add_record(posix)
        log.add_record(mpiio)
        assert log.total_bytes() == (100, 0)

    def test_nfiles_unique_by_record_id(self):
        log = self._log()
        log.register_name(NameRecord(1, "/a"))
        log.add_record(FileRecord(ModuleId.POSIX, 1))
        log.add_record(FileRecord(ModuleId.MPIIO, 1))
        assert log.nfiles() == 1

    def test_modules_ordering(self):
        log = self._log()
        for rid, module in ((1, ModuleId.STDIO), (2, ModuleId.POSIX)):
            log.register_name(NameRecord(rid, f"/f{rid}"))
            log.add_record(FileRecord(module, rid))
        assert log.modules == (ModuleId.POSIX, ModuleId.STDIO)

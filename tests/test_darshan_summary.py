"""Tests for the darshan-parser-style log summary."""

import pytest

from repro.darshan.constants import ModuleId
from repro.darshan.log import DarshanLog
from repro.darshan.records import FileRecord, JobRecord, NameRecord
from repro.darshan.summary import (
    render_log_summary,
    summarize_module,
    top_files,
)


@pytest.fixture()
def log():
    job = JobRecord(5, 9, 16, 0.0, 600.0, platform="summit", domain="physics")
    log = DarshanLog(job)
    for i, (nbytes, t) in enumerate([(1000, 0.5), (5000, 1.0), (200, 0.1)]):
        rid = 100 + i
        log.register_name(NameRecord(rid, f"/gpfs/alpine/f{i}.h5", "/gpfs/alpine", "pfs"))
        rec = FileRecord(ModuleId.POSIX, rid)
        rec.set("BYTES_READ", nbytes)
        rec.set("READS", 1)
        rec.set("F_READ_TIME", t)
        rec.set("F_META_TIME", 0.01)
        log.add_record(rec)
    stdio = FileRecord(ModuleId.STDIO, 100, rank=0)
    stdio.set("BYTES_WRITTEN", 50_000)
    stdio.set("WRITES", 10)
    stdio.set("F_WRITE_TIME", 2.0)
    log.add_record(stdio)
    return log


class TestSummarizeModule:
    def test_posix_aggregates(self, log):
        s = summarize_module(log, ModuleId.POSIX)
        assert s.nrecords == 3 and s.nfiles == 3
        assert s.bytes_read == 6200
        assert s.read_time == pytest.approx(1.6)
        assert s.read_bandwidth == pytest.approx(6200 / 1.6)
        assert s.meta_time == pytest.approx(0.03)

    def test_empty_module(self, log):
        s = summarize_module(log, ModuleId.MPIIO)
        assert s.nrecords == 0
        assert s.read_bandwidth == 0.0


class TestTopFiles:
    def test_ranked_by_combined_transfer(self, log):
        ranked = top_files(log, k=2)
        # f0 carries 1000 (POSIX) + 50000 (STDIO) = 51000 -> first.
        assert ranked[0][0].endswith("f0.h5")
        assert ranked[0][1] == 51_000
        assert ranked[1][0].endswith("f1.h5")

    def test_k_limits(self, log):
        assert len(top_files(log, k=1)) == 1


class TestRender:
    def test_mentions_everything(self, log):
        text = render_log_summary(log)
        assert "job 5" in text and "physics" in text
        assert "POSIX" in text and "STDIO" in text
        assert "top" in text and "f0.h5" in text

    def test_generated_log_renders(self, summit_store_small, summit_machine):
        from repro.instrument import LogMaterializer

        mat = LogMaterializer(summit_machine, summit_store_small)
        log = mat.materialize(int(mat.log_ids(1)[0]), dxt=True)
        text = render_log_summary(log)
        assert "DXT traces" in text
        assert "records" in text

"""Tests for the proposed STDIO extended counters (Recommendation 4)."""

import numpy as np
import pytest

from repro.darshan.accumulate import OP_READ, OP_WRITE, make_ops
from repro.darshan.stdio_ext import accumulate_stdio_ext
from repro.units import KiB


def _write_stream(offsets, sizes):
    n = len(offsets)
    return make_ops(
        kinds=[OP_WRITE] * n,
        offsets=offsets,
        sizes=sizes,
        starts=np.arange(n, dtype=float),
        durations=[0.01] * n,
    )


class TestHistograms:
    def test_request_sizes_now_visible(self):
        """The histogram STDIO lacks in baseline Darshan."""
        ops = make_ops(
            [OP_READ, OP_READ, OP_WRITE], [0, 50, 0], [50, 5000, 200],
            [0.0, 1.0, 2.0], [0.1, 0.1, 0.1],
        )
        ext = accumulate_stdio_ext(1, 0, ops)
        assert ext.read_size_hist[0] == 1   # 0-100
        assert ext.read_size_hist[2] == 1   # 1K-10K
        assert ext.write_size_hist[1] == 1  # 100-1K


class TestRewriteDetection:
    def test_write_once_is_static(self):
        ext = accumulate_stdio_ext(1, 0, _write_stream([0, 100, 200], [100, 100, 100]))
        assert ext.bytes_rewritten == 0
        assert ext.bytes_first_written == 300
        assert ext.write_extent == 300
        assert ext.rewrite_ratio == 0.0

    def test_full_rewrite(self):
        ext = accumulate_stdio_ext(1, 0, _write_stream([0, 0], [100, 100]))
        assert ext.bytes_rewritten == 100
        assert ext.bytes_first_written == 100
        assert ext.write_extent == 100
        assert ext.rewrite_ratio == 0.5

    def test_partial_overlap(self):
        ext = accumulate_stdio_ext(1, 0, _write_stream([0, 50], [100, 100]))
        assert ext.bytes_rewritten == 50
        assert ext.bytes_first_written == 150
        assert ext.write_extent == 150

    def test_disjoint_then_bridge(self):
        # [0,100) and [200,300) then [50,250) bridges both.
        ext = accumulate_stdio_ext(
            1, 0, _write_stream([0, 200, 50], [100, 100, 200])
        )
        assert ext.bytes_rewritten == 50 + 50
        assert ext.write_extent == 300

    def test_zero_length_ignored(self):
        ext = accumulate_stdio_ext(1, 0, _write_stream([0, 0], [100, 0]))
        assert ext.bytes_rewritten == 0


class TestSequentialityAndWaf:
    def test_sequential_low_waf(self):
        offsets = list(range(0, 64 * 1024, 4096))
        ext = accumulate_stdio_ext(1, 0, _write_stream(offsets, [4096] * len(offsets)))
        assert ext.random_write_fraction == 0.0
        assert ext.write_amplification() == pytest.approx(1.0)

    def test_random_small_writes_high_waf(self):
        rng = np.random.default_rng(1)
        offsets = (rng.permutation(200) * 10_000).tolist()
        ext = accumulate_stdio_ext(1, 0, _write_stream(offsets, [512] * 200))
        assert ext.random_write_fraction > 0.4
        assert ext.write_amplification() > 2.0

    def test_rewrites_raise_waf(self):
        once = accumulate_stdio_ext(1, 0, _write_stream([0, 4096], [4096, 4096]))
        rewritten = accumulate_stdio_ext(
            1, 0, _write_stream([0, 0, 0, 0], [4096] * 4)
        )
        assert rewritten.write_amplification() > once.write_amplification()

    def test_waf_floor_is_one(self):
        ext = accumulate_stdio_ext(1, 0, _write_stream([], []))
        assert ext.write_amplification() == 1.0

    def test_erase_block_scaling(self):
        rng = np.random.default_rng(2)
        offsets = (rng.permutation(100) * 10_000).tolist()
        ext = accumulate_stdio_ext(1, 0, _write_stream(offsets, [512] * 100))
        small = ext.write_amplification(erase_block=64 * KiB)
        big = ext.write_amplification(erase_block=1024 * KiB)
        assert big > small


class TestInputValidation:
    def test_wrong_dtype(self):
        with pytest.raises(TypeError):
            accumulate_stdio_ext(1, 0, np.zeros(3))

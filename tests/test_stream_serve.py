"""Serve-layer behavior across appends: warm folds, cold everything else.

The engine's result cache keys on store generation, so an append orphans
every entry. For foldable queries :meth:`QueryEngine.refresh` re-warms
the cache from the delta-folded analysis memo (cheap); non-foldable
queries must genuinely recompute. Both sides of that contract are pinned
here, plus a stress-marked run proving the cache hit rate stays positive
across a long append schedule.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import dataset_summary, layer_volumes
from repro.instrument.runtime import LogMaterializer
from repro.platforms import summit
from repro.serve.engine import QueryEngine
from repro.store.recordstore import RecordStore
from repro.store.schema import empty_files, empty_jobs
from repro.stream import StreamIngestor
from repro.workloads.domains import domain_catalog

pytestmark = pytest.mark.stream

FOLDABLE = ("table3", "table6", "fig4", "fig5", "fig6", "fig8")


@pytest.fixture(scope="module")
def stream_logs(summit_store_small):
    return LogMaterializer(summit(), summit_store_small).materialize_many(12)


@pytest.fixture()
def live(summit_store_small):
    return RecordStore(
        "summit", empty_files(0), empty_jobs(0),
        domains=summit_store_small.domains, scale=summit_store_small.scale,
    )


def _cold_clone(store: RecordStore) -> RecordStore:
    return RecordStore(
        store.platform, store.files.copy(), store.jobs.copy(),
        domains=store.domains, extensions=store.extensions, scale=store.scale,
    )


def test_refresh_rewarns_only_requested_foldables(live, stream_logs):
    ingestor = StreamIngestor(live, summit().mount_table())
    ingestor.apply(stream_logs[:6])
    with QueryEngine(live, max_workers=2) as engine:
        engine.query("table3")
        engine.query("table6")
        engine.query("table2")  # cached but not foldable
        ingestor.apply(stream_logs[6:])
        assert engine.refresh() == 2  # table3 + table6, never table2
        counters = engine.metrics.snapshot()["counters"]
        assert counters["refreshed"] == 2
        before = engine.metrics.snapshot()["counters"]["cache_hits"]
        engine.query("table3")
        engine.query("table6")
        after = engine.metrics.snapshot()["counters"]["cache_hits"]
        assert after - before == 2  # both served warm at the new generation
        # Warm results are exact: same bits a cold store computes.
        assert engine.query("table3") == layer_volumes(_cold_clone(live))


def test_refresh_skips_already_current_entries(live, stream_logs):
    ingestor = StreamIngestor(live, summit().mount_table())
    ingestor.apply(stream_logs[:6])
    with QueryEngine(live, max_workers=2) as engine:
        engine.query("table3")
        ingestor.apply(stream_logs[6:])
        assert engine.refresh() == 1
        assert engine.refresh() == 0  # second call: entry already current


def test_non_foldable_queries_invalidate_and_recompute(live, stream_logs):
    ingestor = StreamIngestor(live, summit().mount_table())
    ingestor.apply(stream_logs[:6])
    with QueryEngine(live, max_workers=2) as engine:
        stale = engine.query("table2")
        ingestor.apply(stream_logs[6:])
        engine.refresh()
        counters = engine.metrics.snapshot()["counters"]
        fresh = engine.query("table2")
        after = engine.metrics.snapshot()["counters"]
        assert after["cache_misses"] - counters["cache_misses"] == 1
        assert after["executions"] - counters["executions"] == 1
        assert fresh == dataset_summary(_cold_clone(live))
        assert fresh != stale  # the append changed the dataset summary


def test_describe_marks_foldable_queries(live):
    with QueryEngine(live, max_workers=1) as engine:
        queries = engine.describe()["queries"]
        assert {n for n, q in queries.items() if q["foldable"]} == set(FOLDABLE)


@pytest.mark.stress
def test_warm_hit_rate_stays_positive_across_appends(live, stream_logs):
    """Across N appends, every foldable query keeps hitting the cache.

    The acceptance shape: a follower keeps serving warm results while
    the store grows, so the hit counter must advance by the full
    foldable set after *each* append + refresh round.
    """
    ingestor = StreamIngestor(live, summit().mount_table())
    ingestor.apply(stream_logs[:1])
    with QueryEngine(live, max_workers=2) as engine:
        for name in FOLDABLE:
            engine.query(name)  # warm every foldable entry once, cold
        rounds = 0
        for i in range(1, len(stream_logs)):
            ingestor.apply(stream_logs[i:i + 1])
            assert engine.refresh() == len(FOLDABLE)
            before = engine.metrics.snapshot()["counters"]["cache_hits"]
            for name in FOLDABLE:
                engine.query(name)
            after = engine.metrics.snapshot()["counters"]["cache_hits"]
            assert after - before == len(FOLDABLE), f"round {i}: cold serve"
            rounds += 1
        assert rounds == len(stream_logs) - 1
        # And the warm results are still the exact cold-recompute bits.
        cold = _cold_clone(live)
        assert engine.query("table3") == layer_volumes(cold)
        info = engine.cache.info()
        assert info["hits"] >= rounds * len(FOLDABLE)

"""Tests for the optimization advisors (the paper's recommendations)."""

import numpy as np
import pytest

from repro.darshan.accumulate import OP_WRITE, make_ops
from repro.iosim.lustre import LustreFilesystem
from repro.optimize import (
    assess_staging,
    find_aggregation_opportunities,
    rank_flash_wear,
    recommend_striping,
)
from repro.optimize.ssd import assess_stream
from repro.optimize.striping import recommend_stripe_count
from repro.platforms import cori, summit
from repro.units import GB, GiB, KiB, MiB


class TestAggregationAdvisor:
    def test_finds_small_request_populations(self, summit_store_small, summit_machine):
        opps = find_aggregation_opportunities(summit_store_small, summit_machine)
        assert opps, "tiny-request populations must exist by construction"
        # Ranked by total saved time, descending.
        saved = [o.saved_seconds for o in opps]
        assert saved == sorted(saved, reverse=True)

    def test_aggregation_always_helps_small_requests(
        self, summit_store_small, summit_machine
    ):
        for o in find_aggregation_opportunities(summit_store_small, summit_machine):
            assert o.speedup >= 1.0
            assert o.mean_request < 64 * KiB

    def test_pfs_tiny_reads_show_huge_gains(self, summit_store_small, summit_machine):
        """Recommendation 2's headline case: 0-100B PFS reads."""
        opps = find_aggregation_opportunities(summit_store_small, summit_machine)
        posix_pfs_reads = [
            o for o in opps
            if o.layer == "pfs" and o.interface == "POSIX" and o.direction == "read"
        ]
        assert posix_pfs_reads and posix_pfs_reads[0].speedup > 10

    def test_min_files_respected(self, summit_store_small, summit_machine):
        opps = find_aggregation_opportunities(
            summit_store_small, summit_machine, min_files=10**9
        )
        assert opps == []


class TestStagingAdvisor:
    @pytest.mark.parametrize("fixture,machine_fn", [
        ("summit_store_small", summit),
        ("cori_store_small", cori),
    ])
    def test_assessment(self, fixture, machine_fn, request):
        store = request.getfixturevalue(fixture)
        assessment = assess_staging(store, machine_fn(), sample=20_000)
        # Recommendation 3: the overwhelming majority of PFS files are
        # stageable, and the fast layer wins inside the job.
        assert assessment.stageable_file_fraction > 0.8
        assert assessment.stageable_bytes > 0
        assert assessment.staged_seconds < assessment.direct_seconds

    def test_sampling_caps_work(self, summit_store_small, summit_machine):
        small = assess_staging(summit_store_small, summit_machine, sample=1_000)
        assert small.direct_seconds > 0


class TestStripingAdvisor:
    def test_heuristic_bounds(self):
        fs = LustreFilesystem()
        assert recommend_stripe_count(0, 64, fs) == 1
        assert recommend_stripe_count(512 * 1024, 64, fs) == 1
        assert recommend_stripe_count(100 * GiB, 64, fs) == 64  # proc-bound
        assert recommend_stripe_count(10**15, 10**6, fs) == fs.ost_count

    def test_recommendations_priced(self):
        fs = LustreFilesystem()
        layer = cori().pfs
        sizes = np.array([1 * GB, 50 * GB, 500 * GB])
        nprocs = np.array([32, 256, 1024])
        recs = recommend_striping(sizes, nprocs, layer, fs)
        assert len(recs) == 3
        # Big shared files gain a lot over the default stripe count of 1.
        assert recs[2].recommended_stripe_count > recs[0].recommended_stripe_count
        assert recs[2].speedup > 2.0
        # Never slower than the default.
        assert all(r.speedup >= 1.0 for r in recs)

    def test_shape_mismatch(self):
        fs = LustreFilesystem()
        with pytest.raises(ValueError):
            recommend_striping(
                np.array([1, 2]), np.array([1]), cori().pfs, fs
            )


class TestFlashWearAdvisor:
    def _stream(self, offsets, sizes):
        n = len(offsets)
        return make_ops(
            [OP_WRITE] * n, offsets, sizes,
            np.arange(n, dtype=float), [0.001] * n,
        )

    def test_sequential_log_is_benign(self):
        offsets = list(range(0, 10 * 4096, 4096))
        report = assess_stream(1, 0, self._stream(offsets, [4096] * 10))
        assert report.severity == "low"
        assert report.mitigations == ()

    def test_rewrite_heavy_flagged(self):
        report = assess_stream(
            1, 0, self._stream([0] * 50, [4096] * 50)
        )
        assert report.ext.rewrite_ratio > 0.9
        assert any("cache rewrites" in m for m in report.mitigations)

    def test_random_writes_flagged(self):
        rng = np.random.default_rng(3)
        offsets = (rng.permutation(100) * 50_000).tolist()
        report = assess_stream(1, 0, self._stream(offsets, [512] * 100))
        assert any("batch" in m for m in report.mitigations)
        assert report.write_amplification > 1.5

    def test_ranking(self):
        rng = np.random.default_rng(4)
        benign = (1, 0, self._stream(list(range(0, 40960, 4096)), [4096] * 10))
        hostile = (
            2, 0,
            self._stream((rng.permutation(50) * 9_000).tolist(), [256] * 50),
        )
        reports = rank_flash_wear([benign, hostile])
        assert reports[0].record_id == 2
        assert reports[0].write_amplification > reports[1].write_amplification

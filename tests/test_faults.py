"""Tests for degraded-layer fault injection."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.iosim.faults import (
    BB_DRAIN,
    EVICTION_STORM,
    PRESETS,
    REBUILD_STORM,
    DegradationScenario,
    degrade_layer,
    degrade_machine,
    degraded_perf_model,
    preset,
)
from repro.iosim.ior import IorConfig, run_ior
from repro.iosim.perfmodel import PerfModel
from repro.platforms import cori, summit


class TestScenario:
    def test_capacity_factor(self):
        s = DegradationScenario("x", servers_offline=0.1, rebuild_overhead=0.35)
        assert s.capacity_factor == pytest.approx(0.9 * 0.65)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DegradationScenario("x", servers_offline=1.0)
        with pytest.raises(ConfigurationError):
            DegradationScenario("x", rebuild_overhead=-0.1)


class TestPresets:
    def test_lookup_by_name(self):
        assert preset("rebuild-storm") is REBUILD_STORM
        assert preset("bb-drain") is BB_DRAIN
        assert preset("eviction-storm") is EVICTION_STORM
        assert set(PRESETS) == {"rebuild-storm", "bb-drain", "eviction-storm"}

    def test_unknown_preset(self):
        with pytest.raises(ConfigurationError, match="unknown degradation"):
            preset("meteor-strike")

    def test_golden_capacity_factors(self):
        # Degraded-OST storm: 90% of servers at 65% effectiveness.
        assert REBUILD_STORM.capacity_factor == pytest.approx(0.585)
        # Burst-buffer eviction drain: 75% of nodes at 95%.
        assert BB_DRAIN.capacity_factor == pytest.approx(0.7125)
        # Eviction storm: 80% of nodes at 70% effectiveness.
        assert EVICTION_STORM.capacity_factor == pytest.approx(0.56)


class TestDegradeLayer:
    def test_servers_and_peaks_reduced(self):
        alpine = summit().pfs
        degraded = degrade_layer(alpine, REBUILD_STORM)
        assert degraded.server_count == round(154 * 0.9)
        assert degraded.peak_read_bw == pytest.approx(
            alpine.peak_read_bw * REBUILD_STORM.capacity_factor
        )
        # The original is untouched (frozen dataclass copy).
        assert alpine.server_count == 154

    def test_at_least_one_server_survives(self):
        nasty = DegradationScenario("x", servers_offline=0.999)
        layer = degrade_layer(cori().in_system, nasty)
        assert layer.server_count >= 1


class TestDegradeMachine:
    def test_only_named_layer_changes(self):
        m = degrade_machine(summit(), "pfs", REBUILD_STORM)
        assert m.pfs.server_count < summit().pfs.server_count
        assert m.in_system.server_count == summit().in_system.server_count

    def test_unknown_layer(self):
        with pytest.raises(ConfigurationError):
            degrade_machine(summit(), "tape", REBUILD_STORM)


class TestEndToEndImpact:
    def test_ior_bandwidth_drops_under_rebuild(self):
        cfg = IorConfig(tasks=256, block_size=1024**3)
        healthy = run_ior(
            summit(), "pfs", cfg, "write", perf=PerfModel(deterministic=True)
        )
        machine = degrade_machine(summit(), "pfs", REBUILD_STORM)
        degraded = run_ior(
            machine, "pfs", cfg, "write", perf=PerfModel(deterministic=True)
        )
        assert degraded.bandwidth < healthy.bandwidth
        # The deterministic path loses at least the capacity factor when
        # the layer ceiling binds, and never *gains*.
        assert degraded.bandwidth <= healthy.bandwidth

    def test_bb_drain_hits_in_system(self):
        cfg = IorConfig(tasks=64)
        machine = degrade_machine(cori(), "insystem", BB_DRAIN)
        healthy = run_ior(
            cori(), "insystem", cfg, "read", perf=PerfModel(deterministic=True)
        )
        degraded = run_ior(
            machine, "insystem", cfg, "read", perf=PerfModel(deterministic=True)
        )
        assert degraded.bandwidth <= healthy.bandwidth

    def test_degraded_contention_is_harsher(self, rng):
        base = PerfModel()
        degraded = degraded_perf_model(base, "pfs", REBUILD_STORM)
        healthy_frac = base._contention_for(summit().pfs).sample(rng, 20_000)
        storm_frac = degraded.contention["pfs"].sample(rng, 20_000)
        assert storm_frac.mean() < healthy_frac.mean()

    def test_golden_degraded_expectations(self):
        # Pinned exactly: the what-if engine's cached deltas are computed
        # from these expectations (see tests/test_contention.py).
        storm = degraded_perf_model(PerfModel(), "pfs", REBUILD_STORM)
        assert storm.contention["pfs"].mean_fraction() == 0.282567614746736
        drain = degraded_perf_model(PerfModel(), "insystem", BB_DRAIN)
        assert drain.contention["insystem"].mean_fraction() == (
            0.3960900954401292
        )

    def test_bb_drain_keeps_insystem_floor(self):
        # Burst-buffer eviction keeps the job-exclusive layer's gentler
        # floor/diurnal profile; only the Beta shapes harshen.
        from repro.iosim.contention import ContentionModel

        drained = degraded_perf_model(PerfModel(), "insystem", BB_DRAIN)
        healthy = ContentionModel.for_layer_kind("insystem")
        model = drained.contention["insystem"]
        assert model.floor == healthy.floor
        assert model.diurnal_amplitude == healthy.diurnal_amplitude
        assert model.mean_fraction() < healthy.mean_fraction()

    def test_base_model_unchanged(self):
        base = PerfModel()
        _ = degraded_perf_model(base, "pfs", REBUILD_STORM)
        # Building the degraded model must not mutate the base's maps.
        healthy = base._contention_for(summit().pfs)
        assert healthy.alpha != REBUILD_STORM.contention_alpha

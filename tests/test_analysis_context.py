"""Unit tests for the shared AnalysisContext layer.

Covers the cache-invalidation contract from DESIGN.md §"Analysis
pipeline architecture": masks/derived columns are computed once per
store generation, mutation bumps the generation, and a stale context
never serves its cached index arrays.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.context import AnalysisContext, resolve
from repro.errors import AnalysisError
from repro.platforms.interfaces import IOInterface
from repro.store.recordstore import RecordStore
from repro.store.schema import (
    LAYER_INSYSTEM,
    LAYER_OTHER,
    LAYER_PFS,
    empty_files,
    empty_jobs,
)

LAYERS = (LAYER_PFS, LAYER_INSYSTEM, LAYER_OTHER)
INTERFACES = tuple(int(i) for i in IOInterface)


def build_store(rows) -> RecordStore:
    """A tiny store from (layer, interface, rank, bytes_read, bytes_written)."""
    files = empty_files(len(rows))
    for i, (layer, iface, rank, br, bw) in enumerate(rows):
        files[i]["layer"] = layer
        files[i]["interface"] = iface
        files[i]["rank"] = rank
        files[i]["bytes_read"] = br
        files[i]["bytes_written"] = bw
        files[i]["job_id"] = i
    jobs = empty_jobs(1)
    jobs[0]["job_id"] = 0
    return RecordStore("summit", files, jobs)


row_strategy = st.tuples(
    st.sampled_from(LAYERS),
    st.sampled_from(INTERFACES),
    st.integers(min_value=-1, max_value=8),
    st.integers(min_value=0, max_value=10**12),
    st.integers(min_value=0, max_value=10**12),
)


class TestMaskAndIndexCaching:
    def test_masks_match_direct_predicates(self):
        store = build_store(
            [
                (LAYER_PFS, int(IOInterface.POSIX), -1, 10, 0),
                (LAYER_INSYSTEM, int(IOInterface.STDIO), 3, 0, 7),
                (LAYER_PFS, int(IOInterface.MPIIO), -1, 5, 5),
            ]
        )
        ctx = store.analysis()
        f = store.files
        np.testing.assert_array_equal(
            ctx.mask("unique"), f["interface"] != int(IOInterface.MPIIO)
        )
        np.testing.assert_array_equal(ctx.mask("shared"), f["rank"] == -1)
        np.testing.assert_array_equal(
            ctx.mask(("layer", LAYER_PFS)), f["layer"] == LAYER_PFS
        )
        np.testing.assert_array_equal(
            ctx.mask(("pos", "bytes_read")), f["bytes_read"] > 0
        )

    def test_mask_and_idx_are_computed_once(self):
        store = build_store([(LAYER_PFS, int(IOInterface.POSIX), -1, 1, 1)])
        ctx = store.analysis()
        assert ctx.mask("unique") is ctx.mask("unique")
        assert ctx.idx("unique", "shared") is ctx.idx("unique", "shared")

    def test_idx_is_order_insensitive(self):
        store = build_store(
            [
                (LAYER_PFS, int(IOInterface.POSIX), -1, 1, 1),
                (LAYER_INSYSTEM, int(IOInterface.STDIO), 0, 1, 1),
            ]
        )
        ctx = store.analysis()
        a = ctx.idx(("layer", LAYER_PFS), ("interface", int(IOInterface.POSIX)))
        b = ctx.idx(("interface", int(IOInterface.POSIX)), ("layer", LAYER_PFS))
        assert a is b

    def test_unknown_mask_key_raises(self):
        store = build_store([(LAYER_PFS, int(IOInterface.POSIX), -1, 1, 1)])
        with pytest.raises(AnalysisError):
            store.analysis().mask("no-such-mask")

    def test_idx_requires_a_key(self):
        store = build_store([(LAYER_PFS, int(IOInterface.POSIX), -1, 1, 1)])
        with pytest.raises(AnalysisError):
            store.analysis().idx()

    @given(st.lists(row_strategy, min_size=1, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_idx_equals_flatnonzero_of_predicate(self, rows):
        store = build_store(rows)
        ctx = store.analysis()
        f = store.files
        for layer in (LAYER_PFS, LAYER_INSYSTEM):
            expect = np.flatnonzero(
                (f["interface"] != int(IOInterface.MPIIO)) & (f["layer"] == layer)
            )
            np.testing.assert_array_equal(
                ctx.idx("unique", ("layer", layer)), expect
            )

    @given(st.lists(row_strategy, min_size=1, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_derived_columns_match_store_methods(self, rows):
        store = build_store(rows)
        ctx = store.analysis()
        np.testing.assert_array_equal(ctx.transfer_sizes(), store.transfer_sizes())
        np.testing.assert_array_equal(ctx.opclass(), store.opclass())
        np.testing.assert_array_equal(
            ctx.bandwidth("read"), store.read_bandwidth()
        )
        np.testing.assert_array_equal(
            ctx.bandwidth("write"), store.write_bandwidth()
        )

    def test_gather_and_positive(self):
        store = build_store(
            [
                (LAYER_PFS, int(IOInterface.POSIX), -1, 10, 0),
                (LAYER_PFS, int(IOInterface.POSIX), -1, 0, 3),
                (LAYER_PFS, int(IOInterface.STDIO), -1, 2, 0),
            ]
        )
        ctx = store.analysis()
        keys = (("layer", LAYER_PFS), ("interface", int(IOInterface.POSIX)))
        np.testing.assert_array_equal(ctx.gather("bytes_read", *keys), [10, 0])
        np.testing.assert_array_equal(ctx.positive("bytes_read", *keys), [10])
        assert ctx.positive("bytes_read", *keys) is ctx.positive("bytes_read", *keys)


class TestGenerationInvalidation:
    def test_analysis_accessor_reuses_one_context(self):
        store = build_store([(LAYER_PFS, int(IOInterface.POSIX), -1, 1, 1)])
        assert store.analysis() is store.analysis()

    def test_invalidate_hands_out_a_fresh_context(self):
        store = build_store([(LAYER_PFS, int(IOInterface.POSIX), -1, 1, 1)])
        old = store.analysis()
        store.invalidate()
        new = store.analysis()
        assert new is not old
        assert new.generation == store.generation == old.generation + 1

    def test_stale_context_never_serves_index_arrays(self):
        store = build_store([(LAYER_PFS, int(IOInterface.POSIX), -1, 1, 1)])
        ctx = store.analysis()
        ctx.idx("unique")  # warm the cache
        store.invalidate()
        assert ctx.stale
        for access in (
            lambda: ctx.idx("unique"),
            lambda: ctx.mask("shared"),
            lambda: ctx.column("bytes_read"),
            lambda: ctx.transfer_sizes(),
            lambda: ctx.cached("x", lambda: 1),
        ):
            with pytest.raises(AnalysisError, match="stale"):
                access()

    def test_extend_busts_the_cache_and_new_rows_are_seen(self):
        store = build_store(
            [(LAYER_PFS, int(IOInterface.POSIX), -1, 10, 0)]
        )
        ctx = store.analysis()
        assert len(ctx.idx("unique")) == 1
        extra = empty_files(1)
        extra[0]["layer"] = LAYER_PFS
        extra[0]["interface"] = int(IOInterface.STDIO)
        store.extend(extra)
        with pytest.raises(AnalysisError, match="stale"):
            ctx.idx("unique")
        assert len(store.analysis().idx("unique")) == 2

    def test_extend_validates_dtype(self):
        from repro.errors import StoreError

        store = build_store([(LAYER_PFS, int(IOInterface.POSIX), -1, 1, 1)])
        with pytest.raises(StoreError):
            store.extend(np.zeros(2, dtype=np.int64))

    def test_memoized_results_do_not_survive_invalidation(self):
        from repro.analysis import layer_volumes

        store = build_store(
            [
                (LAYER_PFS, int(IOInterface.POSIX), -1, 10, 0),
                (LAYER_INSYSTEM, int(IOInterface.STDIO), 0, 0, 5),
            ]
        )
        before = layer_volumes(store)
        extra = empty_files(1)
        extra[0]["layer"] = LAYER_PFS
        extra[0]["interface"] = int(IOInterface.POSIX)
        extra[0]["bytes_read"] = 100
        store.extend(extra)
        after = layer_volumes(store)
        assert after is not before
        assert after.pfs.files == before.pfs.files + 1
        assert after.pfs.bytes_read == before.pfs.bytes_read + 100

    @given(st.lists(row_strategy, min_size=1, max_size=20), st.integers(1, 4))
    @settings(max_examples=25, deadline=None)
    def test_generation_counts_every_mutation(self, rows, nmutations):
        store = build_store(rows)
        contexts = [store.analysis()]
        for _ in range(nmutations):
            store.invalidate()
            contexts.append(store.analysis())
        assert store.generation == nmutations
        # All but the newest context are stale; the newest still serves.
        assert all(c.stale for c in contexts[:-1])
        assert not contexts[-1].stale
        contexts[-1].idx("unique")


class TestResolve:
    def test_resolve_defaults_to_store_context(self):
        store = build_store([(LAYER_PFS, int(IOInterface.POSIX), -1, 1, 1)])
        assert resolve(store, None) is store.analysis()

    def test_resolve_rejects_foreign_context(self):
        store_a = build_store([(LAYER_PFS, int(IOInterface.POSIX), -1, 1, 1)])
        store_b = build_store([(LAYER_PFS, int(IOInterface.POSIX), -1, 1, 1)])
        with pytest.raises(AnalysisError, match="different store"):
            resolve(store_a, store_b.analysis())

    def test_resolve_rejects_stale_context(self):
        store = build_store([(LAYER_PFS, int(IOInterface.POSIX), -1, 1, 1)])
        ctx = store.analysis()
        store.invalidate()
        with pytest.raises(AnalysisError, match="stale"):
            resolve(store, ctx)

    def test_cache_info_reports_kinds(self):
        store = build_store([(LAYER_PFS, int(IOInterface.POSIX), -1, 1, 1)])
        ctx = store.analysis()
        ctx.idx("unique", "shared")
        info = ctx.cache_info()
        assert info["idx"] == 1
        assert info["mask"] == 2


class TestContextConstruction:
    def test_context_is_lazy(self):
        store = build_store([(LAYER_PFS, int(IOInterface.POSIX), -1, 1, 1)])
        ctx = AnalysisContext(store)
        assert ctx.cache_info() == {}

    def test_repr_mentions_state(self):
        store = build_store([(LAYER_PFS, int(IOInterface.POSIX), -1, 1, 1)])
        ctx = store.analysis()
        assert "fresh" in repr(ctx)
        store.invalidate()
        assert "stale" in repr(ctx)

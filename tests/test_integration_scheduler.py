"""Integration: the synthetic year is schedulable on the paper's machines."""

import numpy as np
import pytest

from repro.iosim.datawarp import DataWarpManager
from repro.scheduler.batch import BatchScheduler, utilization
from repro.scheduler.bridge import jobs_from_store
from repro.scheduler.trace import SECONDS_PER_YEAR


class TestSummitSchedulability:
    def test_year_schedules_with_low_waits(
        self, summit_store_small, summit_machine
    ):
        specs = jobs_from_store(summit_store_small, summit_machine)
        assert len(specs) == summit_store_small.njobs
        sched = BatchScheduler(total_nodes=summit_machine.compute_nodes)
        out = sched.schedule(specs)
        waits = np.array([s.wait_time for s in out])
        # A 1/2000-scale year on the full machine should barely queue.
        assert np.median(waits) == 0.0
        util = utilization(
            out, summit_machine.compute_nodes, SECONDS_PER_YEAR
        )
        assert 0 < util < 0.05  # scaled-down load

    def test_no_bb_requests_on_summit(self, summit_store_small, summit_machine):
        """SCNL is node-local — no DataWarp-style capacity requests."""
        specs = jobs_from_store(summit_store_small, summit_machine)
        assert all(s.bb_request is None for s in specs)


class TestCoriSchedulability:
    def test_bb_jobs_get_requests(self, cori_store_small, cori_machine):
        specs = jobs_from_store(cori_store_small, cori_machine)
        with_bb = [s for s in specs if s.bb_request is not None]
        assert with_bb, "CBB jobs must reconstruct DataWarp requests"
        granularity = cori_machine.in_system.params["granularity"]
        for s in with_bb:
            assert s.bb_request.capacity_bytes % granularity == 0
        # Table 5: ~19% of Cori jobs touch CBB.
        frac = len(with_bb) / len(specs)
        assert 0.10 < frac < 0.30

    def test_schedules_through_datawarp(self, cori_store_small, cori_machine):
        specs = jobs_from_store(cori_store_small, cori_machine)
        dw = DataWarpManager(
            pool_bytes=cori_machine.in_system.capacity_bytes,
            bb_node_count=cori_machine.in_system.server_count,
            granularity=cori_machine.in_system.params["granularity"],
        )
        sched = BatchScheduler(
            total_nodes=cori_machine.compute_nodes, datawarp=dw
        )
        out = sched.schedule(specs)
        assert len(out) == len(specs)
        # All allocations released after the drain.
        assert dw.active_jobs() == []
        assert dw.free_bytes() == cori_machine.in_system.capacity_bytes

    def test_submit_order(self, cori_store_small, cori_machine):
        specs = jobs_from_store(cori_store_small, cori_machine)
        submits = [s.submit_time for s in specs]
        assert submits == sorted(submits)

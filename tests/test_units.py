"""Tests for repro.units."""

import pytest

from repro import units


class TestParseSize:
    def test_plain_bytes(self):
        assert units.parse_size("123") == 123

    def test_decimal_units(self):
        assert units.parse_size("1KB") == 1000
        assert units.parse_size("2 MB") == 2_000_000
        assert units.parse_size("3GB") == 3_000_000_000
        assert units.parse_size("1TB") == 10**12
        assert units.parse_size("1PB") == 10**15

    def test_binary_units(self):
        assert units.parse_size("1KiB") == 1024
        assert units.parse_size("1 MiB") == 1024**2
        assert units.parse_size("2GiB") == 2 * 1024**3

    def test_single_letter_suffixes_are_decimal(self):
        # Matches Darshan bin labels like 100_1K.
        assert units.parse_size("1K") == 1000
        assert units.parse_size("10M") == 10**7
        assert units.parse_size("1G") == 10**9

    def test_fractional_values(self):
        assert units.parse_size("1.5GB") == 1_500_000_000

    def test_trailing_plus_tolerated(self):
        # The figures label their last bin "1TB+".
        assert units.parse_size("1TB+") == 10**12

    def test_case_insensitive(self):
        assert units.parse_size("1kb") == 1000
        assert units.parse_size("1gib") == 1024**3

    def test_rejects_garbage(self):
        for bad in ("", "abc", "12XB", "--3MB", "1.2.3GB"):
            with pytest.raises(ValueError):
                units.parse_size(bad)

    def test_rejects_sub_byte(self):
        with pytest.raises(ValueError):
            units.parse_size("1.5B")


class TestFormatSize:
    def test_decimal_default(self):
        assert units.format_size(1_500_000_000) == "1.50 GB"
        assert units.format_size(202.18e15) == "202.18 PB"

    def test_binary(self):
        assert units.format_size(2048, decimal=False) == "2.00 KiB"

    def test_small_values(self):
        assert units.format_size(42) == "42 B"
        assert units.format_size(0) == "0 B"

    def test_negative(self):
        assert units.format_size(-1000).startswith("-")

    def test_round_trip_order_of_magnitude(self):
        for n in (1234, 56_789_000, 9.9e12, 3.3e15):
            text = units.format_size(n)
            assert units.parse_size(text.replace(" ", "")) == pytest.approx(
                n, rel=0.01
            )


class TestFormatCount:
    def test_paper_style(self):
        assert units.format_count(7_740_000) == "7.7M"
        assert units.format_count(281_600) == "281.6K"
        assert units.format_count(1_294_850_000) == "1.3B"

    def test_small_integers_verbatim(self):
        assert units.format_count(950) == "950"
        assert units.format_count(0) == "0"

    def test_negative(self):
        assert units.format_count(-1500) == "-1.5K"


class TestConstants:
    def test_decimal_binary_distinct(self):
        assert units.KB < units.KiB
        assert units.PB < units.PiB

    def test_magnitudes(self):
        assert units.GiB == 1024**3
        assert units.GB == 1000**3

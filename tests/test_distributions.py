"""Tests for workload distributions."""

import numpy as np
import pytest

from repro.darshan.bins import ACCESS_SIZE_BINS
from repro.errors import ConfigurationError
from repro.workloads.distributions import (
    BinProfile,
    Constant,
    DiscreteLogUniform,
    LogNormal,
    Mixture,
    ParetoTail,
)


class TestConstant:
    def test_sample_and_mean(self, rng):
        d = Constant(42.0)
        assert (d.sample(rng, 5) == 42.0).all()
        assert d.mean() == 42.0


class TestLogNormal:
    def test_median_approx(self, rng):
        d = LogNormal(median=1000, sigma=1.0)
        x = d.sample(rng, 200_000)
        assert np.median(x) == pytest.approx(1000, rel=0.05)

    def test_truncation(self, rng):
        d = LogNormal(median=1000, sigma=3.0, lo=10, hi=10_000)
        x = d.sample(rng, 50_000)
        assert x.min() >= 10 and x.max() <= 10_000

    def test_mean_formula(self, rng):
        d = LogNormal(median=100, sigma=0.5)
        x = d.sample(rng, 400_000)
        assert x.mean() == pytest.approx(d.mean(), rel=0.02)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LogNormal(0, 1)
        with pytest.raises(ConfigurationError):
            LogNormal(1, 1, lo=10, hi=5)


class TestParetoTail:
    def test_bounds(self, rng):
        d = ParetoTail(0.8, 1e9, 1e12)
        x = d.sample(rng, 100_000)
        assert x.min() >= 1e9 and x.max() <= 1e12

    def test_heavy_tail_shape(self, rng):
        d = ParetoTail(0.5, 1.0, 1e6)
        x = d.sample(rng, 200_000)
        # alpha=0.5 -> P(X > sqrt(hi)) substantial.
        assert (x > 1e3).mean() > 0.02

    def test_mean_formula(self, rng):
        for alpha in (0.5, 1.0, 2.0):
            d = ParetoTail(alpha, 10.0, 1e5)
            x = d.sample(rng, 500_000)
            assert x.mean() == pytest.approx(d.mean(), rel=0.05)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ParetoTail(0, 1, 2)
        with pytest.raises(ConfigurationError):
            ParetoTail(1, 5, 5)


class TestDiscreteLogUniform:
    def test_bounds_and_integrality(self, rng):
        d = DiscreteLogUniform(2, 512)
        x = d.sample(rng, 10_000)
        assert x.min() >= 2 and x.max() <= 512
        assert x.dtype.kind == "i"

    def test_log_uniform_spread(self, rng):
        d = DiscreteLogUniform(1, 1024)
        x = d.sample(rng, 200_000)
        # Each octave should hold roughly equal mass.
        low = ((x >= 1) & (x < 32)).mean()
        high = ((x >= 32) & (x < 1024)).mean()
        assert low == pytest.approx(0.5, abs=0.05)
        assert high == pytest.approx(0.5, abs=0.05)

    def test_degenerate(self, rng):
        d = DiscreteLogUniform(7, 7)
        assert (d.sample(rng, 10) == 7).all()
        assert d.mean() == 7.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DiscreteLogUniform(0, 5)
        with pytest.raises(ConfigurationError):
            DiscreteLogUniform(6, 5)


class TestMixture:
    def test_weights_normalize(self, rng):
        m = Mixture(((3.0, Constant(1.0)), (1.0, Constant(2.0))))
        x = m.sample(rng, 100_000)
        assert (x == 1.0).mean() == pytest.approx(0.75, abs=0.01)

    def test_mean(self):
        m = Mixture(((1.0, Constant(10.0)), (1.0, Constant(20.0))))
        assert m.mean() == 15.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Mixture(())
        with pytest.raises(ConfigurationError):
            Mixture(((0.0, Constant(1.0)),))


class TestBinProfile:
    def test_from_dict(self):
        p = BinProfile.from_dict({"10K_100K": 0.8, "1K_10K": 0.2})
        assert p.mean_request_size() > 1000

    def test_unknown_label(self):
        with pytest.raises(ConfigurationError):
            BinProfile.from_dict({"7K_9K": 1.0})

    def test_histograms_sum_to_ops(self, rng):
        p = BinProfile.from_dict({"0_100": 0.5, "1K_10K": 0.5})
        nops = np.array([10, 0, 1000])
        hist = p.histograms(rng, nops)
        assert hist.shape == (3, ACCESS_SIZE_BINS.nbins)
        np.testing.assert_array_equal(hist.sum(axis=1), nops)
        # Only the two profile bins get mass.
        assert hist[:, 1].sum() == 0

    def test_ops_for_bytes(self):
        p = BinProfile.from_dict({"100K_1M": 1.0})
        mean = p.mean_request_size()
        ops = p.ops_for_bytes(np.array([0, 1, 10 * mean]))
        assert ops[0] == 0
        assert ops[1] == 1  # any positive transfer needs >= 1 op
        assert ops[2] == 10

    def test_negative_ops_rejected(self, rng):
        p = BinProfile.from_dict({"0_100": 1.0})
        with pytest.raises(ConfigurationError):
            p.histograms(rng, np.array([-1]))

    def test_wrong_length(self):
        with pytest.raises(ConfigurationError):
            BinProfile((0.5, 0.5))

"""Property-based tests (hypothesis) on core data structures and invariants."""

import copy

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.darshan.accumulate import (
    OP_CLOSE,
    OP_OPEN,
    OP_READ,
    OP_WRITE,
    accumulate,
    make_ops,
)
from repro.darshan.bins import ACCESS_SIZE_BINS, TRANSFER_SIZE_BINS
from repro.darshan.constants import ModuleId
from repro.darshan.format import read_log_bytes, write_log_bytes
from repro.darshan.log import DarshanLog
from repro.darshan.records import FileRecord, JobRecord, NameRecord
from repro.darshan.validate import validate_record
from repro.instrument.opstream import synthesize_ops
from repro.units import format_size, parse_size

sizes = st.integers(min_value=0, max_value=10**14)


class TestBinProperties:
    @given(sizes)
    def test_every_size_has_exactly_one_bin(self, size):
        for bins in (ACCESS_SIZE_BINS, TRANSFER_SIZE_BINS):
            idx = bins.index_of(size)
            assert 0 <= idx < bins.nbins
            lo, hi = bins.edges[idx], bins.edges[idx + 1]
            assert lo <= size < hi

    @given(st.lists(sizes, min_size=1, max_size=200))
    def test_histogram_conserves_count(self, values):
        hist = ACCESS_SIZE_BINS.histogram(np.array(values))
        assert hist.sum() == len(values)

    @given(st.lists(sizes, min_size=1, max_size=100))
    def test_vectorized_matches_scalar(self, values):
        arr = np.array(values)
        vec = TRANSFER_SIZE_BINS.index_array(arr)
        for v, i in zip(values, vec):
            assert TRANSFER_SIZE_BINS.index_of(v) == i


class TestUnitsProperties:
    @given(st.integers(min_value=1, max_value=10**17))
    def test_format_parse_within_rounding(self, n):
        text = format_size(n)
        back = parse_size(text.replace(" ", ""))
        assert abs(back - n) <= 0.01 * n + 1


class TestAccumulateProperties:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from([OP_READ, OP_WRITE]),
                st.integers(min_value=0, max_value=10**9),  # size
            ),
            min_size=0,
            max_size=60,
        )
    )
    @settings(max_examples=60)
    def test_accumulation_conserves_bytes_and_counts(self, data_ops):
        kinds = [OP_OPEN] + [k for k, _ in data_ops] + [OP_CLOSE]
        op_sizes = [0] + [s for _, s in data_ops] + [0]
        n = len(kinds)
        ops = make_ops(
            kinds, offsets=[0] * n, sizes=op_sizes,
            starts=np.arange(n, dtype=float), durations=[0.001] * n,
        )
        rec = accumulate(ModuleId.POSIX, 1, 0, ops)
        expect_read = sum(s for k, s in data_ops if k == OP_READ)
        expect_write = sum(s for k, s in data_ops if k == OP_WRITE)
        assert rec.bytes_read == expect_read
        assert rec.bytes_written == expect_write
        assert rec["READS"] == sum(1 for k, _ in data_ops if k == OP_READ)
        # histogram totals match op counts
        hist_reads = sum(
            int(rec.get(f"SIZE_READ_{label}")) for label in ACCESS_SIZE_BINS.labels
        )
        assert hist_reads == rec["READS"]
        validate_record(rec)


class TestOpstreamProperties:
    @given(
        st.integers(min_value=0, max_value=10**12),
        st.integers(min_value=1, max_value=500),
    )
    @settings(max_examples=80)
    def test_uniform_sizes_sum_exactly(self, nbytes, nops):
        ops = synthesize_ops(
            bytes_read=nbytes, bytes_written=0,
            read_ops=nops if nbytes else 0, write_ops=0,
            read_time=1.0 if nbytes else 0.0, write_time=0.0, meta_time=0.01,
        )
        assert ops["size"][ops["kind"] == OP_READ].sum() == nbytes
        assert (np.diff(ops["start"]) >= 0).all()

    @given(
        st.lists(st.integers(min_value=0, max_value=20), min_size=10, max_size=10)
    )
    @settings(max_examples=60)
    def test_histogram_realization_round_trips(self, hist_list):
        hist = np.array(hist_list, dtype=np.int64)
        nops = int(hist.sum())
        if nops == 0:
            return
        # Choose achievable bytes: midpoint of the histogram's range.
        edges = np.asarray(ACCESS_SIZE_BINS.edges)
        lower = edges[:-1].copy()
        lower[0] = 1
        floor = int(hist @ lower)
        upper = np.where(np.isfinite(edges[1:]), edges[1:] - 1, edges[:-1] * 4 + 100)
        cap = int(hist @ upper)
        nbytes = (floor + cap) // 2
        ops = synthesize_ops(
            bytes_read=nbytes, bytes_written=0, read_ops=nops, write_ops=0,
            read_time=1.0, write_time=0.0, meta_time=0.0, read_hist=hist,
        )
        reads = ops[ops["kind"] == OP_READ]["size"]
        assert reads.sum() == nbytes
        realized = ACCESS_SIZE_BINS.histogram(reads)
        # At most one op may drift a bin (the remainder carrier).
        assert int(np.abs(realized - hist).sum()) <= 2


class TestFormatProperties:
    @given(
        st.integers(min_value=0, max_value=2**63 - 1),
        st.integers(min_value=1, max_value=100_000),
        st.text(
            alphabet=st.characters(blacklist_categories=("Cs",)), max_size=40
        ),
    )
    @settings(max_examples=40)
    def test_round_trip_arbitrary_job(self, job_id, nprocs, domain):
        job = JobRecord(
            job_id, 1, nprocs, 0.0, 1.0, platform="summit", domain=domain
        )
        log = DarshanLog(job)
        log.register_name(NameRecord(1, "/gpfs/alpine/x"))
        rec = FileRecord(ModuleId.POSIX, 1)
        rec.set("BYTES_READ", 512)
        rec.set("READS", 1)
        rec.set("SIZE_READ_100_1K", 1)
        rec.set("F_READ_TIME", 0.25)
        log.add_record(rec)
        out = read_log_bytes(write_log_bytes(log))
        assert out.job.job_id == job_id
        assert out.job.nprocs == nprocs
        assert out.job.domain == domain

    @given(st.binary(max_size=400))
    @settings(max_examples=100)
    def test_parser_never_crashes_on_garbage(self, data):
        from repro.errors import LogFormatError

        try:
            read_log_bytes(data)
        except LogFormatError:
            pass  # rejecting garbage is the contract


# ---------------------------------------------------------------------------
# Shard-store merge invariants (the sharded-pipeline reassembly step).
# ---------------------------------------------------------------------------

from repro.errors import AnalysisError, StoreError  # noqa: E402
from repro.store.merge import merge_stores  # noqa: E402
from repro.store.recordstore import RecordStore  # noqa: E402
from repro.store.schema import empty_files, empty_jobs  # noqa: E402

EXT_POOL = ("h5", "dat", "txt", "nc", "bp", "chk")
DOM_POOL = ("physics", "chemistry", "biology", "climate")


@st.composite
def catalogs(draw, pool):
    """A random-length, random-order prefix-free subset of ``pool``."""
    k = draw(st.integers(min_value=0, max_value=len(pool)))
    return tuple(draw(st.permutations(list(pool)))[:k])


@st.composite
def shard_stores(draw, job_offset=0):
    """A small shard-local store with dense 0-based log ids.

    ``job_offset`` lets callers give each shard a disjoint job-id range,
    mirroring ingest shards over disjoint log sets. Static job attributes
    are pure functions of the job id so duplicated ids always agree.
    """
    domains = draw(catalogs(DOM_POOL))
    exts = draw(catalogs(EXT_POOL))
    njobs = draw(st.integers(min_value=1, max_value=4))
    job_ids = job_offset + np.array(
        sorted(
            draw(
                st.lists(
                    st.integers(min_value=1, max_value=60),
                    min_size=njobs, max_size=njobs, unique=True,
                )
            )
        ),
        dtype=np.int64,
    )
    jobs = empty_jobs(njobs)
    jobs["job_id"] = job_ids
    jobs["user_id"] = 1000 + job_ids % 7
    jobs["nnodes"] = 1 + job_ids % 5
    jobs["nprocs"] = jobs["nnodes"] * 4
    jobs["runtime"] = 60.0 * (1 + job_ids % 3)
    jobs["start_time"] = 3600.0 * job_ids
    jobs["nlogs"] = draw(
        st.lists(
            st.integers(min_value=1, max_value=3),
            min_size=njobs, max_size=njobs,
        )
    )
    jobs["used_bb"] = draw(
        st.lists(st.integers(min_value=0, max_value=1),
                 min_size=njobs, max_size=njobs)
    )
    width = int(jobs["nlogs"].sum())
    nfiles = draw(st.integers(min_value=0, max_value=12))
    files = empty_files(nfiles)
    if nfiles:
        picks = draw(
            st.lists(st.integers(min_value=0, max_value=njobs - 1),
                     min_size=nfiles, max_size=nfiles)
        )
        files["job_id"] = job_ids[picks]
        files["user_id"] = jobs["user_id"][picks]
        files["nprocs"] = jobs["nprocs"][picks]
        files["log_id"] = draw(
            st.lists(st.integers(min_value=0, max_value=width - 1),
                     min_size=nfiles, max_size=nfiles)
        )
        files["record_id"] = np.arange(nfiles, dtype=np.uint64)
        files["domain"] = draw(
            st.lists(st.integers(min_value=-1, max_value=len(domains) - 1),
                     min_size=nfiles, max_size=nfiles)
        )
        files["ext"] = draw(
            st.lists(st.integers(min_value=-1, max_value=len(exts) - 1),
                     min_size=nfiles, max_size=nfiles)
        )
        files["bytes_read"] = draw(
            st.lists(st.integers(min_value=0, max_value=10**9),
                     min_size=nfiles, max_size=nfiles)
        )
    return RecordStore(
        "summit", files, jobs, domains=domains, extensions=exts, scale=1.0
    )


@st.composite
def shard_lists(draw):
    """1–4 shards with pairwise-disjoint job-id ranges (ingest style)."""
    n = draw(st.integers(min_value=1, max_value=4))
    return [draw(shard_stores(job_offset=1000 * i)) for i in range(n)]


def _names(catalog, codes):
    return ["" if c < 0 else catalog[c] for c in np.asarray(codes)]


class TestMergeProperties:
    @given(shard_lists())
    @settings(max_examples=50, deadline=None)
    def test_catalog_remap_preserves_names_and_sentinel(self, shards):
        merged = merge_stores(shards, remap_log_ids=True, nlogs_rule="sum")
        assert len(merged.files) == sum(len(s.files) for s in shards)
        lo = 0
        for s in shards:
            part = merged.files[lo : lo + len(s.files)]
            assert _names(merged.extensions, part["ext"]) == _names(
                s.extensions, s.files["ext"]
            )
            assert _names(merged.domains, part["domain"]) == _names(
                s.domains, s.files["domain"]
            )
            # the -1 sentinel survives remapping exactly
            np.testing.assert_array_equal(
                part["ext"] == -1, s.files["ext"] == -1
            )
            lo += len(s.files)

    @given(shard_lists())
    @settings(max_examples=50, deadline=None)
    def test_log_id_remap_is_a_disjoint_bijection(self, shards):
        merged = merge_stores(shards, remap_log_ids=True, nlogs_rule="sum")
        lo, base = 0, 0
        for s in shards:
            part = merged.files[lo : lo + len(s.files)]
            width = int(s.jobs["nlogs"].sum())
            if len(s.files):
                width = max(width, int(s.files["log_id"].max()) + 1)
                # per-shard map is an offset: injective, order-preserving
                np.testing.assert_array_equal(
                    part["log_id"], s.files["log_id"] + base
                )
                # and lands inside this shard's reserved range only
                assert int(part["log_id"].min()) >= base
                assert int(part["log_id"].max()) < base + width
            base += width
            lo += len(s.files)

    @given(shard_lists())
    @settings(max_examples=50, deadline=None)
    def test_job_id_remap_is_dense_and_consistent(self, shards):
        merged = merge_stores(
            shards, remap_log_ids=True, remap_job_ids=True
        )
        total = sum(len(np.unique(s.jobs["job_id"])) for s in shards)
        ids = merged.jobs["job_id"]
        assert len(ids) == total
        assert len(np.unique(ids)) == total  # bijection: no collisions
        assert int(ids.min()) == 1 and int(ids.max()) == total  # dense
        # files follow the same per-shard map as the job table
        flo = jlo = 0
        for s in shards:
            fpart = merged.files[flo : flo + len(s.files)]
            jpart = merged.jobs[jlo : jlo + len(s.jobs)]
            remap = dict(zip(s.jobs["job_id"].tolist(), jpart["job_id"].tolist()))
            expect = [remap[j] for j in s.files["job_id"].tolist()]
            assert fpart["job_id"].tolist() == expect
            flo += len(s.files)
            jlo += len(s.jobs)

    @given(shard_lists())
    @settings(max_examples=50, deadline=None)
    def test_merge_never_mutates_its_inputs(self, shards):
        before = [
            (s.files.copy(), s.jobs.copy(), s.generation) for s in shards
        ]
        merge_stores(shards, remap_log_ids=True, remap_job_ids=True)
        for s, (files, jobs, gen) in zip(shards, before):
            np.testing.assert_array_equal(s.files, files)
            np.testing.assert_array_equal(s.jobs, jobs)
            assert s.generation == gen

    @given(shard_stores())
    @settings(max_examples=50, deadline=None)
    def test_duplicate_job_rows_merge_with_or_and_rule(self, shard):
        """Generator-style merge: every shard carries the full job table."""
        twin = copy.deepcopy(shard)
        twin.jobs["used_bb"] = 1 - twin.jobs["used_bb"]  # disagree on BB use
        merged = merge_stores([shard, twin], nlogs_rule="max")
        assert len(merged.jobs) == len(shard.jobs)
        assert (merged.jobs["used_bb"] == 1).all()  # OR of {x, 1-x}
        np.testing.assert_array_equal(
            merged.jobs["nlogs"], shard.jobs["nlogs"]  # max(x, x) == x
        )
        summed = merge_stores([shard, twin], nlogs_rule="sum")
        np.testing.assert_array_equal(
            summed.jobs["nlogs"], 2 * shard.jobs["nlogs"]
        )

    @given(shard_stores())
    @settings(max_examples=30, deadline=None)
    def test_static_field_disagreement_raises(self, shard):
        twin = copy.deepcopy(shard)
        twin.jobs["user_id"] += 1
        with pytest.raises(StoreError, match="user_id"):
            merge_stores([shard, twin])


class TestGenerationContract:
    """Merge/concat make fresh stores; extend invalidates live contexts."""

    @given(shard_lists())
    @settings(max_examples=20, deadline=None)
    def test_merged_store_starts_at_generation_zero(self, shards):
        merged = merge_stores(shards, remap_log_ids=True, remap_job_ids=True)
        assert merged.generation == 0
        assert merged.analysis().generation == 0

    @given(shard_stores())
    @settings(max_examples=20, deadline=None)
    def test_concat_is_fresh_and_leaves_sources_alone(self, shard):
        ctx = shard.analysis()
        out = RecordStore.concat([shard, copy.deepcopy(shard)])
        assert out.generation == 0
        assert len(out.files) == 2 * len(shard.files)
        assert shard.analysis() is ctx  # source context still live

    @given(shard_stores())
    @settings(max_examples=20, deadline=None)
    def test_extend_bumps_generation_and_stales_context(self, shard):
        ctx = shard.analysis()
        gen = shard.generation
        shard.extend(empty_files(1))
        assert shard.generation == gen + 1
        assert ctx.stale
        with pytest.raises(AnalysisError):
            ctx.transfer_sizes()
        # the store itself recovers with a fresh context
        fresh = shard.analysis()
        assert fresh is not ctx and not fresh.stale

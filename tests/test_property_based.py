"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.darshan.accumulate import (
    OP_CLOSE,
    OP_OPEN,
    OP_READ,
    OP_WRITE,
    accumulate,
    make_ops,
)
from repro.darshan.bins import ACCESS_SIZE_BINS, TRANSFER_SIZE_BINS
from repro.darshan.constants import ModuleId
from repro.darshan.format import read_log_bytes, write_log_bytes
from repro.darshan.log import DarshanLog
from repro.darshan.records import FileRecord, JobRecord, NameRecord
from repro.darshan.validate import validate_record
from repro.instrument.opstream import synthesize_ops
from repro.units import format_size, parse_size

sizes = st.integers(min_value=0, max_value=10**14)


class TestBinProperties:
    @given(sizes)
    def test_every_size_has_exactly_one_bin(self, size):
        for bins in (ACCESS_SIZE_BINS, TRANSFER_SIZE_BINS):
            idx = bins.index_of(size)
            assert 0 <= idx < bins.nbins
            lo, hi = bins.edges[idx], bins.edges[idx + 1]
            assert lo <= size < hi

    @given(st.lists(sizes, min_size=1, max_size=200))
    def test_histogram_conserves_count(self, values):
        hist = ACCESS_SIZE_BINS.histogram(np.array(values))
        assert hist.sum() == len(values)

    @given(st.lists(sizes, min_size=1, max_size=100))
    def test_vectorized_matches_scalar(self, values):
        arr = np.array(values)
        vec = TRANSFER_SIZE_BINS.index_array(arr)
        for v, i in zip(values, vec):
            assert TRANSFER_SIZE_BINS.index_of(v) == i


class TestUnitsProperties:
    @given(st.integers(min_value=1, max_value=10**17))
    def test_format_parse_within_rounding(self, n):
        text = format_size(n)
        back = parse_size(text.replace(" ", ""))
        assert abs(back - n) <= 0.01 * n + 1


class TestAccumulateProperties:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from([OP_READ, OP_WRITE]),
                st.integers(min_value=0, max_value=10**9),  # size
            ),
            min_size=0,
            max_size=60,
        )
    )
    @settings(max_examples=60)
    def test_accumulation_conserves_bytes_and_counts(self, data_ops):
        kinds = [OP_OPEN] + [k for k, _ in data_ops] + [OP_CLOSE]
        op_sizes = [0] + [s for _, s in data_ops] + [0]
        n = len(kinds)
        ops = make_ops(
            kinds, offsets=[0] * n, sizes=op_sizes,
            starts=np.arange(n, dtype=float), durations=[0.001] * n,
        )
        rec = accumulate(ModuleId.POSIX, 1, 0, ops)
        expect_read = sum(s for k, s in data_ops if k == OP_READ)
        expect_write = sum(s for k, s in data_ops if k == OP_WRITE)
        assert rec.bytes_read == expect_read
        assert rec.bytes_written == expect_write
        assert rec["READS"] == sum(1 for k, _ in data_ops if k == OP_READ)
        # histogram totals match op counts
        hist_reads = sum(
            int(rec.get(f"SIZE_READ_{label}")) for label in ACCESS_SIZE_BINS.labels
        )
        assert hist_reads == rec["READS"]
        validate_record(rec)


class TestOpstreamProperties:
    @given(
        st.integers(min_value=0, max_value=10**12),
        st.integers(min_value=1, max_value=500),
    )
    @settings(max_examples=80)
    def test_uniform_sizes_sum_exactly(self, nbytes, nops):
        ops = synthesize_ops(
            bytes_read=nbytes, bytes_written=0,
            read_ops=nops if nbytes else 0, write_ops=0,
            read_time=1.0 if nbytes else 0.0, write_time=0.0, meta_time=0.01,
        )
        assert ops["size"][ops["kind"] == OP_READ].sum() == nbytes
        assert (np.diff(ops["start"]) >= 0).all()

    @given(
        st.lists(st.integers(min_value=0, max_value=20), min_size=10, max_size=10)
    )
    @settings(max_examples=60)
    def test_histogram_realization_round_trips(self, hist_list):
        hist = np.array(hist_list, dtype=np.int64)
        nops = int(hist.sum())
        if nops == 0:
            return
        # Choose achievable bytes: midpoint of the histogram's range.
        edges = np.asarray(ACCESS_SIZE_BINS.edges)
        lower = edges[:-1].copy()
        lower[0] = 1
        floor = int(hist @ lower)
        upper = np.where(np.isfinite(edges[1:]), edges[1:] - 1, edges[:-1] * 4 + 100)
        cap = int(hist @ upper)
        nbytes = (floor + cap) // 2
        ops = synthesize_ops(
            bytes_read=nbytes, bytes_written=0, read_ops=nops, write_ops=0,
            read_time=1.0, write_time=0.0, meta_time=0.0, read_hist=hist,
        )
        reads = ops[ops["kind"] == OP_READ]["size"]
        assert reads.sum() == nbytes
        realized = ACCESS_SIZE_BINS.histogram(reads)
        # At most one op may drift a bin (the remainder carrier).
        assert int(np.abs(realized - hist).sum()) <= 2


class TestFormatProperties:
    @given(
        st.integers(min_value=0, max_value=2**63 - 1),
        st.integers(min_value=1, max_value=100_000),
        st.text(
            alphabet=st.characters(blacklist_categories=("Cs",)), max_size=40
        ),
    )
    @settings(max_examples=40)
    def test_round_trip_arbitrary_job(self, job_id, nprocs, domain):
        job = JobRecord(
            job_id, 1, nprocs, 0.0, 1.0, platform="summit", domain=domain
        )
        log = DarshanLog(job)
        log.register_name(NameRecord(1, "/gpfs/alpine/x"))
        rec = FileRecord(ModuleId.POSIX, 1)
        rec.set("BYTES_READ", 512)
        rec.set("READS", 1)
        rec.set("SIZE_READ_100_1K", 1)
        rec.set("F_READ_TIME", 0.25)
        log.add_record(rec)
        out = read_log_bytes(write_log_bytes(log))
        assert out.job.job_id == job_id
        assert out.job.nprocs == nprocs
        assert out.job.domain == domain

    @given(st.binary(max_size=400))
    @settings(max_examples=100)
    def test_parser_never_crashes_on_garbage(self, data):
        from repro.errors import LogFormatError

        try:
            read_log_bytes(data)
        except LogFormatError:
            pass  # rejecting garbage is the contract

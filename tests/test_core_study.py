"""Tests for the study pipeline and paper-shape checks."""

import pytest

from repro.core import CharacterizationStudy, StudyConfig
from repro.core import expectations as exp
from repro.errors import ConfigurationError


class TestStudyConfig:
    def test_defaults(self):
        cfg = StudyConfig()
        assert cfg.platforms == ("summit", "cori")
        assert 0 < cfg.scale <= 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            StudyConfig(scale=0)
        with pytest.raises(ConfigurationError):
            StudyConfig(platforms=())
        with pytest.raises(ConfigurationError):
            StudyConfig(platforms=("summit", "theta"))


class TestStudyPipeline:
    def test_store_cached(self, study):
        assert study.store("summit") is study.store("summit")

    def test_results_cached(self, study):
        assert study.run("summit") is study.run("summit")

    def test_unknown_platform(self, study):
        with pytest.raises(ValueError):
            study.store("frontier")

    def test_all_exhibits_populated(self, study):
        r = study.run("cori")
        for attr in ("table2", "table3", "table4", "table5", "table6",
                     "fig6", "fig7", "fig8", "fig10"):
            assert getattr(r, attr) is not None, attr
        for attr in ("fig3", "fig4", "fig9", "fig11_12"):
            assert getattr(r, attr), attr

    def test_render_mentions_every_exhibit(self, study):
        text = study.render("summit")
        for token in ("Table 2", "Table 3", "Table 4", "Table 5", "Table 6",
                      "Figure 3", "Figure 4", "Figure 5", "Figure 6",
                      "Figure 7", "Figure 8", "Figure 9", "Figure 10",
                      "Figure 11"):
            assert token in text, token
        assert "Figure 12" in study.render("cori")


class TestShapeChecks:
    """The headline reproduction result: every paper shape holds."""

    @pytest.mark.parametrize("platform", ["summit", "cori"])
    def test_all_shapes_pass(self, study, platform):
        checks = study.shape_checks(platform)
        assert len(checks) >= 14
        failures = [str(c) for c in checks if not c.passed]
        assert not failures, "\n".join(failures)

    def test_checks_cover_all_exhibit_families(self, study):
        exhibits = {c.exhibit for c in study.shape_checks("summit")}
        exhibits |= {c.exhibit for c in study.shape_checks("cori")}
        for family in ("Table 3", "Table 4", "Table 5", "Table 6",
                       "Figure 3", "Figure 4", "Figure 6", "Fig 11/12"):
            assert any(family in e for e in exhibits), family


class TestExpectations:
    def test_table3_internally_consistent(self):
        # Table 2's file totals equal the Table 3 layer sums (the paper's
        # Table 2 'Files' column is transposed in some renderings; our
        # constants use the §3.1 text numbers).
        for platform in ("summit", "cori"):
            t3 = exp.TABLE3[platform]
            total = t3["insystem"][0] + t3["pfs"][0]
            assert total == pytest.approx(exp.TABLE2[platform]["files"], rel=0.01)

    def test_ratios_match_quoted(self):
        t3 = exp.TABLE3["cori"]
        assert t3["pfs"][0] / t3["insystem"][0] == pytest.approx(28.87, rel=0.01)
        assert t3["pfs"][1] / t3["pfs"][2] == pytest.approx(6.58, rel=0.01)

    def test_cori_table4_shares(self):
        t4 = exp.TABLE4["cori"]
        pfs_w = t4["pfs"][1] / (t4["pfs"][1] + t4["insystem"][1])
        assert pfs_w == pytest.approx(exp.CORI_PFS_WRITE_SHARE, abs=0.001)
        cbb_r = t4["insystem"][0] / (t4["insystem"][0] + t4["pfs"][0])
        assert cbb_r == pytest.approx(exp.CORI_CBB_READ_SHARE, abs=0.001)

    def test_table5_cbb_fraction(self):
        ins, both, pfs = exp.TABLE5["cori"]
        assert ins / (ins + both + pfs) == pytest.approx(
            exp.CORI_CBB_ONLY_FRACTION, abs=0.001
        )

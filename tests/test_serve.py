"""The serving invariants: coalescing, caching, backpressure, metrics.

The acceptance bar for the serving subsystem:

- N identical concurrent queries execute the underlying analysis
  exactly once (coalescing);
- a warm cached query is >=10x faster than cold;
- served results are byte-identical to direct ``analysis/`` calls for
  every exhibit;
- load past the admission bound sheds with ``ServiceOverloadError``
  (never a hang or unbounded queue growth).
"""

from __future__ import annotations

import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.analysis.context import AnalysisContext
from repro.analysis.report import render_results
from repro.errors import (
    QueryTimeoutError,
    ServeError,
    ServiceOverloadError,
    UnknownQueryError,
)
from repro.serve import (
    BackgroundServer,
    QueryEngine,
    ServeClient,
    default_registry,
    serialize_result,
)
from repro.serve.cache import ResultCache
from repro.serve.metrics import LatencyHistogram, Metrics
from repro.serve.registry import QuerySpec, exhibit_names, validate_params


def _spec(name, fn, *, params=(), cacheable=True):
    return QuerySpec(
        name=name, title=name, kind="meta", header_key=None, run=fn,
        param_names=tuple(params), cacheable=cacheable,
    )


class _Probe:
    """A registerable query with a controllable body and a call count."""

    def __init__(self, delay=0.0, event: threading.Event | None = None):
        self.calls = 0
        self.delay = delay
        self.event = event
        self._lock = threading.Lock()

    def __call__(self, store, ctx, params):
        with self._lock:
            self.calls += 1
        if self.event is not None:
            assert self.event.wait(timeout=30), "probe gate never opened"
        if self.delay:
            time.sleep(self.delay)
        return {"echo": dict(params), "calls": self.calls}


class TestQueryEngineBasics:
    @pytest.fixture(scope="class")
    def engine(self, summit_store_small):
        with QueryEngine(summit_store_small, max_workers=4) as engine:
            yield engine

    def test_unknown_query_is_typed(self, engine):
        with pytest.raises(UnknownQueryError, match="frobnicate"):
            engine.query("frobnicate")

    def test_unknown_param_is_typed(self, engine):
        with pytest.raises(ServeError, match="unknown parameter"):
            engine.query("table3", {"nope": 1})

    def test_non_scalar_param_is_typed(self, engine):
        with pytest.raises(ServeError, match="JSON scalar"):
            engine.query("advise_aggregation", {"top": [1, 2]})

    def test_list_matches_registry(self, engine):
        names = engine.query_names()
        for name in default_registry():
            assert name in names
        assert "stats" in names and "queries" in names

    def test_describe_covers_every_query(self, engine):
        described = engine.query("queries")["queries"]
        assert set(described) == set(engine.query_names())
        assert described["advise_aggregation"]["params"] == ["top"]

    def test_stats_shape(self, engine):
        engine.query("table2")
        stats = engine.query("stats")
        assert stats["store"]["platform"] == "summit"
        assert stats["pool"]["max_workers"] == 4
        assert stats["counters"]["requests"] >= 1
        assert 0.0 <= stats["rates"]["cache_hit"] <= 1.0

    def test_advise_params_reach_runner(self, engine):
        top = engine.query("advise_aggregation", {"top": 2})
        full = engine.query("advise_aggregation")
        assert len(top) == min(2, len(full))
        assert top == full[: len(top)]


class TestEquivalence:
    """Served results are byte-identical to direct analysis calls."""

    @pytest.mark.parametrize("name", sorted(default_registry()))
    def test_exhibit_identical_to_direct(self, summit_store_small, name):
        registry = default_registry()
        spec = registry[name]
        with QueryEngine(summit_store_small, max_workers=2) as engine:
            served = engine.query(name)
        # A pinned, empty context: the direct path recomputes from raw
        # rows rather than sharing the engine's memoized results.
        fresh = AnalysisContext(summit_store_small)
        direct = spec.run(summit_store_small, fresh, {})
        assert serialize_result(spec, served) == serialize_result(spec, direct)
        if spec.kind == "table":
            assert render_results(spec.title, spec.headers, served) == \
                render_results(spec.title, spec.headers, direct)

    def test_exhibit_names_are_the_cli_surface(self):
        assert "table2" in exhibit_names()
        assert "shapes" not in exhibit_names()  # serve-only, not tabular


class TestCoalescing:
    def test_identical_concurrent_queries_execute_once(self, summit_store_small):
        probe = _Probe(delay=0.25)
        with QueryEngine(
            summit_store_small, max_workers=8,
            extra_queries={"probe": _spec("probe", probe)},
        ) as engine:
            nclients = 8
            barrier = threading.Barrier(nclients)

            def client():
                barrier.wait()
                return engine.query("probe", timeout=30)

            with ThreadPoolExecutor(nclients) as pool:
                results = [f.result() for f in
                           [pool.submit(client) for _ in range(nclients)]]
            counters = engine.stats()["counters"]
        assert probe.calls == 1, "coalescer must collapse identical queries"
        assert all(r is results[0] for r in results), \
            "every coalesced caller gets the leader's result object"
        # Every non-leader either coalesced in flight or hit the cache.
        assert counters.get("coalesced", 0) + counters.get("cache_hits", 0) \
            == nclients - 1
        assert counters["executions"] == 1

    def test_distinct_params_do_not_coalesce(self, summit_store_small):
        probe = _Probe()
        with QueryEngine(
            summit_store_small, max_workers=4,
            extra_queries={"probe": _spec("probe", probe, params=("i",))},
        ) as engine:
            futures = [engine.submit("probe", {"i": i}) for i in range(3)]
            results = [f.result(timeout=30) for f in futures]
        assert probe.calls == 3
        assert [r["echo"]["i"] for r in results] == [0, 1, 2]


class TestCaching:
    def test_warm_is_10x_faster_than_cold(self, summit_store_small):
        # A deliberately slow (but deterministic) compute: cold pays the
        # 200 ms body, warm must come straight from the result cache.
        probe = _Probe(delay=0.2)
        with QueryEngine(
            summit_store_small, max_workers=2,
            extra_queries={"probe": _spec("probe", probe)},
        ) as engine:
            t0 = time.perf_counter()
            cold = engine.query("probe", timeout=30)
            cold_seconds = time.perf_counter() - t0
            t1 = time.perf_counter()
            warm = engine.query("probe", timeout=30)
            warm_seconds = time.perf_counter() - t1
        assert probe.calls == 1
        assert warm is cold
        assert cold_seconds >= 10 * warm_seconds, (cold_seconds, warm_seconds)

    def test_real_exhibit_hits_cache(self, summit_store_small):
        with QueryEngine(summit_store_small, max_workers=2) as engine:
            engine.query("table4")
            engine.query("table4")
            counters = engine.stats()["counters"]
        assert counters["cache_hits"] == 1
        assert counters["executions"] == 1

    def test_store_mutation_invalidates(self, summit_store_small):
        from repro.store.recordstore import RecordStore
        from repro.store.schema import FILE_DTYPE, JOB_DTYPE

        # A private copy: mutating the session-scoped store would poison
        # every other test's generation-keyed caches.
        store = RecordStore(
            summit_store_small.platform,
            summit_store_small.files.copy(),
            summit_store_small.jobs.copy(),
            domains=summit_store_small.domains,
            extensions=summit_store_small.extensions,
            scale=summit_store_small.scale,
        )
        probe = _Probe()
        with QueryEngine(
            store, max_workers=2,
            extra_queries={"probe": _spec("probe", probe)},
        ) as engine:
            engine.query("probe", timeout=30)
            engine.query("probe", timeout=30)
            assert probe.calls == 1
            store.extend(
                np.empty(0, dtype=FILE_DTYPE), np.empty(0, dtype=JOB_DTYPE)
            )
            engine.query("probe", timeout=30)
            assert probe.calls == 2, "generation bump must bust the cache"
            assert engine.stats()["store"]["generation"] == 1

    def test_lru_eviction(self, summit_store_small):
        probe = _Probe()
        with QueryEngine(
            summit_store_small, max_workers=1, cache_entries=2,
            extra_queries={"probe": _spec("probe", probe, params=("i",))},
        ) as engine:
            for i in (0, 1, 2):  # capacity 2: i=0 is evicted
                engine.query("probe", {"i": i}, timeout=30)
            engine.query("probe", {"i": 0}, timeout=30)
            info = engine.cache.info()
        assert probe.calls == 4
        assert info["evictions"] >= 2
        assert info["entries"] == 2


class TestBackpressure:
    def test_overload_sheds_with_typed_error(self, summit_store_small):
        gate = threading.Event()
        probe = _Probe(event=gate)
        with QueryEngine(
            summit_store_small, max_workers=1, max_queue=1,
            extra_queries={"probe": _spec("probe", probe, params=("i",))},
        ) as engine:
            # Fill the worker and the one queue slot with distinct keys.
            admitted = [engine.submit("probe", {"i": i}) for i in range(2)]
            shed = engine.submit("probe", {"i": 2})
            with pytest.raises(ServiceOverloadError, match="shed"):
                shed.result(timeout=5)
            assert engine.stats()["counters"]["rejected"] == 1
            # Shedding is not a death spiral: free the pool and the
            # admitted work (and new work) completes normally.
            gate.set()
            for f in admitted:
                f.result(timeout=30)
            assert engine.query("probe", {"i": 3}, timeout=30)["echo"] == {"i": 3}

    def test_coalesced_followers_of_shed_leader_fail_too(self, summit_store_small):
        gate = threading.Event()
        probe = _Probe(event=gate)
        with QueryEngine(
            summit_store_small, max_workers=1, max_queue=0,
            extra_queries={"probe": _spec("probe", probe, params=("i",))},
        ) as engine:
            blocker = engine.submit("probe", {"i": 0})
            shed_leader = engine.submit("probe", {"i": 1})
            shed_follower = engine.submit("probe", {"i": 1})
            for f in (shed_leader, shed_follower):
                with pytest.raises(ServiceOverloadError):
                    f.result(timeout=5)
            gate.set()
            blocker.result(timeout=30)
            # The shed key was un-tracked: a retry now succeeds.
            assert engine.query("probe", {"i": 1}, timeout=30)["echo"] == {"i": 1}

    def test_deadline_is_typed_and_compute_survives(self, summit_store_small):
        gate = threading.Event()
        probe = _Probe(event=gate)
        with QueryEngine(
            summit_store_small, max_workers=1,
            extra_queries={"probe": _spec("probe", probe)},
        ) as engine:
            with pytest.raises(QueryTimeoutError, match="deadline"):
                engine.query("probe", timeout=0.05)
            assert engine.stats()["counters"]["timeouts"] == 1
            gate.set()
            # The stray computation lands in the cache; the retry is warm.
            result = engine.query("probe", timeout=30)
            assert probe.calls == 1
            assert result["calls"] == 1


class TestMetricsPrimitives:
    def test_histogram_percentiles(self):
        hist = LatencyHistogram()
        for ms in range(1, 101):  # 1..100 ms
            hist.record(ms / 1e3)
        snap = hist.snapshot()
        assert snap["count"] == 100
        assert snap["p50_ms"] == pytest.approx(50.0)
        assert snap["p95_ms"] == pytest.approx(95.0)
        assert snap["p99_ms"] == pytest.approx(99.0)
        assert snap["max_ms"] == pytest.approx(100.0)

    def test_histogram_window_wraps(self):
        hist = LatencyHistogram(window=4)
        for s in (1.0, 2.0, 3.0, 4.0, 5.0, 6.0):
            hist.record(s)
        snap = hist.snapshot()
        assert snap["count"] == 6
        assert snap["max_ms"] == pytest.approx(6000.0)
        assert snap["p50_ms"] >= 3000.0  # only the newest 4 samples remain

    def test_counter_thread_safety(self):
        metrics = Metrics()
        counter = metrics.counter("hits")

        def spin():
            for _ in range(10_000):
                counter.inc()

        threads = [threading.Thread(target=spin) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 40_000

    def test_cache_disabled_at_zero(self):
        cache = ResultCache(0)
        cache.put("k", "v")
        hit, _ = cache.get("k")
        assert not hit
        assert cache.info()["entries"] == 0

    def test_validate_params_rejects_unknown(self):
        spec = _spec("q", lambda *a: None, params=("a",))
        assert validate_params(spec, {"a": 1}) == {"a": 1}
        with pytest.raises(ServeError):
            validate_params(spec, {"b": 1})


class TestContextThreadSafety:
    def test_concurrent_readers_share_one_compute(self, summit_store_small):
        """Hammer one fresh context from many threads; every derived
        array must come back as the same object (computed once)."""
        ctx = AnalysisContext(summit_store_small)
        barrier = threading.Barrier(8)

        def reader():
            barrier.wait()
            return (
                ctx.transfer_sizes(),
                ctx.opclass(),
                ctx.idx("unique", "shared"),
            )

        with ThreadPoolExecutor(8) as pool:
            outs = [f.result() for f in [pool.submit(reader) for _ in range(8)]]
        first = outs[0]
        for out in outs[1:]:
            for a, b in zip(first, out):
                assert a is b


class TestServerClient:
    @pytest.fixture(scope="class")
    def served(self, summit_store_small):
        engine = QueryEngine(summit_store_small, max_workers=4)
        with BackgroundServer(engine) as server:
            with ServeClient(port=server.port) as client:
                yield engine, client
        engine.close()

    def test_wire_result_matches_local_serialization(self, served, summit_store_small):
        engine, client = served
        spec = default_registry()["table3"]
        direct = spec.run(
            summit_store_small, AnalysisContext(summit_store_small), {}
        )
        assert client.query("table3") == serialize_result(spec, direct)

    def test_wire_errors_are_typed(self, served):
        _, client = served
        with pytest.raises(UnknownQueryError):
            client.query("frobnicate")
        with pytest.raises(ServeError):
            client.query("table3", {"bogus": True})

    def test_stats_and_listing_over_the_wire(self, served):
        _, client = served
        listing = client.list_queries()
        assert "table2" in listing and "stats" in listing
        stats = client.stats()
        assert stats["counters"]["requests"] >= 1
        assert stats["kind"] == "meta"

    def test_pipelined_requests_one_connection(self, served):
        _, client = served
        for name in ("table2", "table5", "fig6"):
            result = client.query(name)
            assert result["kind"] == "table" and result["rows"]

    def test_malformed_request_line(self, served):
        engine, client = served
        client._sock.sendall(b"this is not json\n")
        response = json.loads(client._reader.readline())
        assert response["ok"] is False
        assert response["error"]["type"] == "ServeError"
        # The connection survives malformed lines.
        assert client.query("table2")["kind"] == "table"

    def test_analysis_bug_becomes_error_response(self, summit_store_small):
        """A non-Repro exception in a runner must still answer the client.

        Regression: only ReproError was caught, so e.g. a KeyError from
        an analysis left the request task dead and the client hanging
        until its socket timeout.
        """
        def _explode(store, ctx, params):
            raise KeyError("no panel for layer='insystem'")

        broken = _spec("broken", _explode)
        engine = QueryEngine(
            summit_store_small, max_workers=2,
            extra_queries={"broken": broken},
        )
        with BackgroundServer(engine) as server:
            with ServeClient(port=server.port) as client:
                response = client.request("broken", timeout=30)
                assert response["ok"] is False
                assert response["error"]["type"] == "InternalError"
                assert "KeyError" in response["error"]["message"]
                with pytest.raises(ServeError, match="KeyError"):
                    client.query("broken")
                # The connection and engine survive the failure.
                assert client.query("table2")["kind"] == "table"
        engine.close()


class TestCli:
    def test_analyze_list_covers_registry(self, capsys):
        from repro.cli import main

        assert main(["analyze", "--list"]) == 0
        out = capsys.readouterr().out
        for name in default_registry():
            assert name in out

    def test_analyze_without_store_errors(self, capsys):
        from repro.cli import main

        assert main(["analyze"]) == 2
        assert "required" in capsys.readouterr().err

    def test_query_command_against_live_server(self, summit_store_small, capsys):
        from repro.cli import main

        engine = QueryEngine(summit_store_small, max_workers=2)
        with BackgroundServer(engine) as server:
            rc = main(["query", "table3", "--port", str(server.port)])
            assert rc == 0
            out = capsys.readouterr().out
            assert "Table 3" in out and "pfs" in out
            rc = main([
                "query", "advise_aggregation", "--port", str(server.port),
                "--params", '{"top": 3}', "--json",
            ])
            assert rc == 0
            payload = json.loads(capsys.readouterr().out)
            assert payload["kind"] == "advice"
            assert len(payload["items"]) <= 3
        engine.close()

"""Property-based tests for the extension modules (DXT, stdio_ext, cache)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.darshan.accumulate import OP_READ, OP_WRITE, make_ops
from repro.darshan.constants import ModuleId
from repro.darshan.dxt import SEGMENT_DTYPE, DxtTrace, decode_traces, encode_traces
from repro.darshan.stdio_ext import accumulate_stdio_ext
from repro.middleware.chunkcache import WriteBackChunkCache

write_stream = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=200_000),   # offset
        st.integers(min_value=0, max_value=10_000),    # size
    ),
    min_size=0,
    max_size=40,
)


def _ops_from(writes):
    n = len(writes)
    return make_ops(
        [OP_WRITE] * n,
        [o for o, _ in writes],
        [s for _, s in writes],
        np.arange(n, dtype=float),
        [0.001] * n,
    )


class TestRewriteStatsProperties:
    @given(write_stream)
    @settings(max_examples=80)
    def test_matches_bitmap_oracle(self, writes):
        """Interval sweep == brute-force byte bitmap."""
        ext = accumulate_stdio_ext(1, 0, _ops_from(writes))
        bitmap = np.zeros(220_000, dtype=bool)
        rewritten = first = 0
        for off, size in writes:
            if size == 0:
                continue
            seg = bitmap[off : off + size]
            overlap = int(seg.sum())
            rewritten += overlap
            first += size - overlap
            seg[:] = True
        assert ext.bytes_rewritten == rewritten
        assert ext.bytes_first_written == first
        assert ext.write_extent == int(bitmap.sum())

    @given(write_stream)
    @settings(max_examples=60)
    def test_conservation(self, writes):
        ext = accumulate_stdio_ext(1, 0, _ops_from(writes))
        total = sum(s for _, s in writes)
        assert ext.bytes_rewritten + ext.bytes_first_written == total
        assert ext.write_extent <= total
        assert 0.0 <= ext.rewrite_ratio <= 1.0
        assert ext.write_amplification() >= 1.0


class TestDxtProperties:
    segments = st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=7),          # rank
            st.sampled_from([OP_READ, OP_WRITE]),            # kind
            st.integers(min_value=0, max_value=10**9),       # offset
            st.integers(min_value=0, max_value=10**8),       # length
            st.floats(min_value=0, max_value=1e4, allow_nan=False),  # start
            st.floats(min_value=0, max_value=1e3, allow_nan=False),  # duration
        ),
        max_size=30,
    )

    @given(segments)
    @settings(max_examples=60)
    def test_round_trip(self, rows):
        seg = np.zeros(len(rows), dtype=SEGMENT_DTYPE)
        for i, (rank, kind, off, length, start, dur) in enumerate(rows):
            seg[i] = (rank, kind, off, length, start, start + dur)
        trace = DxtTrace(ModuleId.POSIX, 42, seg)
        (out,) = decode_traces(encode_traces([trace]))
        np.testing.assert_array_equal(out.segments, trace.segments)
        assert out.record_id == 42

    @given(segments)
    @settings(max_examples=60)
    def test_busy_time_bounds(self, rows):
        seg = np.zeros(len(rows), dtype=SEGMENT_DTYPE)
        for i, (rank, kind, off, length, start, dur) in enumerate(rows):
            seg[i] = (rank, kind, off, length, start, start + dur)
        trace = DxtTrace(ModuleId.POSIX, 1, seg)
        busy = trace.busy_time()
        durations = (seg["end"] - seg["start"]).sum()
        lo, hi = trace.span()
        assert busy <= durations + 1e-6
        assert busy <= (hi - lo) + 1e-6
        assert busy >= 0


class TestChunkCacheProperties:
    @given(
        write_stream,
        st.sampled_from([4096, 65536, 262144]),
        st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=60)
    def test_flushes_cover_all_written_chunks(self, writes, chunk, capacity):
        cache = WriteBackChunkCache(chunk_size=chunk, capacity_chunks=capacity)
        touched = set()
        for off, size in writes:
            cache.write(off, size)
            if size:
                touched.update(
                    range(off // chunk, (off + size - 1) // chunk + 1)
                )
        cache.flush()
        ops = cache.downstream_ops()
        flushed_chunks = set(int(o) // chunk for o in ops["offset"])
        assert touched <= flushed_chunks

    @given(write_stream)
    @settings(max_examples=40)
    def test_never_more_downstream_than_app_chunk_touches(self, writes):
        cache = WriteBackChunkCache(chunk_size=65536, capacity_chunks=8)
        chunk_touches = 0
        for off, size in writes:
            cache.write(off, size)
            if size:
                chunk_touches += (off + size - 1) // 65536 - off // 65536 + 1
        cache.flush()
        assert cache.stats.flushed_writes <= max(chunk_touches, 0)

    @given(write_stream)
    @settings(max_examples=40)
    def test_stats_consistent(self, writes):
        cache = WriteBackChunkCache(chunk_size=65536, capacity_chunks=8)
        for off, size in writes:
            cache.write(off, size)
        cache.flush()
        s = cache.stats
        assert s.app_bytes == sum(size for _, size in writes)
        assert s.app_writes == sum(1 for _, size in writes if size)
        assert s.flushed_bytes == s.flushed_writes * 65536

"""Tests for the bandwidth model — the mechanisms behind Figures 11/12."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.iosim.contention import ContentionModel
from repro.iosim.perfmodel import PerfModel, TransferSpec
from repro.platforms import cori, summit
from repro.platforms.interfaces import IOInterface
from repro.units import GB, KiB, MB, MiB


def spec_of(nbytes, req, nprocs=1, par=1, shared=False, collective=False, n=1):
    return TransferSpec(
        nbytes=np.full(n, nbytes, dtype=np.float64),
        request_size=np.full(n, req, dtype=np.float64),
        nprocs=np.full(n, nprocs, dtype=np.float64),
        file_parallelism=np.full(n, par, dtype=np.float64),
        shared=np.full(n, shared),
        collective=np.full(n, collective),
    )


@pytest.fixture()
def pm():
    return PerfModel(deterministic=True)


@pytest.fixture()
def alpine():
    return summit().pfs


@pytest.fixture()
def scnl():
    return summit().in_system


class TestMechanisms:
    def test_larger_requests_are_faster(self, pm, alpine, rng):
        slow = pm.sample_bandwidth(
            alpine, IOInterface.POSIX, "read", spec_of(1 * GB, 4 * KiB), rng
        )
        fast = pm.sample_bandwidth(
            alpine, IOInterface.POSIX, "read", spec_of(1 * GB, 16 * MiB), rng
        )
        assert fast[0] > slow[0] * 10

    def test_shared_parallelism_helps_posix(self, pm, alpine, rng):
        serial = pm.sample_bandwidth(
            alpine, IOInterface.POSIX, "read",
            spec_of(100 * GB, 1 * MiB, nprocs=256, par=64, shared=False), rng,
        )
        parallel = pm.sample_bandwidth(
            alpine, IOInterface.POSIX, "read",
            spec_of(100 * GB, 1 * MiB, nprocs=256, par=64, shared=True), rng,
        )
        assert parallel[0] > serial[0] * 2

    def test_stdio_never_parallel(self, pm, alpine, rng):
        solo = pm.sample_bandwidth(
            alpine, IOInterface.STDIO, "read",
            spec_of(100 * GB, 1 * MiB, nprocs=1, par=1, shared=False), rng,
        )
        shared = pm.sample_bandwidth(
            alpine, IOInterface.STDIO, "read",
            spec_of(100 * GB, 1 * MiB, nprocs=512, par=64, shared=True), rng,
        )
        assert shared[0] == pytest.approx(solo[0])

    def test_stdio_coalesces_small_requests(self, pm, alpine, rng):
        posix = pm.sample_bandwidth(
            alpine, IOInterface.POSIX, "read", spec_of(1 * GB, 100), rng
        )
        stdio = pm.sample_bandwidth(
            alpine, IOInterface.STDIO, "read", spec_of(1 * GB, 100), rng
        )
        # Tiny fscanf-style requests: buffering wins by orders of magnitude.
        assert stdio[0] > posix[0] * 50

    def test_collective_buffering(self, pm, alpine, rng):
        ind = pm.sample_bandwidth(
            alpine, IOInterface.MPIIO, "write",
            spec_of(10 * GB, 64 * KiB, nprocs=64, par=16, shared=True), rng,
        )
        coll = pm.sample_bandwidth(
            alpine, IOInterface.MPIIO, "write",
            spec_of(10 * GB, 64 * KiB, nprocs=64, par=16, shared=True, collective=True),
            rng,
        )
        assert coll[0] > ind[0]

    def test_job_share_ceiling(self, pm, alpine, rng):
        bw = pm.sample_bandwidth(
            alpine, IOInterface.POSIX, "read",
            spec_of(1e12, 16 * MiB, nprocs=10000, par=154, shared=True), rng,
        )
        assert bw[0] <= alpine.peak_read_bw * pm.job_share_fraction + 1

    def test_stdio_wins_scnl_writes_at_one_stream(self, pm, scnl, rng):
        """The Figure 11b SCNL 100MB-1GB write observation."""
        posix = pm.sample_bandwidth(
            scnl, IOInterface.POSIX, "write",
            spec_of(500 * MB, 64 * KiB, nprocs=12, par=4, shared=True), rng,
        )
        stdio = pm.sample_bandwidth(
            scnl, IOInterface.STDIO, "write",
            spec_of(500 * MB, 8 * KiB, nprocs=12, par=4, shared=True), rng,
        )
        assert stdio[0] > posix[0] * 0.9

    def test_posix_wins_scnl_reads(self, pm, scnl, rng):
        posix = pm.sample_bandwidth(
            scnl, IOInterface.POSIX, "read",
            spec_of(500 * MB, 64 * KiB, nprocs=12, par=4, shared=True), rng,
        )
        stdio = pm.sample_bandwidth(
            scnl, IOInterface.STDIO, "read",
            spec_of(500 * MB, 8 * KiB, nprocs=12, par=4, shared=True), rng,
        )
        assert posix[0] > stdio[0] * 1.5


class TestTransferTime:
    def test_time_is_bytes_over_bw(self, pm, alpine, rng):
        spec = spec_of(1 * GB, 1 * MiB)
        bw = pm.sample_bandwidth(alpine, IOInterface.POSIX, "read", spec, rng)
        t = pm.transfer_time(alpine, IOInterface.POSIX, "read", spec, rng)
        assert t[0] == pytest.approx(1 * GB / bw[0])

    def test_zero_bytes_zero_time(self, pm, alpine, rng):
        t = pm.transfer_time(
            alpine, IOInterface.POSIX, "read", spec_of(0, 1 * MiB), rng
        )
        assert t[0] == 0.0

    def test_single_transfer_time_deterministic(self, alpine):
        pm = PerfModel()
        a = pm.single_transfer_time(
            alpine, IOInterface.POSIX, "read", nbytes=10**9, request_size=2**20
        )
        b = pm.single_transfer_time(
            alpine, IOInterface.POSIX, "read", nbytes=10**9, request_size=2**20
        )
        assert a == b > 0

    def test_empty_spec(self, pm, alpine, rng):
        out = pm.sample_bandwidth(
            alpine, IOInterface.POSIX, "read", spec_of(1, 1, n=1)[:0]
            if False else TransferSpec(
                nbytes=np.empty(0), request_size=np.empty(0),
                nprocs=np.empty(0), file_parallelism=np.empty(0),
                shared=np.empty(0, dtype=bool),
            ),
            rng,
        )
        assert out.size == 0


class TestNoiseAndContention:
    def test_noise_spreads_but_preserves_order(self, alpine):
        pm = PerfModel()
        rng = np.random.default_rng(3)
        spec = spec_of(1 * GB, 1 * MiB, n=4000)
        bw = pm.sample_bandwidth(alpine, IOInterface.POSIX, "read", spec, rng)
        assert bw.std() > 0
        # Median should still be far below the deterministic ideal.
        det = PerfModel(deterministic=True).sample_bandwidth(
            alpine, IOInterface.POSIX, "read", spec_of(1 * GB, 1 * MiB),
            np.random.default_rng(0),
        )
        assert np.median(bw) < det[0]

    def test_bandwidth_floor(self, alpine):
        pm = PerfModel()
        rng = np.random.default_rng(3)
        bw = pm.sample_bandwidth(
            alpine, IOInterface.POSIX, "read", spec_of(1 * GB, 1, n=1000), rng
        )
        assert bw.min() >= pm.min_bandwidth


class TestContentionModel:
    def test_fractions_in_range(self, rng):
        cm = ContentionModel()
        frac = cm.sample(rng, 10_000)
        assert frac.min() >= cm.floor
        assert frac.max() <= 1.0

    def test_pfs_contends_harder(self, rng):
        pfs = ContentionModel.for_layer_kind("pfs")
        bb = ContentionModel.for_layer_kind("insystem")
        assert pfs.sample(rng, 20_000).mean() < bb.sample(rng, 20_000).mean()

    def test_time_of_day_shape(self, rng):
        cm = ContentionModel(diurnal_amplitude=0.3)
        tod = np.array([3 * 3600.0] * 5000 + [15 * 3600.0] * 5000)
        frac = cm.sample(rng, 10_000, time_of_day=tod)
        assert frac[:5000].mean() > frac[5000:].mean()  # nights are calmer

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ContentionModel(alpha=0)
        with pytest.raises(ConfigurationError):
            ContentionModel(floor=1.5)

    def test_bad_time_of_day_shape(self, rng):
        cm = ContentionModel()
        with pytest.raises(ValueError):
            cm.sample(rng, 5, time_of_day=np.zeros(3))


class TestValidation:
    def test_unknown_technology(self, pm, rng):
        from repro.platforms.storage import LayerKind, Locality, StorageLayer

        weird = StorageLayer(
            key="pfs", name="W", kind=LayerKind.PFS,
            locality=Locality.CENTER_WIDE, technology="TAPE",
            capacity_bytes=10**15, peak_read_bw=1e9, peak_write_bw=1e9,
            mount_point="/w",
        )
        with pytest.raises(ConfigurationError, match="TAPE"):
            pm.sample_bandwidth(weird, IOInterface.POSIX, "read", spec_of(1, 1), rng)

    def test_mismatched_spec_lengths(self):
        with pytest.raises(ConfigurationError):
            TransferSpec(
                nbytes=np.zeros(3), request_size=np.zeros(2),
                nprocs=np.zeros(3), file_parallelism=np.zeros(3),
                shared=np.zeros(3, dtype=bool),
            )

    def test_bad_direction(self, pm, alpine, rng):
        with pytest.raises(ValueError):
            pm.sample_bandwidth(
                alpine, IOInterface.POSIX, "sideways", spec_of(1, 1), rng
            )

"""Tests for the node-local (SCNL) store."""

import pytest

from repro.errors import SimulationError
from repro.iosim.nodelocal import NodeLocalStore


@pytest.fixture()
def store():
    return NodeLocalStore(node_count=8, per_node_capacity=1000)


class TestNamespaceLifecycle:
    def test_create_and_destroy(self, store):
        store.create_namespace(1, [0, 1, 2])
        assert store.job_parallelism(1) == 3
        assert store.destroy_namespace(1) == []
        with pytest.raises(SimulationError):
            store.job_parallelism(1)

    def test_duplicate_namespace(self, store):
        store.create_namespace(1, [0])
        with pytest.raises(SimulationError):
            store.create_namespace(1, [1])

    def test_bad_nodes(self, store):
        with pytest.raises(SimulationError):
            store.create_namespace(1, [])
        with pytest.raises(SimulationError):
            store.create_namespace(2, [99])
        with pytest.raises(SimulationError):
            store.create_namespace(3, [0, 0])

    def test_unstaged_files_are_lost(self, store):
        """The UnifyFS lifecycle: files vanish at namespace teardown."""
        store.create_namespace(1, [0, 1])
        store.write(1, "/tmp/a", 100, rank=0, nprocs=2)
        store.write(1, "/tmp/b", 100, rank=1, nprocs=2)
        lost = store.destroy_namespace(1)
        assert lost == ["/tmp/a", "/tmp/b"]
        assert store.total_used() == 0


class TestFileOps:
    def test_write_lands_on_rank_node(self, store):
        store.create_namespace(1, [3, 5])
        assert store.write(1, "/a", 10, rank=0, nprocs=4) == 3
        assert store.write(1, "/b", 10, rank=1, nprocs=4) == 5
        assert store.write(1, "/c", 10, rank=2, nprocs=4) == 3  # round robin

    def test_read_returns_size(self, store):
        store.create_namespace(1, [0])
        store.write(1, "/a", 123, rank=0, nprocs=1)
        assert store.read(1, "/a") == 123

    def test_read_missing(self, store):
        store.create_namespace(1, [0])
        with pytest.raises(SimulationError):
            store.read(1, "/nope")

    def test_overwrite_replaces(self, store):
        store.create_namespace(1, [0])
        store.write(1, "/a", 600, rank=0, nprocs=1)
        store.write(1, "/a", 700, rank=0, nprocs=1)  # rewrite fits
        assert store.node_used(0) == 700

    def test_capacity_enforced(self, store):
        store.create_namespace(1, [0])
        store.write(1, "/a", 900, rank=0, nprocs=1)
        with pytest.raises(SimulationError, match="capacity"):
            store.write(1, "/b", 200, rank=0, nprocs=1)

    def test_capacity_per_node_not_global(self, store):
        store.create_namespace(1, [0, 1])
        store.write(1, "/a", 900, rank=0, nprocs=2)
        # Rank 1 writes to node 1, which is empty.
        store.write(1, "/b", 900, rank=1, nprocs=2)

    def test_remove_frees(self, store):
        store.create_namespace(1, [0])
        store.write(1, "/a", 500, rank=0, nprocs=1)
        store.remove(1, "/a")
        assert store.node_used(0) == 0

    def test_files_listing(self, store):
        store.create_namespace(1, [0])
        store.write(1, "/a", 5, rank=0, nprocs=1)
        assert store.files(1) == {"/a": 5}

    def test_rank_validation(self, store):
        store.create_namespace(1, [0])
        with pytest.raises(SimulationError):
            store.write(1, "/a", 5, rank=9, nprocs=4)


class TestIsolation:
    def test_namespaces_do_not_share_files(self, store):
        store.create_namespace(1, [0])
        store.create_namespace(2, [1])
        store.write(1, "/a", 5, rank=0, nprocs=1)
        with pytest.raises(SimulationError):
            store.read(2, "/a")

"""Tests for the IOR-style benchmark runner."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.iosim.ior import IorConfig, probe_series, run_ior
from repro.iosim.perfmodel import PerfModel
from repro.platforms.interfaces import IOInterface
from repro.units import GiB, KiB, MiB


class TestIorConfig:
    def test_aggregate_bytes(self):
        cfg = IorConfig(tasks=8, block_size=256 * MiB, segment_count=2)
        assert cfg.aggregate_bytes == 8 * 256 * MiB * 2

    def test_file_size_shared_vs_fpp(self):
        shared = IorConfig(tasks=8, block_size=256 * MiB)
        fpp = IorConfig(tasks=8, block_size=256 * MiB, file_per_proc=True)
        assert shared.file_size == 8 * 256 * MiB
        assert fpp.file_size == 256 * MiB

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            IorConfig(tasks=0)
        with pytest.raises(ConfigurationError):
            IorConfig(transfer_size=3 * MiB, block_size=4 * MiB)


class TestRunIor:
    def test_deterministic_with_fixed_perf(self, summit_machine):
        perf = PerfModel(deterministic=True)
        cfg = IorConfig(tasks=64)
        a = run_ior(summit_machine, "pfs", cfg, "write", perf=perf)
        b = run_ior(summit_machine, "pfs", cfg, "write", perf=perf)
        assert a.bandwidth == b.bandwidth > 0

    def test_more_tasks_more_bandwidth(self, summit_machine):
        perf = PerfModel(deterministic=True)
        small = run_ior(
            summit_machine, "pfs",
            IorConfig(tasks=4, block_size=1 * GiB), "write", perf=perf,
        )
        large = run_ior(
            summit_machine, "pfs",
            IorConfig(tasks=256, block_size=1 * GiB), "write", perf=perf,
        )
        assert large.bandwidth > small.bandwidth

    def test_larger_transfers_beat_small(self, summit_machine):
        perf = PerfModel(deterministic=True)
        tiny = run_ior(
            summit_machine, "pfs",
            IorConfig(tasks=16, transfer_size=4 * KiB, block_size=64 * MiB),
            "read", perf=perf,
        )
        big = run_ior(
            summit_machine, "pfs",
            IorConfig(tasks=16, transfer_size=16 * MiB, block_size=64 * MiB),
            "read", perf=perf,
        )
        assert big.bandwidth > tiny.bandwidth * 3

    def test_collective_helps_small_transfers(self, summit_machine):
        perf = PerfModel(deterministic=True)
        base = IorConfig(
            api=IOInterface.MPIIO, tasks=64,
            transfer_size=64 * KiB, block_size=64 * MiB,
        )
        coll = IorConfig(
            api=IOInterface.MPIIO, tasks=64,
            transfer_size=64 * KiB, block_size=64 * MiB, collective=True,
        )
        a = run_ior(summit_machine, "pfs", base, "write", perf=perf)
        b = run_ior(summit_machine, "pfs", coll, "write", perf=perf)
        assert b.bandwidth > a.bandwidth

    def test_stdio_slower_than_posix(self, cori_machine):
        """Finding E, probed IOR-style on Lustre."""
        perf = PerfModel(deterministic=True)
        posix = run_ior(
            cori_machine, "pfs", IorConfig(api=IOInterface.POSIX, tasks=32),
            "read", perf=perf,
        )
        stdio = run_ior(
            cori_machine, "pfs", IorConfig(api=IOInterface.STDIO, tasks=32),
            "read", perf=perf,
        )
        assert posix.bandwidth > stdio.bandwidth * 2

    def test_bad_direction(self, summit_machine):
        with pytest.raises(ConfigurationError):
            run_ior(summit_machine, "pfs", IorConfig(), "sideways")


class TestProbeSeries:
    def test_diurnal_signal(self, summit_machine):
        cfg = IorConfig(tasks=64)
        night = probe_series(
            summit_machine, "pfs", cfg, "read",
            times_of_day=np.full(3000, 3 * 3600.0), seed=5,
        )
        afternoon = probe_series(
            summit_machine, "pfs", cfg, "read",
            times_of_day=np.full(3000, 15 * 3600.0), seed=5,
        )
        assert night.mean() > afternoon.mean()

    def test_empty_series(self, summit_machine):
        out = probe_series(
            summit_machine, "pfs", IorConfig(), "read",
            times_of_day=np.empty(0),
        )
        assert out.size == 0

    def test_series_is_positive(self, cori_machine):
        series = probe_series(
            cori_machine, "insystem", IorConfig(tasks=16), "write",
            times_of_day=np.arange(0, 86400, 1800.0),
        )
        assert (series > 0).all()

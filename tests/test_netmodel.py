"""Tests for the interconnect model and its perf-model integration."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.iosim.netmodel import (
    CORI_NETWORK,
    SUMMIT_NETWORK,
    InterconnectModel,
    Topology,
    network_for,
)
from repro.iosim.perfmodel import PerfModel, TransferSpec
from repro.platforms import summit
from repro.platforms.interfaces import IOInterface
from repro.units import GB, MiB


class TestInterconnectModel:
    def test_injection_scales_with_nodes(self):
        cap = SUMMIT_NETWORK.injection_cap(np.array([1, 2, 100]))
        assert cap[1] == 2 * cap[0]
        assert cap[2] == 100 * cap[0]

    def test_zero_nodes_clamped_to_one(self):
        cap = SUMMIT_NETWORK.injection_cap(np.array([0]))
        assert cap[0] == SUMMIT_NETWORK.injection_per_node

    def test_bisection_binds_wide_jobs(self):
        wide = SUMMIT_NETWORK.job_cap(np.array([100_000]))
        assert wide[0] < SUMMIT_NETWORK.injection_cap(np.array([100_000]))[0]
        assert wide[0] == pytest.approx(
            SUMMIT_NETWORK.bisection * SUMMIT_NETWORK.job_bisection_share
        )

    def test_dragonfly_taper(self):
        ft = InterconnectModel(Topology.FAT_TREE, 10 * GB, 1000 * GB)
        df = InterconnectModel(Topology.DRAGONFLY, 10 * GB, 1000 * GB)
        wide = np.array([10_000])
        assert df.job_cap(wide)[0] < ft.job_cap(wide)[0]

    def test_lookup(self):
        assert network_for("summit") is SUMMIT_NETWORK
        assert network_for("CORI") is CORI_NETWORK
        with pytest.raises(ConfigurationError):
            network_for("perlmutter")

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            InterconnectModel(Topology.FAT_TREE, 0, 1)
        with pytest.raises(ConfigurationError):
            InterconnectModel(Topology.FAT_TREE, 1, 1, job_bisection_share=0)
        with pytest.raises(ConfigurationError):
            SUMMIT_NETWORK.injection_cap(np.array([-1]))


class TestPerfModelIntegration:
    def _spec(self, nnodes):
        n = len(nnodes)
        return TransferSpec(
            nbytes=np.full(n, 1e12),
            request_size=np.full(n, 16 * MiB),
            nprocs=np.asarray(nnodes, dtype=np.float64) * 6,
            file_parallelism=np.full(n, 154.0),
            shared=np.ones(n, dtype=bool),
            nnodes=np.asarray(nnodes, dtype=np.float64),
        )

    def test_single_node_job_injection_limited(self):
        pm = PerfModel(deterministic=True, network=SUMMIT_NETWORK)
        rng = np.random.default_rng(0)
        bw = pm.sample_bandwidth(
            summit().pfs, IOInterface.POSIX, "read", self._spec([1, 512]), rng
        )
        assert bw[0] <= SUMMIT_NETWORK.injection_per_node
        assert bw[1] > bw[0]

    def test_node_local_layer_bypasses_fabric(self):
        """SCNL traffic never crosses the interconnect."""
        pm = PerfModel(deterministic=True, network=SUMMIT_NETWORK)
        rng = np.random.default_rng(0)
        scnl = summit().in_system
        with_net = pm.sample_bandwidth(
            scnl, IOInterface.POSIX, "read", self._spec([2]), rng
        )
        pm_off = PerfModel(deterministic=True)
        without = pm_off.sample_bandwidth(
            scnl, IOInterface.POSIX, "read", self._spec([2]), rng
        )
        assert with_net[0] == pytest.approx(without[0])

    def test_no_nnodes_means_no_cap(self):
        pm = PerfModel(deterministic=True, network=SUMMIT_NETWORK)
        rng = np.random.default_rng(0)
        spec = self._spec([1])
        uncapped_spec = TransferSpec(
            nbytes=spec.nbytes, request_size=spec.request_size,
            nprocs=spec.nprocs, file_parallelism=spec.file_parallelism,
            shared=spec.shared,
        )
        capped = pm.sample_bandwidth(
            summit().pfs, IOInterface.POSIX, "read", spec, rng
        )
        free = pm.sample_bandwidth(
            summit().pfs, IOInterface.POSIX, "read", uncapped_spec, rng
        )
        assert free[0] >= capped[0]

    def test_nnodes_length_validated(self):
        with pytest.raises(ConfigurationError):
            TransferSpec(
                nbytes=np.zeros(2), request_size=np.ones(2),
                nprocs=np.ones(2), file_parallelism=np.ones(2),
                shared=np.zeros(2, dtype=bool), nnodes=np.ones(3),
            )

"""Tests for repro.darshan.accumulate."""

import numpy as np
import pytest

from repro.darshan.accumulate import (
    OP_CLOSE,
    OP_FLUSH,
    OP_OPEN,
    OP_READ,
    OP_SEEK,
    OP_WRITE,
    accumulate,
    make_ops,
    merge_shared,
)
from repro.darshan.constants import ModuleId


def _simple_ops():
    # open, 2 consecutive reads, 1 backward read, write, close
    return make_ops(
        kinds=[OP_OPEN, OP_READ, OP_READ, OP_READ, OP_WRITE, OP_CLOSE],
        offsets=[0, 0, 4096, 0, 0, 0],
        sizes=[0, 4096, 4096, 100, 999, 0],
        starts=[0.0, 1.0, 2.0, 3.0, 4.0, 5.0],
        durations=[0.01, 0.5, 0.5, 0.1, 0.2, 0.01],
    )


class TestPosixAccumulation:
    def test_counts_and_bytes(self):
        rec = accumulate(ModuleId.POSIX, 1, 0, _simple_ops())
        assert rec["OPENS"] == 1
        assert rec["READS"] == 3
        assert rec["WRITES"] == 1
        assert rec.bytes_read == 4096 * 2 + 100
        assert rec.bytes_written == 999

    def test_sequentiality(self):
        rec = accumulate(ModuleId.POSIX, 1, 0, _simple_ops())
        # read2 follows read1 exactly (consecutive+sequential);
        # read3 jumps back (neither).
        assert rec["CONSEC_READS"] == 1
        assert rec["SEQ_READS"] == 1

    def test_rw_switches(self):
        ops = make_ops(
            [OP_READ, OP_WRITE, OP_READ], [0, 0, 0], [10, 10, 10],
            [0.0, 1.0, 2.0], [0.1, 0.1, 0.1],
        )
        rec = accumulate(ModuleId.POSIX, 1, 0, ops)
        assert rec["RW_SWITCHES"] == 2

    def test_histogram_matches_counts(self):
        rec = accumulate(ModuleId.POSIX, 1, 0, _simple_ops())
        assert rec["SIZE_READ_1K_10K"] == 2
        assert rec["SIZE_READ_100_1K"] == 1
        assert rec["SIZE_WRITE_100_1K"] == 1

    def test_max_byte(self):
        rec = accumulate(ModuleId.POSIX, 1, 0, _simple_ops())
        assert rec["MAX_BYTE_READ"] == 8191
        assert rec["MAX_BYTE_WRITTEN"] == 998

    def test_timers(self):
        rec = accumulate(ModuleId.POSIX, 1, 0, _simple_ops())
        assert rec.read_time == pytest.approx(1.1)
        assert rec.write_time == pytest.approx(0.2)
        assert rec["F_META_TIME"] == pytest.approx(0.02)

    def test_timestamps(self):
        rec = accumulate(ModuleId.POSIX, 1, 0, _simple_ops())
        assert rec["F_OPEN_START_TIMESTAMP"] == 0.0
        assert rec["F_READ_START_TIMESTAMP"] == 1.0
        assert rec["F_WRITE_START_TIMESTAMP"] == 4.0
        assert rec["F_CLOSE_END_TIMESTAMP"] == pytest.approx(5.01)


class TestStdioAccumulation:
    def test_flushes_and_no_histogram(self):
        ops = make_ops(
            [OP_OPEN, OP_WRITE, OP_FLUSH, OP_CLOSE],
            [0, 0, 0, 0], [0, 100, 0, 0],
            [0.0, 1.0, 2.0, 3.0], [0.0, 0.1, 0.05, 0.0],
        )
        rec = accumulate(ModuleId.STDIO, 7, 2, ops)
        assert rec["FLUSHES"] == 1
        assert rec.bytes_written == 100
        with pytest.raises(KeyError):
            rec.get("SIZE_WRITE_100_1K")


class TestMpiioAccumulation:
    def test_collective_vs_independent(self):
        ops = make_ops(
            [OP_OPEN, OP_READ, OP_WRITE],
            [0, 0, 0], [0, 1024, 1024],
            [0.0, 1.0, 2.0], [0.0, 0.1, 0.1],
        )
        coll = accumulate(ModuleId.MPIIO, 1, -1, ops, collective=True)
        ind = accumulate(ModuleId.MPIIO, 1, -1, ops, collective=False)
        assert coll["COLL_READS"] == 1 and coll["INDEP_READS"] == 0
        assert ind["INDEP_READS"] == 1 and ind["COLL_READS"] == 0


class TestValidationOfInputs:
    def test_unsorted_batch_rejected(self):
        ops = make_ops([OP_READ, OP_READ], [0, 0], [1, 1], [2.0, 1.0], [0.1, 0.1])
        with pytest.raises(ValueError, match="sorted"):
            accumulate(ModuleId.POSIX, 1, 0, ops)

    def test_lustre_rejected(self):
        with pytest.raises(ValueError):
            accumulate(ModuleId.LUSTRE, 1, 0, _simple_ops())

    def test_negative_sizes_rejected_at_make(self):
        with pytest.raises(ValueError):
            make_ops([OP_READ], [0], [-5], [0.0], [0.1])

    def test_wrong_dtype_rejected(self):
        with pytest.raises(TypeError):
            accumulate(ModuleId.POSIX, 1, 0, np.zeros(3))


class TestMergeShared:
    def _rank_record(self, rank, nbytes, t):
        ops = make_ops(
            [OP_OPEN, OP_READ, OP_CLOSE], [0, 0, 0], [0, nbytes, 0],
            [t, t + 1, t + 2], [0.01, 0.5, 0.01],
        )
        return accumulate(ModuleId.POSIX, 99, rank, ops)

    def test_sums_and_extrema(self):
        # Timestamps start at 0.5: 0.0 is Darshan's "unset" sentinel and
        # merge_shared deliberately skips it when taking extrema.
        records = [
            self._rank_record(r, 1000 * (r + 1), r + 0.5) for r in range(4)
        ]
        merged = merge_shared(records)
        assert merged.rank == -1
        assert merged.bytes_read == 1000 + 2000 + 3000 + 4000
        assert merged.read_time == pytest.approx(0.5 * 4)
        # first open across ranks / last close across ranks
        assert merged["F_OPEN_START_TIMESTAMP"] == 0.5
        assert merged["F_CLOSE_END_TIMESTAMP"] == pytest.approx(3.5 + 2 + 0.01)

    def test_rejects_mixed_files(self):
        a = self._rank_record(0, 10, 0.0)
        b = accumulate(ModuleId.POSIX, 100, 1, _simple_ops())
        with pytest.raises(ValueError):
            merge_shared([a, b])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            merge_shared([])

"""Unit coverage for the NDJSON stream package.

Codec round trips and typed rejection, tail-reader offset discipline,
checkpoint persistence, ingestor id-space remapping, the follow loop's
stop conditions, and the ``repro ingest`` CLI (subprocess, resume
included). The cross-layer correctness story — streamed stores
bit-identical to batch-built ones under randomized schedules — lives in
``test_stream_equivalence.py``.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.darshan.constants import ModuleId
from repro.darshan.log import DarshanLog
from repro.darshan.records import FileRecord, JobRecord, NameRecord
from repro.errors import CheckpointError, LogFormatError, StreamError
from repro.platforms import summit
from repro.store.ingest import ingest_logs
from repro.store.recordstore import RecordStore
from repro.store.schema import empty_files, empty_jobs
from repro.stream import (
    FollowStats,
    LogTailReader,
    StreamCheckpoint,
    StreamIngestor,
    dump_line,
    follow,
    ingest_stream,
    log_from_json,
    log_to_json,
    parse_line,
)
from repro.workloads.domains import domain_catalog

pytestmark = pytest.mark.stream


def make_log(job_id=3, nfiles=4, ext="x", domain="biology"):
    job = JobRecord(
        job_id, 7, 8, 0.0, 60.0, platform="summit", domain=domain,
        metadata={"nnodes": "2"},
    )
    log = DarshanLog(job)
    for i in range(nfiles):
        rid = 50 + i
        log.register_name(
            NameRecord(rid, f"/gpfs/alpine/f{i}.{ext}", "/gpfs/alpine", "pfs")
        )
        rec = FileRecord(ModuleId.POSIX, rid)
        rec.set("BYTES_READ", 4096 * (i + 1))
        rec.set("READS", i + 1)
        rec.set("SIZE_READ_1K_10K", i + 1)
        rec.set("F_READ_TIME", 0.5)
        log.add_record(rec)
    return log


def make_store(platform="summit", scale=1.0):
    return RecordStore(
        platform, empty_files(0), empty_jobs(0),
        domains=domain_catalog(platform), scale=scale,
    )


def write_stream(path, logs):
    with open(path, "w") as fh:
        for log in logs:
            fh.write(dump_line(log))
    return os.path.getsize(path)


class TestFormat:
    def test_round_trip_preserves_wire_dict(self):
        log = make_log()
        back = parse_line(dump_line(log))
        assert log_to_json(back) == log_to_json(log)
        assert back.total_bytes() == log.total_bytes()

    def test_dump_line_framing(self):
        line = dump_line(make_log())
        assert line.endswith("\n")
        assert line.count("\n") == 1  # newline is the record terminator
        assert line.isascii()

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda o: o.pop("job"),
            lambda o: o.pop("names"),
            lambda o: o.pop("records"),
            lambda o: o["job"].pop("job_id"),
            lambda o: o["job"].__setitem__("job_id", "7"),
            lambda o: o["job"].__setitem__("job_id", True),
            lambda o: o["job"].__setitem__("job_id", -1),
            lambda o: o["job"].__setitem__("job_id", 2**70),
            lambda o: o["job"].__setitem__("nprocs", 0),
            lambda o: o["job"].__setitem__("end_time", -1.0),
            lambda o: o["job"].__setitem__("metadata", {"a": 1}),
            lambda o: o["names"].__setitem__(0, "not-a-dict"),
            lambda o: o["names"][0].__setitem__("id", 2**65),
            lambda o: o["records"][0].__setitem__("module", "DXT_POSIX"),
            lambda o: o["records"][0].__setitem__("rank", -2),
            lambda o: o["records"][0].__setitem__("counters", [1, 2, 3]),
            lambda o: o["records"][0].__setitem__("counters", ["x"] * 73),
            lambda o: o["records"][0].__setitem__("id", 10**6),  # no name
        ],
        ids=[
            "no-job", "no-names", "no-records", "missing-key", "str-int",
            "bool-int", "negative-id", "overflow-id", "zero-nprocs",
            "time-order", "metadata-type", "name-not-dict", "name-id-range",
            "unknown-module", "bad-rank", "counter-shape", "counter-type",
            "unregistered-name",
        ],
    )
    def test_malformed_objects_raise_typed(self, mutate):
        obj = log_to_json(make_log())
        mutate(obj)
        with pytest.raises(LogFormatError):
            log_from_json(obj)

    @pytest.mark.parametrize(
        "line",
        [b"{not json}", b"[1,2,3]", b'"scalar"', b"\xff\xfe\x00"],
        ids=["bad-json", "non-object", "scalar", "bad-utf8"],
    )
    def test_malformed_lines_raise_typed(self, line):
        with pytest.raises(LogFormatError):
            parse_line(line)


class TestCheckpoint:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "c.json")
        StreamCheckpoint("s.ndjson", 123, 4).save(path)
        back = StreamCheckpoint.load(path)
        assert back == StreamCheckpoint("s.ndjson", 123, 4)
        assert not os.path.exists(path + ".tmp")  # atomic replace

    def test_missing_is_typed(self, tmp_path):
        with pytest.raises(CheckpointError):
            StreamCheckpoint.load(str(tmp_path / "nope.json"))

    @pytest.mark.parametrize(
        "payload",
        [
            "not json", "[]", '{"stream": "s"}',
            '{"stream": 3, "offset": 0, "logs": 0}',
            '{"stream": "s", "offset": -1, "logs": 0}',
            '{"stream": "s", "offset": true, "logs": 0}',
            '{"stream": "s", "offset": 1.5, "logs": 0}',
        ],
        ids=["garbage", "non-dict", "missing", "stream-type", "negative",
             "bool-offset", "float-offset"],
    )
    def test_malformed_is_typed(self, tmp_path, payload):
        path = str(tmp_path / "c.json")
        with open(path, "w") as fh:
            fh.write(payload)
        with pytest.raises(CheckpointError):
            StreamCheckpoint.load(path)


class TestReader:
    def test_partial_tail_left_unconsumed(self, tmp_path):
        path = str(tmp_path / "s.ndjson")
        full = dump_line(make_log(job_id=1))
        partial = dump_line(make_log(job_id=2))[:-20]
        with open(path, "w") as fh:
            fh.write(full + partial)
        reader = LogTailReader(path)
        logs = reader.poll()
        assert [lg.job.job_id for lg in logs] == [1]
        assert reader.offset == len(full)  # not past the half-written line
        # The writer finishes the record: the next poll picks it up.
        with open(path, "a") as fh:
            fh.write(dump_line(make_log(job_id=2))[len(partial):])
        assert [lg.job.job_id for lg in reader.poll()] == [2]
        assert reader.poll() == []

    def test_blank_separator_lines_are_legal(self, tmp_path):
        path = str(tmp_path / "s.ndjson")
        with open(path, "w") as fh:
            fh.write("\n" + dump_line(make_log(job_id=1)) + "\n\n"
                     + dump_line(make_log(job_id=2)))
        reader = LogTailReader(path)
        assert [lg.job.job_id for lg in reader.poll()] == [1, 2]

    def test_max_logs_is_checkpoint_exact(self, tmp_path):
        path = str(tmp_path / "s.ndjson")
        lines = [dump_line(make_log(job_id=i)) for i in range(5)]
        write_stream(path, [make_log(job_id=i) for i in range(5)])
        reader = LogTailReader(path)
        assert len(reader.poll(max_logs=2)) == 2
        assert reader.offset == len(lines[0]) + len(lines[1])
        # A fresh reader from that offset sees exactly the rest.
        rest = LogTailReader(path, offset=reader.offset).poll()
        assert [lg.job.job_id for lg in rest] == [2, 3, 4]

    def test_final_truncated_tail_raises(self, tmp_path):
        path = str(tmp_path / "s.ndjson")
        with open(path, "w") as fh:
            fh.write(dump_line(make_log())[:-5])
        with pytest.raises(LogFormatError, match="truncated record"):
            LogTailReader(path).poll(final=True)

    def test_final_truncated_tail_skips(self, tmp_path):
        path = str(tmp_path / "s.ndjson")
        with open(path, "w") as fh:
            fh.write(dump_line(make_log(job_id=1)) + dump_line(make_log())[:-5])
        reader = LogTailReader(path, on_error="skip")
        logs = reader.poll(final=True)
        assert [lg.job.job_id for lg in logs] == [1]
        assert reader.skipped == 1 and reader.last_error is not None
        assert reader.offset == os.path.getsize(path)

    def test_raise_policy_does_not_advance_past_bad_line(self, tmp_path):
        path = str(tmp_path / "s.ndjson")
        good = dump_line(make_log(job_id=1))
        with open(path, "w") as fh:
            fh.write(good + "{garbled}\n" + dump_line(make_log(job_id=2)))
        reader = LogTailReader(path)
        # Parsed records ahead of the bad line are delivered, not lost.
        assert [lg.job.job_id for lg in reader.poll()] == [1]
        assert reader.offset == len(good)  # parked on the bad line
        with pytest.raises(LogFormatError, match="offset"):
            reader.poll()
        assert reader.offset == len(good)  # a retry sees the same bytes

    def test_skip_policy_consumes_and_counts(self, tmp_path):
        path = str(tmp_path / "s.ndjson")
        with open(path, "w") as fh:
            fh.write(dump_line(make_log(job_id=1)) + "{garbled}\n"
                     + dump_line(make_log(job_id=2)))
        reader = LogTailReader(path, on_error="skip")
        assert [lg.job.job_id for lg in reader.poll()] == [1, 2]
        assert reader.skipped == 1

    def test_shrunk_stream_is_typed(self, tmp_path):
        path = str(tmp_path / "s.ndjson")
        write_stream(path, [make_log()])
        with pytest.raises(StreamError, match="shrank"):
            LogTailReader(path, offset=10**6).poll()

    def test_missing_stream_is_typed(self, tmp_path):
        with pytest.raises(StreamError, match="cannot read"):
            LogTailReader(str(tmp_path / "nope")).poll()

    @pytest.mark.parametrize("kwargs", [{"on_error": "ignore"}, {"offset": -1}])
    def test_bad_construction_is_typed(self, tmp_path, kwargs):
        with pytest.raises(StreamError):
            LogTailReader(str(tmp_path / "s"), **kwargs)


class TestIngestor:
    def test_empty_apply_is_noop(self):
        store = make_store()
        ing = StreamIngestor(store, summit().mount_table())
        gen = store.generation
        assert ing.apply([]) == 0
        assert store.generation == gen and ing.logs_applied == 0

    def test_log_ids_continue_across_batches(self):
        store = make_store()
        ing = StreamIngestor(store, summit().mount_table())
        ing.apply([make_log(job_id=1), make_log(job_id=2)])
        ing.apply([make_log(job_id=3)])
        assert ing.logs_applied == 3
        assert sorted(np.unique(store.files["log_id"])) == [0, 1, 2]
        # A new ingestor over the same store resumes the id space.
        assert StreamIngestor(store, summit().mount_table()).logs_applied == 3

    def test_extension_catalog_unions_first_seen(self):
        store = make_store()
        ing = StreamIngestor(store, summit().mount_table())
        ing.apply([make_log(job_id=1, ext="h5")])
        ing.apply([make_log(job_id=2, ext="dat"), make_log(job_id=3, ext="h5")])
        assert store.extensions == ("h5", "dat")
        batch = ingest_logs(
            [make_log(job_id=1, ext="h5"), make_log(job_id=2, ext="dat"),
             make_log(job_id=3, ext="h5")],
            "summit", summit().mount_table(), domains=store.domains,
        )
        np.testing.assert_array_equal(store.files["ext"], batch.files["ext"])

    def test_checkpoint_mismatch_is_typed(self):
        store = make_store()
        ing = StreamIngestor(store, summit().mount_table())
        ing.apply([make_log()])
        with pytest.raises(CheckpointError, match="refusing"):
            ing.verify_checkpoint(StreamCheckpoint("s", 0, 0))
        ing.verify_checkpoint(StreamCheckpoint("s", 10, 1))  # consistent


class TestFollow:
    def test_batching_stats_and_callback(self, tmp_path):
        path = str(tmp_path / "s.ndjson")
        write_stream(path, [make_log(job_id=i) for i in range(5)])
        store = make_store()
        generations = []
        stats = follow(
            LogTailReader(path),
            StreamIngestor(store, summit().mount_table()),
            batch_logs=2, final=True,
            on_append=lambda s: generations.append(s.generation),
        )
        assert stats == FollowStats(
            batches=3, logs=5, rows=len(store.files), skipped=0,
            offset=os.path.getsize(path),
        )
        assert generations == [store.generation - 2, store.generation - 1,
                               store.generation]

    def test_max_batches_stops_early(self, tmp_path):
        path = str(tmp_path / "s.ndjson")
        write_stream(path, [make_log(job_id=i) for i in range(5)])
        store = make_store()
        stats = follow(
            LogTailReader(path),
            StreamIngestor(store, summit().mount_table()),
            batch_logs=2, max_batches=1, final=True,
        )
        assert stats.batches == 1 and stats.logs == 2

    def test_idle_polls_exit(self, tmp_path):
        path = str(tmp_path / "s.ndjson")
        write_stream(path, [make_log()])
        store = make_store()
        stats = follow(
            LogTailReader(path),
            StreamIngestor(store, summit().mount_table()),
            poll_interval=0.0, idle_polls=2,
        )
        assert stats.batches == 1 and stats.logs == 1

    def test_checkpoint_written_per_batch(self, tmp_path):
        path = str(tmp_path / "s.ndjson")
        ckpt = str(tmp_path / "c.json")
        write_stream(path, [make_log(job_id=i) for i in range(4)])
        store = make_store()
        follow(
            LogTailReader(path),
            StreamIngestor(store, summit().mount_table()),
            batch_logs=2, final=True, checkpoint_path=ckpt,
        )
        back = StreamCheckpoint.load(ckpt)
        assert back.offset == os.path.getsize(path) and back.logs == 4


class TestIngestStream:
    def test_resume_from_checkpoint(self, tmp_path):
        path = str(tmp_path / "s.ndjson")
        ckpt = str(tmp_path / "c.json")
        mounts = summit().mount_table()
        logs = [make_log(job_id=i) for i in range(6)]
        write_stream(path, logs[:4])
        store = make_store()
        first = ingest_stream(path, store, mounts, checkpoint_path=ckpt)
        assert first.logs == 4
        write_stream(path, logs)  # file grows by two records
        second = ingest_stream(path, store, mounts, checkpoint_path=ckpt)
        assert second.logs == 2  # only the new tail, no replay
        reference = make_store()
        StreamIngestor(reference, mounts).apply(logs)
        np.testing.assert_array_equal(store.files, reference.files)
        np.testing.assert_array_equal(store.jobs, reference.jobs)

    def test_stale_checkpoint_replay_is_rejected(self, tmp_path):
        path = str(tmp_path / "s.ndjson")
        ckpt = str(tmp_path / "c.json")
        mounts = summit().mount_table()
        write_stream(path, [make_log(job_id=i) for i in range(3)])
        store = make_store()
        ingest_stream(path, store, mounts, checkpoint_path=ckpt)
        StreamCheckpoint(path, 0, 0).save(ckpt)  # duplicate-offset replay
        before = store.files.copy()
        with pytest.raises(CheckpointError, match="refusing"):
            ingest_stream(path, store, mounts, checkpoint_path=ckpt)
        np.testing.assert_array_equal(store.files, before)  # untouched

    def test_checkpoint_for_other_stream_is_rejected(self, tmp_path):
        path = str(tmp_path / "s.ndjson")
        ckpt = str(tmp_path / "c.json")
        write_stream(path, [make_log()])
        StreamCheckpoint(str(tmp_path / "other.ndjson"), 0, 0).save(ckpt)
        with pytest.raises(CheckpointError, match="tracks stream"):
            ingest_stream(path, make_store(), summit().mount_table(),
                          checkpoint_path=ckpt)


def _run_cli(*argv, cwd):
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True, text=True, cwd=str(cwd),
    )


class TestIngestCli:
    def test_create_resume_and_analyze(self, tmp_path):
        logs = [make_log(job_id=i) for i in range(6)]
        write_stream(tmp_path / "s.ndjson", logs[:4])
        out = _run_cli(
            "ingest", "s.ndjson", "--store", "y.npz", "--platform", "summit",
            "--checkpoint", "y.ckpt", cwd=tmp_path,
        )
        assert out.returncode == 0, out.stderr
        assert "ingested 4 logs" in out.stdout
        write_stream(tmp_path / "s.ndjson", logs)
        out = _run_cli(
            "ingest", "s.ndjson", "--store", "y.npz",
            "--checkpoint", "y.ckpt", cwd=tmp_path,
        )
        assert out.returncode == 0, out.stderr
        assert "ingested 2 logs" in out.stdout
        out = _run_cli(
            "analyze", "y.npz", "--exhibit", "table3", cwd=tmp_path
        )
        assert out.returncode == 0, out.stderr
        assert "Table 3" in out.stdout

    def test_skip_policy_reports_skipped(self, tmp_path):
        with open(tmp_path / "s.ndjson", "w") as fh:
            fh.write(dump_line(make_log(job_id=1)) + "{garbled}\n"
                     + dump_line(make_log(job_id=2)))
        out = _run_cli(
            "ingest", "s.ndjson", "--store", "y.npz", "--on-error", "skip",
            cwd=tmp_path,
        )
        assert out.returncode == 0, out.stderr
        assert "ingested 2 logs" in out.stdout
        assert "1 lines skipped" in out.stdout

    def test_raise_policy_fails_on_garbled_line(self, tmp_path):
        with open(tmp_path / "s.ndjson", "w") as fh:
            fh.write("{garbled}\n")
        out = _run_cli(
            "ingest", "s.ndjson", "--store", "y.npz", cwd=tmp_path
        )
        assert out.returncode != 0
        assert "LogFormatError" in out.stderr

"""Tests for the tuning-trajectory analysis (§5 future work)."""

import numpy as np
import pytest

from repro.analysis.tuning import TuningReport, _spearman, tuning_report
from repro.errors import AnalysisError
from repro.store.recordstore import RecordStore
from repro.store.schema import LAYER_PFS, empty_files, empty_jobs


def _store_with_trajectory(request_sizes_per_job, user_id=10):
    """One user, one POSIX file per job, chosen mean request sizes."""
    njobs = len(request_sizes_per_job)
    jobs = empty_jobs(njobs)
    files = empty_files(njobs)
    for i, req in enumerate(request_sizes_per_job):
        jobs[i] = (i + 1, user_id, 1, 4, -1, 100.0, float(i * 1000), 1, 0)
        files["job_id"][i] = i + 1
        files["log_id"][i] = (i + 1) << 20
        files["user_id"][i] = user_id
        files["record_id"][i] = i + 1
        files["layer"][i] = LAYER_PFS
        files["interface"][i] = 1  # POSIX
        files["bytes_read"][i] = req * 10
        files["read_time"][i] = 1.0
        files["reads"][i] = 10
    return RecordStore("summit", files, jobs)


class TestSpearman:
    def test_perfect_monotone(self):
        x = np.arange(10, dtype=float)
        assert _spearman(x, x * 3 + 1) == pytest.approx(1.0)
        assert _spearman(x, -x) == pytest.approx(-1.0)

    def test_constant_is_nan(self):
        x = np.arange(5, dtype=float)
        assert np.isnan(_spearman(x, np.ones(5)))

    def test_short_is_nan(self):
        assert np.isnan(_spearman(np.arange(2.0), np.arange(2.0)))


class TestTuningReport:
    def test_improving_user_detected(self):
        store = _store_with_trajectory([1000, 2000, 8000, 64_000, 256_000])
        report = tuning_report(store, min_jobs=5)
        assert len(report.trajectories) == 1
        assert report.trajectories[0].classification == "improving"
        assert report.fraction("improving") == 1.0

    def test_regressing_user_detected(self):
        store = _store_with_trajectory([256_000, 64_000, 8_000, 2_000, 1_000])
        report = tuning_report(store, min_jobs=5)
        assert report.trajectories[0].classification == "regressing"

    def test_flat_user(self):
        store = _store_with_trajectory([4096, 4100, 4080, 4095, 4099, 4085])
        report = tuning_report(store, min_jobs=5)
        assert report.trajectories[0].classification == "flat"

    def test_min_jobs_filter(self):
        store = _store_with_trajectory([1000, 2000, 3000])
        assert tuning_report(store, min_jobs=5).trajectories == ()
        with pytest.raises(AnalysisError):
            tuning_report(store, min_jobs=2)

    def test_generated_population_mostly_flat(self, cori_store_small):
        """The paper's suspicion: production users don't tune. Our
        generator draws each job's profile independently of history, so
        the detector must read 'flat' for the bulk of users."""
        report = tuning_report(cori_store_small, min_jobs=5)
        assert report.trajectories, "need users with >= 5 jobs"
        assert report.fraction("flat") > 0.5

    def test_rows_render(self, cori_store_small):
        rows = tuning_report(cori_store_small).to_rows()
        assert rows[0][0] == "cori"
        assert len(rows[0]) == 5

    def test_empty_report(self):
        report = TuningReport("summit", ())
        assert np.isnan(report.fraction("flat"))

"""Tests for the calibration-report regression net."""

import pytest

from repro.core.calibration import (
    CalibrationRow,
    calibration_report,
    miscalibrated,
)


class TestCalibrationRow:
    def test_ratio_and_within(self):
        row = CalibrationRow("x", 100.0, 150.0)
        assert row.ratio == 1.5
        assert row.within(2.0)
        assert not row.within(1.2)

    def test_zero_target(self):
        row = CalibrationRow("x", 0.0, 5.0)
        assert not row.within(10.0)


class TestCalibrationReport:
    @pytest.mark.parametrize("fixture", ["summit_store_small", "cori_store_small"])
    def test_generator_stays_calibrated(self, fixture, request):
        """The regression net: every calibrated marginal within 3x of the
        paper (most are far closer — see EXPERIMENTS.md)."""
        store = request.getfixturevalue(fixture)
        rows = calibration_report(store)
        assert len(rows) >= 15
        bad = miscalibrated(rows, factor=3.0)
        assert not bad, "; ".join(
            f"{r.quantity}: target {r.target:.3g} measured {r.measured:.3g}"
            for r in bad
        )

    def test_tight_marginals(self, cori_store_small):
        """The directly-pinned marginals (jobs, layer file counts) sit
        within ~40% of the paper, not just within 3x."""
        rows = {r.quantity: r for r in calibration_report(cori_store_small)}
        for q in ("jobs", "insystem files", "pfs files"):
            assert rows[q].within(1.6), (q, rows[q].ratio)

    def test_detects_decalibration(self, cori_store_small):
        """Halving the scale metadata doubles every extrapolation — the
        net must catch a synthetic 8x distortion."""
        from repro.store.recordstore import RecordStore

        distorted = RecordStore(
            cori_store_small.platform,
            cori_store_small.files,
            cori_store_small.jobs,
            domains=cori_store_small.domains,
            extensions=cori_store_small.extensions,
            scale=cori_store_small.scale * 8,
        )
        bad = miscalibrated(calibration_report(distorted), factor=3.0)
        assert bad

"""Tests for EASY backfill."""

import numpy as np
import pytest

from repro.errors import SchedulerError
from repro.scheduler.backfill import EasyBackfillScheduler
from repro.scheduler.batch import BatchScheduler
from repro.scheduler.job import JobSpec


def job(job_id, nnodes, runtime, submit):
    return JobSpec(
        job_id=job_id, user_id=1, project="p", domain="physics",
        nnodes=nnodes, nprocs=nnodes * 4, runtime=float(runtime),
        submit_time=float(submit),
    )


def by_id(scheduled):
    return {s.spec.job_id: s for s in scheduled}


class TestEasyBasics:
    def test_empty_machine_starts_immediately(self):
        sched = EasyBackfillScheduler(total_nodes=10)
        out = by_id(sched.schedule([job(1, 4, 100, 5)]))
        assert out[1].start_time == 5.0

    def test_too_wide_rejected(self):
        with pytest.raises(SchedulerError):
            EasyBackfillScheduler(total_nodes=4).schedule([job(1, 5, 10, 0)])

    def test_walltime_factor_validation(self):
        with pytest.raises(SchedulerError):
            EasyBackfillScheduler(10, walltime_factor=0.5)


class TestBackfillBehaviour:
    def _drain_scenario(self):
        # Node pool 10. j1 occupies 6 nodes until t=100. j2 (8 nodes)
        # queues at t=10 and must wait for j1. j3 (2 nodes, 50s) arrives
        # at t=20: FCFS makes it wait behind j2; EASY backfills it into
        # the 4 idle nodes because it ends (t=70) before j2's reserved
        # start (t=100).
        return [
            job(1, 6, 100, 0),
            job(2, 8, 100, 10),
            job(3, 2, 50, 20),
        ]

    def test_easy_backfills_where_fcfs_waits(self):
        jobs = self._drain_scenario()
        fcfs = by_id(BatchScheduler(10).schedule(jobs))
        easy = by_id(EasyBackfillScheduler(10).schedule(jobs))
        assert fcfs[3].start_time >= 100.0  # behind the wide job
        assert easy[3].start_time == 20.0   # backfilled immediately

    def test_head_never_delayed(self):
        jobs = self._drain_scenario()
        fcfs = by_id(BatchScheduler(10).schedule(jobs))
        easy = by_id(EasyBackfillScheduler(10).schedule(jobs))
        assert easy[2].start_time <= fcfs[2].start_time

    def test_backfill_refused_when_it_would_delay_head(self):
        # j3 runs 200s: it would overlap j2's reserved start on nodes j2
        # needs (8 of 10), so EASY must hold it.
        jobs = [job(1, 6, 100, 0), job(2, 8, 100, 10), job(3, 4, 200, 20)]
        easy = by_id(EasyBackfillScheduler(10).schedule(jobs))
        assert easy[2].start_time == pytest.approx(100.0)
        assert easy[3].start_time >= 100.0

    def test_narrow_long_job_can_coexist_with_head(self):
        # 2-node 300s job fits beside the 8-node head on a 10-node pool.
        jobs = [job(1, 6, 100, 0), job(2, 8, 100, 10), job(3, 2, 300, 20)]
        easy = by_id(EasyBackfillScheduler(10).schedule(jobs))
        assert easy[3].start_time == 20.0
        assert easy[2].start_time == pytest.approx(100.0)

    def test_all_jobs_scheduled(self):
        rng = np.random.default_rng(3)
        jobs = [
            job(i, int(rng.integers(1, 8)), int(rng.integers(10, 500)),
                float(rng.integers(0, 1000)))
            for i in range(1, 101)
        ]
        out = EasyBackfillScheduler(8).schedule(jobs)
        assert len(out) == 100
        for s in out:
            assert s.start_time >= s.spec.submit_time

    def test_capacity_never_exceeded(self):
        rng = np.random.default_rng(4)
        jobs = [
            job(i, int(rng.integers(1, 10)), int(rng.integers(10, 300)),
                float(rng.integers(0, 500)))
            for i in range(1, 81)
        ]
        out = EasyBackfillScheduler(12).schedule(jobs)
        events = []
        for s in out:
            events.append((s.start_time, s.spec.nnodes))
            events.append((s.end_time, -s.spec.nnodes))
        used = 0
        # Releases before starts at equal timestamps (negative delta first).
        for _, delta in sorted(events, key=lambda e: (e[0], e[1])):
            used += delta
            assert used <= 12

    def test_easy_improves_mean_wait_under_congestion(self):
        rng = np.random.default_rng(5)
        jobs = [
            job(i, int(rng.choice([1, 2, 12])), int(rng.integers(50, 400)),
                float(i * 5))
            for i in range(1, 121)
        ]
        fcfs = BatchScheduler(16).schedule(jobs)
        easy = EasyBackfillScheduler(16).schedule(jobs)
        fcfs_wait = np.mean([s.wait_time for s in fcfs])
        easy_wait = np.mean([s.wait_time for s in easy])
        assert easy_wait < fcfs_wait

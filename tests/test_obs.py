"""The span-tracing subsystem: tracer semantics, export formats,
zero-cost-when-disabled guarantees, and the cross-layer integration
points (generator shards, analysis entry points, the serving engine,
and the CLI ``--trace`` flag)."""

from __future__ import annotations

import json
import pickle
import sys

import pytest

from repro.obs import (
    SpanRecord,
    SpanStore,
    Tracer,
    analysis_span,
    get_tracer,
    set_tracer,
    to_chrome,
    trace_event,
    trace_span,
    traced,
    write_trace,
)
from repro.obs.clock import ns_to_ms, ns_to_s, perf_ns, wall_anchor_ns
from repro.obs.export import chrome_events, ndjson_lines
from repro.obs.spans import PHASE_EVENT, PHASE_SPAN
from repro.obs.tracer import _NOOP


@pytest.fixture()
def tracer():
    """An installed tracer, always uninstalled afterwards."""
    t = Tracer()
    previous = set_tracer(t)
    try:
        yield t
    finally:
        set_tracer(previous)


@pytest.fixture(autouse=True)
def _no_leaked_tracer():
    yield
    assert get_tracer() is None, "a test leaked an active tracer"


# -- tracer semantics ---------------------------------------------------------
class TestTracer:
    def test_span_records_name_cat_duration(self, tracer):
        with trace_span("unit.work", "unit") as sp:
            sp.add(items=3)
        (rec,) = tracer.records()
        assert rec.name == "unit.work"
        assert rec.cat == "unit"
        assert rec.phase == PHASE_SPAN
        assert rec.dur_ns >= 0
        assert rec.args == {"items": 3}

    def test_nesting_depth_is_explicit(self, tracer):
        with trace_span("outer"):
            with trace_span("inner"):
                pass
        by_name = {r.name: r for r in tracer.records()}
        assert by_name["outer"].depth == 0
        assert by_name["inner"].depth == 1
        # Children finish first, but start inside the parent window.
        outer, inner = by_name["outer"], by_name["inner"]
        assert outer.start_ns <= inner.start_ns
        assert inner.start_ns + inner.dur_ns <= outer.start_ns + outer.dur_ns

    def test_exception_marks_span_and_propagates(self, tracer):
        with pytest.raises(ValueError):
            with trace_span("unit.fails"):
                raise ValueError("boom")
        (rec,) = tracer.records()
        assert rec.args["error"] == "ValueError: boom"

    def test_event_is_instant(self, tracer):
        trace_event("unit.tick", "unit", n=1)
        (rec,) = tracer.records()
        assert rec.phase == PHASE_EVENT
        assert rec.dur_ns == 0
        assert rec.args == {"n": 1}

    def test_traced_decorator(self, tracer):
        @traced("unit.fn", "unit")
        def double(x):
            return 2 * x

        assert double(21) == 42
        assert [r.name for r in tracer.records()] == ["unit.fn"]

    def test_record_bypasses_stack(self, tracer):
        start = perf_ns()
        tracer.record("async.op", "serve", start, 1234, ok=True)
        (rec,) = tracer.records()
        assert rec.dur_ns == 1234
        assert rec.depth == 0
        assert rec.start_ns == tracer.anchor_ns + start

    def test_wall_anchored_timestamps(self, tracer):
        import time

        before = time.time_ns()
        with trace_span("unit.now"):
            pass
        after = time.time_ns()
        (rec,) = tracer.records()
        assert before <= rec.start_ns <= after

    def test_set_tracer_returns_previous(self):
        a, b = Tracer(), Tracer()
        assert set_tracer(a) is None
        assert set_tracer(b) is a
        assert set_tracer(None) is b


class TestSpanStore:
    def test_ring_is_bounded_newest_wins(self):
        store = SpanStore(4)
        for i in range(10):
            store.add(SpanRecord(f"s{i}", "", 1, i, 1, 0, PHASE_SPAN, None))
        assert len(store) == 4
        assert store.total == 10
        assert store.dropped == 6
        assert [r.name for r in store.records()] == ["s6", "s7", "s8", "s9"]

    def test_records_are_picklable(self):
        rec = SpanRecord("a.b", "a", 1, 100, 50, 2, PHASE_SPAN, {"k": 1})
        clone = pickle.loads(pickle.dumps(rec))
        assert (clone.name, clone.tid, clone.start_ns, clone.dur_ns,
                clone.depth, clone.args) == ("a.b", 1, 100, 50, 2, {"k": 1})

    def test_clock_converters(self):
        assert ns_to_s(2_000_000_000) == 2.0
        assert ns_to_ms(1_500_000) == 1.5
        # The anchor is "wall time of perf_counter zero": adding a fresh
        # perf reading must land near the current wall clock.
        import time

        now = wall_anchor_ns() + perf_ns()
        assert abs(now - time.time_ns()) < 5_000_000_000


# -- disabled-path guarantees -------------------------------------------------
class TestDisabled:
    def test_trace_span_returns_shared_noop(self):
        assert get_tracer() is None
        assert trace_span("x", "y") is _NOOP
        assert trace_span("other") is _NOOP
        with trace_span("x") as sp:
            assert sp is None

    def test_analysis_span_disabled_is_noop(self):
        assert analysis_span("table2", None) is _NOOP

    def test_disabled_hot_path_allocates_nothing(self):
        """The analysis/ingest hot-path idiom must be allocation-free
        when tracing is off: sys.getallocatedblocks must not grow over
        a warm loop of span entries, attribute guards, and events."""

        def hot_iteration():
            with trace_span("analysis.table3", "analysis") as sp:
                if sp is not None:
                    sp.add(rows=1)
            with analysis_span("table3", None):
                pass
            trace_event("serve.cache_hit", "serve")

        for _ in range(256):  # warm up: caches, bytecode specialization
            hot_iteration()
        before = sys.getallocatedblocks()
        for _ in range(2048):
            hot_iteration()
        grown = sys.getallocatedblocks() - before
        # Interpreter internals may retain a handful of blocks; any
        # per-iteration allocation would show up as >= 2048.
        assert grown <= 8, f"disabled tracing allocated {grown} blocks"


# -- export -------------------------------------------------------------------
class TestExport:
    def _populated(self):
        tracer = Tracer()
        previous = set_tracer(tracer)
        try:
            with trace_span("outer", "unit") as sp:
                sp.add(k="v")
                with trace_span("inner", "unit"):
                    pass
            trace_event("tick", "unit")
        finally:
            set_tracer(previous)
        return tracer

    def test_chrome_events_required_keys(self):
        tracer = self._populated()
        events = chrome_events(tracer)
        meta = [e for e in events if e["ph"] == "M"]
        spans = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        assert len(spans) == 2 and len(instants) == 1
        assert {m["name"] for m in meta} == {"process_name", "thread_name"}
        for e in spans:
            assert set(e) >= {"name", "cat", "ph", "ts", "dur", "pid", "tid",
                              "args"}
            assert isinstance(e["ts"], float) and isinstance(e["dur"], float)
        for e in instants:
            assert e["s"] == "t" and "dur" not in e

    def test_chrome_document_is_json_round_trippable(self, tmp_path):
        tracer = self._populated()
        path = tmp_path / "trace.json"
        write_trace(str(path), tracer)
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"]["producer"] == "repro.obs"
        assert doc["otherData"]["spans"] == 3
        names = {e["name"] for e in doc["traceEvents"]}
        assert {"outer", "inner", "tick"} <= names

    def test_ndjson_by_suffix(self, tmp_path):
        tracer = self._populated()
        path = tmp_path / "trace.ndjson"
        write_trace(str(path), tracer)
        lines = path.read_text().splitlines()
        assert len(lines) == 3
        rows = [json.loads(line) for line in lines]
        assert {r["name"] for r in rows} == {"outer", "inner", "tick"}
        for r in rows:
            assert set(r) == {"name", "cat", "phase", "thread", "tid",
                              "depth", "start_ns", "dur_ns", "args"}

    def test_ndjson_document_order(self):
        tracer = self._populated()
        rows = [json.loads(line) for line in ndjson_lines(tracer)]
        # Document order: outer (starts first, longer) before inner.
        assert [r["name"] for r in rows[:2]] == ["outer", "inner"]

    def test_numpy_attrs_are_jsonable(self):
        import numpy as np

        tracer = Tracer()
        with tracer.span("np", "unit", rows=np.int64(7), frac=np.float64(0.5)):
            pass
        doc = to_chrome(tracer)
        json.dumps(doc)  # must not raise
        (span,) = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert span["args"] == {"rows": 7, "frac": 0.5}


# -- pipeline integration -----------------------------------------------------
class TestPipelineSpans:
    def test_serial_generation_spans(self, tracer):
        from repro.api import generate_store

        generate_store("summit", scale=2e-4, seed=7)
        names = {r.name for r in tracer.records()}
        assert {"workloads.generate", "workloads.sample_jobs",
                "workloads.assemble", "workloads.shadows"} <= names

    @pytest.mark.parallel
    def test_sharded_generation_adopts_worker_spans(self):
        from repro.api import generate_store

        tracer = Tracer()
        previous = set_tracer(tracer)
        try:
            traced_store = generate_store("summit", scale=2e-4, seed=7, jobs=4)
        finally:
            set_tracer(previous)
        untraced = generate_store("summit", scale=2e-4, seed=7, jobs=4)

        names = {r.name for r in tracer.records()}
        assert {"parallel.run", "store.merge", "workloads.shard"} <= names

        # Every shard surfaces as its own named track, and worker spans
        # keep their nesting depth through the pickle round trip.
        tracks = set(tracer.thread_names.values())
        for shard in range(4):
            assert any(t.startswith(f"shard{shard}:") for t in tracks)
        shard_spans = [r for r in tracer.records()
                       if r.name == "workloads.shard"]
        assert len(shard_spans) == 4
        assert all(r.depth == 0 for r in shard_spans)
        assembles = [r for r in tracer.records()
                     if r.name == "workloads.assemble"]
        assert len(assembles) == 4
        assert all(r.depth == 1 for r in assembles)

        # Tracing must not perturb the deterministic pipeline.
        import numpy as np

        assert np.array_equal(traced_store.files, untraced.files)
        assert np.array_equal(traced_store.jobs, untraced.jobs)

    def test_ingest_spans(self, tracer, tmp_path, cori_machine):
        from repro.darshan.format import write_log
        from repro.instrument import LogMaterializer
        from repro.store.ingest import ingest_log_paths
        from repro.workloads.generator import (
            GeneratorConfig,
            WorkloadGenerator,
            generate_with_shadows,
        )

        gen = WorkloadGenerator("cori", GeneratorConfig(scale=5e-5))
        store = generate_with_shadows(gen, 7)
        mat = LogMaterializer(cori_machine, store)
        paths = []
        for i, log in enumerate(mat.materialize_many(4)):
            path = tmp_path / f"log{i:03d}.darshan"
            write_log(log, str(path))
            paths.append(str(path))
        ingest_log_paths(
            paths, "cori", cori_machine.mount_table(), domains=store.domains
        )
        names = {r.name for r in tracer.records()}
        assert {"ingest.paths", "ingest.logs"} <= names

    def test_analysis_span_cache_attrs(self, tracer):
        from repro.api import generate_store, run_query

        # A private store: the session fixtures' shared analysis
        # contexts are warm by the time this test runs, and the cold
        # pass below needs genuinely cold memos.
        store = generate_store("summit", scale=2e-4, seed=7)
        run_query(store, "table3")
        run_query(store, "table3")
        spans = [r for r in tracer.records() if r.name == "analysis.table3"]
        assert len(spans) == 2
        cold, warm = spans
        assert cold.args["cache_misses"] > 0
        assert warm.args["cache_hits"] > 0
        assert warm.args["cache_misses"] == 0

    def test_engine_spans_and_events(self, tracer, summit_store_small):
        from repro.serve import QueryEngine

        with QueryEngine(summit_store_small, max_workers=2) as engine:
            engine.query("table2")
            engine.query("table2")  # second hit comes from the cache
        records = tracer.records()
        executes = [r for r in records if r.name == "serve.execute"]
        assert len(executes) == 1
        assert executes[0].args["query"] == "table2"
        hits = [r for r in records if r.name == "serve.cache_hit"]
        assert len(hits) == 1 and hits[0].phase == PHASE_EVENT
        # The engine span nests the per-entry-point analysis span.
        analysis = [r for r in records if r.name == "analysis.table2"]
        assert len(analysis) == 1
        assert analysis[0].depth == executes[0].depth + 1

    def test_server_records_request_spans(self, tracer, summit_store_small):
        from repro.serve import QueryEngine
        from repro.serve.client import ServeClient
        from repro.serve.server import BackgroundServer

        with QueryEngine(summit_store_small, max_workers=2) as engine:
            with BackgroundServer(engine) as server:
                with ServeClient(port=server.port) as client:
                    result = client.query("table2")
        assert result["kind"] == "table"
        requests = [r for r in tracer.records() if r.name == "serve.request"]
        assert len(requests) == 1
        assert requests[0].args == {"query": "table2", "ok": True}


# -- CLI ----------------------------------------------------------------------
class TestCliTrace:
    def _load(self, path):
        doc = json.loads(path.read_text())
        assert get_tracer() is None, "--trace must uninstall its tracer"
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        for e in spans:
            assert set(e) >= {"name", "cat", "ph", "ts", "dur", "pid", "tid"}
        return doc, spans

    def test_study_trace_covers_generate_and_every_entry_point(
        self, tmp_path, capsys
    ):
        from repro.cli import main

        path = tmp_path / "study.json"
        assert main(["study", "--platform", "summit", "--scale", "2e-4",
                     "--trace", str(path)]) == 0
        capsys.readouterr()
        _, spans = self._load(path)
        names = {e["name"] for e in spans}
        assert "cli.study" in names
        assert "workloads.generate" in names
        expected = {f"analysis.{n}" for n in
                    ("table2", "table3", "table4", "table5", "table6",
                     "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
                     "fig9", "fig10", "fig11_12")}
        assert expected <= names

    @pytest.mark.parallel
    def test_sharded_generate_trace_covers_all_shards(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "year.npz"
        path = tmp_path / "gen.json"
        assert main(["generate", "--platform", "summit", "--scale", "2e-4",
                     "--jobs", "3", "--out", str(out),
                     "--trace", str(path)]) == 0
        capsys.readouterr()
        doc, spans = self._load(path)
        tracks = {e["args"]["name"] for e in doc["traceEvents"]
                  if e["ph"] == "M" and e["name"] == "thread_name"}
        for shard in range(3):
            assert any(t.startswith(f"shard{shard}:") for t in tracks)
        names = {e["name"] for e in spans}
        assert {"cli.generate", "parallel.run", "workloads.shard",
                "store.merge"} <= names
        # Worker spans keep parent/child nesting: each shard's assemble
        # sits inside its shard span on the same track.
        by_track = {}
        for e in spans:
            by_track.setdefault(e["tid"], []).append(e)
        shard_tids = [tid for tid, name_ in
                      ((e["tid"], e["args"]["name"]) for e in doc["traceEvents"]
                       if e["ph"] == "M" and e["name"] == "thread_name")
                      if name_.startswith("shard")]
        for tid in shard_tids:
            track = {e["name"]: e for e in by_track[tid]}
            shard, assemble = track["workloads.shard"], track["workloads.assemble"]
            assert shard["ts"] <= assemble["ts"]
            assert (assemble["ts"] + assemble["dur"]
                    <= shard["ts"] + shard["dur"] + 1e-3)

    def test_trace_failure_still_writes(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "fail.json"
        with pytest.raises(Exception):
            main(["analyze", str(tmp_path / "missing.npz"),
                  "--exhibit", "table3", "--trace", str(path)])
        capsys.readouterr()
        doc, spans = self._load(path)
        (root,) = [e for e in spans if e["name"] == "cli.analyze"]
        assert "error" in root["args"]

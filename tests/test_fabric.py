"""Shard-fabric tests: shm hand-off, pickle budget, leak-proof cleanup.

The zero-copy contract has three enforceable edges: (1) only headers
cross the pool pipe — the pickled shard result stays under a fixed
byte budget no matter how many rows the shard produced; (2) every
shared-memory segment is unlinked by the time a sharded call returns,
on success *and* on failure (a worker raising, a reduce raising); (3)
the planner helpers behind the fan-out keep their determinism-bearing
edge cases. ``/dev/shm`` is inspected directly where the platform has
one, so a leak cannot hide behind the module's own bookkeeping.
"""

from __future__ import annotations

import os
import pickle

import numpy as np
import pytest

from repro import fabric, parallel
from repro.errors import ConfigurationError, ShardError
from repro.parallel import (
    contiguous_row_ranges,
    contiguous_shards,
    resolve_jobs,
    run_sharded,
    usable_cores,
)
from repro.store.recordstore import RecordStore
from repro.store.schema import empty_files, empty_jobs

pytestmark = pytest.mark.parallel

#: Upper bound on the pickled per-shard result crossing the pool pipe
#: when shm hand-off is active: a StoreRef (catalog names + table
#: headers), not row bytes. Intentionally far below the smallest real
#: shard payload (a 10k-row shard pickles to ~2.6 MB).
PIPE_BUDGET = 16 * 1024


def _shm_entries() -> list[str]:
    if not os.path.isdir("/dev/shm"):  # pragma: no cover - non-Linux
        return []
    return [n for n in os.listdir("/dev/shm") if fabric.SEGMENT_PREFIX in n]


def _make_store(nrows: int) -> RecordStore:
    files = empty_files(nrows)
    files["job_id"] = np.arange(nrows) % 7
    files["bytes_read"] = np.arange(nrows, dtype=np.int64) * 3
    files["rank"] = np.where(np.arange(nrows) % 5 == 0, -1, 0)
    jobs = empty_jobs(7)
    jobs["job_id"] = np.arange(7)
    jobs["nprocs"] = 16
    return RecordStore("summit", files, jobs, scale=1.0)


def _store_shard(payload) -> RecordStore:
    """Pool worker: build a shard store, or fail on request."""
    if payload == "boom":
        raise ValueError("injected shard failure")
    return _make_store(int(payload))


def _concat_reduce(shards):
    return RecordStore.concat(shards)


def _boom_reduce(shards):
    raise RuntimeError("injected reduce failure")


@pytest.fixture(autouse=True)
def _no_leaks():
    """Every test must leave the segment registry and /dev/shm clean."""
    yield
    assert fabric.live_segments() == ()
    assert _shm_entries() == []


class TestExportImport:
    def test_tables_round_trip(self):
        arrays = [
            np.arange(1000, dtype=np.int64),
            np.linspace(0, 1, 33).reshape(11, 3),
            np.zeros(0, dtype=np.float32),
        ]
        ref = fabric.export_tables(arrays)
        views, shm = fabric.import_tables(ref)
        try:
            for a, v in zip(arrays, views):
                assert v.dtype == a.dtype and v.shape == a.shape
                np.testing.assert_array_equal(v, a)
        finally:
            fabric.release(shm)

    def test_structured_store_round_trip(self):
        store = _make_store(500)
        ref = fabric.export_store(store)
        out, shm = fabric.import_store(ref)
        try:
            np.testing.assert_array_equal(out.files, store.files)
            np.testing.assert_array_equal(out.jobs, store.jobs)
            assert out.platform == store.platform
            assert out.scale == store.scale
        finally:
            fabric.release(shm)

    def test_release_unlinks_even_when_close_is_blocked(self):
        """Unlink-before-close: a pinned buffer cannot turn into a leak.

        A raw memoryview slice holds a live buffer export, so the
        ``close()`` inside ``release`` raises ``BufferError`` — but the
        name must already be unlinked by then. (numpy views do *not*
        pin the mapping: ``np.ndarray(buffer=...)`` drops its buffer
        export after construction, so ``close()`` silently unmaps under
        them — which is why callers must copy before release, and why
        this test pins with a memoryview instead of an array.)
        """
        ref = fabric.export_tables([np.arange(64)])
        views, shm = fabric.import_tables(ref)
        del views
        pin = shm.buf[:8]
        fabric.release(shm)  # close blocked by the pin; unlink was first
        assert fabric.live_segments() == ()
        assert _shm_entries() == []
        pin.release()
        shm.close()  # now unmappable; the name is already gone

    def test_arena_round_trip(self):
        arena = fabric.Arena(np.int32, (100,))
        try:
            arena.spec.open()[25:50] = 7  # the worker-side write path
            fabric.drop_cached(arena.spec.name)
            assert arena.view()[25:50].sum() == 7 * 25
        finally:
            arena.close()


class TestPipeBudget:
    def test_encoded_shard_result_pickles_small(self):
        """Regression guard: only headers cross the pipe with shm on."""
        task = (_store_shard, 0, 200_000, False, True)
        status, shard_id, value, records = parallel._invoke(task)
        try:
            assert status == "ok"
            assert isinstance(value, fabric.StoreRef)
            blob = pickle.dumps((status, shard_id, value, records))
            assert len(blob) < PIPE_BUDGET, len(blob)
            # And the bytes it replaced really were payload-sized.
            assert _make_store(200_000).files.nbytes > 100 * PIPE_BUDGET
        finally:
            fabric.unlink_by_name(value.tables.name)


class TestShardedCleanup:
    def test_success_path_unlinks_everything(self):
        merged = run_sharded(
            _store_shard, [100, 200, 300], jobs=2, shm=True,
            reduce=_concat_reduce,
        )
        assert len(merged.files) == 600
        # reduce copied: the merged store must not alias dead shm.
        assert int(merged.files["bytes_read"][50]) == 150

    def test_failing_shard_unlinks_survivors(self):
        with pytest.raises(ShardError) as err:
            run_sharded(
                _store_shard, [100, "boom", 300], jobs=2, shm=True,
                reduce=_concat_reduce,
            )
        assert "injected shard failure" in str(err.value)

    def test_failing_reduce_unlinks_everything(self):
        with pytest.raises(RuntimeError):
            run_sharded(
                _store_shard, [100, 200], jobs=2, shm=True,
                reduce=_boom_reduce,
            )

    def test_shm_requires_reduce(self):
        with pytest.raises(ConfigurationError):
            run_sharded(_store_shard, [10, 10], jobs=2, shm=True)

    def test_inline_path_skips_shm(self):
        out = run_sharded(
            _store_shard, [50, 60], jobs=1, shm=True, reduce=list
        )
        assert [len(s.files) for s in out] == [50, 60]


class TestResolveJobs:
    def test_zero_means_usable_cores(self):
        assert resolve_jobs(0) == usable_cores()

    def test_usable_cores_prefers_affinity_mask(self, monkeypatch):
        """Under CPU pinning, jobs=0 sizes to the allocation, not the box."""
        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {0, 3}, raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 64)
        assert usable_cores() == 2
        assert resolve_jobs(0) == 2

    def test_usable_cores_falls_back_without_affinity_api(self, monkeypatch):
        monkeypatch.delattr(os, "sched_getaffinity", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 5)
        assert usable_cores() == 5

    def test_resolve_jobs_zero_without_affinity_api(self, monkeypatch):
        """jobs=0 on macOS/Windows (no sched_getaffinity) must size to
        os.cpu_count(), not crash with AttributeError."""
        monkeypatch.delattr(os, "sched_getaffinity", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 7)
        assert resolve_jobs(0) == 7

    def test_resolve_jobs_zero_cpu_count_unknown(self, monkeypatch):
        """Even cpu_count() == None (containers, exotic kernels) must
        resolve to one worker rather than zero."""
        monkeypatch.delattr(os, "sched_getaffinity", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: None)
        assert resolve_jobs(0) == 1

    def test_validation(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(3) == 3
        with pytest.raises(ConfigurationError):
            resolve_jobs(-1)
        with pytest.raises(ConfigurationError):
            resolve_jobs(True)
        with pytest.raises(ConfigurationError):
            resolve_jobs(2.0)


class TestContiguousShards:
    def test_all_zero_costs_split_by_count(self):
        slices = contiguous_shards([0, 0, 0, 0, 0, 0], 3)
        assert [s.start for s in slices] == [0, 2, 4]
        assert [s.stop for s in slices] == [2, 4, 6]

    def test_more_shards_than_units(self):
        slices = contiguous_shards([5.0, 1.0], 8)
        assert len(slices) == 2
        assert slices == [slice(0, 1), slice(1, 2)]

    def test_single_giant_unit_absorbs_its_shard(self):
        slices = contiguous_shards([1, 1, 1000, 1, 1], 3)
        # Contiguity forces neighbors into the giant unit's shard; every
        # unit is covered exactly once, in order.
        assert slices[0].start == 0 and slices[-1].stop == 5
        covered = [i for s in slices for i in range(s.start, s.stop)]
        assert covered == list(range(5))

    def test_empty_costs(self):
        assert contiguous_shards([], 4) == []

    def test_row_ranges_cover_exactly(self):
        ranges = contiguous_row_ranges(1_000_003, 7, block=4096)
        assert ranges[0][0] == 0 and ranges[-1][1] == 1_000_003
        for (a, b), (c, d) in zip(ranges, ranges[1:]):
            assert b == c and a < b
        assert len(ranges) == 7

    def test_row_ranges_tiny(self):
        assert contiguous_row_ranges(0, 4) == []
        assert contiguous_row_ranges(3, 8, block=1) == [(0, 1), (1, 2), (2, 3)]

"""Tests for the staging engine."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.iosim.perfmodel import PerfModel
from repro.iosim.staging import StagePlan, StagingEngine, StagingStyle
from repro.platforms import cori, summit
from repro.units import GB


@pytest.fixture()
def engine():
    return StagingEngine(cori(), PerfModel(deterministic=True), StagingStyle.SCHEDULER)


class TestPlanning:
    def test_read_only_stages_in(self, engine):
        plans = engine.plan_for_files([("/p/a", 100, "read-only")])
        assert plans == [StagePlan("/p/a", 100, "in")]

    def test_write_only_stages_out(self, engine):
        plans = engine.plan_for_files([("/p/a", 100, "write-only")])
        assert plans == [StagePlan("/p/a", 100, "out")]

    def test_read_write_stages_both(self, engine):
        plans = engine.plan_for_files([("/p/a", 100, "read-write")])
        assert {p.direction for p in plans} == {"in", "out"}

    def test_unknown_opclass(self, engine):
        with pytest.raises(SimulationError):
            engine.plan_for_files([("/p/a", 100, "append-only")])

    def test_bad_plan_direction(self):
        with pytest.raises(SimulationError):
            StagePlan("/x", 1, "sideways")


class TestCosting:
    def test_staging_time_positive_and_scales(self, engine):
        small = engine.staging_time(
            [StagePlan("/a", 1 * GB, "in")], nprocs=32
        )
        large = engine.staging_time(
            [StagePlan("/a", 100 * GB, "in")], nprocs=32
        )
        assert 0 < small < large

    def test_empty_plan_is_free(self, engine):
        assert engine.staging_time([]) == 0.0

    def test_directions_are_additive(self, engine):
        t_in = engine.staging_time([StagePlan("/a", 10 * GB, "in")])
        t_out = engine.staging_time([StagePlan("/a", 10 * GB, "out")])
        both = engine.staging_time(
            [StagePlan("/a", 10 * GB, "in"), StagePlan("/a", 10 * GB, "out")]
        )
        assert both == pytest.approx(t_in + t_out)


class TestVisibility:
    def test_scheduler_style_invisible(self):
        """DataWarp staging happens outside MPI_Init..Finalize — the
        mechanism behind Cori's CBB-exclusive jobs (Table 5)."""
        eng = StagingEngine(cori(), PerfModel(), StagingStyle.SCHEDULER)
        assert not eng.visible_in_darshan_window()

    def test_runtime_style_visible(self):
        eng = StagingEngine(summit(), PerfModel(), StagingStyle.RUNTIME)
        assert eng.visible_in_darshan_window()

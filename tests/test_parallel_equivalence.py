"""Differential proof: sharded generation/ingest ≡ serial, bit for bit.

The pipeline's determinism contract (DESIGN.md §8) is that the worker
count is *unobservable*: ``jobs=N`` must produce the same store as
``jobs=1`` — same rows, same order after canonicalization, same catalogs
— and therefore identical outputs from every analysis entry point. This
suite is the lock: it regenerates the fixture population at jobs ∈
{2, 4, 7}, compares stores in canonical order, and replays all analysis
entry points through each store's own AnalysisContext.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.darshan.format import write_log
from repro.instrument import LogMaterializer
from repro.store.ingest import ingest_log_paths, ingest_logs
from repro.store.merge import canonicalize
from repro.workloads.generator import (
    GeneratorConfig,
    WorkloadGenerator,
    generate_with_shadows,
)
from tests.conftest import SEED, SMALL_SCALE
from tests.test_analysis_equivalence import CASES, assert_equivalent

pytestmark = pytest.mark.parallel

JOBS_GRID = (2, 4, 7)


def assert_stores_identical(a, b, where="store"):
    """Byte-identical stores in canonical row order."""
    ca, cb = canonicalize(a), canonicalize(b)
    assert ca.platform == cb.platform, where
    assert ca.scale == cb.scale, where
    assert ca.domains == cb.domains, f"{where}: domain catalogs differ"
    assert ca.extensions == cb.extensions, f"{where}: extension catalogs differ"
    np.testing.assert_array_equal(ca.files, cb.files, err_msg=f"{where}.files")
    np.testing.assert_array_equal(ca.jobs, cb.jobs, err_msg=f"{where}.jobs")


@pytest.fixture(scope="module", params=JOBS_GRID)
def summit_pair(request, summit_store_small):
    """(serial store, jobs=N store) for the Summit fixture population."""
    gen = WorkloadGenerator("summit", GeneratorConfig(scale=SMALL_SCALE))
    parallel = generate_with_shadows(gen, SEED, jobs=request.param)
    return summit_store_small, parallel, request.param


class TestGenerateDifferential:
    def test_stores_identical(self, summit_pair):
        serial, parallel, jobs = summit_pair
        assert_stores_identical(serial, parallel, f"jobs={jobs}")

    def test_raw_row_order_identical(self, summit_pair):
        """Contiguous sharding reproduces even the pre-sort row order."""
        serial, parallel, jobs = summit_pair
        np.testing.assert_array_equal(serial.files, parallel.files)
        np.testing.assert_array_equal(serial.jobs, parallel.jobs)

    @pytest.mark.parametrize(
        "name,fast_fn,legacy_fn", CASES, ids=[c[0] for c in CASES]
    )
    def test_analysis_outputs_identical(self, summit_pair, name, fast_fn, legacy_fn):
        """Every analysis entry point, through each store's own context."""
        serial, parallel, jobs = summit_pair
        del legacy_fn  # the legacy twin is pinned by test_analysis_equivalence
        assert_equivalent(fast_fn(serial), fast_fn(parallel), f"{name}[jobs={jobs}]")

    def test_cori_jobs2(self, cori_store_small):
        gen = WorkloadGenerator("cori", GeneratorConfig(scale=SMALL_SCALE))
        parallel = generate_with_shadows(gen, SEED, jobs=2)
        assert_stores_identical(cori_store_small, parallel, "cori jobs=2")

    def test_jobs_zero_means_all_cores(self):
        gen = WorkloadGenerator("summit", GeneratorConfig(scale=1e-4))
        a = generate_with_shadows(gen, SEED, jobs=1)
        b = generate_with_shadows(gen, SEED, jobs=0)
        assert_stores_identical(a, b, "jobs=0")


class TestIngestDifferential:
    @pytest.fixture(scope="class")
    def log_paths(self, tmp_path_factory, cori_machine):
        gen = WorkloadGenerator("cori", GeneratorConfig(scale=5e-5))
        store = generate_with_shadows(gen, SEED)
        mat = LogMaterializer(cori_machine, store)
        d = tmp_path_factory.mktemp("logs")
        paths = []
        for i, log in enumerate(mat.materialize_many(24)):
            p = os.path.join(d, f"log{i:03d}.darshan")
            write_log(log, p)
            paths.append(p)
        return paths, store.domains

    @pytest.mark.parametrize("jobs", JOBS_GRID)
    def test_sharded_ingest_matches_serial(self, log_paths, cori_machine, jobs):
        paths, domains = log_paths
        mounts = cori_machine.mount_table()
        serial = ingest_log_paths(paths, "cori", mounts, domains=domains)
        sharded = ingest_log_paths(
            paths, "cori", mounts, domains=domains, jobs=jobs
        )
        assert_stores_identical(serial, sharded, f"ingest jobs={jobs}")

    def test_path_entry_matches_object_entry(self, log_paths, cori_machine):
        """Reading from disk is a faithful round trip of the object path."""
        from repro.darshan.format import read_log

        paths, domains = log_paths
        mounts = cori_machine.mount_table()
        via_objects = ingest_logs(
            (read_log(p) for p in paths), "cori", mounts, domains=domains
        )
        via_paths = ingest_log_paths(paths, "cori", mounts, domains=domains)
        assert_stores_identical(via_objects, via_paths, "path entry")


class TestCliJobsFlag:
    def test_generate_jobs_flag_identical_store(self, tmp_path):
        from repro.cli import main
        from repro.store.io import load_store

        out1 = str(tmp_path / "serial.npz")
        out2 = str(tmp_path / "sharded.npz")
        args = ["generate", "--platform", "summit", "--scale", "1e-4"]
        assert main(args + ["--out", out1]) == 0
        assert main(args + ["--jobs", "2", "--out", out2]) == 0
        assert_stores_identical(load_store(out1), load_store(out2), "cli --jobs")

"""Differential proof: sharded generation/ingest ≡ serial, bit for bit.

The pipeline's determinism contract (DESIGN.md §8) is that the worker
count is *unobservable*: ``jobs=N`` must produce the same store as
``jobs=1`` — same rows, same order after canonicalization, same catalogs
— and therefore identical outputs from every analysis entry point. This
suite is the lock: it regenerates the fixture population at jobs ∈
{2, 4, 7}, compares stores in canonical order, and replays all analysis
entry points through each store's own AnalysisContext.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import fabric
from repro.darshan.format import write_log
from repro.instrument import LogMaterializer
from repro.store.ingest import ingest_log_paths, ingest_logs
from repro.store.merge import canonicalize
from repro.store.recordstore import RecordStore
from repro.workloads.generator import (
    GeneratorConfig,
    WorkloadGenerator,
    generate_with_shadows,
)
from tests.conftest import SEED, SMALL_SCALE
from tests.test_analysis_equivalence import CASES, assert_equivalent

pytestmark = pytest.mark.parallel

JOBS_GRID = (2, 4, 7)


def assert_stores_identical(a, b, where="store"):
    """Byte-identical stores in canonical row order."""
    ca, cb = canonicalize(a), canonicalize(b)
    assert ca.platform == cb.platform, where
    assert ca.scale == cb.scale, where
    assert ca.domains == cb.domains, f"{where}: domain catalogs differ"
    assert ca.extensions == cb.extensions, f"{where}: extension catalogs differ"
    np.testing.assert_array_equal(ca.files, cb.files, err_msg=f"{where}.files")
    np.testing.assert_array_equal(ca.jobs, cb.jobs, err_msg=f"{where}.jobs")


@pytest.fixture(scope="module", params=JOBS_GRID)
def summit_pair(request, summit_store_small):
    """(serial store, jobs=N store) for the Summit fixture population."""
    gen = WorkloadGenerator("summit", GeneratorConfig(scale=SMALL_SCALE))
    parallel = generate_with_shadows(gen, SEED, jobs=request.param)
    return summit_store_small, parallel, request.param


class TestGenerateDifferential:
    def test_stores_identical(self, summit_pair):
        serial, parallel, jobs = summit_pair
        assert_stores_identical(serial, parallel, f"jobs={jobs}")

    def test_raw_row_order_identical(self, summit_pair):
        """Contiguous sharding reproduces even the pre-sort row order."""
        serial, parallel, jobs = summit_pair
        np.testing.assert_array_equal(serial.files, parallel.files)
        np.testing.assert_array_equal(serial.jobs, parallel.jobs)

    @pytest.mark.parametrize(
        "name,fast_fn,legacy_fn", CASES, ids=[c[0] for c in CASES]
    )
    def test_analysis_outputs_identical(self, summit_pair, name, fast_fn, legacy_fn):
        """Every analysis entry point, through each store's own context."""
        serial, parallel, jobs = summit_pair
        del legacy_fn  # the legacy twin is pinned by test_analysis_equivalence
        assert_equivalent(fast_fn(serial), fast_fn(parallel), f"{name}[jobs={jobs}]")

    def test_cori_jobs2(self, cori_store_small):
        gen = WorkloadGenerator("cori", GeneratorConfig(scale=SMALL_SCALE))
        parallel = generate_with_shadows(gen, SEED, jobs=2)
        assert_stores_identical(cori_store_small, parallel, "cori jobs=2")

    def test_jobs_zero_means_all_cores(self):
        gen = WorkloadGenerator("summit", GeneratorConfig(scale=1e-4))
        a = generate_with_shadows(gen, SEED, jobs=1)
        b = generate_with_shadows(gen, SEED, jobs=0)
        assert_stores_identical(a, b, "jobs=0")


class TestIngestDifferential:
    @pytest.fixture(scope="class")
    def log_paths(self, tmp_path_factory, cori_machine):
        gen = WorkloadGenerator("cori", GeneratorConfig(scale=5e-5))
        store = generate_with_shadows(gen, SEED)
        mat = LogMaterializer(cori_machine, store)
        d = tmp_path_factory.mktemp("logs")
        paths = []
        for i, log in enumerate(mat.materialize_many(24)):
            p = os.path.join(d, f"log{i:03d}.darshan")
            write_log(log, p)
            paths.append(p)
        return paths, store.domains

    @pytest.mark.parametrize("jobs", JOBS_GRID)
    def test_sharded_ingest_matches_serial(self, log_paths, cori_machine, jobs):
        paths, domains = log_paths
        mounts = cori_machine.mount_table()
        serial = ingest_log_paths(paths, "cori", mounts, domains=domains)
        sharded = ingest_log_paths(
            paths, "cori", mounts, domains=domains, jobs=jobs
        )
        assert_stores_identical(serial, sharded, f"ingest jobs={jobs}")

    def test_path_entry_matches_object_entry(self, log_paths, cori_machine):
        """Reading from disk is a faithful round trip of the object path."""
        from repro.darshan.format import read_log

        paths, domains = log_paths
        mounts = cori_machine.mount_table()
        via_objects = ingest_logs(
            (read_log(p) for p in paths), "cori", mounts, domains=domains
        )
        via_paths = ingest_log_paths(paths, "cori", mounts, domains=domains)
        assert_stores_identical(via_objects, via_paths, "path entry")


def _sharded_copy(store, jobs, *, min_rows=0):
    """A store sharing the fixture's tables but routed through sharding.

    The session fixtures are shared across the whole suite; mutating
    their analysis routing would leak sharded contexts into unrelated
    tests. A shallow copy shares the (read-only) arrays and carries its
    own routing.
    """
    copy = RecordStore(
        store.platform,
        store.files,
        store.jobs,
        domains=store.domains,
        extensions=store.extensions,
        scale=store.scale,
    )
    copy.set_analysis_jobs(jobs, min_rows=min_rows)
    return copy


class TestShardedAnalysis:
    """ShardedAnalysisContext ≡ serial AnalysisContext, bit for bit.

    The serial side runs through the fixture store's own (serial)
    context; the sharded side through a copy routed at jobs=N with the
    fan-out threshold forced to 0. One sharded context serves all
    fifteen entry points, so memo reuse across fan-outs is exercised
    too. Teardown closes the context and proves no segment leaked.
    """

    @pytest.fixture(scope="class", params=(2, 4))
    def sharded_pair(self, request, summit_store_small):
        copy = _sharded_copy(summit_store_small, request.param)
        yield summit_store_small, copy, request.param
        copy.analysis().close()
        assert fabric.live_segments() == ()

    @pytest.mark.parametrize(
        "name,fast_fn,legacy_fn", CASES, ids=[c[0] for c in CASES]
    )
    def test_entry_points_bit_identical(self, sharded_pair, name, fast_fn, legacy_fn):
        serial, sharded, jobs = sharded_pair
        del legacy_fn  # the legacy twin is pinned by test_analysis_equivalence
        assert_equivalent(
            fast_fn(serial), fast_fn(sharded), f"{name}[jobs={jobs}]"
        )

    def test_sharded_context_type_and_fallback(self, summit_store_small):
        from repro.analysis.sharded import ShardedAnalysisContext

        # The class-scoped sharded_pair context may still be alive, so
        # leak checks here are relative to a baseline snapshot.
        before = set(fabric.live_segments())
        sharded = _sharded_copy(summit_store_small, 2)
        assert isinstance(sharded.analysis(), ShardedAnalysisContext)
        # Below the fan-out threshold the same class degrades to the
        # inherited serial computes — no pool, no segments.
        tiny = _sharded_copy(summit_store_small, 2, min_rows=10**9)
        ctx = tiny.analysis()
        assert isinstance(ctx, ShardedAnalysisContext)
        assert not ctx._active()
        np.testing.assert_array_equal(
            ctx.opclass(), summit_store_small.analysis().opclass()
        )
        assert set(fabric.live_segments()) <= before

    def test_raw_layout_mmap_backing(self, summit_store_small, tmp_path):
        """Sharded analysis over a raw-layout store (workers mmap)."""
        from repro.store.io import load_store, save_store

        before = set(fabric.live_segments())
        path = str(tmp_path / "summit.store")
        save_store(summit_store_small, path)
        store = load_store(path)
        assert isinstance(store.files, np.memmap)
        store.set_analysis_jobs(4, min_rows=0)
        try:
            for name, fast_fn, _ in CASES:
                assert_equivalent(
                    fast_fn(summit_store_small), fast_fn(store), f"mmap:{name}"
                )
        finally:
            store.analysis().close()
        assert set(fabric.live_segments()) <= before

    def test_append_after_sharded_context(self, summit_store_small):
        """The delta-append path extends sharded-computed entries."""
        before = set(fabric.live_segments())
        src = summit_store_small
        cut = len(src.files) - len(src.files) // 5
        head = RecordStore(
            src.platform,
            src.files[:cut].copy(),
            src.jobs.copy(),
            domains=src.domains,
            extensions=src.extensions,
            scale=src.scale,
        )
        head.set_analysis_jobs(3, min_rows=0)
        try:
            import repro.analysis as fast

            warm = fast.dataset_summary(head)  # populate sharded memo
            assert warm is not None
            head.append(src.files[cut:].copy())
            for name, fast_fn, _ in CASES:
                assert_equivalent(
                    fast_fn(src), fast_fn(head), f"append:{name}"
                )
        finally:
            head.analysis().close()
        assert set(fabric.live_segments()) <= before


class TestCliJobsFlag:
    def test_generate_jobs_flag_identical_store(self, tmp_path):
        from repro.cli import main
        from repro.store.io import load_store

        out1 = str(tmp_path / "serial.npz")
        out2 = str(tmp_path / "sharded.npz")
        args = ["generate", "--platform", "summit", "--scale", "1e-4"]
        assert main(args + ["--out", out1]) == 0
        assert main(args + ["--jobs", "2", "--out", out2]) == 0
        assert_stores_identical(load_store(out1), load_store(out2), "cli --jobs")

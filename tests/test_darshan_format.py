"""Tests for the binary log container (repro.darshan.format)."""

import io
import zlib

import numpy as np
import pytest

from repro.darshan.constants import LOG_MAGIC, ModuleId
from repro.darshan.format import (
    read_log,
    read_log_bytes,
    write_log,
    write_log_bytes,
)
from repro.darshan.log import DarshanLog
from repro.darshan.records import FileRecord, JobRecord, NameRecord
from repro.errors import LogFormatError


def make_log(nfiles=3):
    job = JobRecord(
        77, 1001, 64, 100.0, 400.0,
        platform="summit", domain="physics",
        metadata={"exe": "lmp", "nnodes": "11"},
    )
    log = DarshanLog(job)
    for i in range(nfiles):
        nr = NameRecord(1000 + i, f"/gpfs/alpine/f{i}.h5", "/gpfs/alpine", "pfs")
        log.register_name(nr)
        rec = FileRecord(ModuleId.POSIX, 1000 + i, rank=-1)
        rec.set("BYTES_READ", 1024 * (i + 1))
        rec.set("READS", i + 1)
        rec.set("SIZE_READ_100_1K", i + 1)
        rec.set("F_READ_TIME", 0.5)
        log.add_record(rec)
        mp = FileRecord(ModuleId.MPIIO, 1000 + i, rank=-1)
        mp.set("COLL_READS", 2)
        log.add_record(mp)
    stdio = FileRecord(ModuleId.STDIO, 1000, rank=0)
    stdio.set("BYTES_WRITTEN", 42)
    stdio.set("F_WRITE_TIME", 0.1)
    log.add_record(stdio)
    return log


class TestRoundTrip:
    def test_full_round_trip(self):
        log = make_log()
        data = write_log_bytes(log)
        out = read_log_bytes(data)
        assert out.job.job_id == 77
        assert out.job.domain == "physics"
        assert out.job.metadata == {"exe": "lmp", "nnodes": "11"}
        assert out.nfiles() == log.nfiles()
        assert out.modules == log.modules
        a = log.records(ModuleId.POSIX)
        b = out.records(ModuleId.POSIX)
        assert len(a) == len(b)
        for ra, rb in zip(a, b):
            assert ra.record_id == rb.record_id
            assert ra.rank == rb.rank
            np.testing.assert_array_equal(ra.counters, rb.counters)
            np.testing.assert_array_equal(ra.fcounters, rb.fcounters)

    def test_name_records_survive(self):
        out = read_log_bytes(write_log_bytes(make_log()))
        nr = out.name_of(1001)
        assert nr.path == "/gpfs/alpine/f1.h5"
        assert nr.layer == "pfs"

    def test_uncompressed_round_trip(self):
        log = make_log()
        data = write_log_bytes(log, compress=False)
        out = read_log_bytes(data)
        assert out.nfiles() == log.nfiles()

    def test_compression_helps(self):
        log = make_log(nfiles=50)
        comp = write_log_bytes(log, compress=True)
        raw = write_log_bytes(log, compress=False)
        assert len(comp) < len(raw)

    def test_file_round_trip(self, tmp_path):
        path = str(tmp_path / "x.rdshn")
        write_log(make_log(), path)
        out = read_log(path)
        assert out.job.job_id == 77

    def test_file_object_round_trip(self):
        buf = io.BytesIO()
        write_log(make_log(), buf)
        buf.seek(0)
        assert read_log(buf).job.job_id == 77

    def test_empty_modules_ok(self):
        log = DarshanLog(JobRecord(1, 1, 1, 0.0, 1.0))
        out = read_log_bytes(write_log_bytes(log))
        assert out.modules == ()
        assert out.nfiles() == 0

    def test_deterministic_serialization(self):
        a = write_log_bytes(make_log())
        b = write_log_bytes(make_log())
        assert a == b


class TestCorruptionDetection:
    def test_bad_magic(self):
        data = bytearray(write_log_bytes(make_log()))
        data[:8] = b"NOTMAGIC"
        with pytest.raises(LogFormatError, match="magic"):
            read_log_bytes(bytes(data))

    def test_truncated_header(self):
        with pytest.raises(LogFormatError):
            read_log_bytes(LOG_MAGIC)

    def test_truncated_body(self):
        data = write_log_bytes(make_log())
        with pytest.raises(LogFormatError):
            read_log_bytes(data[: len(data) - 10])

    def test_bitflip_in_payload_caught(self):
        data = bytearray(write_log_bytes(make_log(), compress=False))
        # Flip a byte near the end (inside a module region payload).
        data[-5] ^= 0xFF
        with pytest.raises(LogFormatError):
            read_log_bytes(bytes(data))

    def test_version_gate(self):
        data = bytearray(write_log_bytes(make_log()))
        data[8] = 99  # major version little-endian low byte
        with pytest.raises(LogFormatError, match="version"):
            read_log_bytes(bytes(data))

    def test_corrupt_zlib_stream(self):
        log = make_log()
        data = bytearray(write_log_bytes(log, compress=True))
        # Corrupt the final region's compressed payload.
        data[-1] ^= 0x55
        with pytest.raises(LogFormatError):
            read_log_bytes(bytes(data))

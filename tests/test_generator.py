"""Tests for the workload generator."""

import numpy as np
import pytest

from repro.darshan.bins import ACCESS_SIZE_BINS
from repro.errors import ConfigurationError
from repro.platforms.interfaces import IOInterface
from repro.store.schema import LAYER_INSYSTEM, LAYER_PFS
from repro.workloads.generator import (
    GeneratorConfig,
    WorkloadGenerator,
    generate_with_shadows,
    _consistent_histograms,
)
from repro.workloads.distributions import BinProfile


class TestDeterminism:
    def test_same_seed_same_store(self):
        a = WorkloadGenerator("cori", GeneratorConfig(scale=5e-5)).generate(11)
        b = WorkloadGenerator("cori", GeneratorConfig(scale=5e-5)).generate(11)
        np.testing.assert_array_equal(a.files, b.files)
        np.testing.assert_array_equal(a.jobs, b.jobs)

    def test_different_seeds_differ(self):
        a = WorkloadGenerator("cori", GeneratorConfig(scale=5e-5)).generate(11)
        b = WorkloadGenerator("cori", GeneratorConfig(scale=5e-5)).generate(12)
        assert len(a.files) != len(b.files) or not np.array_equal(a.files, b.files)


class TestStructure:
    def test_every_file_has_a_job(self, summit_store_small):
        st = summit_store_small
        assert np.isin(st.files["job_id"], st.jobs["job_id"]).all()

    def test_log_ids_belong_to_their_job(self, summit_store_small):
        st = summit_store_small
        # log_id = job_id << 20 | instance.
        np.testing.assert_array_equal(
            st.files["log_id"] >> 20, st.files["job_id"]
        )

    def test_layers_and_interfaces_valid(self, summit_store_small):
        f = summit_store_small.files
        assert set(np.unique(f["layer"])) <= {LAYER_PFS, LAYER_INSYSTEM}
        assert set(np.unique(f["interface"])) <= {1, 2, 3}

    def test_nonnegative_bytes_and_times(self, summit_store_small):
        f = summit_store_small.files
        for col in ("bytes_read", "bytes_written", "read_time", "write_time"):
            assert (f[col] >= 0).all(), col

    def test_bytes_imply_time(self, summit_store_small):
        f = summit_store_small.files
        assert (f["read_time"][f["bytes_read"] > 0] > 0).all()
        assert (f["write_time"][f["bytes_written"] > 0] > 0).all()

    def test_stdio_has_no_histograms(self, summit_store_small):
        """Fidelity to the Darshan gap (Recommendation 4)."""
        f = summit_store_small.files
        stdio = f[f["interface"] == int(IOInterface.STDIO)]
        assert stdio["read_hist"].sum() == 0
        assert stdio["write_hist"].sum() == 0

    def test_posix_histograms_match_op_counts(self, summit_store_small):
        f = summit_store_small.files
        posix = f[f["interface"] == int(IOInterface.POSIX)]
        np.testing.assert_array_equal(
            posix["read_hist"].sum(axis=1), posix["reads"]
        )
        np.testing.assert_array_equal(
            posix["write_hist"].sum(axis=1), posix["writes"]
        )

    def test_histogram_byte_consistency(self, summit_store_small):
        """bytes must lie within [hist floor, hist capacity] per file."""
        f = summit_store_small.files
        posix = f[f["interface"] == int(IOInterface.POSIX)]
        edges = np.asarray(ACCESS_SIZE_BINS.edges)
        lower = edges[:-1].copy()
        lower[0] = 1.0
        floor = posix["read_hist"] @ lower
        assert (posix["bytes_read"] >= floor).all()

    def test_shared_files_marked(self, summit_store_small):
        f = summit_store_small.files
        shared = f["rank"] == -1
        assert shared.any() and (~shared).any()
        nonshared = f[~shared]
        assert (nonshared["rank"] < nonshared["nprocs"]).all()

    def test_domains_within_catalog(self, cori_store_small):
        st = cori_store_small
        assert st.files["domain"].max() < len(st.domains)
        # Cori has unknown-domain jobs (no NEWT record).
        assert (st.jobs["domain"] == -1).any()

    def test_summit_domains_all_known(self, summit_store_small):
        assert (summit_store_small.jobs["domain"] >= 0).all()


class TestShadows:
    def test_every_mpiio_row_has_posix_shadow(self, cori_store_small):
        f = cori_store_small.files
        mpiio = f[f["interface"] == int(IOInterface.MPIIO)]
        posix = f[f["interface"] == int(IOInterface.POSIX)]
        assert len(mpiio) > 0
        shadow_ids = set(posix["record_id"])
        assert set(mpiio["record_id"]) <= shadow_ids

    def test_shadow_bytes_match(self, cori_store_small):
        f = np.sort(cori_store_small.files, order=["record_id", "interface"])
        mpiio = f[f["interface"] == int(IOInterface.MPIIO)]
        posix = f[f["interface"] == int(IOInterface.POSIX)]
        posix_by_id = posix[np.isin(posix["record_id"], mpiio["record_id"])]
        np.testing.assert_array_equal(
            mpiio["bytes_read"], posix_by_id["bytes_read"]
        )


class TestScaling:
    def test_scale_recorded(self):
        st = WorkloadGenerator("cori", GeneratorConfig(scale=5e-5)).generate(3)
        assert st.scale == pytest.approx(5e-5, rel=0.3)

    def test_job_count_scales(self):
        small = WorkloadGenerator("cori", GeneratorConfig(scale=5e-5)).generate(3)
        big = WorkloadGenerator("cori", GeneratorConfig(scale=2e-4)).generate(3)
        assert 2.5 < len(big.jobs) / len(small.jobs) < 6.5

    def test_target_jobs_override(self):
        st = WorkloadGenerator(
            "cori", GeneratorConfig(scale=1e-2, target_jobs=1000)
        ).generate(3)
        assert 3 <= len(st.jobs) <= 25

    def test_bad_config(self):
        with pytest.raises(ConfigurationError):
            GeneratorConfig(scale=0)
        with pytest.raises(ConfigurationError):
            GeneratorConfig(scale=2.0)


class TestNoIoJobs:
    def test_some_jobs_have_no_file_records(self, summit_store_small):
        """Table 5's gap: ~13% of Summit jobs log no layer-attributed I/O."""
        st = summit_store_small
        jobs_with_files = set(np.unique(st.files["job_id"]).tolist())
        all_jobs = set(st.jobs["job_id"].tolist())
        silent = all_jobs - jobs_with_files
        frac = len(silent) / len(all_jobs)
        assert 0.04 < frac < 0.25

    def test_fraction_configurable(self):
        gen = WorkloadGenerator(
            "cori", GeneratorConfig(scale=5e-5, no_io_fraction=0.0)
        )
        st = gen.generate(5)
        jobs_with_files = set(np.unique(st.files["job_id"]).tolist())
        assert jobs_with_files == set(st.jobs["job_id"].tolist())


class TestConsistentHistograms:
    def test_repairs_floor_violations(self, rng):
        # Profile puts ops in 1M_4M but files move only ~1 KB.
        profile = BinProfile.from_dict({"1M_4M": 1.0})
        nops = np.array([1, 2], dtype=np.int64)
        nbytes = np.array([1000, 3000], dtype=np.int64)
        hist = _consistent_histograms(rng, profile, nops, nbytes)
        edges = np.asarray(ACCESS_SIZE_BINS.edges)
        lower = edges[:-1].copy()
        lower[0] = 1.0
        assert ((hist @ lower) <= nbytes).all()
        np.testing.assert_array_equal(hist.sum(axis=1), nops)

    def test_repairs_capacity_violations(self, rng):
        # One op in 0_100 cannot carry 1 MB.
        profile = BinProfile.from_dict({"0_100": 1.0})
        hist = _consistent_histograms(
            rng, profile,
            np.array([1], dtype=np.int64), np.array([10**6], dtype=np.int64),
        )
        # Repaired into the bin containing 1 MB (10^6 is the 1M_4M edge,
        # which opens that bin per the Darshan convention).
        assert hist[0, ACCESS_SIZE_BINS.labels.index("1M_4M")] == 1

    def test_leaves_consistent_rows_alone(self, rng):
        profile = BinProfile.from_dict({"1K_10K": 1.0})
        nops = np.array([100], dtype=np.int64)
        nbytes = np.array([100 * 5000], dtype=np.int64)
        hist = _consistent_histograms(rng, profile, nops, nbytes)
        assert hist[0, ACCESS_SIZE_BINS.labels.index("1K_10K")] == 100

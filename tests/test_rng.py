"""Tests for deterministic random-stream management."""

import numpy as np
import pytest

from repro.rng import RngHub


class TestRngHub:
    def test_same_name_same_stream(self):
        hub = RngHub(7)
        a = hub.generator("x").random(10)
        b = hub.generator("x").random(10)
        np.testing.assert_array_equal(a, b)

    def test_different_names_differ(self):
        hub = RngHub(7)
        a = hub.generator("x").random(10)
        b = hub.generator("y").random(10)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RngHub(1).generator("x").random(10)
        b = RngHub(2).generator("x").random(10)
        assert not np.array_equal(a, b)

    def test_streams_keyed_by_name_not_order(self):
        """Adding a consumer must not perturb existing streams."""
        hub1 = RngHub(7)
        _ = hub1.generator("a")
        x1 = hub1.generator("x").random(5)
        hub2 = RngHub(7)
        _ = hub2.generator("b")
        _ = hub2.generator("c")
        x2 = hub2.generator("x").random(5)
        np.testing.assert_array_equal(x1, x2)

    def test_child_hubs_independent(self):
        hub = RngHub(7)
        a = hub.child("summit").generator("jobs").random(5)
        b = hub.child("cori").generator("jobs").random(5)
        assert not np.array_equal(a, b)

    def test_child_deterministic(self):
        a = RngHub(7).child("p").generator("x").random(5)
        b = RngHub(7).child("p").generator("x").random(5)
        np.testing.assert_array_equal(a, b)

    def test_rejects_non_int_seed(self):
        with pytest.raises(TypeError):
            RngHub("seed")  # type: ignore[arg-type]

    def test_repr(self):
        assert "7" in repr(RngHub(7))

"""Tests for the contention model's deterministic expectation and scaling.

The what-if engine keys cached sweep points on values derived from
``mean_fraction``, so these are *golden* checks: the exact floats are
pinned, not just their ordering. If the fixed-seed estimator changes,
every cached what-if result silently changes meaning — fail loudly here.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.iosim.contention import ContentionModel


class TestMeanFraction:
    def test_deterministic_across_calls(self):
        m = ContentionModel.for_layer_kind("pfs")
        assert m.mean_fraction() == m.mean_fraction()

    def test_golden_values(self):
        # Exact: fixed seed, fixed sample count, pure numpy arithmetic.
        assert ContentionModel.for_layer_kind("pfs").mean_fraction() == (
            0.4914998615697009
        )
        assert ContentionModel.for_layer_kind("insystem").mean_fraction() == (
            0.7497955528474297
        )
        assert ContentionModel().mean_fraction() == 0.6171742082144711

    def test_equal_models_equal_expectation(self):
        # dataclass equality is the cache key the engine leans on:
        # equal models must produce the identical float.
        a = ContentionModel(alpha=3.0, beta=2.5)
        b = ContentionModel(alpha=3.0, beta=2.5)
        assert a == b
        assert a.mean_fraction() == b.mean_fraction()

    def test_mean_within_support(self):
        m = ContentionModel.for_layer_kind("pfs")
        assert m.floor < m.mean_fraction() < 1.0


class TestCrowded:
    def test_noisy_neighbor_lowers_availability(self):
        for kind in ("pfs", "insystem"):
            m = ContentionModel.for_layer_kind(kind)
            assert m.crowded(2.0).mean_fraction() < m.mean_fraction()

    def test_golden_doubled_load(self):
        assert ContentionModel.for_layer_kind("pfs").crowded(
            2.0
        ).mean_fraction() == 0.3366636771848861
        assert ContentionModel.for_layer_kind("insystem").crowded(
            2.0
        ).mean_fraction() == 0.6092705607384868

    def test_unit_factor_is_identity(self):
        m = ContentionModel.for_layer_kind("pfs")
        assert m.crowded(1.0) == m

    def test_scales_pressure_shape_only(self):
        m = ContentionModel.for_layer_kind("insystem")
        c = m.crowded(3.0)
        assert c.beta == pytest.approx(m.beta * 3.0)
        assert (c.alpha, c.floor, c.diurnal_amplitude) == (
            m.alpha, m.floor, m.diurnal_amplitude
        )

    def test_monotone_in_factor(self):
        m = ContentionModel.for_layer_kind("pfs")
        fracs = [m.crowded(f).mean_fraction() for f in (0.5, 1.0, 2.0, 4.0)]
        assert fracs == sorted(fracs, reverse=True)

    def test_rejects_nonpositive_factor(self):
        m = ContentionModel()
        with pytest.raises(ConfigurationError):
            m.crowded(0.0)
        with pytest.raises(ConfigurationError):
            m.crowded(-1.0)


class TestSample:
    def test_respects_floor_and_ceiling(self, rng):
        m = ContentionModel(floor=0.2)
        fracs = m.sample(rng, 10_000)
        assert fracs.min() >= 0.2
        assert fracs.max() <= 1.0

    def test_afternoon_dip(self):
        # Availability at the 15:00 load peak is below the 03:00 trough.
        m = ContentionModel(diurnal_amplitude=0.3)
        n = 20_000
        peak = np.full(n, 15 * 3600.0)
        trough = np.full(n, 3 * 3600.0)
        rng = np.random.default_rng(7)
        busy = m.sample(rng, n, time_of_day=peak).mean()
        rng = np.random.default_rng(7)
        quiet = m.sample(rng, n, time_of_day=trough).mean()
        assert busy < quiet

"""Tests for repro.darshan.bins."""

import numpy as np
import pytest

from repro.darshan.bins import ACCESS_SIZE_BINS, TRANSFER_SIZE_BINS, SizeBins
from repro.units import GB, KB, MB, TB


class TestAccessBins:
    def test_ten_bins_matching_darshan(self):
        assert ACCESS_SIZE_BINS.nbins == 10
        assert ACCESS_SIZE_BINS.labels == (
            "0_100", "100_1K", "1K_10K", "10K_100K", "100K_1M",
            "1M_4M", "4M_10M", "10M_100M", "100M_1G", "1G_PLUS",
        )

    def test_edges_decimal(self):
        assert ACCESS_SIZE_BINS.edges[1] == 100
        assert ACCESS_SIZE_BINS.edges[2] == 1 * KB
        assert ACCESS_SIZE_BINS.edges[5] == 1 * MB
        assert ACCESS_SIZE_BINS.edges[6] == 4 * MB

    def test_index_of_boundaries(self):
        # Darshan convention: a size equal to an edge opens the next bin.
        assert ACCESS_SIZE_BINS.index_of(0) == 0
        assert ACCESS_SIZE_BINS.index_of(99) == 0
        assert ACCESS_SIZE_BINS.index_of(100) == 1
        assert ACCESS_SIZE_BINS.index_of(1 * KB) == 2
        assert ACCESS_SIZE_BINS.index_of(1 * GB) == 9
        assert ACCESS_SIZE_BINS.index_of(50 * GB) == 9

    def test_label_of(self):
        assert ACCESS_SIZE_BINS.label_of(50 * KB) == "10K_100K"
        assert ACCESS_SIZE_BINS.label_of(2 * GB) == "1G_PLUS"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ACCESS_SIZE_BINS.index_of(-1)
        with pytest.raises(ValueError):
            ACCESS_SIZE_BINS.index_array(np.array([5, -2]))


class TestTransferBins:
    def test_six_bins(self):
        assert TRANSFER_SIZE_BINS.nbins == 6
        assert TRANSFER_SIZE_BINS.labels[-1] == "1T_PLUS"

    def test_figure_bin_membership(self):
        assert TRANSFER_SIZE_BINS.label_of(500 * MB) == "100M_1G"
        assert TRANSFER_SIZE_BINS.label_of(5 * GB) == "1G_10G"
        assert TRANSFER_SIZE_BINS.label_of(2 * TB) == "1T_PLUS"


class TestVectorizedOps:
    def test_index_array_matches_scalar(self, rng):
        sizes = rng.integers(0, 10**10, size=500)
        vec = ACCESS_SIZE_BINS.index_array(sizes)
        for s, v in zip(sizes[:50], vec[:50]):
            assert ACCESS_SIZE_BINS.index_of(int(s)) == v

    def test_histogram_counts(self):
        sizes = np.array([10, 200, 2000, 2 * 10**9])
        hist = ACCESS_SIZE_BINS.histogram(sizes)
        assert hist.sum() == 4
        assert hist[0] == 1 and hist[1] == 1 and hist[2] == 1 and hist[9] == 1

    def test_histogram_weights(self):
        sizes = np.array([10, 10, 200])
        hist = ACCESS_SIZE_BINS.histogram(sizes, weights=np.array([1.0, 2.0, 5.0]))
        assert hist[0] == 3.0 and hist[1] == 5.0

    def test_empty_histogram(self):
        hist = ACCESS_SIZE_BINS.histogram(np.array([]))
        assert hist.shape == (10,)
        assert hist.sum() == 0


class TestSizeBinsValidation:
    def test_mismatched_labels(self):
        with pytest.raises(ValueError, match="labels"):
            SizeBins("x", (0, 1, float("inf")), ("a",))

    def test_nonmonotonic_edges(self):
        with pytest.raises(ValueError, match="increasing"):
            SizeBins("x", (0, 5, 5, float("inf")), ("a", "b", "c"))

    def test_first_edge_zero(self):
        with pytest.raises(ValueError, match="first edge"):
            SizeBins("x", (1, 5, float("inf")), ("a", "b"))

    def test_last_edge_inf(self):
        with pytest.raises(ValueError, match="inf"):
            SizeBins("x", (0, 5, 10), ("a", "b"))

    def test_upper_edges(self):
        ue = TRANSFER_SIZE_BINS.upper_edges()
        assert ue[0] == 100 * MB
        assert np.isinf(ue[-1])

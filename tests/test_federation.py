"""Multi-store federation: catalog, scatter-gather executor, compare.

The load-bearing test is the differential: a catalog of K
month-partitioned stores must answer every mergeable registry query
**bit-identically** to the single merged store built from the same
members — for the reducer family because integer tallies add
associatively, for the merged-store fallback by construction. The
cache-isolation test pins the federation's reason to exist: growing one
member's month never invalidates another member's cached results.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.api import run_query
from repro.errors import (
    CatalogError,
    CatalogMemberError,
    MergeSchemaError,
    UnknownMemberError,
)
from repro.federation import (
    REDUCERS,
    FederationExecutor,
    StoreCatalog,
    federated_registry,
    load_catalog,
)
from repro.federation.compare import parse_cell
from repro.serve.registry import default_registry, serialize_result
from repro.store.io import load_store, save_store
from repro.store.merge import merge_stores

MERGEABLE = sorted(
    name for name, spec in default_registry().items() if spec.mergeable
)


def partition_by_month(store, k):
    """Split a store into k disjoint job populations by start time.

    Stand-ins for per-month ingests: together they cover every job, and
    merging them back (independent populations) is the ground truth the
    federated answers are pinned against.
    """
    order = np.argsort(store.jobs["start_time"], kind="stable")
    parts = []
    for chunk in np.array_split(order, k):
        mask = np.zeros(len(store.jobs), dtype=bool)
        mask[chunk] = True
        parts.append(store.filter_jobs(mask))
    return parts


def build_catalog(tmp_path, stores, labels=None, periods=None, **add_kwargs):
    catalog = StoreCatalog.init(str(tmp_path / "fleet.json"))
    for i, store in enumerate(stores):
        label = labels[i] if labels else f"m{i}"
        path = str(tmp_path / f"{label}.npz")
        save_store(store, path)
        catalog.add_store(
            label, path,
            period=periods[i] if periods else f"2020-{i + 1:02d}",
            **add_kwargs,
        )
    return catalog


@pytest.fixture(scope="module")
def month_parts(summit_store_small):
    return partition_by_month(summit_store_small, 3)


@pytest.fixture()
def fleet(tmp_path, month_parts):
    """A 2-member catalog plus its executor (function-scoped: tests
    mutate member stores and caches)."""
    catalog = build_catalog(tmp_path, month_parts[:2], facility="olcf")
    with FederationExecutor(catalog) as executor:
        yield executor


class TestCatalogManifest:
    def test_init_refuses_overwrite(self, tmp_path):
        path = str(tmp_path / "fleet.json")
        StoreCatalog.init(path)
        with pytest.raises(CatalogError, match="already exists"):
            StoreCatalog.init(path)

    def test_add_list_remove_roundtrip(self, tmp_path, month_parts):
        catalog = build_catalog(tmp_path, month_parts[:2], facility="olcf")
        reread = load_catalog(catalog.path)
        assert reread.labels == ["m0", "m1"]
        m = reread.member("m0")
        assert (m.kind, m.facility, m.period) == ("store", "olcf", "2020-01")
        assert m.rows == len(month_parts[0].files)
        assert m.jobs == len(month_parts[0].jobs)
        reread.remove("m0")
        assert load_catalog(catalog.path).labels == ["m1"]

    def test_member_paths_are_relative_so_catalogs_relocate(
        self, tmp_path, month_parts
    ):
        catalog = build_catalog(tmp_path, month_parts[:1])
        assert not os.path.isabs(catalog.member("m0").location)
        moved = tmp_path / "moved"
        moved.mkdir()
        for name in os.listdir(tmp_path):
            if name != "moved":
                os.rename(tmp_path / name, moved / name)
        relocated = load_catalog(str(moved / "fleet.json"))
        assert len(relocated.load_member("m0").files) == len(
            month_parts[0].files
        )

    def test_duplicate_label_rejected_actionably(self, tmp_path, month_parts):
        catalog = build_catalog(tmp_path, month_parts[:1])
        path = str(tmp_path / "m0.npz")
        with pytest.raises(CatalogError, match="duplicate member label"):
            catalog.add_store("m0", path)
        with pytest.raises(CatalogError, match="catalog remove"):
            catalog.add_store("m0", path)

    def test_malformed_period_rejected_at_add(self, tmp_path, month_parts):
        catalog = build_catalog(tmp_path, month_parts[:1])
        path = str(tmp_path / "m0.npz")
        for bad in ("202001", "2020-13", "2020-03:2020-01", "jan"):
            with pytest.raises(CatalogError, match="period"):
                catalog.add_store(f"x-{bad}", path, period=bad)

    def test_unknown_member_is_typed(self, tmp_path, month_parts):
        catalog = build_catalog(tmp_path, month_parts[:1])
        with pytest.raises(UnknownMemberError, match="unknown member 'nope'"):
            catalog.member("nope")

    def test_missing_store_add_is_typed(self, tmp_path):
        catalog = StoreCatalog.init(str(tmp_path / "fleet.json"))
        with pytest.raises(CatalogMemberError, match="member 'gone'"):
            catalog.add_store("gone", str(tmp_path / "gone.npz"))

    def test_save_is_atomic(self, tmp_path, month_parts):
        catalog = build_catalog(tmp_path, month_parts[:2])
        assert not os.path.exists(catalog.path + ".tmp")
        # The manifest on disk is always complete, valid JSON.
        with open(catalog.path) as fh:
            blob = json.load(fh)
        assert blob["format"] == "repro-catalog-v1"
        assert [m["label"] for m in blob["members"]] == ["m0", "m1"]

    def test_corrupt_manifest_is_typed(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "repro-catalog-v1", "mem')
        with pytest.raises(CatalogError, match="corrupt catalog manifest"):
            load_catalog(str(path))

    def test_unknown_format_and_future_version_refused(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "other-thing"}')
        with pytest.raises(CatalogError, match="unknown catalog format"):
            load_catalog(str(path))
        path.write_text(
            '{"format": "repro-catalog-v1", "schema_version": 99, "members": []}'
        )
        with pytest.raises(CatalogError, match="newer than"):
            load_catalog(str(path))

    def test_manifest_with_duplicate_labels_refused(self, tmp_path, month_parts):
        catalog = build_catalog(tmp_path, month_parts[:1])
        with open(catalog.path) as fh:
            blob = json.load(fh)
        blob["members"].append(dict(blob["members"][0]))
        with open(catalog.path, "w") as fh:
            json.dump(blob, fh)
        with pytest.raises(CatalogError, match="duplicate member label"):
            load_catalog(catalog.path)

    def test_missing_manifest_suggests_init(self, tmp_path):
        with pytest.raises(CatalogError, match="repro catalog init"):
            load_catalog(str(tmp_path / "nothere.json"))


class TestVerify:
    def test_healthy_catalog_verifies_clean(self, tmp_path, month_parts):
        catalog = build_catalog(tmp_path, month_parts[:2], facility="olcf")
        assert catalog.verify() == []

    def test_overlapping_periods_same_facility_flagged(
        self, tmp_path, month_parts
    ):
        catalog = build_catalog(
            tmp_path, month_parts[:2], facility="olcf",
            periods=["2020-01:2020-03", "2020-03"],
        )
        problems = catalog.verify()
        assert len(problems) == 1
        assert "overlapping periods" in problems[0]
        assert "'m0'" in problems[0] and "'m1'" in problems[0]

    def test_same_period_different_facility_ok(self, tmp_path, month_parts):
        catalog = StoreCatalog.init(str(tmp_path / "fleet.json"))
        for i, facility in enumerate(("olcf", "nersc")):
            path = str(tmp_path / f"{facility}.npz")
            save_store(month_parts[i], path)
            catalog.add_store(
                facility, path, facility=facility, period="2020-01"
            )
        assert catalog.verify() == []

    def test_missing_member_flagged_with_remedy(self, tmp_path, month_parts):
        catalog = build_catalog(tmp_path, month_parts[:2])
        os.remove(str(tmp_path / "m0.npz"))
        problems = catalog.verify()
        assert any("member 'm0'" in p and "catalog remove" in p for p in problems)

    def test_corrupt_member_flagged(self, tmp_path, month_parts):
        catalog = build_catalog(tmp_path, month_parts[:1])
        (tmp_path / "m0.npz").write_bytes(b"not a zip")
        problems = catalog.verify()
        assert any("member 'm0'" in p for p in problems)

    def test_mixed_schema_versions_flagged(
        self, tmp_path, month_parts, monkeypatch
    ):
        catalog = build_catalog(tmp_path, month_parts[:2])
        # Every store this library writes is at the current version, so
        # impersonate a member written by a newer library at load time.
        real = catalog.load_member

        def from_newer_library(label):
            store = real(label)
            if label == "m1":
                store.schema_version = 2
            return store

        monkeypatch.setattr(catalog, "load_member", from_newer_library)
        problems = catalog.verify()
        assert any(
            "mixed store schema versions" in p and "m1" in p
            for p in problems
        )

    def test_scale_mismatch_flagged(self, tmp_path, month_parts):
        catalog = build_catalog(tmp_path, month_parts[:1])
        other = month_parts[1]
        rescaled = type(other)(
            other.platform, other.files.copy(), other.jobs.copy(),
            domains=other.domains, extensions=other.extensions,
            scale=other.scale / 2,
        )
        path = str(tmp_path / "rescaled.npz")
        save_store(rescaled, path)
        catalog.add_store("odd", path, period="2020-02")
        problems = catalog.verify()
        assert any("different scales" in p for p in problems)


class TestRefresh:
    def test_unchanged_members_keep_generation(self, tmp_path, month_parts):
        catalog = build_catalog(tmp_path, month_parts[:2])
        assert catalog.refresh() == []
        assert [m.generation for m in catalog] == [0, 0]

    def test_changed_member_bumps_only_itself(self, tmp_path, month_parts):
        catalog = build_catalog(tmp_path, month_parts[:2])
        grown = merge_stores(
            [month_parts[0], month_parts[2]],
            remap_log_ids=True, remap_job_ids=True,
        )
        save_store(grown, str(tmp_path / "m0.npz"))
        assert catalog.refresh() == ["m0"]
        assert catalog.member("m0").generation == 1
        assert catalog.member("m0").rows == len(grown.files)
        assert catalog.member("m1").generation == 0
        # Persisted: a fresh load sees the bump.
        assert load_catalog(catalog.path).member("m0").generation == 1


class TestDifferential:
    """Catalog of K month-partitioned stores == the single merged store,
    bit-identically, for every mergeable registry query."""

    @pytest.mark.parametrize("k", [2, 3])
    def test_federated_equals_merged_store(self, tmp_path, month_parts, k):
        parts = month_parts[:k]
        catalog = build_catalog(tmp_path, parts)
        merged = merge_stores(
            parts, remap_log_ids=True, remap_job_ids=True
        )
        registry = default_registry()
        with FederationExecutor(catalog) as executor:
            for name in MERGEABLE:
                spec = registry[name]
                got = serialize_result(spec, executor.query(name))
                want = serialize_result(spec, run_query(merged, name))
                assert got == want, name

    def test_reducer_set_matches_foldable_set(self):
        """Exactly the append-foldable queries have exact reducers —
        the same associativity argument underwrites both."""
        registry = default_registry()
        foldable = {n for n, s in registry.items() if s.foldable}
        assert set(REDUCERS) == foldable

    def test_reducer_path_actually_taken(self, fleet):
        fleet.query("table3")
        fleet.query("table2")
        counters = fleet.stats()["counters"]
        assert counters["reduced"] == 1
        assert counters["merged_fallback"] == 1


class TestRouting:
    def test_single_member_routes_to_that_store(self, fleet, month_parts):
        got = fleet.query("table3", {"member": "m1"})
        want = run_query(month_parts[1], "table3")
        assert got.to_rows() == want.to_rows()

    def test_subset_reduces_over_selected_members(
        self, tmp_path, month_parts
    ):
        catalog = build_catalog(tmp_path, month_parts)
        merged01 = merge_stores(
            month_parts[:2], remap_log_ids=True, remap_job_ids=True
        )
        with FederationExecutor(catalog) as executor:
            got = executor.query("table3", {"member": "m0,m1"})
        assert got.to_rows() == run_query(merged01, "table3").to_rows()

    def test_facility_and_period_axes_select(self, tmp_path, month_parts):
        catalog = StoreCatalog.init(str(tmp_path / "fleet.json"))
        for i, (label, facility) in enumerate(
            (("a", "olcf"), ("b", "olcf"), ("c", "nersc"))
        ):
            path = str(tmp_path / f"{label}.npz")
            save_store(month_parts[i], path)
            catalog.add_store(
                label, path, facility=facility, period=f"2020-{i + 1:02d}"
            )
        with FederationExecutor(catalog) as executor:
            assert [m.label for m in executor.select({"facility": "olcf"})] == ["a", "b"]
            assert [m.label for m in executor.select({"period": "2020-02:2020-03"})] == ["b", "c"]
            assert [m.label for m in executor.select({"member": "c,a"})] == ["c", "a"]

    def test_unknown_member_and_empty_selection_are_typed(self, fleet):
        with pytest.raises(UnknownMemberError, match="unknown member"):
            fleet.query("table3", {"member": "nope"})
        with pytest.raises(CatalogError, match="no catalog members match"):
            fleet.query("table3", {"facility": "lanl"})


class TestCacheIsolation:
    """The federation's cache-keying invariant (DESIGN.md §14): a
    per-member generation bump invalidates only that member's entries."""

    def test_member_bump_recomputes_only_that_member(
        self, tmp_path, month_parts
    ):
        catalog = build_catalog(tmp_path, month_parts[:2])
        with FederationExecutor(catalog) as executor:
            executor.query("table3")
            assert executor.stats()["counters"]["member_runs"] == 2
            # Warm repeat: both members answer from cache.
            executor.query("table3")
            assert executor.stats()["counters"]["member_runs"] == 2

            # Grow member m0 on disk; refresh bumps only its generation.
            grown = merge_stores(
                [month_parts[0], month_parts[2]],
                remap_log_ids=True, remap_job_ids=True,
            )
            save_store(grown, str(tmp_path / "m0.npz"))
            assert catalog.refresh() == ["m0"]

            before = executor.cache.info()
            result = executor.query("table3")
            after = executor.cache.info()
            # Exactly one member (m0) recomputed; m1 hit its old entry.
            assert executor.stats()["counters"]["member_runs"] == 3
            assert after["hits"] == before["hits"] + 1
            # And the reduced answer reflects the grown member.
            want = run_query(
                merge_stores(
                    [grown, month_parts[1]],
                    remap_log_ids=True, remap_job_ids=True,
                ),
                "table3",
            )
            assert result.to_rows() == want.to_rows()

    def test_params_distinguish_cache_entries(self, fleet):
        fleet.query("fig4", {"member": "m0"})
        fleet.query("fig5", {"member": "m0"})
        assert fleet.stats()["counters"]["member_runs"] == 2


class TestCompare:
    def test_compare_aligns_rows_and_diffs_numbers(self, fleet, month_parts):
        report = fleet.compare("table6", "m0", "m1")
        assert report.member_a == "m0" and report.member_b == "m1"
        rows = report.rows
        assert rows, "expected aligned numeric cells"
        # Each comparison row carries the member values it was built from.
        a_wire = serialize_result(
            default_registry()["table6"], run_query(month_parts[0], "table6")
        )
        keys = {row[0] for row in rows}
        assert any("pfs" in k for k in keys)
        for row in rows:
            assert len(row) == 6
            va, vb = parse_cell(row[2]), parse_cell(row[3])
            assert va is not None and vb is not None
        assert a_wire["rows"], "sanity: side A produced rows"

    def test_compare_reports_one_sided_rows(self):
        from repro.federation.compare import compare_serialized

        wire_a = {"kind": "table", "headers": ["sys", "n"],
                  "rows": [["summit", "1"], ["cori", "2"]]}
        wire_b = {"kind": "table", "headers": ["sys", "n"],
                  "rows": [["summit", "3"]]}
        report = compare_serialized("q", "a", "b", wire_a, wire_b)
        assert report.only_a == ["cori"] and report.only_b == []
        assert ["summit", "n", "1", "3", "+2", "+200.0%"] in report.rows
        assert ["cori", "(row)", "present", "absent", "-", "-"] in report.to_rows()

    def test_compare_same_member_twice_rejected(self, fleet):
        with pytest.raises(CatalogError, match="two distinct members"):
            fleet.compare("table3", "m0", "m0")

    def test_parse_cell_formats(self):
        assert parse_cell("7.7M") == pytest.approx(7.7e6)
        assert parse_cell("281.6K") == pytest.approx(281.6e3)
        assert parse_cell("1.50 GB") == 1_500_000_000
        assert parse_cell("-2.00 KiB") == -2048
        assert parse_cell("95.7%") == pytest.approx(95.7)
        assert parse_cell("3.63x") == pytest.approx(3.63)
        assert parse_cell("inf") == float("inf")
        assert parse_cell("summit") is None
        assert parse_cell("read-only") is None


class TestFederatedRegistry:
    def test_surface_has_federated_compare_and_members(self, fleet):
        federated = federated_registry(fleet)
        assert "catalog_members" in federated
        for name in MERGEABLE:
            assert name in federated
            assert f"compare_{name}" in federated
            assert "member" in federated[name].param_names
            assert not federated[name].cacheable
        # No single-store-only specs leak through.
        assert "shapes" not in federated
        assert not any(n.startswith("whatif_") for n in federated)

    def test_members_listing_renders(self, fleet):
        rows = federated_registry(fleet)["catalog_members"].run(
            None, None, {}
        ).to_rows()
        assert [r[0] for r in rows] == ["m0", "m1"]
        assert all(len(r) == 8 for r in rows)

    def test_compare_spec_requires_both_labels(self, fleet):
        spec = federated_registry(fleet)["compare_table3"]
        with pytest.raises(CatalogError, match="a=<member> and b=<member>"):
            spec.run(None, None, {"a": "m0"})


class TestRemoteMembers:
    @pytest.fixture()
    def remote_fleet(self, tmp_path, month_parts):
        """m0 local, m1 behind a live repro-serve endpoint."""
        from repro.serve.engine import QueryEngine
        from repro.serve.server import BackgroundServer

        catalog = build_catalog(tmp_path, month_parts[:1], facility="olcf")
        with QueryEngine(month_parts[1]) as engine:
            with BackgroundServer(engine) as server:
                catalog.add_endpoint(
                    "m1", server.host, server.port,
                    facility="olcf", period="2020-02",
                )
                with FederationExecutor(catalog) as executor:
                    yield executor

    def test_endpoint_member_probed_on_add(self, remote_fleet):
        m = remote_fleet.catalog.member("m1")
        assert m.kind == "serve"
        assert m.platform == "summit"
        assert m.rows > 0

    def test_routed_query_returns_remote_wire_result(
        self, remote_fleet, month_parts
    ):
        got = remote_fleet.query("table3", {"member": "m1"})
        assert got["kind"] == "table"
        want = serialize_result(
            default_registry()["table3"], run_query(month_parts[1], "table3")
        )
        assert got == want

    def test_scatter_reduce_with_remote_member_is_typed(self, remote_fleet):
        with pytest.raises(CatalogError, match="remote member"):
            remote_fleet.query("table3")
        with pytest.raises(CatalogError, match="remote member"):
            remote_fleet.query("table2")

    def test_compare_works_across_local_and_remote(
        self, remote_fleet, month_parts
    ):
        report = remote_fleet.compare("table3", "m0", "m1")
        assert report.rows
        # Identical to a fully-local compare of the same two stores.
        spec = default_registry()["table3"]
        from repro.federation.compare import compare_serialized

        want = compare_serialized(
            "table3", "m0", "m1",
            serialize_result(spec, run_query(month_parts[0], "table3")),
            serialize_result(spec, run_query(month_parts[1], "table3")),
        )
        assert report.rows == want.rows

    def test_dead_endpoint_verify_is_actionable(self, tmp_path, month_parts):
        catalog = build_catalog(tmp_path, month_parts[:1])
        # Manufacture an endpoint member without probing (port 1 is dead).
        from dataclasses import replace

        member = replace(
            catalog.member("m0"), label="dead", kind="serve",
            location="127.0.0.1:1", period="2020-09",
        )
        catalog._members["dead"] = member
        catalog.save()
        problems = load_catalog(catalog.path).verify()
        assert any("unreachable" in p and "'dead'" in p for p in problems)


class TestFederatedServing:
    def test_engine_serves_federated_registry_over_wire(
        self, tmp_path, month_parts
    ):
        from repro.serve.client import ServeClient
        from repro.serve.engine import QueryEngine
        from repro.serve.server import BackgroundServer

        catalog = build_catalog(tmp_path, month_parts[:2])
        merged = merge_stores(
            month_parts[:2], remap_log_ids=True, remap_job_ids=True
        )
        with FederationExecutor(catalog) as executor:
            engine = QueryEngine(
                executor.anchor_store(),
                registry=federated_registry(executor),
            )
            with engine, BackgroundServer(engine) as server:
                with ServeClient(server.host, server.port) as client:
                    # Fleet-wide query over the socket == merged store.
                    got = client.query("table3")
                    want = serialize_result(
                        default_registry()["table3"],
                        run_query(merged, "table3"),
                    )
                    # The federated spec re-titles; the data must match.
                    assert got["title"] == f"{want['title']} (federated)"
                    got.pop("title"), want.pop("title")
                    assert got == want
                    # compare_* and catalog_members are first-class.
                    compared = client.query(
                        "compare_table3", {"a": "m0", "b": "m1"}
                    )
                    assert compared["kind"] == "table"
                    assert compared["headers"][0] == "row"
                    members = client.query("catalog_members")
                    assert [r[0] for r in members["rows"]] == ["m0", "m1"]
                    # Routing params validate like any other params.
                    names = client.list_queries()
                    assert "member" in names["table3"]["params"]

    def test_single_store_engine_unaffected(self, month_parts):
        """Without registry=, the engine surface is unchanged."""
        from repro.serve.engine import QueryEngine

        with QueryEngine(month_parts[0]) as engine:
            assert "catalog_members" not in engine.registry
            assert engine.spec("table3").mergeable


class TestCatalogCli:
    def run_cli(self, *argv):
        from repro.cli import main

        return main(list(argv))

    def test_init_add_list_verify_refresh(
        self, tmp_path, month_parts, capsys
    ):
        manifest = str(tmp_path / "fleet.json")
        store0 = str(tmp_path / "jan.npz")
        store1 = str(tmp_path / "feb.npz")
        save_store(month_parts[0], store0)
        save_store(month_parts[1], store1)

        assert self.run_cli("catalog", "init", manifest) == 0
        assert self.run_cli(
            "catalog", "add", manifest, "jan", "--store", store0,
            "--facility", "olcf", "--period", "2020-01",
        ) == 0
        assert self.run_cli(
            "catalog", "add", manifest, "feb", "--store", store1,
            "--facility", "olcf", "--period", "2020-02",
        ) == 0
        assert self.run_cli("catalog", "list", manifest) == 0
        out = capsys.readouterr().out
        assert "jan" in out and "feb" in out and "2020-02" in out

        assert self.run_cli("catalog", "verify", manifest) == 0
        assert "catalog ok" in capsys.readouterr().out
        assert self.run_cli("catalog", "refresh", manifest) == 0

        # Break a member: verify now fails with exit 1 and a remedy.
        os.remove(store0)
        assert self.run_cli("catalog", "verify", manifest) == 1
        assert "catalog remove" in capsys.readouterr().out

    def test_add_requires_exactly_one_source(self, tmp_path, capsys):
        manifest = str(tmp_path / "fleet.json")
        self.run_cli("catalog", "init", manifest)
        assert self.run_cli("catalog", "add", manifest, "x") == 2
        assert "--store or --endpoint" in capsys.readouterr().err

    def test_duplicate_add_exits_nonzero(self, tmp_path, month_parts, capsys):
        manifest = str(tmp_path / "fleet.json")
        store0 = str(tmp_path / "jan.npz")
        save_store(month_parts[0], store0)
        self.run_cli("catalog", "init", manifest)
        self.run_cli("catalog", "add", manifest, "jan", "--store", store0)
        assert self.run_cli(
            "catalog", "add", manifest, "jan", "--store", store0
        ) == 1
        assert "duplicate member label" in capsys.readouterr().err

    def test_analyze_and_query_catalog_paths(
        self, tmp_path, month_parts, capsys
    ):
        manifest = str(tmp_path / "fleet.json")
        for i, label in enumerate(("jan", "feb")):
            path = str(tmp_path / f"{label}.npz")
            save_store(month_parts[i], path)
            if i == 0:
                self.run_cli("catalog", "init", manifest)
            self.run_cli(
                "catalog", "add", manifest, label, "--store", path,
                "--period", f"2020-{i + 1:02d}",
            )
        merged = merge_stores(
            month_parts[:2], remap_log_ids=True, remap_job_ids=True
        )
        assert self.run_cli(
            "analyze", "--catalog", manifest, "--exhibit", "table3"
        ) == 0
        out = capsys.readouterr().out
        want = run_query(merged, "table3").to_rows()
        for cell in want[0]:
            assert cell in out

        # Routed to one member.
        assert self.run_cli(
            "analyze", "--catalog", manifest, "--exhibit", "table3",
            "--member", "jan",
        ) == 0
        capsys.readouterr()

        # In-process federated query: compare + JSON output.
        assert self.run_cli(
            "query", "compare_table3", "--catalog", manifest,
            "--params", '{"a": "jan", "b": "feb"}', "--json",
        ) == 0
        blob = json.loads(capsys.readouterr().out)
        assert blob["kind"] == "table"
        assert blob["headers"][0] == "row"

        # Unknown federated name fails with the available list.
        assert self.run_cli(
            "query", "shapes", "--catalog", manifest
        ) == 2
        assert "not a federated query" in capsys.readouterr().err

    def test_analyze_catalog_member_error_is_clean(
        self, tmp_path, month_parts, capsys
    ):
        manifest = str(tmp_path / "fleet.json")
        store0 = str(tmp_path / "jan.npz")
        save_store(month_parts[0], store0)
        self.run_cli("catalog", "init", manifest)
        self.run_cli("catalog", "add", manifest, "jan", "--store", store0)
        assert self.run_cli(
            "analyze", "--catalog", manifest, "--exhibit", "table3",
            "--member", "nope",
        ) == 1
        assert "unknown member" in capsys.readouterr().err

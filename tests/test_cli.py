"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestShapes:
    def test_shapes_exit_zero_on_pass(self, capsys):
        rc = main(
            ["shapes", "--platform", "cori", "--scale", "2e-4", "--seed", "7"]
        )
        out = capsys.readouterr().out
        assert "shapes reproduced" in out
        # Small scales may flake a check; the exit code must reflect it.
        assert rc in (0, 1)
        if rc == 0:
            assert "[FAIL]" not in out


class TestStudy:
    def test_study_renders_tables(self, capsys):
        rc = main(
            ["study", "--platform", "summit", "--scale", "1e-4", "--seed", "7"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        for token in ("Table 2", "Table 6", "Figure 11"):
            assert token in out


class TestGenerateAnalyze:
    def test_round_trip(self, tmp_path, capsys):
        store_path = str(tmp_path / "year.npz")
        rc = main(
            ["generate", "--platform", "cori", "--scale", "5e-5",
             "--seed", "3", "--out", store_path]
        )
        assert rc == 0
        for exhibit in ("table2", "table3", "table6", "fig3", "fig11"):
            rc = main(["analyze", store_path, "--exhibit", exhibit])
            assert rc == 0
        out = capsys.readouterr().out
        assert "cori" in out

    def test_analyze_missing_store(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            main(["analyze", str(tmp_path / "nope.npz")])


class TestAdviseReplay:
    @pytest.fixture(scope="class")
    def store_path(self, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("cli") / "year.npz")
        assert main(
            ["generate", "--platform", "summit", "--scale", "2e-4",
             "--seed", "9", "--out", path]
        ) == 0
        return path

    def test_advise_staging(self, store_path, capsys):
        assert main(["advise", store_path, "--advisor", "staging"]) == 0
        out = capsys.readouterr().out
        assert "stageable PFS files" in out

    def test_advise_aggregation(self, store_path, capsys):
        assert main(["advise", store_path, "--advisor", "aggregation"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out

    def test_replay(self, store_path, capsys):
        assert main(["replay", store_path, "--bin-hours", "6"]) == 0
        out = capsys.readouterr().out
        assert "Facility replay" in out and "pfs" in out


class TestIor:
    def test_ior_output(self, capsys):
        rc = main(
            ["ior", "--platform", "summit", "--layer", "insystem",
             "--api", "posix", "--tasks", "32", "--direction", "read"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "SCNL" in out and "/s" in out

    def test_ior_collective(self, capsys):
        rc = main(
            ["ior", "--api", "mpiio", "--collective", "--tasks", "128",
             "--transfer-size", "4MiB", "--direction", "write"]
        )
        assert rc == 0
        assert "MPIIO" in capsys.readouterr().out

    def test_bad_subcommand(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

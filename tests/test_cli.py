"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestShapes:
    def test_shapes_exit_zero_on_pass(self, capsys):
        rc = main(
            ["shapes", "--platform", "cori", "--scale", "2e-4", "--seed", "7"]
        )
        out = capsys.readouterr().out
        assert "shapes reproduced" in out
        # Small scales may flake a check; the exit code must reflect it.
        assert rc in (0, 1)
        if rc == 0:
            assert "[FAIL]" not in out


class TestStudy:
    def test_study_renders_tables(self, capsys):
        rc = main(
            ["study", "--platform", "summit", "--scale", "1e-4", "--seed", "7"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        for token in ("Table 2", "Table 6", "Figure 11"):
            assert token in out


class TestGenerateAnalyze:
    def test_round_trip(self, tmp_path, capsys):
        store_path = str(tmp_path / "year.npz")
        rc = main(
            ["generate", "--platform", "cori", "--scale", "5e-5",
             "--seed", "3", "--out", store_path]
        )
        assert rc == 0
        for exhibit in ("table2", "table3", "table6", "fig3", "fig11"):
            rc = main(["analyze", store_path, "--exhibit", exhibit])
            assert rc == 0
        out = capsys.readouterr().out
        assert "cori" in out

    def test_analyze_missing_store(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            main(["analyze", str(tmp_path / "nope.npz")])


class TestAdviseReplay:
    @pytest.fixture(scope="class")
    def store_path(self, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("cli") / "year.npz")
        assert main(
            ["generate", "--platform", "summit", "--scale", "2e-4",
             "--seed", "9", "--out", path]
        ) == 0
        return path

    def test_advise_staging(self, store_path, capsys):
        assert main(["advise", store_path, "--advisor", "staging"]) == 0
        out = capsys.readouterr().out
        assert "stageable PFS files" in out

    def test_advise_aggregation(self, store_path, capsys):
        assert main(["advise", store_path, "--advisor", "aggregation"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out

    def test_replay(self, store_path, capsys):
        assert main(["replay", store_path, "--bin-hours", "6"]) == 0
        out = capsys.readouterr().out
        assert "Facility replay" in out and "pfs" in out


class TestIor:
    def test_ior_output(self, capsys):
        rc = main(
            ["ior", "--platform", "summit", "--layer", "insystem",
             "--api", "posix", "--tasks", "32", "--direction", "read"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "SCNL" in out and "/s" in out

    def test_ior_collective(self, capsys):
        rc = main(
            ["ior", "--api", "mpiio", "--collective", "--tasks", "128",
             "--transfer-size", "4MiB", "--direction", "write"]
        )
        assert rc == 0
        assert "MPIIO" in capsys.readouterr().out

    def test_bad_subcommand(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestSpecCli:
    """``generate --spec`` and the unified ``--json`` listing shape."""

    def test_generate_spec_round_trip(self, tmp_path, capsys):
        path = str(tmp_path / "pack.npz")
        rc = main(
            ["generate", "--spec", "bb_eviction_storm",
             "--platform", "summit", "--scale", "5e-5",
             "--seed", "3", "--out", path]
        )
        assert rc == 0
        assert "bb_eviction_storm" in capsys.readouterr().out
        assert main(["analyze", path, "--exhibit", "table3"]) == 0
        assert "summit" in capsys.readouterr().out

    def test_generate_spec_file(self, tmp_path, capsys):
        import json

        spec_path = tmp_path / "probe.json"
        spec_path.write_text(json.dumps({
            "name": "probe",
            "phases": [{"name": "sweep", "pattern": "metadata_sweep",
                        "weight": 1.0}],
        }))
        out_path = str(tmp_path / "probe.npz")
        rc = main(
            ["generate", "--spec", str(spec_path), "--platform", "cori",
             "--scale", "5e-5", "--seed", "3", "--out", out_path]
        )
        assert rc == 0

    def test_generate_archetype_flag(self, tmp_path, capsys):
        path = str(tmp_path / "solo.npz")
        rc = main(
            ["generate", "--archetype", "sim_checkpoint",
             "--platform", "summit", "--scale", "5e-5",
             "--seed", "3", "--out", path]
        )
        assert rc == 0

    def test_generate_spec_and_archetype_conflict(self, tmp_path, capsys):
        rc = main(
            ["generate", "--spec", "paper_mix", "--archetype", "whatever",
             "--out", str(tmp_path / "x.npz")]
        )
        assert rc == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_generate_requires_out(self, capsys):
        rc = main(["generate", "--platform", "summit"])
        assert rc == 2
        assert "--out" in capsys.readouterr().err

    def test_bad_spec_reports_field_path(self, tmp_path, capsys):
        import json

        spec_path = tmp_path / "bad.json"
        spec_path.write_text(json.dumps({
            "name": "bad",
            "phases": [{"name": "p", "pattern": "checkpoint_storm",
                        "weight": 1.0, "params": {"ckpt_gb": 99999}}],
        }))
        rc = main(
            ["generate", "--spec", str(spec_path),
             "--out", str(tmp_path / "x.npz")]
        )
        assert rc == 1
        err = capsys.readouterr().err
        assert "phases[0].params.ckpt_gb" in err
        assert "<= 4096" in err

    def test_list_specs_text(self, capsys):
        assert main(["generate", "--list-specs"]) == 0
        out = capsys.readouterr().out
        assert "paper_mix" in out and "[pack]" in out
        assert "checkpoint_storm" in out and "[pattern]" in out

    @pytest.mark.parametrize("argv,listing", [
        (["generate", "--list-specs", "--json"], "specs"),
        (["analyze", "--list", "--json"], "queries"),
        (["whatif", "--list", "--json"], "scenarios"),
    ])
    def test_unified_listing_json_shape(self, argv, listing, capsys):
        import json

        assert main(argv) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "listing"
        assert payload["listing"] == listing
        assert payload["items"], argv
        for item in payload["items"]:
            assert "name" in item and "title" in item

    def test_analyze_json_result(self, tmp_path, capsys):
        path = str(tmp_path / "year.npz")
        assert main(
            ["generate", "--platform", "summit", "--scale", "5e-5",
             "--seed", "3", "--out", path]
        ) == 0
        capsys.readouterr()
        assert main(["analyze", path, "--exhibit", "table3", "--json"]) == 0
        import json

        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "table"
        assert payload["rows"]
        assert payload["headers"][0] == "system"

"""Tests for the middleware optimizations (chunk cache, adaptive placer)."""

import numpy as np
import pytest

from repro.darshan.accumulate import OP_WRITE, make_ops
from repro.darshan.stdio_ext import accumulate_stdio_ext
from repro.errors import ConfigurationError
from repro.middleware import (
    AccessPlan,
    WriteBackChunkCache,
    place_dataset,
)
from repro.middleware.chunkcache import CacheStats
from repro.platforms import cori, summit
from repro.units import GiB, KiB, MiB


def _write_stream(offsets, sizes):
    n = len(offsets)
    return make_ops(
        [OP_WRITE] * n, offsets, sizes,
        np.arange(n, dtype=float), [0.001] * n,
    )


class TestChunkCache:
    def test_small_writes_coalesce(self):
        cache = WriteBackChunkCache(chunk_size=64 * KiB, capacity_chunks=16)
        for i in range(128):
            cache.write(i * 512, 512)  # sequential 512B appends
        cache.flush()
        # 128 app writes fit one 64 KiB chunk -> 1 downstream write.
        assert cache.stats.flushed_writes == 1
        assert cache.stats.write_reduction == 128

    def test_rewrites_absorbed(self):
        cache = WriteBackChunkCache(chunk_size=64 * KiB, capacity_chunks=4)
        for _ in range(100):
            cache.write(0, 4096)  # hammer the same extent
        cache.flush()
        assert cache.stats.flushed_writes == 1
        assert cache.stats.absorbed_bytes > 0

    def test_eviction_under_pressure(self):
        cache = WriteBackChunkCache(chunk_size=64 * KiB, capacity_chunks=2)
        for chunk in range(5):
            cache.write(chunk * 64 * KiB, 1024)
        assert cache.stats.evictions == 3
        cache.flush()
        assert cache.stats.flushed_writes == 5

    def test_spanning_write(self):
        cache = WriteBackChunkCache(chunk_size=64 * KiB, capacity_chunks=8)
        cache.write(60 * KiB, 8 * KiB)  # spans two chunks
        cache.flush()
        assert cache.stats.flushed_writes == 2

    def test_downstream_ops_are_chunk_aligned(self):
        cache = WriteBackChunkCache(chunk_size=64 * KiB, capacity_chunks=8)
        cache.write(100, 10)
        cache.write(70 * KiB, 10)
        cache.flush()
        ops = cache.downstream_ops()
        assert (ops["offset"] % (64 * KiB) == 0).all()
        assert (ops["size"] == 64 * KiB).all()

    def test_apply_to_stream_reduces_waf(self):
        """The Recommendation 4 payoff, measured with the extended counters."""
        rng = np.random.default_rng(9)
        offsets = (rng.permutation(400) * 6_000).tolist()
        raw = _write_stream(offsets, [512] * 400)
        cached, stats = WriteBackChunkCache.apply_to_stream(
            raw, chunk_size=256 * KiB, capacity_chunks=32
        )
        waf_raw = accumulate_stdio_ext(1, 0, raw).write_amplification()
        waf_cached = accumulate_stdio_ext(1, 0, cached).write_amplification()
        assert waf_cached < waf_raw / 2
        assert stats.write_reduction > 10

    def test_zero_write_ignored(self):
        cache = WriteBackChunkCache()
        cache.write(0, 0)
        assert cache.stats.app_writes == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            WriteBackChunkCache(chunk_size=0)
        with pytest.raises(ConfigurationError):
            WriteBackChunkCache().write(-1, 10)
        with pytest.raises(TypeError):
            WriteBackChunkCache.apply_to_stream(np.zeros(3))

    def test_stats_dataclass(self):
        assert CacheStats().write_reduction == float("inf")


class TestAdaptivePlacer:
    def test_small_persistent_dataset_stays_on_pfs(self):
        """Staging overhead swamps the gain for small persistent data."""
        plan = AccessPlan(
            bytes_read=64 * MiB, bytes_written=0,
            request_size=1 * MiB, nprocs=8,
        )
        decision = place_dataset(
            summit(), plan, count_staging_in_job=True
        )
        assert decision.layer_key == "pfs"

    def test_hot_scratch_goes_in_system(self):
        """Non-persistent, re-read scratch: the BB case."""
        plan = AccessPlan(
            bytes_read=200 * GiB, bytes_written=200 * GiB,
            request_size=64 * KiB, nprocs=512,
            persistent_input=False, persistent_output=False,
        )
        decision = place_dataset(summit(), plan, count_staging_in_job=True)
        assert decision.layer_key == "insystem"
        assert decision.staging_seconds == 0.0
        assert decision.speedup > 1.0

    def test_scheduler_staging_favours_bb(self):
        """With movement outside the window (Cori style), the in-system
        layer wins for big streaming inputs too."""
        plan = AccessPlan(
            bytes_read=500 * GiB, bytes_written=0,
            request_size=4 * MiB, nprocs=1024,
        )
        decision = place_dataset(cori(), plan, count_staging_in_job=False)
        assert decision.layer_key == "insystem"
        assert decision.staging_seconds > 0

    def test_prices_both_options(self):
        plan = AccessPlan(
            bytes_read=1 * GiB, bytes_written=1 * GiB,
            request_size=1 * MiB, nprocs=64,
        )
        decision = place_dataset(summit(), plan)
        assert decision.pfs_seconds > 0
        assert decision.insystem_seconds > 0

    def test_plan_validation(self):
        with pytest.raises(ConfigurationError):
            AccessPlan(bytes_read=0, bytes_written=0, request_size=1, nprocs=1)
        with pytest.raises(ConfigurationError):
            AccessPlan(bytes_read=-1, bytes_written=0, request_size=1, nprocs=1)

"""LogMaterializer round trip: store rows -> DarshanLog -> disk -> store.

`repro.store.export` leans entirely on LogMaterializer, which had no
dedicated tests: these pin the contract that a materialized log, written
with ``write_log`` and re-ingested, preserves each log's byte totals
(§3.1 unique accounting) and its module presence.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.darshan import read_log, validate_log
from repro.darshan.format import write_log
from repro.errors import StoreError
from repro.instrument.runtime import LogMaterializer
from repro.platforms.interfaces import IOInterface
from repro.store.ingest import ingest_logs


def _unique_totals(files: np.ndarray) -> tuple[int, int]:
    """(read, written) over POSIX+STDIO rows — the paper's accounting
    (MPI-IO traffic is counted once, through its POSIX shadow)."""
    unique = files["interface"] != int(IOInterface.MPIIO)
    return (
        int(files["bytes_read"][unique].sum()),
        int(files["bytes_written"][unique].sum()),
    )


class TestLogMaterializerRoundTrip:
    @pytest.fixture(scope="class")
    def materializer(self, cori_store_small, cori_machine):
        return LogMaterializer(cori_machine, cori_store_small)

    @pytest.fixture(scope="class")
    def sample_ids(self, materializer):
        ids = materializer.log_ids(limit=8)
        assert len(ids) > 0
        return [int(i) for i in ids]

    def test_materialized_totals_match_store_rows(
        self, materializer, sample_ids, cori_store_small
    ):
        for log_id in sample_ids:
            rows = cori_store_small.files[
                cori_store_small.files["log_id"] == log_id
            ]
            log = materializer.materialize(log_id)
            validate_log(log)
            assert log.total_bytes() == _unique_totals(rows)

    def test_materialized_modules_match_store_rows(
        self, materializer, sample_ids, cori_store_small
    ):
        for log_id in sample_ids:
            rows = cori_store_small.files[
                cori_store_small.files["log_id"] == log_id
            ]
            log = materializer.materialize(log_id)
            want = {
                IOInterface(int(i)).module for i in np.unique(rows["interface"])
            }
            have = set(log.modules)
            # LUSTRE layout records are additional metadata, not a data
            # module; everything the rows name must be present.
            assert want <= have

    def test_write_read_ingest_round_trip(
        self, materializer, sample_ids, cori_store_small, cori_machine, tmp_path
    ):
        logs = []
        for log_id in sample_ids:
            log = materializer.materialize(log_id)
            path = os.path.join(str(tmp_path), f"l{log_id}.rdshn")
            write_log(log, path)
            back = read_log(path)
            validate_log(back)
            assert back.total_bytes() == log.total_bytes()
            assert set(back.modules) == set(log.modules)
            logs.append((log_id, back))

        ingested = ingest_logs(
            [log for _, log in logs],
            "cori",
            cori_machine.mount_table(),
            domains=cori_store_small.domains,
        )
        # Per-log totals survive the full cycle: ingest assigns new log
        # ids in input order, so compare pairwise.
        for new_id, (orig_id, _) in enumerate(logs):
            orig_rows = cori_store_small.files[
                cori_store_small.files["log_id"] == orig_id
            ]
            new_rows = ingested.files[ingested.files["log_id"] == new_id]
            assert _unique_totals(new_rows) == _unique_totals(orig_rows)
            assert set(np.unique(new_rows["interface"]).tolist()) == set(
                np.unique(orig_rows["interface"]).tolist()
            )

    def test_unknown_log_id_is_typed(self, materializer):
        with pytest.raises(StoreError, match="no rows"):
            materializer.materialize(1 << 60)

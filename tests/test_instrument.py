"""Tests for op-stream synthesis and the log materializer."""

import numpy as np
import pytest

from repro.darshan import read_log_bytes, validate_log, write_log_bytes
from repro.darshan.accumulate import OP_READ, OP_WRITE
from repro.darshan.constants import ModuleId
from repro.instrument.opstream import synthesize_ops
from repro.instrument.runtime import LogMaterializer
from repro.platforms import cori, summit
from repro.store.ingest import ingest_logs


class TestSynthesizeOps:
    def test_uniform_sizes_exact_bytes(self):
        ops = synthesize_ops(
            bytes_read=1003, bytes_written=0, read_ops=4, write_ops=0,
            read_time=1.0, write_time=0.0, meta_time=0.1,
        )
        reads = ops[ops["kind"] == OP_READ]
        assert reads["size"].sum() == 1003
        assert len(reads) == 4

    def test_histogram_realized(self):
        hist = np.zeros(10, dtype=np.int64)
        hist[2] = 3  # 1K_10K
        hist[4] = 1  # 100K_1M
        ops = synthesize_ops(
            bytes_read=3 * 2000 + 500_000, bytes_written=0,
            read_ops=4, write_ops=0, read_time=1.0, write_time=0.0,
            meta_time=0.0, read_hist=hist,
        )
        reads = ops[ops["kind"] == OP_READ]
        assert reads["size"].sum() == 3 * 2000 + 500_000
        from repro.darshan.bins import ACCESS_SIZE_BINS

        realized = ACCESS_SIZE_BINS.histogram(reads["size"])
        np.testing.assert_array_equal(realized, hist)

    def test_sorted_by_start(self):
        ops = synthesize_ops(
            bytes_read=100, bytes_written=100, read_ops=2, write_ops=2,
            read_time=1.0, write_time=1.0, meta_time=0.1,
        )
        assert (np.diff(ops["start"]) >= 0).all()

    def test_sequential_offsets(self):
        ops = synthesize_ops(
            bytes_read=300, bytes_written=0, read_ops=3, write_ops=0,
            read_time=1.0, write_time=0.0, meta_time=0.0,
        )
        reads = ops[ops["kind"] == OP_READ]
        np.testing.assert_array_equal(
            reads["offset"], np.concatenate(([0], np.cumsum(reads["size"][:-1])))
        )

    def test_bytes_without_ops_rejected(self):
        with pytest.raises(ValueError):
            synthesize_ops(
                bytes_read=10, bytes_written=0, read_ops=0, write_ops=0,
                read_time=0.0, write_time=0.0, meta_time=0.0,
            )

    def test_floor_violation_rejected(self):
        hist = np.zeros(10, dtype=np.int64)
        hist[5] = 1  # 1M_4M: floor 1 MB
        with pytest.raises(ValueError, match="below histogram floor"):
            synthesize_ops(
                bytes_read=100, bytes_written=0, read_ops=1, write_ops=0,
                read_time=1.0, write_time=0.0, meta_time=0.0, read_hist=hist,
            )

    def test_timer_distribution(self):
        ops = synthesize_ops(
            bytes_read=100, bytes_written=0, read_ops=4, write_ops=0,
            read_time=2.0, write_time=0.0, meta_time=0.5,
        )
        reads = ops[ops["kind"] == OP_READ]
        assert reads["duration"].sum() == pytest.approx(2.0)
        meta = ops[(ops["kind"] != OP_READ) & (ops["kind"] != OP_WRITE)]
        assert meta["duration"].sum() == pytest.approx(0.5)


class TestMaterializer:
    @pytest.fixture(scope="class")
    def mat(self, summit_store_small, summit_machine):
        return LogMaterializer(summit_machine, summit_store_small)

    def test_materialized_logs_validate(self, mat):
        for log in mat.materialize_many(8):
            validate_log(log)

    def test_job_metadata(self, mat, summit_store_small):
        log_id = int(mat.log_ids(1)[0])
        log = mat.materialize(log_id)
        assert log.job.platform == "summit"
        assert log.job.nprocs > 0
        assert "nnodes" in log.job.metadata

    def test_paths_resolve_to_right_layer(self, mat, summit_machine):
        table = summit_machine.mount_table()
        log = mat.materialize(int(mat.log_ids(1)[0]))
        for nr in log.name_records().values():
            layer = table.resolve(nr.path)
            assert layer is not None
            assert layer.key == nr.layer

    def test_serialization_round_trip(self, mat):
        log = mat.materialize(int(mat.log_ids(1)[0]))
        out = read_log_bytes(write_log_bytes(log))
        assert out.nfiles() == log.nfiles()
        validate_log(out)

    def test_unknown_log_id(self, mat):
        from repro.errors import StoreError

        with pytest.raises(StoreError):
            mat.materialize(999_999_999_999)


class TestEndToEndEquivalence:
    """Columnar fast path == object path, for both platforms."""

    @pytest.mark.parametrize("platform", ["summit", "cori"])
    def test_ingest_matches_store(self, platform, request):
        store = request.getfixturevalue(f"{platform}_store_small")
        machine = summit() if platform == "summit" else cori()
        mat = LogMaterializer(machine, store)
        nlogs = 6
        logs = mat.materialize_many(nlogs)
        ingested = ingest_logs(
            logs, platform, machine.mount_table(),
            domains=store.domains, scale=store.scale,
        )
        ids = mat.log_ids(nlogs)
        orig = store.files[np.isin(store.files["log_id"], ids)]
        assert len(ingested.files) == len(orig)
        # Aggregate quantities the analyses consume must match exactly.
        for col in ("bytes_read", "bytes_written", "reads", "writes"):
            assert ingested.files[col].sum() == orig[col].sum(), col
        assert ingested.files["read_hist"].sum() == orig["read_hist"].sum()
        np.testing.assert_allclose(
            np.sort(ingested.files["read_time"]),
            np.sort(orig["read_time"]),
            rtol=1e-12,
        )
        # Layer and interface splits survive the round trip.
        for layer in np.unique(orig["layer"]):
            for iface in np.unique(orig["interface"]):
                a = ((orig["layer"] == layer) & (orig["interface"] == iface)).sum()
                b = (
                    (ingested.files["layer"] == layer)
                    & (ingested.files["interface"] == iface)
                ).sum()
                assert a == b

    def test_extension_preseed_shares_codes(self, summit_store_small):
        """``extensions=`` pins the catalog prefix, so an ingested store
        can share ext codes with the generated store it came from."""
        store = summit_store_small
        machine = summit()
        mat = LogMaterializer(machine, store)
        logs = mat.materialize_many(4)
        ingested = ingest_logs(
            logs, "summit", machine.mount_table(),
            domains=store.domains, extensions=store.extensions,
            scale=store.scale,
        )
        n = len(store.extensions)
        assert list(ingested.extensions[:n]) == list(store.extensions)
        ids = mat.log_ids(4)
        orig = store.files[np.isin(store.files["log_id"], ids)]
        names = lambda s, rows: sorted(  # noqa: E731
            s.extensions[c] for c in rows["ext"]
        )
        assert names(ingested, ingested.files) == names(store, orig)

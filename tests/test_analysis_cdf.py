"""Tests for the CDF/boxplot helpers."""

import numpy as np
import pytest

from repro.analysis.cdf import BoxStats, boxplot_stats, cdf_at, weighted_cdf
from repro.errors import AnalysisError


class TestCdfAt:
    def test_basic(self):
        values = np.array([1, 2, 3, 4])
        np.testing.assert_allclose(
            cdf_at(values, np.array([0, 2, 10])), [0.0, 50.0, 100.0]
        )

    def test_threshold_inclusive(self):
        assert cdf_at(np.array([5]), np.array([5]))[0] == 100.0

    def test_empty_raises(self):
        with pytest.raises(AnalysisError):
            cdf_at(np.array([]), np.array([1]))

    def test_unsorted_input_ok(self):
        values = np.array([4, 1, 3, 2])
        assert cdf_at(values, np.array([2]))[0] == 50.0


class TestWeightedCdf:
    def test_cumulative(self):
        np.testing.assert_allclose(
            weighted_cdf(np.array([1, 1, 2])), [25.0, 50.0, 100.0]
        )

    def test_zero_total_raises(self):
        with pytest.raises(AnalysisError):
            weighted_cdf(np.zeros(3))


class TestBoxplotStats:
    def test_five_numbers(self):
        stats = boxplot_stats(np.arange(1, 101, dtype=float))
        assert stats.n == 100
        assert stats.median == pytest.approx(50.5)
        assert stats.q1 == pytest.approx(25.75)
        assert stats.q3 == pytest.approx(75.25)
        assert stats.whisker_lo == 1.0
        assert stats.whisker_hi == 100.0

    def test_outliers_excluded_from_whiskers(self):
        values = np.concatenate([np.ones(50), 2 * np.ones(50), [1000.0]])
        stats = boxplot_stats(values)
        assert stats.whisker_hi < 1000.0

    def test_empty(self):
        stats = boxplot_stats(np.array([]))
        assert stats.n == 0
        assert np.isnan(stats.median)
        empty = BoxStats.empty()
        assert empty.n == 0 and np.isnan(empty.median)

    def test_nan_filtered(self):
        stats = boxplot_stats(np.array([1.0, np.nan, 3.0]))
        assert stats.n == 2
        assert stats.median == 2.0

    def test_single_value(self):
        stats = boxplot_stats(np.array([7.0]))
        assert stats.median == stats.whisker_lo == stats.whisker_hi == 7.0

"""Tests for DXT extended tracing."""

import numpy as np
import pytest

from repro.darshan.accumulate import (
    OP_CLOSE,
    OP_OPEN,
    OP_READ,
    OP_WRITE,
    make_ops,
)
from repro.darshan.constants import ModuleId
from repro.darshan.dxt import (
    SEGMENT_DTYPE,
    DxtTrace,
    bandwidth_from_trace,
    decode_traces,
    encode_traces,
)
from repro.darshan.format import read_log_bytes, write_log_bytes
from repro.darshan.log import DarshanLog
from repro.darshan.records import FileRecord, JobRecord, NameRecord
from repro.errors import LogFormatError, LogValidationError


def _ops():
    return make_ops(
        kinds=[OP_OPEN, OP_READ, OP_READ, OP_WRITE, OP_CLOSE],
        offsets=[0, 0, 4096, 0, 0],
        sizes=[0, 4096, 4096, 1000, 0],
        starts=[0.0, 1.0, 2.0, 3.0, 4.0],
        durations=[0.0, 0.5, 0.5, 0.25, 0.0],
    )


class TestDxtTrace:
    def test_from_ops_data_only(self):
        trace = DxtTrace.from_ops(ModuleId.POSIX, 1, 3, _ops())
        assert trace.nsegments() == 3  # open/close not traced
        assert trace.bytes_moved(OP_READ) == 8192
        assert trace.bytes_moved(OP_WRITE) == 1000
        assert (trace.segments["rank"] == 3).all()

    def test_span(self):
        trace = DxtTrace.from_ops(ModuleId.POSIX, 1, 0, _ops())
        assert trace.span() == (1.0, 3.25)

    def test_stdio_rejected(self):
        """The §2.2 limitation: DXT never traces STDIO."""
        with pytest.raises(LogValidationError, match="STDIO"):
            DxtTrace(ModuleId.STDIO, 1)

    def test_validation(self):
        bad = np.zeros(1, dtype=SEGMENT_DTYPE)
        bad["kind"] = OP_READ
        bad["length"] = -1
        with pytest.raises(LogValidationError):
            DxtTrace(ModuleId.POSIX, 1, bad)

    def test_time_travel_rejected(self):
        bad = np.zeros(1, dtype=SEGMENT_DTYPE)
        bad["kind"] = OP_WRITE
        bad["start"] = 2.0
        bad["end"] = 1.0
        with pytest.raises(LogValidationError):
            DxtTrace(ModuleId.POSIX, 1, bad)


class TestBusyTime:
    def _trace(self, rows):
        seg = np.zeros(len(rows), dtype=SEGMENT_DTYPE)
        for i, (rank, start, end) in enumerate(rows):
            seg[i] = (rank, OP_READ, 0, 100, start, end)
        return DxtTrace(ModuleId.POSIX, 1, seg)

    def test_serial_segments_sum(self):
        trace = self._trace([(0, 0.0, 1.0), (0, 2.0, 3.0)])
        assert trace.busy_time(OP_READ) == pytest.approx(2.0)

    def test_overlap_counted_once(self):
        """The concurrency problem the counter methodology cannot see."""
        trace = self._trace([(0, 0.0, 1.0), (1, 0.5, 1.5), (2, 0.9, 2.0)])
        assert trace.busy_time(OP_READ) == pytest.approx(2.0)

    def test_bandwidth_estimator(self):
        trace = self._trace([(0, 0.0, 1.0), (1, 0.0, 1.0)])
        # 200 bytes over a 1-second union window (not 2 summed seconds).
        assert bandwidth_from_trace(trace, OP_READ) == pytest.approx(200.0)

    def test_empty(self):
        trace = DxtTrace(ModuleId.POSIX, 1)
        assert trace.busy_time() == 0.0
        assert bandwidth_from_trace(trace, OP_READ) == 0.0


class TestSequentiality:
    def test_consecutive_stream(self):
        seg = np.zeros(3, dtype=SEGMENT_DTYPE)
        for i in range(3):
            seg[i] = (0, OP_WRITE, i * 100, 100, float(i), i + 0.5)
        trace = DxtTrace(ModuleId.POSIX, 1, seg)
        assert trace.sequentiality(OP_WRITE) == 1.0

    def test_random_stream(self):
        seg = np.zeros(3, dtype=SEGMENT_DTYPE)
        offsets = [500, 0, 900]
        for i in range(3):
            seg[i] = (0, OP_WRITE, offsets[i], 10, float(i), i + 0.5)
        trace = DxtTrace(ModuleId.POSIX, 1, seg)
        assert trace.sequentiality(OP_WRITE) == 0.0

    def test_per_rank_isolation(self):
        # Two ranks each writing consecutively; interleaved in time.
        seg = np.zeros(4, dtype=SEGMENT_DTYPE)
        seg[0] = (0, OP_WRITE, 0, 100, 0.0, 0.1)
        seg[1] = (1, OP_WRITE, 1000, 100, 0.05, 0.15)
        seg[2] = (0, OP_WRITE, 100, 100, 0.2, 0.3)
        seg[3] = (1, OP_WRITE, 1100, 100, 0.25, 0.35)
        trace = DxtTrace(ModuleId.POSIX, 1, seg)
        assert trace.sequentiality(OP_WRITE) == 1.0


class TestSerialization:
    def test_encode_decode(self):
        traces = [
            DxtTrace.from_ops(ModuleId.POSIX, 10, 0, _ops()),
            DxtTrace.from_ops(ModuleId.MPIIO, 11, -1, _ops()),
        ]
        out = decode_traces(encode_traces(traces))
        assert len(out) == 2
        for a, b in zip(traces, out):
            assert a.module is b.module and a.record_id == b.record_id
            np.testing.assert_array_equal(a.segments, b.segments)

    def test_truncation_detected(self):
        payload = encode_traces([DxtTrace.from_ops(ModuleId.POSIX, 1, 0, _ops())])
        with pytest.raises(LogFormatError):
            decode_traces(payload[:-4])
        with pytest.raises(LogFormatError):
            decode_traces(payload + b"xx")

    def test_log_round_trip_with_dxt(self):
        job = JobRecord(1, 1, 4, 0.0, 10.0, platform="summit")
        log = DarshanLog(job)
        log.register_name(NameRecord(1, "/gpfs/alpine/x"))
        from repro.darshan.accumulate import accumulate

        log.add_record(accumulate(ModuleId.POSIX, 1, 0, _ops()))
        log.attach_trace(DxtTrace.from_ops(ModuleId.POSIX, 1, 0, _ops()))
        assert log.dxt_enabled
        out = read_log_bytes(write_log_bytes(log))
        assert out.dxt_enabled
        trace = out.trace_for(ModuleId.POSIX, 1)
        assert trace is not None and trace.nsegments() == 3

    def test_attach_requires_record(self):
        log = DarshanLog(JobRecord(1, 1, 4, 0.0, 10.0))
        log.register_name(NameRecord(1, "/x"))
        with pytest.raises(KeyError):
            log.attach_trace(DxtTrace.from_ops(ModuleId.POSIX, 1, 0, _ops()))


class TestMaterializerDxt:
    def test_dxt_optional(self, summit_store_small, summit_machine):
        from repro.instrument import LogMaterializer

        mat = LogMaterializer(summit_machine, summit_store_small)
        log_id = int(mat.log_ids(1)[0])
        plain = mat.materialize(log_id)
        traced = mat.materialize(log_id, dxt=True)
        assert not plain.dxt_enabled
        assert traced.dxt_enabled
        # STDIO records never get traces — the paper's stated gap.
        for trace in traced.traces():
            assert trace.module is not ModuleId.STDIO

"""Tests for the GPFS block-placement simulator."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.iosim.gpfs import GpfsFileLayout, GpfsFilesystem
from repro.units import MiB


class TestLayout:
    def test_nblocks(self):
        layout = GpfsFileLayout(100 * MiB, 16 * MiB, 154, 0)
        assert layout.nblocks == 7  # ceil(100/16)

    def test_empty_file(self):
        layout = GpfsFileLayout(0, 16 * MiB, 154, 3)
        assert layout.nblocks == 0
        assert layout.parallelism() == 0

    def test_round_robin_from_start(self):
        layout = GpfsFileLayout(64 * MiB, 16 * MiB, 10, 7)
        assert [layout.nsd_of_block(b) for b in range(4)] == [7, 8, 9, 0]

    def test_parallelism_caps_at_pool(self):
        small = GpfsFileLayout(32 * MiB, 16 * MiB, 154, 0)
        assert small.parallelism() == 2
        huge = GpfsFileLayout(10**13, 16 * MiB, 154, 0)
        assert huge.parallelism() == 154

    def test_nsds_for_range(self):
        layout = GpfsFileLayout(160 * MiB, 16 * MiB, 100, 5)
        # bytes [0, 32MiB) live in blocks 0..1 -> NSDs 5,6
        np.testing.assert_array_equal(
            layout.nsds_for_range(0, 32 * MiB), [5, 6]
        )
        # range clipped to file size
        assert len(layout.nsds_for_range(0, 10**12)) == 10

    def test_nsds_for_range_empty(self):
        layout = GpfsFileLayout(16 * MiB, 16 * MiB, 10, 0)
        assert layout.nsds_for_range(0, 0).size == 0

    def test_blocks_per_nsd_balanced(self):
        layout = GpfsFileLayout(1000 * 16 * MiB, 16 * MiB, 7, 3)
        counts = layout.blocks_per_nsd()
        assert counts.sum() == 1000
        assert counts.max() - counts.min() <= 1

    def test_invalid_start(self):
        with pytest.raises(SimulationError):
            GpfsFileLayout(1, 16 * MiB, 10, 10)

    def test_block_out_of_range(self):
        layout = GpfsFileLayout(16 * MiB, 16 * MiB, 10, 0)
        with pytest.raises(SimulationError):
            layout.nsd_of_block(1)


class TestFilesystem:
    def test_create_and_query(self, rng):
        fs = GpfsFilesystem(nsd_count=154)
        layout = fs.create("/a", 100 * MiB, rng)
        assert fs.layout("/a") is layout
        assert fs.nfiles() == 1

    def test_duplicate_create(self, rng):
        fs = GpfsFilesystem(nsd_count=4)
        fs.create("/a", 10, rng)
        with pytest.raises(SimulationError):
            fs.create("/a", 10, rng)

    def test_remove(self, rng):
        fs = GpfsFilesystem(nsd_count=4)
        fs.create("/a", 10, rng)
        fs.remove("/a")
        assert fs.nfiles() == 0
        with pytest.raises(SimulationError):
            fs.remove("/a")

    def test_random_start_spreads_load(self, rng):
        """Many single-block files should spread across NSDs (the paper's
        'randomly chosen NSD server' behaviour)."""
        fs = GpfsFilesystem(nsd_count=16)
        for i in range(3200):
            fs.create(f"/f{i}", 16 * MiB, rng)
        load = fs.server_load()
        assert load.sum() == 3200
        # Every server used, roughly evenly (multinomial tolerance).
        assert load.min() > 100
        assert load.max() < 320

    def test_file_parallelism_helper(self):
        fs = GpfsFilesystem(nsd_count=154)
        assert fs.file_parallelism(0) == 0
        assert fs.file_parallelism(1) == 1
        assert fs.file_parallelism(33 * MiB) == 3

"""Tests for the month exporter (the paper's public-dataset artifact)."""

import json
import os

import pytest

from repro.darshan import read_log, validate_log
from repro.errors import StoreError
from repro.store.export import MANIFEST_NAME, export_month
from repro.store.ingest import ingest_logs


class TestExportMonth:
    @pytest.fixture(scope="class")
    def exported(self, tmp_path_factory, cori_store_small, cori_machine):
        outdir = str(tmp_path_factory.mktemp("month"))
        manifest = export_month(
            cori_store_small, cori_machine, month=2, outdir=outdir, max_logs=15
        )
        return outdir, manifest

    def test_manifest_consistent(self, exported):
        outdir, manifest = exported
        with open(os.path.join(outdir, MANIFEST_NAME)) as fh:
            on_disk = json.load(fh)
        assert on_disk == manifest
        assert manifest["platform"] == "cori"
        assert manifest["logs_exported"] == len(manifest["logs"]) <= 15

    def test_all_logs_parse_and_validate(self, exported, cori_machine):
        outdir, manifest = exported
        for entry in manifest["logs"]:
            log = read_log(os.path.join(outdir, entry["file"]))
            validate_log(log)
            assert log.nfiles() == entry["files"]

    def test_round_trip_through_ingest(self, exported, cori_machine, cori_store_small):
        outdir, manifest = exported
        logs = [
            read_log(os.path.join(outdir, e["file"])) for e in manifest["logs"]
        ]
        ingested = ingest_logs(
            logs, "cori", cori_machine.mount_table(),
            domains=cori_store_small.domains,
        )
        assert len(ingested.files) > 0

    def test_truncation_flagged(self, exported):
        _, manifest = exported
        # max_logs=15 on a month of a 5e-4-scale year: either all logs
        # fit or the manifest admits the cut.
        if manifest["logs_exported"] == 15:
            assert manifest["truncated"] in (True, False)

    def test_bad_month(self, cori_store_small, cori_machine, tmp_path):
        with pytest.raises(StoreError):
            export_month(cori_store_small, cori_machine, 99, str(tmp_path))

"""Tests for repro.darshan.counters."""

import pytest

from repro.darshan.constants import ModuleId
from repro.darshan.counters import (
    counter_index,
    fcounter_index,
    has_size_histogram,
    module_counters,
    module_fcounters,
    qualified_name,
)


class TestRegistries:
    def test_posix_has_paper_counters(self):
        names = module_counters(ModuleId.POSIX)
        for required in ("BYTES_READ", "BYTES_WRITTEN", "OPENS", "SEEKS"):
            assert required in names
        # All ten histogram bins, both directions.
        assert sum(n.startswith("SIZE_READ_") for n in names) == 10
        assert sum(n.startswith("SIZE_WRITE_") for n in names) == 10

    def test_posix_timers(self):
        names = module_fcounters(ModuleId.POSIX)
        for required in ("F_READ_TIME", "F_WRITE_TIME", "F_META_TIME"):
            assert required in names

    def test_mpiio_collective_counters(self):
        names = module_counters(ModuleId.MPIIO)
        for required in ("INDEP_OPENS", "COLL_OPENS", "COLL_READS", "COLL_WRITES"):
            assert required in names

    def test_stdio_lacks_size_histograms(self):
        """The instrumentation gap Recommendation 4 calls out."""
        names = module_counters(ModuleId.STDIO)
        assert not any(n.startswith("SIZE_") for n in names)
        assert not has_size_histogram(ModuleId.STDIO)

    def test_posix_mpiio_have_histograms(self):
        assert has_size_histogram(ModuleId.POSIX)
        assert has_size_histogram(ModuleId.MPIIO)

    def test_lustre_metadata_only(self):
        names = module_counters(ModuleId.LUSTRE)
        assert "STRIPE_SIZE" in names and "STRIPE_WIDTH" in names
        assert "BYTES_READ" not in names
        assert module_fcounters(ModuleId.LUSTRE) == ()


class TestIndexLookup:
    def test_bare_and_qualified(self):
        bare = counter_index(ModuleId.POSIX, "BYTES_READ")
        qualified = counter_index(ModuleId.POSIX, "POSIX_BYTES_READ")
        assert bare == qualified

    def test_fcounter_lookup(self):
        assert fcounter_index(ModuleId.STDIO, "F_WRITE_TIME") >= 0

    def test_unknown_raises_keyerror(self):
        with pytest.raises(KeyError):
            counter_index(ModuleId.STDIO, "SIZE_READ_0_100")
        with pytest.raises(KeyError):
            fcounter_index(ModuleId.POSIX, "NOT_A_COUNTER")

    def test_indices_are_positions(self):
        names = module_counters(ModuleId.MPIIO)
        for i, name in enumerate(names):
            assert counter_index(ModuleId.MPIIO, name) == i

    def test_qualified_name(self):
        assert qualified_name(ModuleId.POSIX, "OPENS") == "POSIX_OPENS"
        assert qualified_name(ModuleId.MPIIO, "COLL_READS") == "MPIIO_COLL_READS"


class TestModuleId:
    def test_prefix_round_trip(self):
        for m in ModuleId:
            assert ModuleId.from_prefix(m.prefix) is m

    def test_from_prefix_tolerates_dash(self):
        assert ModuleId.from_prefix("MPI-IO") is ModuleId.MPIIO

    def test_unknown_prefix(self):
        with pytest.raises(ValueError):
            ModuleId.from_prefix("HDF5")

"""Tests for the batch scheduler substrate."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SchedulerError
from repro.iosim.datawarp import DataWarpManager
from repro.scheduler.batch import BatchScheduler, utilization
from repro.scheduler.job import BurstBufferRequest, JobSpec
from repro.scheduler.trace import (
    SECONDS_PER_DAY,
    SECONDS_PER_YEAR,
    ArrivalProcess,
    TraceConfig,
)
from repro.units import GB


def job(job_id, nnodes=1, runtime=100.0, submit=0.0, bb=None, nprocs=None):
    return JobSpec(
        job_id=job_id, user_id=1, project="p", domain="physics",
        nnodes=nnodes, nprocs=nprocs or nnodes * 4,
        runtime=runtime, submit_time=submit, bb_request=bb,
    )


class TestJobSpec:
    def test_node_hours(self):
        j = job(1, nnodes=10, runtime=7200)
        assert j.node_hours == 20.0

    def test_large_job_predicate(self):
        assert not job(1, nprocs=1024).is_large
        assert job(2, nprocs=1025).is_large

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            job(1, nnodes=0)
        with pytest.raises(ConfigurationError):
            job(1, runtime=0)
        with pytest.raises(ConfigurationError):
            JobSpec(1, 1, "p", "d", 1, 1, 10.0, -5.0)

    def test_bb_request_validation(self):
        with pytest.raises(ConfigurationError):
            BurstBufferRequest(0)


class TestBatchScheduler:
    def test_immediate_start_when_free(self):
        sched = BatchScheduler(total_nodes=100)
        out = sched.schedule([job(1, nnodes=10, submit=5.0)])
        assert out[0].start_time == 5.0
        assert out[0].end_time == 105.0
        assert out[0].wait_time == 0.0

    def test_queueing_when_full(self):
        sched = BatchScheduler(total_nodes=10)
        out = sched.schedule(
            [job(1, nnodes=10, runtime=100, submit=0.0),
             job(2, nnodes=10, runtime=50, submit=1.0)]
        )
        assert out[1].start_time == 100.0
        assert out[1].wait_time == 99.0

    def test_parallel_when_capacity_allows(self):
        sched = BatchScheduler(total_nodes=20)
        out = sched.schedule(
            [job(1, nnodes=10, submit=0.0), job(2, nnodes=10, submit=1.0)]
        )
        assert out[1].start_time == 1.0
        assert out[1].concurrent_jobs == 1

    def test_too_wide_rejected(self):
        sched = BatchScheduler(total_nodes=10)
        with pytest.raises(SchedulerError):
            sched.schedule([job(1, nnodes=11)])

    def test_fcfs_order(self):
        sched = BatchScheduler(total_nodes=10)
        jobs = [job(i, nnodes=10, runtime=10, submit=float(i)) for i in range(5)]
        out = sched.schedule(jobs)
        starts = [s.start_time for s in out]
        assert starts == sorted(starts)

    def test_datawarp_lifecycle(self):
        dw = DataWarpManager(pool_bytes=100 * GB, bb_node_count=4)
        sched = BatchScheduler(total_nodes=10, datawarp=dw)
        bb = BurstBufferRequest(
            capacity_bytes=40 * GB,
            stage_in=(("/pfs/in", "/bb/in", 1 * GB),),
        )
        sched.schedule([job(1, nnodes=2, bb=bb)])
        # Allocation released after the schedule drain.
        assert dw.active_jobs() == []
        assert dw.free_bytes() == 100 * GB

    def test_utilization(self):
        sched = BatchScheduler(total_nodes=10)
        out = sched.schedule([job(1, nnodes=5, runtime=100, submit=0.0)])
        u = utilization(out, total_nodes=10, horizon=100.0)
        assert u == pytest.approx(0.5)

    def test_utilization_bad_horizon(self):
        with pytest.raises(SchedulerError):
            utilization([], 10, 0)


class TestArrivalProcess:
    def test_count_near_target(self, rng):
        cfg = TraceConfig(target_jobs=5000, horizon=SECONDS_PER_YEAR)
        times = ArrivalProcess(cfg).sample(rng)
        assert 4000 < len(times) < 6000

    def test_sorted_within_horizon(self, rng):
        cfg = TraceConfig(target_jobs=1000)
        times = ArrivalProcess(cfg).sample(rng)
        assert (np.diff(times) >= 0).all()
        assert times.min() >= 0 and times.max() <= cfg.horizon

    def test_weekend_dip(self, rng):
        cfg = TraceConfig(target_jobs=200_000, weekend_factor=0.3,
                          downtime_fraction=0.0)
        times = ArrivalProcess(cfg).sample(rng)
        dow = (times // SECONDS_PER_DAY) % 7
        weekday_rate = (dow < 5).sum() / 5
        weekend_rate = (dow >= 5).sum() / 2
        assert weekend_rate < 0.5 * weekday_rate

    def test_diurnal_peak_afternoon(self, rng):
        cfg = TraceConfig(target_jobs=200_000, diurnal_peak=2.0,
                          downtime_fraction=0.0)
        times = ArrivalProcess(cfg).sample(rng)
        hour = (times % SECONDS_PER_DAY) // 3600
        assert (hour == 15).sum() > 1.5 * (hour == 3).sum()

    def test_downtime_windows_empty(self, rng):
        cfg = TraceConfig(target_jobs=100_000, downtime_fraction=0.05)
        times = ArrivalProcess(cfg).sample(rng)
        period = 28 * SECONDS_PER_DAY
        in_window = (times % period) < 0.05 * period
        assert in_window.sum() == 0

    def test_intensity_nonnegative(self):
        cfg = TraceConfig(target_jobs=10)
        proc = ArrivalProcess(cfg)
        t = np.linspace(0, cfg.horizon, 10_000)
        assert (proc.intensity(t) >= 0).all()

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            TraceConfig(target_jobs=0)
        with pytest.raises(ConfigurationError):
            TraceConfig(target_jobs=1, diurnal_peak=0.5)
        with pytest.raises(ConfigurationError):
            TraceConfig(target_jobs=1, weekend_factor=0)

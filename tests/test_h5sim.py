"""Tests for the HDF5-like middleware library."""

import numpy as np
import pytest

from repro.darshan.validate import validate_record
from repro.errors import ConfigurationError, SimulationError
from repro.middleware.h5sim import DatasetSpec, H5File
from repro.platforms import summit
from repro.units import KiB, MiB


class TestSlabExtents:
    def _spec(self, shape, itemsize=8, base=0):
        return DatasetSpec("d", shape, itemsize, shape, base)

    def test_1d_contiguous(self):
        spec = self._spec((100,))
        assert spec.slab_extents((10,), (5,)) == [(80, 40)]

    def test_2d_rows_are_extents(self):
        spec = self._spec((4, 10))
        extents = spec.slab_extents((1, 2), (2, 3))
        # rows 1 and 2, columns 2..5: offsets (1*10+2)*8 and (2*10+2)*8
        assert extents == [(96, 24), (176, 24)]

    def test_full_rows_merge(self):
        spec = self._spec((4, 10))
        extents = spec.slab_extents((1, 0), (2, 10))
        assert extents == [(80, 160)]  # two adjacent full rows -> one run

    def test_3d(self):
        spec = self._spec((2, 3, 4))
        extents = spec.slab_extents((0, 1, 0), (2, 1, 4))
        # plane 0 row 1 and plane 1 row 1; stride 12 elements between planes
        assert extents == [(32, 32), (128, 32)]

    def test_base_offset_applies(self):
        spec = self._spec((10,), base=1000)
        assert spec.slab_extents((0,), (10,)) == [(1000, 80)]

    def test_out_of_bounds(self):
        spec = self._spec((10,))
        with pytest.raises(SimulationError):
            spec.slab_extents((8,), (5,))
        with pytest.raises(SimulationError):
            spec.slab_extents((0, 0), (1, 1))

    def test_bad_spec(self):
        with pytest.raises(ConfigurationError):
            DatasetSpec("d", (0,), 8, (1,), 0)
        with pytest.raises(ConfigurationError):
            DatasetSpec("d", (4,), 8, (1, 1), 0)


class TestH5File:
    def _file(self, **kw):
        return H5File(summit(), "pfs", "/gpfs/alpine/sim/out.h5", **kw)

    def test_dataset_layout_is_disjoint(self):
        f = self._file()
        a = f.create_dataset("a", (100,), itemsize=8)
        b = f.create_dataset("b", (50,), itemsize=4)
        assert b.spec.base_offset == a.spec.nbytes
        with pytest.raises(SimulationError):
            f.create_dataset("a", (10,))

    def test_close_produces_valid_record(self):
        # aggregate=False: byte totals match the application exactly
        # (write-back flushes whole chunks otherwise).
        f = self._file(aggregate=False)
        d = f.create_dataset("x", (1000, 1000), itemsize=8)
        d.write_slab((0, 0), (1000, 1000))
        d.read_slab((0, 0), (10, 1000))
        report = f.close()
        validate_record(report.record)
        assert report.record.bytes_written == 8_000_000
        assert report.record.bytes_read == 80_000
        assert report.write_seconds > 0

    def test_double_close(self):
        f = self._file()
        f.create_dataset("x", (10,)).write_slab((0,), (10,))
        f.close()
        with pytest.raises(SimulationError):
            f.close()
        with pytest.raises(SimulationError):
            f.create_dataset("y", (10,))

    def test_dataset_lookup(self):
        f = self._file()
        f.create_dataset("x", (10,))
        assert f.dataset("x").spec.name == "x"
        with pytest.raises(SimulationError):
            f.dataset("nope")


class TestAggregationEffect:
    """Recommendation 4/6 end-to-end: aggregation reduces ops and time."""

    def _row_wise_writer(self, aggregate):
        f = H5File(
            summit(), "pfs", "/gpfs/alpine/sim/ckpt.h5",
            aggregate=aggregate, cache_chunk_bytes=1 * MiB,
        )
        d = f.create_dataset("field", (4096, 512), itemsize=8)  # 16 MiB
        for row in range(4096):
            d.write_slab((row, 0), (1, 512))  # 4 KiB app writes
        return f.close()

    def test_fewer_downstream_writes(self):
        raw = self._row_wise_writer(aggregate=False)
        agg = self._row_wise_writer(aggregate=True)
        assert raw.downstream_writes == 4096
        assert agg.downstream_writes < raw.downstream_writes / 50
        assert agg.aggregation_factor > 50

    def test_aggregation_is_faster(self):
        raw = self._row_wise_writer(aggregate=False)
        agg = self._row_wise_writer(aggregate=True)
        assert agg.write_seconds < raw.write_seconds / 5

    def test_bytes_conserved_modulo_chunk_rounding(self):
        agg = self._row_wise_writer(aggregate=True)
        # Write-back flushes whole chunks; total flushed >= app bytes.
        assert agg.record.bytes_written >= 4096 * 512 * 8

"""The workload-spec DSL: strict validation, loading, compilation, and
the byte-identity contract.

The load-bearing test is the differential: the builtin ``paper_mix``
pack must generate a store byte-identical to the direct archetype path
at ``jobs=1`` *and* under the sharded pipeline (``jobs=4``), because
compilation only rearranges which ArchetypeSpecs feed the generator —
the per-(archetype, group, log-block) RNG substreams are untouched
(DESIGN.md §15). Everything else here pins the SpecError contract:
every rejection names the dotted field path and the allowed range.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ReproError, SpecError
from repro.spec import (
    CompiledSpec,
    WorkloadSpec,
    compile_spec,
    generate_from_spec,
    get_pack,
    get_pattern,
    load_spec,
    pack_names,
    pattern_catalog,
    validate_spec,
)
from repro.workloads.generator import (
    GeneratorConfig,
    WorkloadGenerator,
    generate_with_shadows,
)
from repro.workloads.mixes import summit_mix
from tests.conftest import SEED, SMALL_SCALE
from tests.test_parallel_equivalence import assert_stores_identical


def minimal_spec(**overrides) -> dict:
    """A small valid spec dict tests mutate to probe one rejection."""
    data = {
        "name": "probe",
        "phases": [
            {"name": "storm", "pattern": "checkpoint_storm", "weight": 1.0},
        ],
    }
    data.update(overrides)
    return data


class TestValidation:
    def test_minimal_spec_validates(self):
        spec = validate_spec(minimal_spec())
        assert isinstance(spec, WorkloadSpec)
        assert spec.name == "probe"
        assert len(spec.phases) == 1
        # Pattern defaults are resolved at validation time, so compile
        # and the CLI listing can index params without re-defaulting.
        assert spec.phases[0].param_dict()["ckpt_gb"] == 128.0

    def test_unknown_top_level_key(self):
        with pytest.raises(SpecError, match=r"phasez: unknown key"):
            validate_spec(minimal_spec(phasez=[]))

    def test_unknown_phase_key(self):
        data = minimal_spec()
        data["phases"][0]["wieght"] = 1.0
        with pytest.raises(
            SpecError, match=r"phases\[0\]\.wieght: unknown key"
        ):
            validate_spec(data)

    def test_unknown_param_lists_allowed(self):
        data = minimal_spec()
        data["phases"][0]["params"] = {"checkpoint_gb": 10}
        with pytest.raises(
            SpecError,
            match=r"phases\[0\]\.params\.checkpoint_gb: unknown key.*ckpt_gb",
        ):
            validate_spec(data)

    def test_out_of_range_param_names_range(self):
        data = minimal_spec()
        data["phases"][0]["params"] = {"ckpt_gb": 99999}
        with pytest.raises(
            SpecError,
            match=r"phases\[0\]\.params\.ckpt_gb: must be <= 4096, got 99999",
        ):
            validate_spec(data)

    def test_wrong_type_param(self):
        data = minimal_spec()
        data["phases"][0]["params"] = {"ckpt_gb": "big"}
        with pytest.raises(
            SpecError, match=r"params\.ckpt_gb: must be a number"
        ):
            validate_spec(data)

    def test_bool_is_not_a_number(self):
        data = minimal_spec()
        data["phases"][0]["params"] = {"ckpt_gb": True}
        with pytest.raises(SpecError, match=r"must be a number, got True"):
            validate_spec(data)

    def test_integer_param_rejects_fraction(self):
        data = minimal_spec()
        data["phases"][0]["params"] = {"nodes_max": 12.5}
        with pytest.raises(
            SpecError, match=r"params\.nodes_max: must be an integer"
        ):
            validate_spec(data)

    def test_layer_choices(self):
        data = minimal_spec()
        data["phases"][0]["params"] = {"layer": "tape"}
        with pytest.raises(
            SpecError, match=r"params\.layer: must be one of pfs, insystem"
        ):
            validate_spec(data)

    def test_unknown_pattern_lists_available(self):
        data = minimal_spec()
        data["phases"][0]["pattern"] = "ckpt_storm"
        with pytest.raises(
            SpecError,
            match=r"phases\[0\]\.pattern: unknown pattern.*checkpoint_storm",
        ):
            validate_spec(data)

    def test_missing_required_keys(self):
        with pytest.raises(SpecError, match="name: required key is missing"):
            validate_spec({"phases": []})
        data = minimal_spec()
        del data["phases"][0]["weight"]
        with pytest.raises(
            SpecError, match=r"phases\[0\]\.weight: required key is missing"
        ):
            validate_spec(data)

    def test_empty_phases_rejected(self):
        with pytest.raises(SpecError, match="phases: must be a non-empty"):
            validate_spec(minimal_spec(phases=[]))

    def test_duplicate_phase_names_rejected(self):
        data = minimal_spec()
        data["phases"].append(dict(data["phases"][0]))
        with pytest.raises(
            SpecError, match=r"duplicate phase name 'storm'.*RNG substreams"
        ):
            validate_spec(data)

    def test_bad_platform(self):
        with pytest.raises(
            SpecError, match="platform: must be one of summit, cori"
        ):
            validate_spec(minimal_spec(platform="frontier"))

    def test_scale_bounds(self):
        with pytest.raises(SpecError, match="scale: must be <= 1"):
            validate_spec(minimal_spec(scale=2.0))

    def test_bad_spec_name(self):
        with pytest.raises(SpecError, match="name: must be alphanumeric"):
            validate_spec(minimal_spec(name="no spaces!"))

    def test_unknown_overlay_key(self):
        data = minimal_spec(overlays={"faults": {}})
        with pytest.raises(SpecError, match=r"overlays\.faults: unknown key"):
            validate_spec(data)

    def test_unknown_fault_preset_lists_available(self):
        data = minimal_spec(
            overlays={"fault": {"layer": "pfs", "preset": "meteor"}}
        )
        with pytest.raises(
            SpecError,
            match=r"overlays\.fault\.preset: unknown fault preset.*"
            r"eviction-storm",
        ):
            validate_spec(data)

    def test_fault_layer_required(self):
        data = minimal_spec(overlays={"fault": {"preset": "rebuild-storm"}})
        with pytest.raises(
            SpecError, match=r"overlays\.fault\.layer: must be one of"
        ):
            validate_spec(data)

    def test_contention_factor_bounds(self):
        data = minimal_spec(overlays={"contention": {"factor": 1000.0}})
        with pytest.raises(
            SpecError,
            match=r"overlays\.contention\.factor: must be <= 64, got 1000",
        ):
            validate_spec(data)

    def test_spec_error_is_repro_error_with_path(self):
        assert issubclass(SpecError, ReproError)
        err = SpecError("phases[0].weight", "boom")
        assert err.path == "phases[0].weight"
        assert str(err) == "phases[0].weight: boom"


class TestLoading:
    def test_pack_names_are_loadable(self):
        for name in pack_names():
            spec = load_spec(name)
            assert isinstance(spec, WorkloadSpec)
            assert spec.name == name

    def test_workload_spec_passes_through(self):
        spec = get_pack("paper_mix")
        assert load_spec(spec) is spec

    def test_round_trip_every_pack(self):
        for name in pack_names():
            spec = get_pack(name)
            assert load_spec(spec.to_dict()) == spec, name

    def test_json_file(self, tmp_path):
        path = tmp_path / "probe.json"
        path.write_text(json.dumps(minimal_spec()))
        spec = load_spec(str(path))
        assert spec.name == "probe"

    def test_malformed_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(SpecError, match="malformed JSON"):
            load_spec(str(path))

    def test_toml_file(self, tmp_path):
        tomllib = pytest.importorskip("tomllib")
        del tomllib
        path = tmp_path / "probe.toml"
        path.write_text(
            'name = "probe"\n'
            "[[phases]]\n"
            'name = "storm"\n'
            'pattern = "checkpoint_storm"\n'
            "weight = 1.0\n"
            "[phases.params]\n"
            "ckpt_gb = 64.0\n"
        )
        spec = load_spec(str(path))
        assert spec.phases[0].param_dict()["ckpt_gb"] == 64.0

    def test_unknown_source_names_packs(self):
        with pytest.raises(
            SpecError, match="not a builtin pack name.*paper_mix"
        ):
            load_spec("definitely_not_a_pack")

    def test_unknown_pack(self):
        with pytest.raises(SpecError, match="unknown scenario pack"):
            get_pack("nope")


class TestPatterns:
    def test_catalog_contents(self):
        assert sorted(pattern_catalog()) == [
            "archetype", "checkpoint_storm", "epoch_training",
            "metadata_sweep", "paper", "producer_consumer",
        ]

    def test_describe_shape(self):
        desc = get_pattern("checkpoint_storm").describe()
        assert desc["name"] == "checkpoint_storm"
        by_name = {p["name"]: p for p in desc["params"]}
        assert by_name["ckpt_gb"]["minimum"] == pytest.approx(1e-3)
        assert by_name["ckpt_gb"]["maximum"] == 4096.0
        assert by_name["layer"]["choices"] == ["pfs", "insystem"]

    def test_unknown_pattern(self):
        with pytest.raises(SpecError, match="unknown pattern 'nope'"):
            get_pattern("nope")


class TestCompile:
    def test_paper_mix_compiles_to_the_builtin_mix(self):
        compiled = compile_spec("paper_mix", platform="summit")
        assert isinstance(compiled, CompiledSpec)
        direct = summit_mix()
        assert [w for w, _ in compiled.mix] == [w for w, _ in direct]
        assert [s.name for _, s in compiled.mix] == [
            s.name for _, s in direct
        ]
        # No overlays: the generator runs with its own defaults.
        assert compiled.machine is None
        assert compiled.perf is None
        assert compiled.config == GeneratorConfig()

    def test_custom_phase_archetype_named_after_phase(self):
        compiled = compile_spec(minimal_spec(), platform="cori")
        assert [s.name for _, s in compiled.mix] == ["storm"]
        weight, spec = compiled.mix[0]
        assert weight == 1.0
        assert {g.name for g in spec.groups} == {"ckpt", "ckpt_logs"}

    def test_platform_required_somewhere(self):
        with pytest.raises(SpecError, match="platform.*pass platform="):
            compile_spec(minimal_spec())

    def test_spec_platform_wins_over_argument(self):
        compiled = compile_spec(
            minimal_spec(platform="cori"), platform="summit"
        )
        assert compiled.platform == "cori"

    def test_spec_scale_wins_over_argument(self):
        compiled = compile_spec(
            minimal_spec(scale=2e-4), platform="summit", scale=1e-3
        )
        assert compiled.config.scale == 2e-4

    def test_duplicate_archetype_name_across_phases(self):
        data = minimal_spec()
        data["phases"] = [
            {"name": "paper_a", "pattern": "paper", "weight": 0.5},
            # The paper pattern emits the builtin archetype names, so a
            # second paper phase collides on every one of them.
            {"name": "paper_b", "pattern": "paper", "weight": 0.5},
        ]
        with pytest.raises(
            SpecError,
            match=r"phases\[1\]: compiles to archetype .* already produced "
            r"by phases\[0\]",
        ):
            compile_spec(data, platform="summit")

    def test_archetype_pattern_unknown_name(self):
        data = minimal_spec()
        data["phases"] = [
            {"name": "solo", "pattern": "archetype", "weight": 1.0,
             "params": {"name": "bb_exclusive"}},
        ]
        with pytest.raises(
            SpecError,
            match=r"phases\[0\]\.params\.name: unknown summit archetype "
            r"'bb_exclusive'.*sim_checkpoint",
        ):
            compile_spec(data, platform="summit")
        compiled = compile_spec(data, platform="cori")
        assert compiled.mix[0][1].name == "bb_exclusive"

    def test_intensity_scales_files_per_run(self):
        base = compile_spec(minimal_spec(), platform="summit")
        data = minimal_spec()
        data["phases"][0]["intensity"] = 2.0
        boosted = compile_spec(data, platform="summit")
        for (_, a), (_, b) in zip(base.mix, boosted.mix):
            for ga, gb in zip(a.groups, b.groups):
                assert gb.files_per_run == pytest.approx(
                    2.0 * ga.files_per_run
                )

    def test_fault_overlay_degrades_machine_and_perf(self):
        compiled = compile_spec("degraded_ost_month", platform="summit")
        assert compiled.machine is not None
        assert compiled.perf is not None
        from repro.platforms import get_platform

        healthy = get_platform("summit").layers["pfs"]
        degraded = compiled.machine.layers["pfs"]
        assert degraded.server_count < healthy.server_count
        # The in-system layer is untouched by a pfs fault.
        assert (
            compiled.machine.layers["insystem"].server_count
            == get_platform("summit").layers["insystem"].server_count
        )

    def test_contention_overlay_reshapes_perf_only(self):
        compiled = compile_spec("noisy_neighbor", platform="summit")
        assert compiled.machine is None
        assert compiled.perf is not None
        from repro.iosim.contention import ContentionModel

        crowded = compiled.perf.contention["pfs"]
        base = ContentionModel.for_layer_kind("pfs")
        # More interfering load -> less of the layer left for the job.
        assert crowded.mean_fraction() < base.mean_fraction()

    def test_fault_magnitude_override(self):
        data = minimal_spec(
            overlays={
                "fault": {
                    "layer": "pfs", "preset": "rebuild-storm",
                    "servers_offline": 0.5,
                }
            }
        )
        halved = compile_spec(data, platform="summit")
        stock = compile_spec(
            minimal_spec(
                overlays={"fault": {"layer": "pfs",
                                    "preset": "rebuild-storm"}}
            ),
            platform="summit",
        )
        assert (
            halved.machine.layers["pfs"].server_count
            < stock.machine.layers["pfs"].server_count
        )


class TestPaperMixDifferential:
    """Acceptance gate: paper_mix ≡ direct archetype path, bit for bit."""

    def test_byte_identical_at_jobs_1(self):
        gen = WorkloadGenerator("summit", GeneratorConfig(scale=SMALL_SCALE))
        direct = generate_with_shadows(gen, SEED)
        via_spec = generate_from_spec(
            "paper_mix", platform="summit", scale=SMALL_SCALE, seed=SEED
        )
        assert_stores_identical(direct, via_spec, "paper_mix jobs=1")

    @pytest.mark.parallel
    def test_byte_identical_at_jobs_4(self):
        gen = WorkloadGenerator("cori", GeneratorConfig(scale=SMALL_SCALE))
        direct = generate_with_shadows(gen, SEED)
        via_spec = generate_from_spec(
            "paper_mix", platform="cori", scale=SMALL_SCALE, seed=SEED, jobs=4
        )
        assert_stores_identical(direct, via_spec, "paper_mix jobs=4")

    @pytest.mark.parallel
    def test_custom_spec_jobs_invariant(self):
        """Shard-invariance holds for compiled custom phases too."""
        data = minimal_spec(scale=SMALL_SCALE)
        serial = generate_from_spec(data, platform="summit", seed=SEED)
        sharded = generate_from_spec(
            data, platform="summit", seed=SEED, jobs=3
        )
        assert_stores_identical(serial, sharded, "custom spec jobs=3")

    def test_compiled_generate_matches_generate_from_spec(self):
        compiled = compile_spec(
            "paper_mix", platform="summit", scale=1e-4
        )
        a = compiled.generate(seed=11)
        b = generate_from_spec(
            "paper_mix", platform="summit", scale=1e-4, seed=11
        )
        assert_stores_identical(a, b, "compiled vs one-shot")

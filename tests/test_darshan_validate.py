"""Tests for repro.darshan.validate."""

import pytest

from repro.darshan.constants import ModuleId
from repro.darshan.log import DarshanLog
from repro.darshan.records import FileRecord, JobRecord, NameRecord
from repro.darshan.validate import validate_log, validate_record
from repro.errors import LogValidationError


def _posix(rid=1, **counters):
    rec = FileRecord(ModuleId.POSIX, rid)
    for k, v in counters.items():
        rec.set(k, v)
    return rec


class TestValidateRecord:
    def test_clean_record_passes(self):
        rec = _posix(
            BYTES_READ=2048, READS=2, SIZE_READ_1K_10K=2, F_READ_TIME=0.5
        )
        validate_record(rec)

    def test_negative_counter(self):
        rec = _posix(OPENS=-1)
        with pytest.raises(LogValidationError, match="negative"):
            validate_record(rec)

    def test_negative_timer(self):
        rec = _posix()
        rec.set("F_READ_TIME", -0.1)
        with pytest.raises(LogValidationError, match="negative"):
            validate_record(rec)

    def test_histogram_count_mismatch(self):
        rec = _posix(BYTES_READ=100, READS=2, SIZE_READ_0_100=1, F_READ_TIME=0.1)
        with pytest.raises(LogValidationError, match="histogram"):
            validate_record(rec)

    def test_bytes_below_histogram_floor(self):
        # One op in the 1M_4M bin implies at least 1 MB moved.
        rec = _posix(
            BYTES_READ=100, READS=1, SIZE_READ_1M_4M=1, F_READ_TIME=0.1
        )
        with pytest.raises(LogValidationError, match="lower bound"):
            validate_record(rec)

    def test_bytes_without_time(self):
        rec = _posix(BYTES_READ=100, READS=1, SIZE_READ_100_1K=1)
        with pytest.raises(LogValidationError, match="zero read time"):
            validate_record(rec)

    def test_stdio_bytes_without_histogram_ok(self):
        rec = FileRecord(ModuleId.STDIO, 1)
        rec.set("BYTES_WRITTEN", 100)
        rec.set("WRITES", 1)
        rec.set("F_WRITE_TIME", 0.2)
        validate_record(rec)


class TestValidateLog:
    def _log(self):
        log = DarshanLog(JobRecord(5, 1, 2, 0.0, 5.0))
        log.register_name(NameRecord(1, "/a"))
        return log

    def test_valid_log(self):
        log = self._log()
        log.add_record(
            _posix(BYTES_READ=150, READS=1, SIZE_READ_100_1K=1, F_READ_TIME=0.2)
        )
        validate_log(log)

    def test_invalid_record_caught_at_log_level(self):
        log = self._log()
        log.add_record(_posix(OPENS=-3))
        with pytest.raises(LogValidationError):
            validate_log(log)

"""Tests for repro.platforms."""

import pytest

from repro.errors import ConfigurationError
from repro.platforms import get_platform
from repro.platforms.interfaces import ACCOUNTING_INTERFACES, IOInterface
from repro.platforms.machine import Machine, MountTable
from repro.platforms.storage import LayerKind, Locality, StorageLayer
from repro.units import PB, TB


class TestSummit:
    def test_paper_facts(self, summit_machine):
        m = summit_machine
        assert m.compute_nodes == 4608
        assert m.gpus_per_node == 6
        assert m.peak_flops == pytest.approx(148.8e15)
        assert m.pfs.name == "Alpine"
        assert m.pfs.technology == "GPFS"
        assert m.pfs.capacity_bytes == 250 * PB
        assert m.pfs.peak_read_bw == pytest.approx(2.5 * TB)
        assert m.pfs.server_count == 154
        assert m.in_system.name == "SCNL"
        assert m.in_system.locality is Locality.NODE_LOCAL
        assert m.in_system.peak_read_bw == pytest.approx(26.7 * TB)
        assert m.in_system.peak_write_bw == pytest.approx(9.7 * TB)

    def test_gpfs_block_size(self, summit_machine):
        assert summit_machine.pfs.params["block_size"] == 16 * 1024**2


class TestCori:
    def test_paper_facts(self, cori_machine):
        m = cori_machine
        assert m.compute_nodes == 2388 + 9688
        assert m.pfs.name == "Cori Scratch"
        assert m.pfs.technology == "Lustre"
        assert m.pfs.capacity_bytes == 30 * PB
        assert m.pfs.server_count == 248
        assert m.pfs.params["mds_count"] == 5
        assert m.pfs.params["stripe_count"] == 1
        assert m.in_system.name == "CBB"
        assert m.in_system.technology == "DataWarp"
        assert m.in_system.locality is Locality.SYSTEM_LOCAL
        assert m.in_system.capacity_bytes == int(1.8 * PB)

    def test_flash_layers_flagged(self, cori_machine, summit_machine):
        assert cori_machine.in_system.is_flash
        assert summit_machine.in_system.is_flash
        assert not summit_machine.pfs.is_flash


class TestGetPlatform:
    def test_by_name(self):
        assert get_platform("Summit").name == "Summit"
        assert get_platform("CORI").name == "Cori"

    def test_unknown(self):
        with pytest.raises(ValueError):
            get_platform("frontier")


class TestMountTable:
    def test_longest_prefix_wins(self, summit_machine):
        table = summit_machine.mount_table()
        layer = table.resolve("/gpfs/alpine/proj/x.h5")
        assert layer.key == "pfs"
        assert table.resolve("/mnt/bb/tmp/y").key == "insystem"

    def test_unmounted_is_none(self, summit_machine):
        table = summit_machine.mount_table()
        assert table.resolve("/dev/null") is None
        assert table.resolve("/gpfs_alpine_lookalike/x") is None

    def test_relative_prefix_rejected(self, summit_machine):
        with pytest.raises(ConfigurationError):
            MountTable({"relative/path": summit_machine.pfs})


class TestValidation:
    def _layer(self, **over):
        base = dict(
            key="pfs", name="X", kind=LayerKind.PFS,
            locality=Locality.CENTER_WIDE, technology="GPFS",
            capacity_bytes=10**15, peak_read_bw=1e12, peak_write_bw=1e12,
            mount_point="/x", server_count=10,
        )
        base.update(over)
        return StorageLayer(**base)

    def test_bad_capacity(self):
        with pytest.raises(ConfigurationError):
            self._layer(capacity_bytes=0)

    def test_bad_mount(self):
        with pytest.raises(ConfigurationError):
            self._layer(mount_point="x")

    def test_machine_requires_pfs(self):
        ins = self._layer(key="insystem", kind=LayerKind.IN_SYSTEM, mount_point="/bb")
        with pytest.raises(ConfigurationError, match="PFS"):
            Machine(
                name="M", model="?", compute_nodes=10, cores_per_node=8,
                gpus_per_node=0, peak_flops=1e15, layers={"insystem": ins},
            )

    def test_layer_key_consistency(self):
        pfs = self._layer()
        with pytest.raises(ConfigurationError, match="layer.key"):
            Machine(
                name="M", model="?", compute_nodes=10, cores_per_node=8,
                gpus_per_node=0, peak_flops=1e15, layers={"wrong": pfs},
            )

    def test_layer_by_name(self, summit_machine):
        assert summit_machine.layer_by_name("alpine").key == "pfs"
        assert summit_machine.layer_by_name("insystem").name == "SCNL"
        with pytest.raises(KeyError):
            summit_machine.layer_by_name("nope")


class TestInterfaces:
    def test_module_mapping(self):
        from repro.darshan.constants import ModuleId

        assert IOInterface.POSIX.module is ModuleId.POSIX
        assert IOInterface.STDIO.module is ModuleId.STDIO

    def test_stdio_lacks_request_sizes(self):
        assert not IOInterface.STDIO.records_request_sizes
        assert IOInterface.POSIX.records_request_sizes

    def test_accounting_interfaces(self):
        assert IOInterface.MPIIO not in ACCOUNTING_INTERFACES

    def test_from_name(self):
        assert IOInterface.from_name("mpi-io") is IOInterface.MPIIO
        assert IOInterface.from_name("POSIX") is IOInterface.POSIX
        with pytest.raises(ValueError):
            IOInterface.from_name("hdf5")

    def test_labels(self):
        assert IOInterface.MPIIO.label == "MPI-IO"

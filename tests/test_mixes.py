"""Tests for archetype specifications and the calibrated platform mixes."""

import pytest

from repro.errors import ConfigurationError
from repro.platforms.interfaces import IOInterface
from repro.workloads.archetypes import ArchetypeSpec, FileGroupSpec
from repro.workloads.distributions import (
    BinProfile,
    Constant,
    DiscreteLogUniform,
    LogNormal,
)
from repro.workloads.domains import (
    CORI_DOMAINS,
    SUMMIT_DOMAINS,
    domain_catalog,
)
from repro.workloads.mixes import cori_mix, summit_mix


def _group(**over):
    base = dict(
        name="g",
        layer="pfs",
        interface=IOInterface.POSIX,
        files_per_run=1.0,
        opclass_probs=(0.5, 0.25, 0.25),
        read_size=Constant(100.0),
        write_size=Constant(100.0),
        read_profile=BinProfile.from_dict({"0_100": 1.0}),
        write_profile=BinProfile.from_dict({"0_100": 1.0}),
    )
    base.update(over)
    return FileGroupSpec(**base)


class TestFileGroupSpec:
    def test_valid(self):
        _group()

    def test_bad_layer(self):
        with pytest.raises(ConfigurationError):
            _group(layer="tape")

    def test_opclass_probs_sum(self):
        with pytest.raises(ConfigurationError):
            _group(opclass_probs=(0.5, 0.5, 0.5))

    def test_bad_shared_prob(self):
        with pytest.raises(ConfigurationError):
            _group(shared_prob=1.5)

    def test_bad_ext_probs(self):
        with pytest.raises(ConfigurationError):
            _group(ext_probs={"h5": -1.0})


class TestArchetypeSpec:
    def _spec(self, **over):
        base = dict(
            name="a",
            domains={"physics": 1.0},
            nnodes=DiscreteLogUniform(1, 4),
            procs_per_node=4,
            runtime=LogNormal(100, 0.5),
            instances=DiscreteLogUniform(1, 4),
            groups=(_group(),),
        )
        base.update(over)
        return ArchetypeSpec(**base)

    def test_valid(self):
        assert self._spec().expected_files_per_run() == 1.0

    def test_needs_domains(self):
        with pytest.raises(ConfigurationError):
            self._spec(domains={})

    def test_needs_groups(self):
        with pytest.raises(ConfigurationError):
            self._spec(groups=())

    def test_positive_domain_weights(self):
        with pytest.raises(ConfigurationError):
            self._spec(domains={"physics": 0})


class TestPlatformMixes:
    @pytest.mark.parametrize("mix_fn,catalog", [
        (summit_mix, SUMMIT_DOMAINS),
        (cori_mix, CORI_DOMAINS),
    ])
    def test_domains_within_catalog(self, mix_fn, catalog):
        for _, spec in mix_fn():
            for domain in spec.domains:
                assert domain in catalog, (spec.name, domain)

    @pytest.mark.parametrize("mix_fn", [summit_mix, cori_mix])
    def test_weights_sum_to_one(self, mix_fn):
        total = sum(w for w, _ in mix_fn())
        assert total == pytest.approx(1.0, abs=1e-6)

    def test_summit_scnl_users_are_rare(self):
        """Table 5: only ~1.2% of Summit jobs touch SCNL."""
        scnl_weight = sum(
            w for w, spec in summit_mix()
            if any(g.layer == "insystem" for g in spec.groups)
        )
        assert 0.005 < scnl_weight < 0.03

    def test_cori_bb_exclusive_weight(self):
        """Table 5: 14.38% of Cori jobs are CBB-exclusive."""
        for w, spec in cori_mix():
            if spec.name == "bb_exclusive":
                assert w == pytest.approx(0.144, abs=0.01)
                assert all(g.layer == "insystem" for g in spec.groups)
                break
        else:
            pytest.fail("no bb_exclusive archetype")

    def test_summit_has_no_bb_directives(self):
        """DataWarp-style capacity requests are a Cori thing."""
        assert all(spec.bb_capacity is None for _, spec in summit_mix())

    def test_cori_bb_archetypes_request_capacity(self):
        bb = [s for _, s in cori_mix() if any(g.layer == "insystem" for g in s.groups)]
        assert bb and all(s.bb_capacity is not None for s in bb)

    def test_scnl_domain_specialists(self):
        """Figure 7a: biology/materials read-only; chemistry write-only."""
        by_name = {s.name: s for _, s in summit_mix()}
        bio = by_name["scnl_bio_readonly"]
        assert set(bio.domains) == {"biology", "materials"}
        scnl_groups = [g for g in bio.groups if g.layer == "insystem"]
        assert all(g.opclass_probs == (1.0, 0.0, 0.0) for g in scnl_groups)
        chem = by_name["scnl_chem_writeonly"]
        assert set(chem.domains) == {"chemistry"}
        scnl_groups = [g for g in chem.groups if g.layer == "insystem"]
        assert all(g.opclass_probs == (0.0, 0.0, 1.0) for g in scnl_groups)


class TestDomainCatalogs:
    def test_catalog_lookup(self):
        assert domain_catalog("summit") is SUMMIT_DOMAINS
        assert domain_catalog("Cori") is CORI_DOMAINS
        with pytest.raises(ValueError):
            domain_catalog("perlmutter")

    def test_paper_domains_present(self):
        assert "lattice theory" in SUMMIT_DOMAINS
        assert "staff" in SUMMIT_DOMAINS
        assert "fusion" in CORI_DOMAINS
        assert "energy sciences" in CORI_DOMAINS


class TestGoldenMixCharacterization:
    """The calibrated mixes, pinned structurally.

    The spec DSL's ``paper`` pattern re-emits these mixes verbatim and
    its byte-identity contract depends on them not drifting silently —
    so every weight, group shape, and domain table is pinned in
    ``tests/goldens/mixes_characterization.json``. An intentional
    recalibration regenerates the golden in the same commit.
    """

    @staticmethod
    def characterize(mix):
        return [
            {
                "name": spec.name,
                "weight": weight,
                "procs_per_node": spec.procs_per_node,
                "domains": dict(sorted(spec.domains.items())),
                "groups": [
                    {
                        "name": g.name,
                        "layer": g.layer,
                        "interface": g.interface.name,
                        "files_per_run": g.files_per_run,
                        "opclass_probs": list(g.opclass_probs),
                        "shared_prob": g.shared_prob,
                        "collective": g.collective,
                    }
                    for g in spec.groups
                ],
            }
            for weight, spec in mix
        ]

    @pytest.fixture(scope="class")
    def golden(self):
        import json
        import os

        path = os.path.join(
            os.path.dirname(__file__),
            "goldens",
            "mixes_characterization.json",
        )
        with open(path) as fh:
            return json.load(fh)

    @pytest.mark.parametrize("platform,mix_fn", [
        ("summit", summit_mix),
        ("cori", cori_mix),
    ])
    def test_mix_matches_golden(self, platform, mix_fn, golden):
        import json

        measured = json.loads(json.dumps(self.characterize(mix_fn())))
        assert measured == golden[platform], (
            f"{platform} mix drifted from its golden characterization; "
            "if the recalibration is intentional, regenerate "
            "tests/goldens/mixes_characterization.json in this commit"
        )

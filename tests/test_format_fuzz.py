"""Failure injection against the binary log parser.

Systematically corrupt every header/region-table field of a valid log and
assert the parser either rejects the file with LogFormatError or returns
a structurally valid log (a flipped bit in, e.g., padding may be benign)
— never crashes with an unrelated exception, never hangs, never returns
garbage silently when a checksum should have caught it.
"""

import struct
import zlib

import numpy as np
import pytest

from repro.darshan.constants import LOG_MAGIC, ModuleId
from repro.darshan.format import (
    _HEADER,
    _REGION,
    read_log_bytes,
    write_log,
    write_log_bytes,
)
from repro.darshan.log import DarshanLog
from repro.darshan.records import FileRecord, JobRecord, NameRecord
from repro.darshan.validate import validate_log
from repro.errors import LogFormatError, LogValidationError, ReproError


def _make_log(job_id=3, nfiles=4):
    job = JobRecord(job_id, 7, 8, 0.0, 60.0, platform="summit", domain="biology")
    log = DarshanLog(job)
    for i in range(nfiles):
        rid = 50 + i
        log.register_name(NameRecord(rid, f"/gpfs/alpine/x{i}", "/gpfs/alpine", "pfs"))
        rec = FileRecord(ModuleId.POSIX, rid)
        rec.set("BYTES_READ", 4096)
        rec.set("READS", 1)
        rec.set("SIZE_READ_1K_10K", 1)
        rec.set("F_READ_TIME", 0.5)
        log.add_record(rec)
    return log


@pytest.fixture(scope="module")
def blob():
    return write_log_bytes(_make_log())


@pytest.fixture(scope="module")
def blob_plain():
    """The same log without compression: strings sit raw in the file."""
    return write_log_bytes(_make_log(), compress=False)


def _regions(data):
    """Parse the region table: list of (kind, desc_offset, offset, raw, comp)."""
    nregions = struct.unpack_from("<I", data, _HEADER.size - 4)[0]
    out = []
    for r in range(nregions):
        base = _HEADER.size + r * _REGION.size
        kind, _mod, _codec, _r0, off, raw, comp, _crc, _r1 = _REGION.unpack_from(
            data, base
        )
        out.append((kind, base, off, raw, comp))
    return out


def _fix_crc(data: bytearray, desc_base: int) -> None:
    """Recompute a region's CRC after an in-place payload edit."""
    _k, _m, codec, _r0, off, raw, comp, _crc, _r1 = _REGION.unpack_from(
        data, desc_base
    )
    payload = bytes(data[off : off + comp])
    if codec:  # zlib codec: CRC covers the decompressed bytes
        payload = zlib.decompress(payload)
    struct.pack_into("<I", data, desc_base + 32, zlib.crc32(payload) & 0xFFFFFFFF)


def _expect_reject_or_valid(data: bytes) -> None:
    """The parser contract under corruption."""
    try:
        out = read_log_bytes(bytes(data))
    except (LogFormatError,):
        return  # rejected: fine
    # Accepted: must still be semantically valid.
    try:
        validate_log(out)
    except LogValidationError as exc:  # pragma: no cover - would be a bug
        pytest.fail(f"parser accepted a semantically broken log: {exc}")


class TestHeaderFuzz:
    def test_every_header_byte_flip(self, blob):
        for i in range(_HEADER.size):
            data = bytearray(blob)
            data[i] ^= 0xFF
            _expect_reject_or_valid(data)

    def test_region_count_inflated(self, blob):
        data = bytearray(blob)
        # region count lives at the end of the header
        off = _HEADER.size - 4
        struct.pack_into("<I", data, off, 10_000)
        with pytest.raises(LogFormatError):
            read_log_bytes(bytes(data))


class TestRegionTableFuzz:
    def test_every_region_field_mutation(self, blob):
        nregions = struct.unpack_from("<I", blob, _HEADER.size - 4)[0]
        for r in range(nregions):
            base = _HEADER.size + r * _REGION.size
            for field_off in range(0, _REGION.size, 2):
                data = bytearray(blob)
                data[base + field_off] ^= 0xA5
                _expect_reject_or_valid(data)

    def test_offset_pointing_past_eof(self, blob):
        data = bytearray(blob)
        base = _HEADER.size  # first region descriptor
        # offset field is at +8 within the descriptor
        struct.pack_into("<Q", data, base + 8, len(blob) + 1000)
        with pytest.raises(LogFormatError):
            read_log_bytes(bytes(data))

    def test_crc_mismatch_caught(self, blob):
        data = bytearray(blob)
        base = _HEADER.size
        struct.pack_into("<I", data, base + 32, 0xDEADBEEF)
        with pytest.raises(LogFormatError, match="CRC"):
            read_log_bytes(bytes(data))


class TestPayloadFuzz:
    def test_random_payload_corruption(self, blob):
        rng = np.random.default_rng(7)
        body_start = _HEADER.size
        for _ in range(200):
            data = bytearray(blob)
            i = int(rng.integers(body_start, len(blob)))
            data[i] ^= int(rng.integers(1, 256))
            _expect_reject_or_valid(data)

    def test_truncation_at_every_tenth_byte(self, blob):
        for end in range(0, len(blob), max(len(blob) // 50, 1)):
            with pytest.raises(LogFormatError):
                read_log_bytes(blob[:end])

    def test_appended_garbage_tolerated_or_rejected(self, blob):
        # Trailing bytes after the last region: regions are located by
        # offset, so extra bytes are ignorable; either behaviour is fine,
        # crashing is not.
        _expect_reject_or_valid(bytearray(blob + b"\x00" * 64))


class TestZlibFuzz:
    """Compressed-payload attacks must surface as LogFormatError."""

    def test_corrupt_zlib_stream(self, blob):
        for kind, base, off, raw, comp in _regions(blob):
            data = bytearray(blob)
            data[off + comp // 2] ^= 0xFF  # clobber mid-stream
            try:
                read_log_bytes(bytes(data))
            except LogFormatError:
                continue  # typed rejection (zlib error or CRC mismatch)
            except Exception as exc:  # pragma: no cover - the bug we guard
                pytest.fail(f"region {kind}: bare {type(exc).__name__} escaped")

    def test_declared_size_smaller_than_stream(self, blob):
        # Shrink raw_len: bounded decompression stops one byte past it and
        # the length check fires — a typed rejection, not a bad log.
        data = bytearray(blob)
        _, base, off, raw, comp = _regions(blob)[0]
        struct.pack_into("<Q", data, base + 16, max(raw // 2, 1))
        with pytest.raises(LogFormatError):
            read_log_bytes(bytes(data))

    def test_hostile_declared_size_does_not_allocate(self, blob):
        # A multi-exabyte raw_len must be rejected by arithmetic, not by
        # attempting the allocation (bounded zlib.decompressobj path).
        data = bytearray(blob)
        _, base, off, raw, comp = _regions(blob)[0]
        struct.pack_into("<Q", data, base + 16, 2**62)
        with pytest.raises(LogFormatError):
            read_log_bytes(bytes(data))

    def test_unknown_codec_rejected(self, blob):
        data = bytearray(blob)
        _, base, off, raw, comp = _regions(blob)[0]
        struct.pack_into("<H", data, base + 4, 77)
        with pytest.raises(LogFormatError, match="codec"):
            read_log_bytes(bytes(data))


class TestStringFuzz:
    def test_malformed_utf8_is_typed(self, blob_plain):
        # Overwrite the job platform string ("summit", right after the
        # fixed QQIdd prelude) with invalid UTF-8 and re-sign the CRC so
        # the decoder actually reaches the string field.
        data = bytearray(blob_plain)
        kind, base, off, raw, comp = _regions(blob_plain)[0]
        assert kind == 1  # job region is written first
        str_off = off + struct.calcsize("<QQIdd") + 4  # skip length prefix
        data[str_off : str_off + 4] = b"\xff\xfe\xff\xfe"
        _fix_crc(data, base)
        with pytest.raises(LogFormatError, match="UTF-8"):
            read_log_bytes(bytes(data))

    def test_string_length_past_region_end(self, blob_plain):
        data = bytearray(blob_plain)
        kind, base, off, raw, comp = _regions(blob_plain)[0]
        str_len_off = off + struct.calcsize("<QQIdd")
        struct.pack_into("<I", data, str_len_off, 10**6)
        _fix_crc(data, base)
        with pytest.raises(LogFormatError, match="truncated string"):
            read_log_bytes(bytes(data))


class TestSeededCorruptionHarness:
    """Randomized end-to-end sweep: whatever the mutation, only typed
    ``repro.errors`` exceptions may escape — a bare ``struct.error``,
    ``zlib.error``, or ``UnicodeDecodeError`` is a parser bug."""

    MUTATIONS = ("flip", "zero", "truncate", "slice_dup", "insert", "delete")

    @staticmethod
    def _mutate(rng, data: bytes) -> bytes:
        kind = rng.choice(TestSeededCorruptionHarness.MUTATIONS)
        buf = bytearray(data)
        n = len(buf)
        if kind == "flip":
            for _ in range(int(rng.integers(1, 8))):
                buf[int(rng.integers(0, n))] ^= int(rng.integers(1, 256))
        elif kind == "zero":
            i = int(rng.integers(0, n))
            j = min(n, i + int(rng.integers(1, 64)))
            buf[i:j] = b"\x00" * (j - i)
        elif kind == "truncate":
            del buf[int(rng.integers(0, n)):]
        elif kind == "slice_dup":
            i = int(rng.integers(0, n))
            j = min(n, i + int(rng.integers(1, 64)))
            buf[i:i] = buf[i:j]
        elif kind == "insert":
            i = int(rng.integers(0, n))
            buf[i:i] = bytes(rng.integers(0, 256, size=int(rng.integers(1, 32)), dtype=np.uint8))
        else:  # delete
            i = int(rng.integers(0, n))
            j = min(n, i + int(rng.integers(1, 32)))
            del buf[i:j]
        return bytes(buf)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("compressed", [True, False], ids=["zlib", "raw"])
    def test_only_typed_errors_escape(self, blob, blob_plain, seed, compressed):
        rng = np.random.default_rng(20220627 + seed)
        base = blob if compressed else blob_plain
        for _ in range(150):
            data = self._mutate(rng, base)
            try:
                out = read_log_bytes(data)
            except ReproError:
                continue  # typed rejection: the contract
            except Exception as exc:  # pragma: no cover - the bug we hunt
                pytest.fail(
                    f"bare {type(exc).__name__} escaped the parser: {exc}"
                )
            try:
                validate_log(out)
            except LogValidationError as exc:  # pragma: no cover
                pytest.fail(f"accepted a semantically broken log: {exc}")


class TestCorruptShardIngest:
    """A corrupt log fails the whole sharded ingest, naming the shard."""

    @pytest.fixture()
    def log_dir(self, tmp_path):
        paths = []
        for i in range(8):
            p = str(tmp_path / f"log{i}.darshan")
            write_log(_make_log(job_id=100 + i), p)
            paths.append(p)
        return paths

    @staticmethod
    def _corrupt(path):
        with open(path, "r+b") as fh:
            fh.seek(0)
            fh.write(b"\x00" * 16)  # destroy the magic

    def test_serial_ingest_names_the_file(self, log_dir, summit_machine):
        from repro.store.ingest import ingest_log_paths

        self._corrupt(log_dir[5])
        with pytest.raises(LogFormatError, match="log5"):
            ingest_log_paths(log_dir, "summit", summit_machine.mount_table())

    def test_sharded_ingest_names_shard_and_file(self, log_dir, summit_machine):
        from repro.errors import ShardError
        from repro.store.ingest import ingest_log_paths

        self._corrupt(log_dir[5])
        with pytest.raises(ShardError, match=r"shard \d+.*log5") as err:
            ingest_log_paths(
                log_dir, "summit", summit_machine.mount_table(), jobs=2
            )
        assert err.value.shard_id >= 0

    def test_clean_shards_still_ingest(self, log_dir, summit_machine):
        from repro.store.ingest import ingest_log_paths

        store = ingest_log_paths(
            log_dir, "summit", summit_machine.mount_table(), jobs=2
        )
        assert store.njobs == 8

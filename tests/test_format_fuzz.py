"""Failure injection against the binary log parser.

Systematically corrupt every header/region-table field of a valid log and
assert the parser either rejects the file with LogFormatError or returns
a structurally valid log (a flipped bit in, e.g., padding may be benign)
— never crashes with an unrelated exception, never hangs, never returns
garbage silently when a checksum should have caught it.
"""

import struct
import zlib

import numpy as np
import pytest

from repro.darshan.constants import LOG_MAGIC, ModuleId
from repro.darshan.format import (
    _HEADER,
    _REGION,
    read_log_bytes,
    write_log_bytes,
)
from repro.darshan.log import DarshanLog
from repro.darshan.records import FileRecord, JobRecord, NameRecord
from repro.darshan.validate import validate_log
from repro.errors import LogFormatError, LogValidationError


@pytest.fixture(scope="module")
def blob():
    job = JobRecord(3, 7, 8, 0.0, 60.0, platform="summit", domain="biology")
    log = DarshanLog(job)
    for i in range(4):
        rid = 50 + i
        log.register_name(NameRecord(rid, f"/gpfs/alpine/x{i}", "/gpfs/alpine", "pfs"))
        rec = FileRecord(ModuleId.POSIX, rid)
        rec.set("BYTES_READ", 4096)
        rec.set("READS", 1)
        rec.set("SIZE_READ_1K_10K", 1)
        rec.set("F_READ_TIME", 0.5)
        log.add_record(rec)
    return write_log_bytes(log)


def _expect_reject_or_valid(data: bytes) -> None:
    """The parser contract under corruption."""
    try:
        out = read_log_bytes(bytes(data))
    except (LogFormatError,):
        return  # rejected: fine
    # Accepted: must still be semantically valid.
    try:
        validate_log(out)
    except LogValidationError as exc:  # pragma: no cover - would be a bug
        pytest.fail(f"parser accepted a semantically broken log: {exc}")


class TestHeaderFuzz:
    def test_every_header_byte_flip(self, blob):
        for i in range(_HEADER.size):
            data = bytearray(blob)
            data[i] ^= 0xFF
            _expect_reject_or_valid(data)

    def test_region_count_inflated(self, blob):
        data = bytearray(blob)
        # region count lives at the end of the header
        off = _HEADER.size - 4
        struct.pack_into("<I", data, off, 10_000)
        with pytest.raises(LogFormatError):
            read_log_bytes(bytes(data))


class TestRegionTableFuzz:
    def test_every_region_field_mutation(self, blob):
        nregions = struct.unpack_from("<I", blob, _HEADER.size - 4)[0]
        for r in range(nregions):
            base = _HEADER.size + r * _REGION.size
            for field_off in range(0, _REGION.size, 2):
                data = bytearray(blob)
                data[base + field_off] ^= 0xA5
                _expect_reject_or_valid(data)

    def test_offset_pointing_past_eof(self, blob):
        data = bytearray(blob)
        base = _HEADER.size  # first region descriptor
        # offset field is at +8 within the descriptor
        struct.pack_into("<Q", data, base + 8, len(blob) + 1000)
        with pytest.raises(LogFormatError):
            read_log_bytes(bytes(data))

    def test_crc_mismatch_caught(self, blob):
        data = bytearray(blob)
        base = _HEADER.size
        struct.pack_into("<I", data, base + 32, 0xDEADBEEF)
        with pytest.raises(LogFormatError, match="CRC"):
            read_log_bytes(bytes(data))


class TestPayloadFuzz:
    def test_random_payload_corruption(self, blob):
        rng = np.random.default_rng(7)
        body_start = _HEADER.size
        for _ in range(200):
            data = bytearray(blob)
            i = int(rng.integers(body_start, len(blob)))
            data[i] ^= int(rng.integers(1, 256))
            _expect_reject_or_valid(data)

    def test_truncation_at_every_tenth_byte(self, blob):
        for end in range(0, len(blob), max(len(blob) // 50, 1)):
            with pytest.raises(LogFormatError):
                read_log_bytes(blob[:end])

    def test_appended_garbage_tolerated_or_rejected(self, blob):
        # Trailing bytes after the last region: regions are located by
        # offset, so extra bytes are ignorable; either behaviour is fine,
        # crashing is not.
        _expect_reject_or_valid(bytearray(blob + b"\x00" * 64))

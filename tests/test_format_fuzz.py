"""Failure injection against the binary log parser.

Systematically corrupt every header/region-table field of a valid log and
assert the parser either rejects the file with LogFormatError or returns
a structurally valid log (a flipped bit in, e.g., padding may be benign)
— never crashes with an unrelated exception, never hangs, never returns
garbage silently when a checksum should have caught it.
"""

import struct
import zlib

import numpy as np
import pytest

from repro.darshan.constants import LOG_MAGIC, ModuleId
from repro.darshan.format import (
    _HEADER,
    _REGION,
    read_log_bytes,
    write_log,
    write_log_bytes,
)
from repro.darshan.log import DarshanLog
from repro.darshan.records import FileRecord, JobRecord, NameRecord
from repro.darshan.validate import validate_log
from repro.errors import LogFormatError, LogValidationError, ReproError


def _make_log(job_id=3, nfiles=4):
    job = JobRecord(job_id, 7, 8, 0.0, 60.0, platform="summit", domain="biology")
    log = DarshanLog(job)
    for i in range(nfiles):
        rid = 50 + i
        log.register_name(NameRecord(rid, f"/gpfs/alpine/x{i}", "/gpfs/alpine", "pfs"))
        rec = FileRecord(ModuleId.POSIX, rid)
        rec.set("BYTES_READ", 4096)
        rec.set("READS", 1)
        rec.set("SIZE_READ_1K_10K", 1)
        rec.set("F_READ_TIME", 0.5)
        log.add_record(rec)
    return log


@pytest.fixture(scope="module")
def blob():
    return write_log_bytes(_make_log())


@pytest.fixture(scope="module")
def blob_plain():
    """The same log without compression: strings sit raw in the file."""
    return write_log_bytes(_make_log(), compress=False)


def _regions(data):
    """Parse the region table: list of (kind, desc_offset, offset, raw, comp)."""
    nregions = struct.unpack_from("<I", data, _HEADER.size - 4)[0]
    out = []
    for r in range(nregions):
        base = _HEADER.size + r * _REGION.size
        kind, _mod, _codec, _r0, off, raw, comp, _crc, _r1 = _REGION.unpack_from(
            data, base
        )
        out.append((kind, base, off, raw, comp))
    return out


def _fix_crc(data: bytearray, desc_base: int) -> None:
    """Recompute a region's CRC after an in-place payload edit."""
    _k, _m, codec, _r0, off, raw, comp, _crc, _r1 = _REGION.unpack_from(
        data, desc_base
    )
    payload = bytes(data[off : off + comp])
    if codec:  # zlib codec: CRC covers the decompressed bytes
        payload = zlib.decompress(payload)
    struct.pack_into("<I", data, desc_base + 32, zlib.crc32(payload) & 0xFFFFFFFF)


def _expect_reject_or_valid(data: bytes) -> None:
    """The parser contract under corruption."""
    try:
        out = read_log_bytes(bytes(data))
    except (LogFormatError,):
        return  # rejected: fine
    # Accepted: must still be semantically valid.
    try:
        validate_log(out)
    except LogValidationError as exc:  # pragma: no cover - would be a bug
        pytest.fail(f"parser accepted a semantically broken log: {exc}")


class TestHeaderFuzz:
    def test_every_header_byte_flip(self, blob):
        for i in range(_HEADER.size):
            data = bytearray(blob)
            data[i] ^= 0xFF
            _expect_reject_or_valid(data)

    def test_region_count_inflated(self, blob):
        data = bytearray(blob)
        # region count lives at the end of the header
        off = _HEADER.size - 4
        struct.pack_into("<I", data, off, 10_000)
        with pytest.raises(LogFormatError):
            read_log_bytes(bytes(data))


class TestRegionTableFuzz:
    def test_every_region_field_mutation(self, blob):
        nregions = struct.unpack_from("<I", blob, _HEADER.size - 4)[0]
        for r in range(nregions):
            base = _HEADER.size + r * _REGION.size
            for field_off in range(0, _REGION.size, 2):
                data = bytearray(blob)
                data[base + field_off] ^= 0xA5
                _expect_reject_or_valid(data)

    def test_offset_pointing_past_eof(self, blob):
        data = bytearray(blob)
        base = _HEADER.size  # first region descriptor
        # offset field is at +8 within the descriptor
        struct.pack_into("<Q", data, base + 8, len(blob) + 1000)
        with pytest.raises(LogFormatError):
            read_log_bytes(bytes(data))

    def test_crc_mismatch_caught(self, blob):
        data = bytearray(blob)
        base = _HEADER.size
        struct.pack_into("<I", data, base + 32, 0xDEADBEEF)
        with pytest.raises(LogFormatError, match="CRC"):
            read_log_bytes(bytes(data))


class TestPayloadFuzz:
    def test_random_payload_corruption(self, blob):
        rng = np.random.default_rng(7)
        body_start = _HEADER.size
        for _ in range(200):
            data = bytearray(blob)
            i = int(rng.integers(body_start, len(blob)))
            data[i] ^= int(rng.integers(1, 256))
            _expect_reject_or_valid(data)

    def test_truncation_at_every_tenth_byte(self, blob):
        for end in range(0, len(blob), max(len(blob) // 50, 1)):
            with pytest.raises(LogFormatError):
                read_log_bytes(blob[:end])

    def test_appended_garbage_tolerated_or_rejected(self, blob):
        # Trailing bytes after the last region: regions are located by
        # offset, so extra bytes are ignorable; either behaviour is fine,
        # crashing is not.
        _expect_reject_or_valid(bytearray(blob + b"\x00" * 64))


class TestZlibFuzz:
    """Compressed-payload attacks must surface as LogFormatError."""

    def test_corrupt_zlib_stream(self, blob):
        for kind, base, off, raw, comp in _regions(blob):
            data = bytearray(blob)
            data[off + comp // 2] ^= 0xFF  # clobber mid-stream
            try:
                read_log_bytes(bytes(data))
            except LogFormatError:
                continue  # typed rejection (zlib error or CRC mismatch)
            except Exception as exc:  # pragma: no cover - the bug we guard
                pytest.fail(f"region {kind}: bare {type(exc).__name__} escaped")

    def test_declared_size_smaller_than_stream(self, blob):
        # Shrink raw_len: bounded decompression stops one byte past it and
        # the length check fires — a typed rejection, not a bad log.
        data = bytearray(blob)
        _, base, off, raw, comp = _regions(blob)[0]
        struct.pack_into("<Q", data, base + 16, max(raw // 2, 1))
        with pytest.raises(LogFormatError):
            read_log_bytes(bytes(data))

    def test_hostile_declared_size_does_not_allocate(self, blob):
        # A multi-exabyte raw_len must be rejected by arithmetic, not by
        # attempting the allocation (bounded zlib.decompressobj path).
        data = bytearray(blob)
        _, base, off, raw, comp = _regions(blob)[0]
        struct.pack_into("<Q", data, base + 16, 2**62)
        with pytest.raises(LogFormatError):
            read_log_bytes(bytes(data))

    def test_unknown_codec_rejected(self, blob):
        data = bytearray(blob)
        _, base, off, raw, comp = _regions(blob)[0]
        struct.pack_into("<H", data, base + 4, 77)
        with pytest.raises(LogFormatError, match="codec"):
            read_log_bytes(bytes(data))


class TestStringFuzz:
    def test_malformed_utf8_is_typed(self, blob_plain):
        # Overwrite the job platform string ("summit", right after the
        # fixed QQIdd prelude) with invalid UTF-8 and re-sign the CRC so
        # the decoder actually reaches the string field.
        data = bytearray(blob_plain)
        kind, base, off, raw, comp = _regions(blob_plain)[0]
        assert kind == 1  # job region is written first
        str_off = off + struct.calcsize("<QQIdd") + 4  # skip length prefix
        data[str_off : str_off + 4] = b"\xff\xfe\xff\xfe"
        _fix_crc(data, base)
        with pytest.raises(LogFormatError, match="UTF-8"):
            read_log_bytes(bytes(data))

    def test_string_length_past_region_end(self, blob_plain):
        data = bytearray(blob_plain)
        kind, base, off, raw, comp = _regions(blob_plain)[0]
        str_len_off = off + struct.calcsize("<QQIdd")
        struct.pack_into("<I", data, str_len_off, 10**6)
        _fix_crc(data, base)
        with pytest.raises(LogFormatError, match="truncated string"):
            read_log_bytes(bytes(data))


class TestSeededCorruptionHarness:
    """Randomized end-to-end sweep: whatever the mutation, only typed
    ``repro.errors`` exceptions may escape — a bare ``struct.error``,
    ``zlib.error``, or ``UnicodeDecodeError`` is a parser bug."""

    MUTATIONS = ("flip", "zero", "truncate", "slice_dup", "insert", "delete")

    @staticmethod
    def _mutate(rng, data: bytes) -> bytes:
        kind = rng.choice(TestSeededCorruptionHarness.MUTATIONS)
        buf = bytearray(data)
        n = len(buf)
        if kind == "flip":
            for _ in range(int(rng.integers(1, 8))):
                buf[int(rng.integers(0, n))] ^= int(rng.integers(1, 256))
        elif kind == "zero":
            i = int(rng.integers(0, n))
            j = min(n, i + int(rng.integers(1, 64)))
            buf[i:j] = b"\x00" * (j - i)
        elif kind == "truncate":
            del buf[int(rng.integers(0, n)):]
        elif kind == "slice_dup":
            i = int(rng.integers(0, n))
            j = min(n, i + int(rng.integers(1, 64)))
            buf[i:i] = buf[i:j]
        elif kind == "insert":
            i = int(rng.integers(0, n))
            buf[i:i] = bytes(rng.integers(0, 256, size=int(rng.integers(1, 32)), dtype=np.uint8))
        else:  # delete
            i = int(rng.integers(0, n))
            j = min(n, i + int(rng.integers(1, 32)))
            del buf[i:j]
        return bytes(buf)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("compressed", [True, False], ids=["zlib", "raw"])
    def test_only_typed_errors_escape(self, blob, blob_plain, seed, compressed):
        rng = np.random.default_rng(20220627 + seed)
        base = blob if compressed else blob_plain
        for _ in range(150):
            data = self._mutate(rng, base)
            try:
                out = read_log_bytes(data)
            except ReproError:
                continue  # typed rejection: the contract
            except Exception as exc:  # pragma: no cover - the bug we hunt
                pytest.fail(
                    f"bare {type(exc).__name__} escaped the parser: {exc}"
                )
            try:
                validate_log(out)
            except LogValidationError as exc:  # pragma: no cover
                pytest.fail(f"accepted a semantically broken log: {exc}")


class TestCorruptShardIngest:
    """A corrupt log fails the whole sharded ingest, naming the shard."""

    @pytest.fixture()
    def log_dir(self, tmp_path):
        paths = []
        for i in range(8):
            p = str(tmp_path / f"log{i}.darshan")
            write_log(_make_log(job_id=100 + i), p)
            paths.append(p)
        return paths

    @staticmethod
    def _corrupt(path):
        with open(path, "r+b") as fh:
            fh.seek(0)
            fh.write(b"\x00" * 16)  # destroy the magic

    def test_serial_ingest_names_the_file(self, log_dir, summit_machine):
        from repro.store.ingest import ingest_log_paths

        self._corrupt(log_dir[5])
        with pytest.raises(LogFormatError, match="log5"):
            ingest_log_paths(log_dir, "summit", summit_machine.mount_table())

    def test_sharded_ingest_names_shard_and_file(self, log_dir, summit_machine):
        from repro.errors import ShardError
        from repro.store.ingest import ingest_log_paths

        self._corrupt(log_dir[5])
        with pytest.raises(ShardError, match=r"shard \d+.*log5") as err:
            ingest_log_paths(
                log_dir, "summit", summit_machine.mount_table(), jobs=2
            )
        assert err.value.shard_id >= 0

    def test_clean_shards_still_ingest(self, log_dir, summit_machine):
        from repro.store.ingest import ingest_log_paths

        store = ingest_log_paths(
            log_dir, "summit", summit_machine.mount_table(), jobs=2
        )
        assert store.njobs == 8


class TestStreamTailFuzz:
    """NDJSON append-log tail corpus: truncation, garbage, replay.

    The stream contract (DESIGN.md §11): a malformed or half-written
    tail yields a typed error (``raise`` policy) or a counted skip
    (``skip`` policy) — and *never* a corrupt store, because only lines
    that parsed cleanly reach ingest, and the reader's offset never
    advances past an unconsumed partial record.
    """

    @staticmethod
    def _lines(n=3):
        from repro.stream import dump_line

        return [dump_line(_make_log(job_id=200 + i)) for i in range(n)]

    @staticmethod
    def _fresh_store():
        from repro.store.recordstore import RecordStore
        from repro.store.schema import empty_files, empty_jobs
        from repro.workloads.domains import domain_catalog

        return RecordStore(
            "summit", empty_files(0), empty_jobs(0),
            domains=domain_catalog("summit"),
        )

    def test_mid_record_truncation_at_every_byte(self, tmp_path):
        """However many bytes of the tail record exist, the reader waits.

        The complete head record is always yielded; the offset always
        stops exactly at the truncation's line start, so a resumed
        reader re-reads only the unfinished record.
        """
        from repro.stream import LogTailReader

        head, tail = self._lines(2)
        path = str(tmp_path / "s.ndjson")
        step = max(1, len(tail) // 97)  # every byte on a small-prime grid
        for cut in range(0, len(tail) - 1, step):
            with open(path, "wb") as fh:
                fh.write(head.encode() + tail[:cut].encode())
            reader = LogTailReader(path)
            logs = reader.poll()
            assert [lg.job.job_id for lg in logs] == [200], f"cut={cut}"
            assert reader.offset == len(head), f"cut={cut}"
            # Completing the record makes the next poll yield it.
            with open(path, "ab") as fh:
                fh.write(tail[cut:].encode())
            assert [lg.job.job_id for lg in reader.poll()] == [201]

    def test_final_truncation_is_typed_at_every_byte(self, tmp_path):
        from repro.stream import LogTailReader

        (line,) = self._lines(1)
        path = str(tmp_path / "s.ndjson")
        step = max(1, len(line) // 53)
        for cut in range(1, len(line) - 1, step):
            with open(path, "wb") as fh:
                fh.write(line[:cut].encode())
            with pytest.raises(LogFormatError):
                LogTailReader(path).poll(final=True)

    GARBAGE = [
        b"\x00\xfe\xfd not even text",
        b"{truncated json",
        b"[1, 2, 3]",
        b'{"job": "wrong shape"}',
        b'{"job": {"job_id": 99999999999999999999}}',
    ]

    def test_interleaved_garbage_skip_policy_preserves_ingest(self, tmp_path):
        """Garbage between records: skipped+logged, store as if clean."""
        import numpy as np

        from repro.stream import LogTailReader, StreamIngestor

        lines = self._lines(3)
        path = str(tmp_path / "s.ndjson")
        with open(path, "wb") as fh:
            for line, junk in zip(lines, self.GARBAGE):
                fh.write(line.encode() + junk + b"\n")
        reader = LogTailReader(path, on_error="skip")
        logs = reader.poll(final=True)
        assert [lg.job.job_id for lg in logs] == [200, 201, 202]
        assert reader.skipped == 3 and reader.last_error is not None

        dirty, clean = self._fresh_store(), self._fresh_store()
        from repro.platforms import summit

        StreamIngestor(dirty, summit().mount_table()).apply(logs)
        with open(path, "wb") as fh:
            fh.writelines(line.encode() for line in lines)
        clean_logs = LogTailReader(path).poll(final=True)
        StreamIngestor(clean, summit().mount_table()).apply(clean_logs)
        np.testing.assert_array_equal(dirty.files, clean.files)
        np.testing.assert_array_equal(dirty.jobs, clean.jobs)

    def test_interleaved_garbage_raise_policy_is_resumable(self, tmp_path):
        """Raise policy: typed error, offset parked at the bad line."""
        from repro.stream import LogTailReader

        lines = self._lines(2)
        path = str(tmp_path / "s.ndjson")
        with open(path, "wb") as fh:
            fh.write(lines[0].encode() + b"{junk}\n" + lines[1].encode())
        reader = LogTailReader(path)
        # The record ahead of the junk is delivered, not lost; the error
        # surfaces on the next poll with the offset parked on the junk.
        assert [lg.job.job_id for lg in reader.poll()] == [200]
        with pytest.raises(LogFormatError, match="offset"):
            reader.poll()
        assert reader.offset == len(lines[0])
        # Switching policy (as an operator would) resumes in place.
        reader.on_error = "skip"
        assert [lg.job.job_id for lg in reader.poll()] == [201]
        assert reader.skipped == 1

    def test_duplicate_offset_replay_never_reaches_the_store(self, tmp_path):
        """A stale checkpoint is a typed refusal; the store is untouched."""
        import numpy as np

        from repro.errors import CheckpointError
        from repro.platforms import summit
        from repro.stream import StreamCheckpoint, ingest_stream

        path = str(tmp_path / "s.ndjson")
        ckpt = str(tmp_path / "c.json")
        with open(path, "w") as fh:
            fh.writelines(self._lines(3))
        store = self._fresh_store()
        mounts = summit().mount_table()
        ingest_stream(path, store, mounts, checkpoint_path=ckpt)
        before_files, before_jobs = store.files.copy(), store.jobs.copy()
        StreamCheckpoint(path, 0, 0).save(ckpt)  # rewound: would replay
        with pytest.raises(CheckpointError):
            ingest_stream(path, store, mounts, checkpoint_path=ckpt)
        np.testing.assert_array_equal(store.files, before_files)
        np.testing.assert_array_equal(store.jobs, before_jobs)

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_seeded_stream_mutations_only_typed_errors(self, tmp_path, seed):
        """Whole-stream corruption sweep, both error policies.

        However the bytes are mangled, only typed ``repro.errors``
        exceptions escape, and whatever *was* ingested forms a store the
        analysis layer accepts.
        """
        from repro.analysis import layer_volumes
        from repro.platforms import summit
        from repro.stream import LogTailReader, StreamIngestor

        base = "".join(self._lines(3)).encode()
        rng = np.random.default_rng(20220627 + seed)
        path = str(tmp_path / "s.ndjson")
        mounts = summit().mount_table()
        for _ in range(40):
            data = TestSeededCorruptionHarness._mutate(rng, base)
            for policy in ("skip", "raise"):
                with open(path, "wb") as fh:
                    fh.write(data)
                store = self._fresh_store()
                reader = LogTailReader(path, on_error=policy)
                try:
                    logs = reader.poll(final=True)
                    StreamIngestor(store, mounts).apply(logs)
                except ReproError:
                    continue  # typed rejection: the contract
                except Exception as exc:  # pragma: no cover - the bug we hunt
                    pytest.fail(
                        f"bare {type(exc).__name__} escaped the stream "
                        f"path: {exc}"
                    )
                layer_volumes(store)  # whatever landed is analyzable

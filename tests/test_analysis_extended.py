"""Tests for the extended analyses (users, temporal, variability)."""

import numpy as np
import pytest

from repro.analysis import (
    bandwidth_variability,
    median_iqr_ratio,
    temporal_profile,
    user_activity,
)
from repro.errors import AnalysisError
from repro.store.recordstore import RecordStore
from repro.store.schema import empty_files, empty_jobs


class TestUserActivity:
    def test_shares_and_gini(self, cori_store_small):
        ua = user_activity(cori_store_small)
        assert ua.nusers > 1
        # Zipfian user model: activity is concentrated.
        top = ua.top_share(max(1, ua.nusers // 10), "jobs")
        assert top > 1.0 / ua.nusers  # better than uniform
        assert 0.0 <= ua.gini("jobs") <= 1.0
        assert 0.0 <= ua.gini("bytes") <= 1.0

    def test_sorted_descending(self, cori_store_small):
        ua = user_activity(cori_store_small)
        for arr in (ua.jobs_per_user, ua.files_per_user, ua.bytes_per_user):
            assert (np.diff(arr) <= 0).all()

    def test_totals_conserved(self, cori_store_small):
        ua = user_activity(cori_store_small)
        assert ua.jobs_per_user.sum() == cori_store_small.njobs
        assert ua.files_per_user.sum() == len(cori_store_small.files)
        total = (
            cori_store_small.files["bytes_read"].sum()
            + cori_store_small.files["bytes_written"].sum()
        )
        assert ua.bytes_per_user.sum() == total

    def test_unknown_axis(self, cori_store_small):
        with pytest.raises(AnalysisError):
            user_activity(cori_store_small).top_share(1, "karma")

    def test_empty_store(self):
        st = RecordStore("summit", empty_files(0), empty_jobs(0))
        with pytest.raises(AnalysisError):
            user_activity(st)

    def test_rows_render(self, cori_store_small):
        rows = user_activity(cori_store_small).to_rows()
        assert rows[0][0] == "cori"


class TestTemporalProfile:
    def test_volume_conserved(self, cori_store_small):
        tp = temporal_profile(cori_store_small)
        from repro.platforms.interfaces import IOInterface

        f = cori_store_small.files
        unique = f[f["interface"] != int(IOInterface.MPIIO)]
        assert tp.read_series.sum() == pytest.approx(
            float(unique["bytes_read"].sum())
        )
        assert tp.write_series.sum() == pytest.approx(
            float(unique["bytes_written"].sum())
        )

    def test_burstiness_positive(self, cori_store_small):
        tp = temporal_profile(cori_store_small)
        assert tp.peak_to_mean("read") >= 1.0
        assert tp.peak_to_mean("write") >= 1.0

    def test_busiest_hour_range(self, cori_store_small):
        tp = temporal_profile(cori_store_small)
        assert 0 <= tp.busiest_hour("read") < 24

    def test_bad_direction(self, cori_store_small):
        with pytest.raises(AnalysisError):
            temporal_profile(cori_store_small).peak_to_mean("sideways")

    def test_bad_bin(self, cori_store_small):
        with pytest.raises(AnalysisError):
            temporal_profile(cori_store_small, bin_seconds=0)


class TestVariability:
    def test_cells_have_spread(self, summit_store_small):
        cells = bandwidth_variability(summit_store_small)
        assert cells, "shared-file populations must exist"
        for c in cells:
            assert c.n >= 30
            assert c.iqr_ratio >= 1.0
            assert c.p90_over_p10 >= c.iqr_ratio * 0.5

    def test_production_load_signature(self, summit_store_small):
        """The contention+noise model must produce real dispersion —
        the paper's box plots span multiples, not percents."""
        cells = bandwidth_variability(summit_store_small)
        assert median_iqr_ratio(cells) > 1.5

    def test_min_samples_respected(self, summit_store_small):
        cells = bandwidth_variability(summit_store_small, min_samples=10**9)
        assert cells == []
        assert np.isnan(median_iqr_ratio(cells))

"""Tests for the DataWarp burst-buffer manager."""

import pytest

from repro.errors import SimulationError
from repro.iosim.datawarp import (
    DataWarpManager,
    StageDirective,
    StageKind,
)
from repro.units import GB


@pytest.fixture()
def dw():
    return DataWarpManager(pool_bytes=1000 * GB, bb_node_count=10, granularity=20 * GB)


class TestAllocation:
    def test_rounds_to_granularity(self, dw):
        alloc = dw.allocate(1, 25 * GB)
        assert alloc.granted_bytes == 40 * GB
        assert alloc.bb_nodes == 2

    def test_bandwidth_scales_with_capacity(self, dw):
        """Bigger request -> more BB nodes (§2.1.2 usability integration)."""
        small = dw.allocate(1, 20 * GB)
        large = dw.allocate(2, 200 * GB)
        assert large.bb_nodes > small.bb_nodes
        assert large.bb_nodes == 10  # capped at node count

    def test_pool_exhaustion(self, dw):
        dw.allocate(1, 900 * GB)
        with pytest.raises(SimulationError, match="exhausted"):
            dw.allocate(2, 200 * GB)

    def test_release_returns_capacity(self, dw):
        dw.allocate(1, 900 * GB)
        dw.release(1)
        assert dw.free_bytes() == 1000 * GB
        dw.allocate(2, 900 * GB)

    def test_double_allocate(self, dw):
        dw.allocate(1, 20 * GB)
        with pytest.raises(SimulationError):
            dw.allocate(1, 20 * GB)

    def test_zero_request(self, dw):
        with pytest.raises(SimulationError):
            dw.allocate(1, 0)


class TestFilesAndStaging:
    def test_write_read(self, dw):
        dw.allocate(1, 40 * GB)
        dw.write(1, "/bb/ckpt", 10 * GB)
        assert dw.read(1, "/bb/ckpt") == 10 * GB

    def test_allocation_overflow(self, dw):
        dw.allocate(1, 20 * GB)
        with pytest.raises(SimulationError, match="overflow"):
            dw.write(1, "/bb/x", 21 * GB)

    def test_overwrite_within_capacity(self, dw):
        dw.allocate(1, 20 * GB)
        dw.write(1, "/bb/x", 15 * GB)
        dw.write(1, "/bb/x", 18 * GB)  # replaces, still fits
        assert dw.allocation(1).used() == 18 * GB

    def test_stage_in(self, dw):
        dw.allocate(1, 40 * GB)
        d = StageDirective(StageKind.IN, "/pfs/data", "/bb/data", 5 * GB)
        dw.stage_in(1, d)
        assert dw.read(1, "/bb/data") == 5 * GB
        assert dw.allocation(1).staged_in == [d]

    def test_stage_out(self, dw):
        dw.allocate(1, 40 * GB)
        dw.write(1, "/bb/out", 3 * GB)
        d = StageDirective(StageKind.OUT, "/pfs/out", "/bb/out", 3 * GB)
        assert dw.stage_out(1, d) == 3 * GB

    def test_stage_out_missing_file(self, dw):
        dw.allocate(1, 40 * GB)
        d = StageDirective(StageKind.OUT, "/pfs/out", "/bb/never", 1)
        with pytest.raises(SimulationError, match="missing"):
            dw.stage_out(1, d)

    def test_stage_kind_enforced(self, dw):
        dw.allocate(1, 40 * GB)
        wrong = StageDirective(StageKind.OUT, "/p", "/b", 1)
        with pytest.raises(SimulationError):
            dw.stage_in(1, wrong)

    def test_job_parallelism(self, dw):
        dw.allocate(1, 100 * GB)
        assert dw.job_parallelism(1) == 5

    def test_active_jobs(self, dw):
        dw.allocate(3, 20 * GB)
        dw.allocate(1, 20 * GB)
        assert dw.active_jobs() == [1, 3]

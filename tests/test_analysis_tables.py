"""Tests for the table analyses (Tables 2-6) on generated stores."""

import numpy as np
import pytest

from repro.analysis import (
    dataset_summary,
    interface_usage,
    large_files,
    layer_exclusivity,
    layer_volumes,
)
from repro.platforms.interfaces import IOInterface
from repro.store.schema import LAYER_INSYSTEM, LAYER_PFS
from repro.units import TB


class TestTable2:
    def test_counts_match_store(self, summit_store_small):
        s = dataset_summary(summit_store_small)
        f = summit_store_small.files
        assert s.files == (f["interface"] != int(IOInterface.MPIIO)).sum()
        assert s.jobs == summit_store_small.njobs
        # Log counting comes from the job table: no-I/O jobs still ran
        # Darshan, so the total exceeds the logs visible in file rows.
        assert s.logs == int(summit_store_small.jobs["nlogs"].sum())
        assert s.logs >= summit_store_small.nlogs
        assert s.node_hours > 0

    def test_scaling(self, summit_store_small):
        s = dataset_summary(summit_store_small)
        assert s.jobs_scaled == pytest.approx(s.jobs / summit_store_small.scale)

    def test_rows_render(self, summit_store_small):
        rows = dataset_summary(summit_store_small).to_rows()
        assert len(rows) == 1 and rows[0][0] == "summit"


class TestTable3:
    def test_accounting_excludes_mpiio_rows(self, cori_store_small):
        t3 = layer_volumes(cori_store_small)
        f = cori_store_small.files
        keep = f[f["interface"] != int(IOInterface.MPIIO)]
        pfs = keep[keep["layer"] == LAYER_PFS]
        assert t3.pfs.bytes_read == pfs["bytes_read"].sum()
        assert t3.pfs.files == len(pfs)

    def test_ratio_helpers(self, cori_store_small):
        t3 = layer_volumes(cori_store_small)
        assert t3.pfs_over_insystem_files() > 1
        assert t3.pfs.read_write_ratio() > 0

    def test_rows(self, cori_store_small):
        rows = layer_volumes(cori_store_small).to_rows()
        assert len(rows) == 2
        assert rows[0][1] == "insystem" and rows[1][1] == "pfs"


class TestTable4:
    def test_counts(self, cori_store_small):
        t4 = large_files(cori_store_small)
        f = cori_store_small.files
        keep = f[f["interface"] != int(IOInterface.MPIIO)]
        pfs = keep[keep["layer"] == LAYER_PFS]
        assert t4.counts["pfs"] == (
            (pfs["bytes_read"] > 1 * TB).sum(),
            (pfs["bytes_written"] > 1 * TB).sum(),
        )

    def test_custom_threshold(self, cori_store_small):
        strict = large_files(cori_store_small, threshold=1)
        assert strict.counts["pfs"][0] > large_files(cori_store_small).counts["pfs"][0]

    def test_shares(self, cori_store_small):
        t4 = large_files(cori_store_small, threshold=10**9)
        assert 0 <= t4.pfs_write_share() <= 1


class TestTable5:
    def test_partition_is_exhaustive(self, cori_store_small):
        t5 = layer_exclusivity(cori_store_small)
        f = cori_store_small.files
        jobs_with_files = len(np.unique(f["job_id"]))
        assert t5.total == jobs_with_files

    def test_cori_has_bb_exclusive_jobs(self, cori_store_small):
        t5 = layer_exclusivity(cori_store_small)
        assert t5.insystem_only > 0

    def test_summit_has_none(self, summit_store_small):
        t5 = layer_exclusivity(summit_store_small)
        assert t5.insystem_only == 0
        assert t5.pfs_only > 0


class TestTable6:
    def test_counts_by_layer(self, cori_store_small):
        t6 = interface_usage(cori_store_small)
        f = cori_store_small.files
        pfs = f[f["layer"] == LAYER_PFS]
        assert t6.counts["pfs"]["POSIX"] == (
            pfs["interface"] == int(IOInterface.POSIX)
        ).sum()

    def test_posix_includes_mpiio_shadows(self, cori_store_small):
        """Table 6 semantics: MPI-IO files also count as POSIX users."""
        t6 = interface_usage(cori_store_small)
        assert t6.counts["pfs"]["POSIX"] >= t6.counts["pfs"]["MPI-IO"]

    def test_stdio_share(self, summit_store_small):
        share = interface_usage(summit_store_small).stdio_share()
        assert 0 < share < 1

    def test_stdio_over_posix(self, summit_store_small):
        t6 = interface_usage(summit_store_small)
        assert t6.stdio_over_posix("insystem") > 1  # SCNL is STDIO-dominated

"""Tests for the figure analyses (Figures 3-12) on generated stores."""

import numpy as np
import pytest

from repro.analysis import (
    file_classification,
    insystem_domain_usage,
    interface_transfer_cdfs,
    performance_by_bin,
    request_cdfs,
    stdio_domain_usage,
    transfer_cdfs,
)
from repro.analysis.performance import panel
from repro.analysis.report import HEADERS, render_results, render_table
from repro.errors import AnalysisError
from repro.platforms.interfaces import IOInterface
from repro.store.schema import LAYER_PFS


class TestFig3:
    def test_curves_cover_layers_and_directions(self, summit_store_small):
        curves = transfer_cdfs(summit_store_small)
        keys = {(c.layer, c.direction) for c in curves}
        assert keys == {
            ("pfs", "read"), ("pfs", "write"),
            ("insystem", "read"), ("insystem", "write"),
        }

    def test_monotone_percentages(self, summit_store_small):
        for c in transfer_cdfs(summit_store_small):
            assert list(c.percent_at) == sorted(c.percent_at)
            assert all(0 <= p <= 100 for p in c.percent_at)

    def test_percent_below(self, summit_store_small):
        c = transfer_cdfs(summit_store_small)[0]
        assert c.percent_below(1e9) == c.percent_at[0]
        with pytest.raises(AnalysisError):
            c.percent_below(12345.0)

    def test_zero_byte_files_excluded(self, summit_store_small):
        curves = transfer_cdfs(summit_store_small)
        f = summit_store_small.files
        keep = f[f["interface"] != int(IOInterface.MPIIO)]
        pfs_readers = ((keep["layer"] == LAYER_PFS) & (keep["bytes_read"] > 0)).sum()
        pfs_read = [c for c in curves if c.layer == "pfs" and c.direction == "read"][0]
        assert pfs_read.nfiles == pfs_readers


class TestFig9:
    def test_interface_split(self, summit_store_small):
        curves = interface_transfer_cdfs(summit_store_small)
        ifaces = {c.interface for c in curves}
        assert ifaces == {"POSIX", "MPI-IO", "STDIO"}

    def test_stdio_smaller_than_posix(self, summit_store_small):
        """Figure 9: STDIO-managed transfers skew smaller."""
        curves = interface_transfer_cdfs(summit_store_small)
        by = {(c.interface, c.layer, c.direction): c for c in curves}
        posix = by[("POSIX", "pfs", "read")]
        stdio = by[("STDIO", "pfs", "read")]
        assert stdio.percent_below(1e9) >= posix.percent_below(1e9) - 5


class TestFig4And5:
    def test_cumulative_over_bins(self, summit_store_small):
        for curve in request_cdfs(summit_store_small):
            assert curve.cumulative_percent[-1] == pytest.approx(100.0)
            assert list(curve.cumulative_percent) == sorted(curve.cumulative_percent)

    def test_percent_in_bin(self, summit_store_small):
        curve = request_cdfs(summit_store_small)[0]
        total = sum(curve.percent_in_bin(label) for label in curve.bin_labels)
        assert total == pytest.approx(100.0)

    def test_large_jobs_subset(self, summit_store_small):
        all_jobs = request_cdfs(summit_store_small)
        large = request_cdfs(summit_store_small, large_jobs_only=True)
        assert large  # Summit always has >1024-proc jobs
        total_all = sum(c.total_calls for c in all_jobs)
        total_large = sum(c.total_calls for c in large)
        assert 0 < total_large < total_all

    def test_only_posix_rows_counted(self, summit_store_small):
        f = summit_store_small.files
        posix = f[f["interface"] == int(IOInterface.POSIX)]
        expected = posix["read_hist"].sum() + posix["write_hist"].sum()
        measured = sum(c.total_calls for c in request_cdfs(summit_store_small))
        assert measured == expected


class TestFig6And8:
    def test_counts_partition_files(self, summit_store_small):
        fc = file_classification(summit_store_small)
        f = summit_store_small.files
        keep = (f["interface"] != int(IOInterface.MPIIO))
        total = sum(sum(per.values()) for per in fc.counts.values())
        in_layers = keep & np.isin(f["layer"], [0, 1])
        assert total == in_layers.sum()

    def test_stdio_only_subset(self, summit_store_small):
        all_fc = file_classification(summit_store_small)
        stdio_fc = file_classification(summit_store_small, stdio_only=True)
        for layer in ("pfs", "insystem"):
            for cls in ("read-only", "read-write", "write-only"):
                assert stdio_fc.counts[layer][cls] <= all_fc.counts[layer][cls]

    def test_stageable_fraction(self, summit_store_small):
        fc = file_classification(summit_store_small)
        assert 0.5 < fc.stageable_pfs_fraction() <= 1.0

    def test_stdio_insystem_share_higher(self, summit_store_small):
        """Figure 8's finding: STDIO files use the in-system layer
        relatively more than the general population."""
        all_fc = file_classification(summit_store_small)
        stdio_fc = file_classification(summit_store_small, stdio_only=True)
        assert (
            stdio_fc.insystem_share("read-only")
            > all_fc.insystem_share("read-only")
        )


class TestFig7And10:
    def test_insystem_volumes_positive(self, summit_store_small):
        du = insystem_domain_usage(summit_store_small)
        assert sum(r + w for r, w in du.volumes.values()) > 0

    def test_stdio_domains_widespread(self, summit_store_small):
        """Figure 10: STDIO spans many science domains."""
        du = stdio_domain_usage(summit_store_small)
        named = [d for d in du.volumes if d]
        assert len(named) >= 6

    def test_cori_domain_coverage(self, cori_store_small):
        du = stdio_domain_usage(cori_store_small)
        assert 0.8 < du.domain_coverage() < 1.0

    def test_job_share(self, summit_store_small):
        du = insystem_domain_usage(summit_store_small)
        assert 0 <= du.job_share("computer science", "physics") <= 1

    def test_top_domain(self, cori_store_small):
        du = insystem_domain_usage(cori_store_small)
        top = du.top_domain("read")
        assert top in cori_store_small.domains


class TestFig11And12:
    def test_panels_exist(self, summit_store_small):
        panels = performance_by_bin(summit_store_small)
        keys = {(p.layer, p.direction) for p in panels}
        assert ("pfs", "read") in keys and ("pfs", "write") in keys

    def test_only_shared_files(self, summit_store_small):
        """§3.4: performance uses rank -1 records only."""
        f = summit_store_small.files
        shared_posix = f[(f["rank"] == -1) & (f["interface"] == 1)]
        pfs = shared_posix[
            (shared_posix["layer"] == LAYER_PFS) & (shared_posix["bytes_read"] > 0)
            & (shared_posix["read_time"] > 0)
        ]
        p = panel(performance_by_bin(summit_store_small), "pfs", "read")
        assert sum(b.n for b in p.boxes["POSIX"]) == len(pfs)

    def test_box_invariants(self, summit_store_small):
        for p in performance_by_bin(summit_store_small):
            for boxes in p.boxes.values():
                for b in boxes:
                    if b.n:
                        assert b.whisker_lo <= b.q1 <= b.median <= b.q3 <= b.whisker_hi

    def test_median_speedup_nan_for_empty(self, summit_store_small):
        p = panel(performance_by_bin(summit_store_small), "insystem", "read")
        # 1T_PLUS should be empty on SCNL (no >1TB files, Table 4).
        assert np.isnan(p.median_speedup("1T_PLUS"))

    def test_panel_lookup_error(self, summit_store_small):
        with pytest.raises(KeyError):
            panel(performance_by_bin(summit_store_small), "pfs", "sideways")


class TestReportRendering:
    def test_render_table_alignment(self):
        out = render_table(["a", "bb"], [["1", "2"], ["333", "4"]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert all(len(l) == len(lines[1]) for l in lines[1:])

    def test_render_mismatched_row(self):
        with pytest.raises(ValueError):
            render_table(["a"], [["1", "2"]])

    def test_render_results_for_every_analysis(self, summit_store_small):
        from repro.analysis import dataset_summary

        text = render_results(
            "Table 2", HEADERS["table2"], dataset_summary(summit_store_small)
        )
        assert "Table 2" in text and "summit" in text

"""The what-if subsystem's acceptance bar.

Three properties anchor the digital twin:

- **zero check** (differential): every entry point — ``compute_point``,
  ``materialize``, ``sweep``, the serve registry, the CLI — produces a
  result *bit-identical* to the baseline under the identity scenario and
  under every scenario's neutral parameter point;
- **cache semantics**: sweep points are cached per (scenario, params,
  store generation) through the serve engine, so repeated identical
  sweeps on an unchanged store are cache hits and any append
  invalidates them (property-tested with hypothesis);
- **fan-out invariance**: a sweep's results are byte-identical for any
  worker count (``parallel``-marked differential suite).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.report import HEADERS
from repro.api import run_query
from repro.errors import WhatIfError
from repro.serve.engine import QueryEngine
from repro.serve.registry import default_registry, serialize_result
from repro.store.io import save_store
from repro.whatif import (
    compute_point,
    get_scenario,
    materialize,
    scenario_catalog,
    sweep,
)

#: Every scenario's neutral point: parameters under which the plan must
#: change nothing (the "calibrated instrument reads zero" gate).
NEUTRAL_POINTS = {
    "identity": {},
    "stripe": {"factor": 1.0},
    "bb_offload": {"enabled": 0},
    "ost_fault": {"servers_offline": 0.0, "rebuild_overhead": 0.0},
    "bb_drain": {"servers_offline": 0.0, "rebuild_overhead": 0.0},
    "contention": {"factor": 1.0},
}


@pytest.fixture(scope="module")
def wstore(summit_store_small):
    """A thinned summit store: every 8th row, fast enough to replay often."""
    mask = np.zeros(len(summit_store_small.files), dtype=bool)
    mask[::8] = True
    return summit_store_small.filter(mask)


class TestCatalog:
    def test_covers_issue_scenarios(self):
        names = set(scenario_catalog())
        assert {"identity", "stripe", "bb_offload", "ost_fault",
                "bb_drain", "contention"} <= names
        # Keep NEUTRAL_POINTS exhaustive as scenarios are added.
        assert names == set(NEUTRAL_POINTS)

    def test_unknown_scenario_is_typed(self):
        with pytest.raises(WhatIfError, match="unknown scenario"):
            get_scenario("warp-drive")

    def test_unknown_param_rejected(self, wstore):
        with pytest.raises(WhatIfError, match="unknown parameter"):
            compute_point(wstore, "stripe", {"stripes": 4})

    def test_out_of_bounds_param_rejected(self, wstore):
        with pytest.raises(WhatIfError, match="must be <="):
            compute_point(wstore, "stripe", {"factor": 1000.0})
        with pytest.raises(WhatIfError, match="must be >="):
            compute_point(wstore, "ost_fault", {"servers_offline": -0.1})

    def test_non_numeric_param_rejected(self, wstore):
        with pytest.raises(WhatIfError, match="must be a number"):
            compute_point(wstore, "stripe", {"factor": "two"})
        with pytest.raises(WhatIfError, match="must be a number"):
            compute_point(wstore, "stripe", {"factor": True})

    def test_every_scenario_registered_for_serving(self):
        registry = default_registry()
        for name, scenario in scenario_catalog().items():
            spec = registry[f"whatif_{name}"]
            assert spec.kind == "table"
            assert spec.header_key == "whatif"
            assert spec.param_names == scenario.param_names

    def test_neutral_plans_are_identity(self):
        for name, params in NEUTRAL_POINTS.items():
            plan = get_scenario(name).plan("summit", params)
            assert plan.is_identity, name


class TestIdentityDifferential:
    """The zero check: identity/neutral points are bit-identical."""

    def test_materialize_identity_bit_identical(self, wstore):
        twin = materialize(wstore, "identity")
        assert twin.files.tobytes() == wstore.files.tobytes()
        assert twin.jobs.tobytes() == wstore.jobs.tobytes()

    @pytest.mark.parametrize("name", sorted(NEUTRAL_POINTS))
    def test_neutral_point_bit_identical(self, wstore, name):
        twin = materialize(wstore, name, NEUTRAL_POINTS[name])
        assert twin.files.tobytes() == wstore.files.tobytes()

    def test_compute_point_identity_outcome_equals_baseline(self, wstore):
        report = compute_point(wstore, "identity")
        assert report.outcome == report.baseline
        assert report.moved_files == 0
        for layer in ("pfs", "insystem"):
            for direction in ("read", "write"):
                assert report.time_ratio(layer, direction) == 1.0

    def test_sweep_point_matches_compute_point(self, wstore):
        [swept] = sweep(wstore, "identity", [{}])
        assert swept == compute_point(wstore, "identity")

    def test_registry_matches_direct_call(self, wstore):
        served = run_query(wstore, "whatif_identity")
        direct = compute_point(wstore, "identity")
        assert served == direct
        wire = serialize_result(default_registry()["whatif_identity"], served)
        assert wire["headers"] == HEADERS["whatif"]
        assert wire["rows"] == direct.to_rows()

    def test_cli_identity_reads_zero(self, wstore, tmp_path, capsys):
        from repro.cli import main

        path = str(tmp_path / "wi.npz")
        save_store(wstore, path)
        assert main(["whatif", path, "--scenario", "identity"]) == 0
        out = capsys.readouterr().out
        assert "1.000x" in out
        for cell in ("0.999x", "1.001x"):
            assert cell not in out


class TestScenarioEffects:
    """Directional sanity per scenario (goldens live in the fault tests)."""

    def test_ost_fault_slows_pfs(self, wstore):
        r = compute_point(wstore, "ost_fault", {"servers_offline": 0.2})
        assert r.time_ratio("pfs", "read") > 1.0
        assert r.time_ratio("pfs", "write") > 1.0
        # Shrunken peaks raise the operator's utilization view.
        assert (r.metric("pfs", "read").peak_util
                > r.metric("pfs", "read", baseline=True).peak_util)

    def test_contention_slows_both_layers(self, wstore):
        r = compute_point(wstore, "contention", {"factor": 2.0})
        assert r.time_ratio("pfs", "read") > 1.0
        assert r.time_ratio("pfs", "write") > 1.0

    def test_contention_relief_speeds_up(self, wstore):
        r = compute_point(wstore, "contention", {"factor": 0.5})
        assert r.time_ratio("pfs", "read") < 1.0

    def test_stripe_scaling_raises_pfs_bandwidth(self, wstore):
        r = compute_point(wstore, "stripe", {"factor": 4.0})
        assert (r.metric("pfs", "read").median_bw
                > r.metric("pfs", "read", baseline=True).median_bw)

    def test_bb_offload_moves_checkpoints(self, wstore):
        r = compute_point(wstore, "bb_offload", {"min_gb": 1.0})
        assert r.moved_files > 0
        base = r.metric("pfs", "write", baseline=True)
        scn = r.metric("pfs", "write")
        # moved_files counts every relocated row; the files column only
        # the unique-accounting (non-MPI-IO) ones — so bounded, not equal.
        assert 0 < base.files - scn.files <= r.moved_files
        assert scn.seconds < base.seconds
        assert (r.metric("insystem", "write").files
                > r.metric("insystem", "write", baseline=True).files)

    def test_bb_offload_materialized_relayers_rows(self, wstore):
        from repro.store.schema import LAYER_INSYSTEM

        twin = materialize(wstore, "bb_offload", {"min_gb": 1.0})
        r = compute_point(wstore, "bb_offload", {"min_gb": 1.0})
        gained = ((twin.files["layer"] == LAYER_INSYSTEM).sum()
                  - (wstore.files["layer"] == LAYER_INSYSTEM).sum())
        assert int(gained) == r.moved_files

    def test_bb_drain_slows_insystem_only(self, cori_store_small):
        mask = np.zeros(len(cori_store_small.files), dtype=bool)
        mask[::8] = True
        store = cori_store_small.filter(mask)
        r = compute_point(store, "bb_drain", {})
        assert r.time_ratio("insystem", "write") > 1.0
        assert r.time_ratio("pfs", "write") == 1.0


class TestSweep:
    def test_empty_sweep_is_typed(self, wstore):
        with pytest.raises(WhatIfError, match="no points"):
            sweep(wstore, "stripe", [])

    def test_point_order_preserved(self, wstore):
        reports = sweep(
            wstore, "stripe",
            [{"factor": f} for f in (0.5, 1.0, 2.0)],
        )
        assert [r.params for r in reports] == [
            (("factor", 0.5),), (("factor", 1.0),), (("factor", 2.0),),
        ]
        # All points share the one baseline computed in the parent.
        assert reports[0].baseline == reports[2].baseline
        # The neutral point rides the same path and still reads zero.
        assert reports[1].outcome == reports[1].baseline

    def test_bad_point_rejected_before_any_work(self, wstore):
        with pytest.raises(WhatIfError, match="must be"):
            sweep(wstore, "stripe", [{"factor": 2.0}, {"factor": -1.0}])


@pytest.mark.parallel
class TestSweepFanout:
    """Differential: pooled sweeps are worker-count-invariant, byte for byte."""

    @pytest.mark.parametrize("jobs", [2, 4])
    def test_reports_identical_across_worker_counts(self, wstore, jobs):
        points = [{"factor": f} for f in (0.5, 2.0, 4.0, 8.0)]
        serial = sweep(wstore, "stripe", points, jobs=1)
        pooled = sweep(wstore, "stripe", points, jobs=jobs)
        assert pooled == serial

    def test_materialized_tables_byte_identical(self, wstore):
        points = [{"servers_offline": v} for v in (0.1, 0.3)]
        serial = sweep(wstore, "ost_fault", points, jobs=1, materialize=True)
        pooled = sweep(wstore, "ost_fault", points, jobs=2, materialize=True)
        for (sr, ss), (pr, ps) in zip(serial, pooled):
            assert pr == sr
            assert ps.files.tobytes() == ss.files.tobytes()
            assert ps.jobs.tobytes() == ss.jobs.tobytes()

    @settings(max_examples=4, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(factor=st.sampled_from([0.25, 0.5, 2.0, 4.0, 16.0]),
           jobs=st.sampled_from([2, 4]))
    def test_any_point_any_worker_count(self, wstore, factor, jobs):
        points = [{"factor": factor}, {"factor": 1.0}]
        assert (sweep(wstore, "stripe", points, jobs=jobs)
                == sweep(wstore, "stripe", points, jobs=1))


class TestServeCaching:
    """(scenario, params, generation) caching through the query engine."""

    @pytest.fixture()
    def engine(self, wstore):
        # A private filtered copy: the append-based tests mutate it.
        store = wstore.filter(np.ones(len(wstore.files), dtype=bool))
        with QueryEngine(store, max_workers=2, cache_entries=64) as engine:
            yield engine

    @staticmethod
    def _counter(engine, name):
        return engine.metrics.snapshot()["counters"].get(name, 0)

    def test_repeated_point_is_a_cache_hit(self, engine):
        first = engine.query("whatif_ost_fault", {"servers_offline": 0.2})
        hits = self._counter(engine, "cache_hits")
        second = engine.query("whatif_ost_fault", {"servers_offline": 0.2})
        assert self._counter(engine, "cache_hits") == hits + 1
        assert second == first

    def test_distinct_params_are_distinct_entries(self, engine):
        engine.query("whatif_contention", {"factor": 2.0})
        misses = self._counter(engine, "cache_misses")
        engine.query("whatif_contention", {"factor": 4.0})
        assert self._counter(engine, "cache_misses") == misses + 1

    def test_append_invalidates_cached_points(self, engine):
        store = engine.store
        r1 = engine.query("whatif_identity")
        misses = self._counter(engine, "cache_misses")
        store.append(store.files[:4].copy())
        r2 = engine.query("whatif_identity")
        assert self._counter(engine, "cache_misses") == misses + 1
        # The recomputed point reflects the four extra rows.
        assert (r2.metric("pfs", "read", baseline=True).files
                >= r1.metric("pfs", "read", baseline=True).files)

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(factor=st.floats(min_value=0.0625, max_value=64.0,
                            allow_nan=False, allow_infinity=False))
    def test_property_identical_queries_always_hit(self, engine, factor):
        params = {"factor": factor}
        first = engine.query("whatif_contention", params)
        hits = self._counter(engine, "cache_hits")
        assert engine.query("whatif_contention", params) == first
        assert self._counter(engine, "cache_hits") == hits + 1

    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(nrows=st.integers(min_value=1, max_value=32))
    def test_property_append_always_invalidates(self, engine, nrows):
        store = engine.store
        engine.query("whatif_identity")
        generation = store.generation
        misses = self._counter(engine, "cache_misses")
        store.append(store.files[:nrows].copy())
        assert store.generation > generation
        engine.query("whatif_identity")
        assert self._counter(engine, "cache_misses") == misses + 1

"""Golden equivalence: the context path must match the seed path bit-for-bit.

Every analysis entry point runs twice on the same fixed-seed store —
once through :mod:`repro.analysis.legacy` (the pre-context per-analysis
scan implementations, preserved verbatim) and once through the shared
:class:`~repro.analysis.context.AnalysisContext` path — and the results
must be *identical*: same dataclasses, same ints, bit-equal floats, same
rendered report rows. This pins the refactor: a change that makes the
fast path faster but shifts any paper number fails here.
"""

from __future__ import annotations

import math
from dataclasses import fields, is_dataclass

import numpy as np
import pytest

from repro import analysis as fast
from repro.analysis import legacy


def assert_equivalent(a, b, where="result"):
    """Recursive bit-equality, treating NaN as equal to NaN."""
    assert type(a) is type(b), f"{where}: {type(a)} vs {type(b)}"
    if is_dataclass(a) and not isinstance(a, type):
        for f in fields(a):
            assert_equivalent(
                getattr(a, f.name), getattr(b, f.name), f"{where}.{f.name}"
            )
    elif isinstance(a, dict):
        assert list(a.keys()) == list(b.keys()), f"{where}: keys differ"
        for k in a:
            assert_equivalent(a[k], b[k], f"{where}[{k!r}]")
    elif isinstance(a, (list, tuple)):
        assert len(a) == len(b), f"{where}: length {len(a)} vs {len(b)}"
        for i, (x, y) in enumerate(zip(a, b)):
            assert_equivalent(x, y, f"{where}[{i}]")
    elif isinstance(a, np.ndarray):
        np.testing.assert_array_equal(a, b, err_msg=where)
    elif isinstance(a, float):
        assert (math.isnan(a) and math.isnan(b)) or a == b, f"{where}: {a} vs {b}"
    else:
        assert a == b, f"{where}: {a!r} vs {b!r}"


#: (name, fast entry point, legacy twin). Lambdas take the store.
CASES = [
    ("dataset_summary", fast.dataset_summary, legacy.dataset_summary),
    ("layer_volumes", fast.layer_volumes, legacy.layer_volumes),
    ("large_files", fast.large_files, legacy.large_files),
    ("layer_exclusivity", fast.layer_exclusivity, legacy.layer_exclusivity),
    ("interface_usage", fast.interface_usage, legacy.interface_usage),
    ("transfer_cdfs", fast.transfer_cdfs, legacy.transfer_cdfs),
    (
        "interface_transfer_cdfs",
        fast.interface_transfer_cdfs,
        legacy.interface_transfer_cdfs,
    ),
    ("request_cdfs", fast.request_cdfs, legacy.request_cdfs),
    (
        "request_cdfs_large_jobs",
        lambda s: fast.request_cdfs(s, large_jobs_only=True),
        lambda s: legacy.request_cdfs(s, large_jobs_only=True),
    ),
    ("file_classification", fast.file_classification, legacy.file_classification),
    (
        "file_classification_stdio",
        lambda s: fast.file_classification(s, stdio_only=True),
        lambda s: legacy.file_classification(s, stdio_only=True),
    ),
    ("insystem_domain_usage", fast.insystem_domain_usage, legacy.insystem_domain_usage),
    ("stdio_domain_usage", fast.stdio_domain_usage, legacy.stdio_domain_usage),
    ("performance_by_bin", fast.performance_by_bin, legacy.performance_by_bin),
    ("bandwidth_variability", fast.bandwidth_variability, legacy.bandwidth_variability),
]

_IDS = [name for name, _, _ in CASES]


@pytest.fixture(params=["summit", "cori"], scope="module")
def store(request, summit_store_small, cori_store_small):
    return summit_store_small if request.param == "summit" else cori_store_small


@pytest.mark.parametrize("name,fast_fn,legacy_fn", CASES, ids=_IDS)
def test_context_path_matches_seed_path(store, name, fast_fn, legacy_fn):
    assert_equivalent(fast_fn(store), legacy_fn(store), name)


@pytest.mark.parametrize("name,fast_fn,legacy_fn", CASES, ids=_IDS)
def test_rendered_rows_match(store, name, fast_fn, legacy_fn):
    """The report layer sees identical strings (formatting included)."""
    new, old = fast_fn(store), legacy_fn(store)

    def rows(result):
        if isinstance(result, list):
            return [row for item in result for row in item.to_rows()]
        return result.to_rows()

    assert rows(new) == rows(old)


def test_warm_rerun_returns_identical_objects(summit_store_small):
    """Memoized rerun serves the exact same result object, not a rebuild."""
    first = fast.layer_volumes(summit_store_small)
    second = fast.layer_volumes(summit_store_small)
    assert second is first


def test_explicit_context_matches_default(summit_store_small):
    ctx = summit_store_small.analysis()
    via_explicit = fast.transfer_cdfs(summit_store_small, context=ctx)
    via_default = fast.transfer_cdfs(summit_store_small)
    assert via_explicit is via_default

"""The differential harness: incremental == cold recompute, bit for bit.

The delta-invalidation contract (DESIGN.md §11) says an analysis context
updated in place across appends must be indistinguishable from one built
cold on the final store. This suite enforces the strongest version of
that claim:

* **Randomized append schedules** — single-row logs, large batches, and
  interleaved mixes, drawn from a seeded RNG — are streamed onto a live
  store whose context (and every memoized primitive and result) stays
  warm. After *every* append, every analysis entry point is compared
  against a cold store batch-built from the same log prefix, using the
  same recursive bit-equality (`assert_equivalent`) that pins the
  legacy-vs-context refactor.
* **Table identity** — the streamed store's files/jobs arrays and
  catalogs equal the batch-built store's byte for byte at every prefix.
* **Hypothesis properties** — fold associativity (any segmentation of
  the same rows folds to the identical result) and checkpoint/resume
  idempotence (interrupting after any batch and resuming from the saved
  checkpoint reproduces the one-pass store exactly).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import analysis as fast
from repro.instrument.runtime import LogMaterializer
from repro.platforms import cori, summit
from repro.store.ingest import ingest_logs
from repro.store.recordstore import RecordStore
from repro.store.schema import empty_files, empty_jobs
from repro.stream import (
    LogTailReader,
    StreamCheckpoint,
    StreamIngestor,
    dump_line,
    follow,
    ingest_stream,
)

from tests.test_analysis_equivalence import CASES, assert_equivalent

pytestmark = pytest.mark.stream

#: Logs per platform for the schedules. Materialization is the slow part;
#: module-scoped fixtures pay it once.
N_LOGS = 18


@pytest.fixture(scope="module")
def summit_logs(summit_store_small):
    return LogMaterializer(summit(), summit_store_small).materialize_many(N_LOGS)


@pytest.fixture(scope="module")
def cori_logs(cori_store_small):
    return LogMaterializer(cori(), cori_store_small).materialize_many(N_LOGS)


@pytest.fixture(params=["summit", "cori"], scope="module")
def case(request, summit_logs, cori_logs, summit_store_small, cori_store_small):
    if request.param == "summit":
        return summit(), summit_logs, summit_store_small
    return cori(), cori_logs, cori_store_small


def _empty_like(src: RecordStore) -> RecordStore:
    return RecordStore(
        src.platform, empty_files(0), empty_jobs(0),
        domains=src.domains, scale=src.scale,
    )


def _batch_store(logs, machine, src: RecordStore) -> RecordStore:
    built = ingest_logs(
        logs, src.platform, machine.mount_table(),
        domains=src.domains, scale=src.scale,
    )
    # A fresh store around copies: nothing shared with the live one.
    return RecordStore(
        built.platform, built.files.copy(), built.jobs.copy(),
        domains=built.domains, extensions=built.extensions, scale=built.scale,
    )


def _outcome(fn, store):
    """Result or raised-error type: errors must match across paths too."""
    try:
        return fn(store)
    except Exception as exc:
        return ("raised", type(exc))


def _assert_all_queries_equal(live: RecordStore, cold: RecordStore, where):
    for name, fn, _legacy in CASES:
        got, want = _outcome(fn, live), _outcome(fn, cold)
        if isinstance(want, tuple) and want and want[0] == "raised":
            assert got == want, f"{where}:{name}: {got!r} vs {want!r}"
        else:
            assert_equivalent(got, want, f"{where}:{name}")


def _assert_tables_equal(live: RecordStore, cold: RecordStore, where):
    np.testing.assert_array_equal(live.files, cold.files, err_msg=where)
    np.testing.assert_array_equal(live.jobs, cold.jobs, err_msg=where)
    assert live.extensions == cold.extensions, where
    assert live.domains == cold.domains, where


def _schedule(rng, n):
    """A randomized batch schedule mixing single logs and large batches."""
    sizes = []
    remaining = n
    while remaining:
        size = int(rng.choice([1, 1, 2, rng.integers(3, max(4, n // 2 + 1))]))
        size = min(size, remaining)
        sizes.append(size)
        remaining -= size
    return sizes


class TestRandomizedSchedules:
    """Every entry point, after every append, against a cold rebuild."""

    @pytest.mark.parametrize("seed", [0, 1])
    def test_incremental_matches_cold_recompute(self, case, seed):
        machine, logs, src = case
        rng = np.random.default_rng(20220627 + seed)
        live = _empty_like(src)
        ingestor = StreamIngestor(live, machine.mount_table())
        applied = 0
        context = None
        for size in _schedule(rng, len(logs)):
            ingestor.apply(logs[applied:applied + size])
            applied += size
            if context is None:
                # Warm the context now so every later append exercises
                # the delta path, not a cold rebuild.
                context = live.analysis()
            assert live.analysis() is context, "append must not invalidate"
            cold = _batch_store(logs[:applied], machine, src)
            _assert_tables_equal(live, cold, f"prefix={applied}")
            _assert_all_queries_equal(live, cold, f"prefix={applied}")
        assert applied == len(logs)

    def test_single_row_and_large_batch_interleaved(self, case):
        """The two extremes back to back: 1-log appends between bulk ones."""
        machine, logs, src = case
        live = _empty_like(src)
        ingestor = StreamIngestor(live, machine.mount_table())
        context = None
        applied = 0
        for size in (len(logs) // 2, 1, 1, len(logs) - len(logs) // 2 - 2):
            ingestor.apply(logs[applied:applied + size])
            applied += size
            if context is None:
                context = live.analysis()
            cold = _batch_store(logs[:applied], machine, src)
            _assert_tables_equal(live, cold, f"prefix={applied}")
            _assert_all_queries_equal(live, cold, f"prefix={applied}")

    def test_ndjson_end_to_end_equals_batch_build(self, case, tmp_path):
        """dump_line -> tail reader -> ingestor == ingest_logs, bytewise."""
        machine, logs, src = case
        path = str(tmp_path / "s.ndjson")
        with open(path, "w") as fh:
            for log in logs:
                fh.write(dump_line(log))
        live = _empty_like(src)
        stats = ingest_stream(path, live, machine.mount_table(), batch_logs=5)
        assert stats.logs == len(logs) and stats.skipped == 0
        _assert_tables_equal(
            live, _batch_store(logs, machine, src), "end-to-end"
        )


class TestFoldAssociativity:
    """Folding is associative: any segmentation, the identical result.

    Hypothesis draws the segmentation (a list of cut points); the folded
    results — including the exact int64 sums and histogram tallies
    inside them — must be bit-identical however the rows arrived.
    """

    FOLDED = [
        ("layer_volumes", fast.layer_volumes),
        ("interface_usage", fast.interface_usage),
        ("file_classification", fast.file_classification),
        ("file_classification_stdio",
         lambda s: fast.file_classification(s, stdio_only=True)),
        ("request_cdfs", fast.request_cdfs),
        ("request_cdfs_large",
         lambda s: fast.request_cdfs(s, large_jobs_only=True)),
    ]

    @given(cuts=st.lists(st.integers(1, N_LOGS - 1), max_size=6))
    @settings(max_examples=12, deadline=None)
    def test_any_segmentation_folds_identically(self, case, cuts):
        machine, logs, src = case
        bounds = sorted({0, *cuts, len(logs)})
        live = _empty_like(src)
        ingestor = StreamIngestor(live, machine.mount_table())
        ingestor.apply(logs[:bounds[1]])
        context = live.analysis()
        for name, fn in self.FOLDED:
            fn(live)  # memoize, so later appends must fold it
        for lo, hi in zip(bounds[1:], bounds[2:]):
            ingestor.apply(logs[lo:hi])
        assert live.analysis() is context
        cold = _batch_store(logs, machine, src)
        for name, fn in self.FOLDED:
            assert_equivalent(fn(live), fn(cold), name)

    @given(split=st.integers(1, N_LOGS - 1))
    @settings(max_examples=10, deadline=None)
    def test_one_fold_equals_cold(self, case, split):
        """fold(compute(A), tail(B)) == compute(A + B) for every fold."""
        machine, logs, src = case
        live = _empty_like(src)
        ingestor = StreamIngestor(live, machine.mount_table())
        ingestor.apply(logs[:split])
        for name, fn in self.FOLDED:
            fn(live)
        ingestor.apply(logs[split:])
        cold = _batch_store(logs, machine, src)
        for name, fn in self.FOLDED:
            assert_equivalent(fn(live), fn(cold), name)


class TestCheckpointResume:
    """Interrupt anywhere, resume from the checkpoint, same store."""

    @given(batch_logs=st.integers(1, 7), stop_after=st.integers(1, 5))
    @settings(max_examples=12, deadline=None)
    def test_resume_is_idempotent(self, case, tmp_path_factory,
                                  batch_logs, stop_after):
        machine, logs, src = case
        tmp = tmp_path_factory.mktemp("resume")
        path = str(tmp / "s.ndjson")
        ckpt = str(tmp / "c.json")
        with open(path, "w") as fh:
            for log in logs:
                fh.write(dump_line(log))

        # Interrupted run: stop after `stop_after` applied batches.
        live = _empty_like(src)
        ingestor = StreamIngestor(live, machine.mount_table())
        follow(
            LogTailReader(path), ingestor, batch_logs=batch_logs,
            max_batches=stop_after, final=True, checkpoint_path=ckpt,
        )
        saved = StreamCheckpoint.load(ckpt)
        assert saved.logs == ingestor.logs_applied

        # Resume: a *new* ingestor + reader pick up from the checkpoint.
        stats = ingest_stream(
            path, live, machine.mount_table(),
            checkpoint_path=ckpt, batch_logs=batch_logs,
        )
        assert stats.logs == len(logs) - saved.logs
        one_pass = _empty_like(src)
        StreamIngestor(one_pass, machine.mount_table()).apply(logs)
        _assert_tables_equal(live, one_pass, "resume")
        # Resuming again at end-of-stream applies nothing.
        again = ingest_stream(
            path, live, machine.mount_table(), checkpoint_path=ckpt,
        )
        assert again.logs == 0 and again.batches == 0
        _assert_tables_equal(live, one_pass, "resume-noop")

"""Shared fixtures: small generated stores, platforms, and studies.

Stores are session-scoped — generation is the expensive step, and every
analysis test can share the same synthetic population read-only.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CharacterizationStudy, StudyConfig
from repro.platforms import cori, summit
from repro.workloads.generator import (
    GeneratorConfig,
    WorkloadGenerator,
    generate_with_shadows,
)

#: Seed used across the suite; tests that need a different stream derive
#: their own generators.
SEED = 20220627

#: Small scale for unit-level store tests. 5e-4 guarantees at least one
#: SCNL-pipeline job on Summit (floor(0.0095 * 141) = 1), so in-system
#: analyses always have data.
SMALL_SCALE = 5e-4
SHAPE_SCALE = 1e-3


@pytest.fixture(scope="session")
def summit_machine():
    return summit()


@pytest.fixture(scope="session")
def cori_machine():
    return cori()


@pytest.fixture(scope="session")
def summit_store_small():
    gen = WorkloadGenerator("summit", GeneratorConfig(scale=SMALL_SCALE))
    return generate_with_shadows(gen, SEED)


@pytest.fixture(scope="session")
def cori_store_small():
    gen = WorkloadGenerator("cori", GeneratorConfig(scale=SMALL_SCALE))
    return generate_with_shadows(gen, SEED)


@pytest.fixture(scope="session")
def study():
    """A full study at shape-check scale, shared by integration tests."""
    return CharacterizationStudy(StudyConfig(seed=SEED, scale=SHAPE_SCALE))


@pytest.fixture()
def rng():
    return np.random.default_rng(SEED)

"""The public API surface: lazy top-level exports, the repro.api
contract snapshot, and equivalence of run_query with direct analysis
calls. A signature change here is an intentional API break — update the
snapshot in the same commit that documents the break."""

from __future__ import annotations

import inspect
import subprocess
import sys

import pytest

import repro

#: The complete supported surface. ``repro.__all__`` and
#: ``repro.api.__all__`` must both match (plus ``__version__`` on top).
PUBLIC_NAMES = [
    "CharacterizationStudy",
    "RecordStore",
    "ReproError",
    "SpecError",
    "StoreCatalog",
    "StudyConfig",
    "Tracer",
    "WorkloadSpec",
    "compile_spec",
    "generate_store",
    "get_tracer",
    "list_queries",
    "list_specs",
    "load_catalog",
    "load_spec",
    "load_store",
    "run_query",
    "save_store",
    "set_tracer",
    "write_trace",
]

#: Pinned signatures of the callable surface (classes are pinned by
#: name only; their constructors are documented on the class).
SIGNATURES = {
    "generate_store": (
        "(platform: 'str | None' = None, *, "
        "spec: 'Mapping | WorkloadSpec | str | None' = None, "
        "scale: 'float | None' = None, "
        "seed: 'int' = 20220627, jobs: 'int' = 1, "
        "shadows: 'bool' = True) -> 'RecordStore'"
    ),
    "run_query": (
        "(store: 'RecordStore', name: 'str', "
        "params: 'Mapping | None' = None) -> 'object'"
    ),
    "list_queries": "() -> 'list[str]'",
    "list_specs": "() -> 'list[str]'",
    "load_spec": (
        "(source: 'Mapping | WorkloadSpec | str | os.PathLike') "
        "-> 'WorkloadSpec'"
    ),
    "compile_spec": (
        "(source: 'Mapping | WorkloadSpec | str', *, "
        "platform: 'str | None' = None, "
        "scale: 'float | None' = None) -> 'CompiledSpec'"
    ),
    "load_catalog": "(path: 'str') -> 'StoreCatalog'",
    "write_trace": "(path: 'str', tracer: 'Tracer') -> 'None'",
    "set_tracer": "(tracer: 'Tracer | None') -> 'Tracer | None'",
    "get_tracer": "() -> 'Tracer | None'",
}


class TestSurface:
    def test_all_matches_snapshot(self):
        assert repro.__all__ == ["__version__", *PUBLIC_NAMES]

    def test_api_module_matches_top_level(self):
        import repro.api

        assert repro.api.__all__ == PUBLIC_NAMES
        for name in PUBLIC_NAMES:
            assert getattr(repro, name) is getattr(repro.api, name)

    def test_signatures_are_pinned(self):
        for name, expected in SIGNATURES.items():
            fn = getattr(repro, name)
            assert str(inspect.signature(fn)) == expected, name

    def test_dir_lists_public_names(self):
        listed = dir(repro)
        for name in PUBLIC_NAMES:
            assert name in listed

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError, match="no attribute 'nope'"):
            repro.nope

    def test_from_import_works(self):
        from repro import (  # noqa: F401
            CharacterizationStudy,
            Tracer,
            load_store,
            run_query,
        )

    def test_import_repro_is_lazy(self):
        """``import repro`` must not drag in numpy or the analysis
        stack; they load on first attribute touch (PEP 562)."""
        code = (
            "import sys; import repro; "
            "lazy = [m for m in ('numpy', 'repro.api', 'repro.analysis') "
            "if m in sys.modules]; "
            "assert not lazy, f'eagerly imported: {lazy}'; "
            "repro.list_queries; "
            "assert 'repro.api' in sys.modules"
        )
        subprocess.run(
            [sys.executable, "-c", code], check=True, timeout=60
        )

    def test_deep_imports_still_work(self):
        """The redesign must not break a single pre-existing deep path."""
        from repro.analysis import layer_volumes  # noqa: F401
        from repro.core import CharacterizationStudy  # noqa: F401
        from repro.serve import QueryEngine  # noqa: F401
        from repro.serve.registry import default_registry  # noqa: F401
        from repro.store.io import load_store  # noqa: F401
        from repro.workloads.generator import WorkloadGenerator  # noqa: F401


class TestRunQuery:
    def test_equivalent_to_direct_call(self, summit_store_small):
        from repro.analysis import layer_volumes

        direct = layer_volumes(
            summit_store_small, context=summit_store_small.analysis()
        )
        via_api = repro.run_query(summit_store_small, "table3")
        assert direct.to_rows() == via_api.to_rows()

    def test_list_queries_matches_registry(self):
        from repro.serve.registry import default_registry

        assert repro.list_queries() == sorted(default_registry())

    def test_unknown_query(self, summit_store_small):
        from repro.errors import UnknownQueryError

        with pytest.raises(UnknownQueryError, match="unknown query 'nope'"):
            repro.run_query(summit_store_small, "nope")

    def test_bad_params_rejected(self, summit_store_small):
        from repro.errors import ServeError

        with pytest.raises(ServeError, match="unknown parameter"):
            repro.run_query(summit_store_small, "table3", {"bogus": 1})

    def test_params_flow_through(self, summit_store_small):
        top2 = repro.run_query(
            summit_store_small, "advise_aggregation", {"top": 2}
        )
        assert len(top2) <= 2

    def test_generate_store_matches_generator(self):
        import numpy as np

        from repro.workloads.generator import (
            GeneratorConfig,
            WorkloadGenerator,
            generate_with_shadows,
        )

        via_api = repro.generate_store("summit", scale=1e-4, seed=3)
        gen = WorkloadGenerator("summit", GeneratorConfig(scale=1e-4))
        direct = generate_with_shadows(gen, 3)
        assert np.array_equal(via_api.files, direct.files)
        assert np.array_equal(via_api.jobs, direct.jobs)


class TestSpecSurface:
    def test_list_specs_matches_pack_names(self):
        from repro.spec import pack_names

        assert repro.list_specs() == pack_names()
        assert "paper_mix" in repro.list_specs()

    def test_generate_store_spec_equals_direct(self):
        import numpy as np

        direct = repro.generate_store("summit", scale=1e-4, seed=3)
        via_spec = repro.generate_store(
            spec="paper_mix", platform="summit", scale=1e-4, seed=3
        )
        assert np.array_equal(direct.files, via_spec.files)
        assert np.array_equal(direct.jobs, via_spec.jobs)

    def test_generate_store_needs_platform_or_spec(self):
        with pytest.raises(repro.SpecError, match="platform"):
            repro.generate_store()

    def test_load_and_compile_spec_roundtrip(self):
        spec = repro.load_spec("noisy_neighbor")
        assert isinstance(spec, repro.WorkloadSpec)
        again = repro.load_spec(spec.to_dict())
        assert again == spec
        compiled = repro.compile_spec(spec, platform="cori", scale=1e-4)
        assert compiled.platform == "cori"
        assert len(compiled.mix) > len(spec.phases)

    def test_spec_error_is_repro_error(self):
        assert issubclass(repro.SpecError, repro.ReproError)
        with pytest.raises(repro.SpecError, match="not a builtin pack name"):
            repro.load_spec("not_a_pack_or_file")

"""Size-bin definitions used throughout the study.

Two bin families appear in the paper:

* **Access-size bins** — the ten histogram bins Darshan keeps per file for
  POSIX and MPI-IO request sizes (§2.2): 0–100 B, 100 B–1 KB, 1 KB–10 KB,
  10 KB–100 KB, 100 KB–1 MB, 1 MB–4 MB, 4 MB–10 MB, 10 MB–100 MB,
  100 MB–1 GB, >1 GB. Figures 4 and 5 are CDFs over these bins. Darshan
  does **not** keep these for STDIO — neither do we
  (:data:`repro.darshan.counters.STDIO_COUNTERS` has no ``SIZE_`` entries),
  which is exactly the instrumentation gap Recommendation 4 calls out.
* **Transfer-size bins** — bins of *total per-file* data transfer used to
  group files in Figures 3, 9, 11, and 12: 0–100 MB, 100 MB–1 GB, 1–10 GB,
  10–100 GB, 100 GB–1 TB, >1 TB.

Bin edges are decimal (1 KB = 1000 B), matching Darshan's counter names.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.units import GB, KB, MB, TB


@dataclass(frozen=True)
class SizeBins:
    """An ordered set of half-open size bins ``[edge[i], edge[i+1])``.

    ``edges`` has ``nbins + 1`` entries; the last is ``inf``. ``labels``
    mirror the Darshan counter-suffix style (``0_100``, ``100K_1M``,
    ``1G_PLUS``).
    """

    name: str
    edges: tuple[float, ...]
    labels: tuple[str, ...]
    _edges_array: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if len(self.edges) != len(self.labels) + 1:
            raise ValueError(
                f"{self.name}: need len(edges) == len(labels) + 1, "
                f"got {len(self.edges)} edges / {len(self.labels)} labels"
            )
        if any(b <= a for a, b in zip(self.edges, self.edges[1:])):
            raise ValueError(f"{self.name}: edges must be strictly increasing")
        if self.edges[0] != 0:
            raise ValueError(f"{self.name}: first edge must be 0")
        if not np.isinf(self.edges[-1]):
            raise ValueError(f"{self.name}: last edge must be inf")
        object.__setattr__(
            self, "_edges_array", np.asarray(self.edges, dtype=np.float64)
        )

    @property
    def nbins(self) -> int:
        return len(self.labels)

    def index_of(self, size: float) -> int:
        """Bin index for a single size in bytes."""
        if size < 0:
            raise ValueError(f"negative size: {size}")
        # searchsorted(side='right') - 1 maps edge values into the bin they
        # open, i.e. size == 100 lands in the 100_1K bin, matching Darshan.
        return int(np.searchsorted(self._edges_array, size, side="right") - 1)

    def index_array(self, sizes: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`index_of` for an array of sizes in bytes."""
        sizes = np.asarray(sizes)
        if sizes.size and sizes.min() < 0:
            raise ValueError("negative sizes in input")
        return np.searchsorted(self._edges_array, sizes, side="right") - 1

    def histogram(self, sizes: np.ndarray, weights: np.ndarray | None = None) -> np.ndarray:
        """Count (or weight-sum) sizes per bin. Returns shape ``(nbins,)``."""
        idx = self.index_array(sizes)
        return np.bincount(idx, weights=weights, minlength=self.nbins).astype(
            np.int64 if weights is None else np.float64
        )

    def label_of(self, size: float) -> str:
        return self.labels[self.index_of(size)]

    def upper_edges(self) -> np.ndarray:
        """Finite upper edges with ``inf`` kept for the last bin."""
        return self._edges_array[1:].copy()


def _labels_from_edges(edges: Sequence[float]) -> tuple[str, ...]:
    """Render Darshan-style bin labels from numeric edges."""

    def fmt(v: float) -> str:
        if v == 0:
            return "0"
        for unit, factor in (("T", TB), ("G", GB), ("M", MB), ("K", KB)):
            if v >= factor:
                q = v / factor
                return f"{int(q)}{unit}" if q == int(q) else f"{q:g}{unit}"
        return str(int(v))

    labels = []
    for lo, hi in zip(edges, edges[1:]):
        if np.isinf(hi):
            labels.append(f"{fmt(lo)}_PLUS")
        else:
            labels.append(f"{fmt(lo)}_{fmt(hi)}")
    return tuple(labels)


_ACCESS_EDGES = (0, 100, 1 * KB, 10 * KB, 100 * KB, 1 * MB, 4 * MB, 10 * MB, 100 * MB, 1 * GB, float("inf"))

#: The ten Darshan request-size histogram bins (Figures 4–5).
ACCESS_SIZE_BINS = SizeBins(
    name="access_size",
    edges=_ACCESS_EDGES,
    labels=_labels_from_edges(_ACCESS_EDGES),
)

_TRANSFER_EDGES = (0, 100 * MB, 1 * GB, 10 * GB, 100 * GB, 1 * TB, float("inf"))

#: Per-file total transfer-size bins (Figures 3, 9, 11, 12, Table 4).
TRANSFER_SIZE_BINS = SizeBins(
    name="transfer_size",
    edges=_TRANSFER_EDGES,
    labels=_labels_from_edges(_TRANSFER_EDGES),
)

#: Convenience aliases for the figure axes.
ONE_GB_BIN_INDEX = TRANSFER_SIZE_BINS.labels.index("1G_10G")
ONE_TB_PLUS_LABEL = "1T_PLUS"

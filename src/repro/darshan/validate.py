"""Semantic invariants for in-memory logs.

These are the properties a well-formed Darshan-style log must satisfy.
The writer never produces violations (tested), and the study pipeline
validates a sample of generated logs as a self-check.
"""

from __future__ import annotations

from repro.darshan.bins import ACCESS_SIZE_BINS
from repro.darshan.constants import ModuleId
from repro.darshan.counters import has_size_histogram, module_counters
from repro.darshan.log import DarshanLog
from repro.darshan.records import FileRecord
from repro.errors import LogValidationError


def validate_record(record: FileRecord) -> None:
    """Raise :class:`LogValidationError` if a file record is inconsistent."""
    if (record.counters < 0).any():
        bad = [
            name
            for name, v in zip(module_counters(record.module), record.counters)
            if v < 0 and not name.startswith("MAX_BYTE")
        ]
        if bad:
            raise LogValidationError(
                f"{record!r}: negative counters {bad}"
            )
    for name in ("F_READ_TIME", "F_WRITE_TIME", "F_META_TIME"):
        try:
            if record.get(name) < 0:
                raise LogValidationError(f"{record!r}: negative {name}")
        except KeyError:
            continue

    if has_size_histogram(record.module):
        _validate_histograms(record)

    # Bytes without any time is physically impossible for a data module
    # (it would imply infinite bandwidth in the performance analysis).
    if record.bytes_read > 0 and record.read_time <= 0:
        raise LogValidationError(f"{record!r}: bytes read but zero read time")
    if record.bytes_written > 0 and record.write_time <= 0:
        raise LogValidationError(f"{record!r}: bytes written but zero write time")


def _validate_histograms(record: FileRecord) -> None:
    """Histogram totals must equal operation counts, and byte totals must
    be achievable given the histogram's bin edges."""
    for direction, count_names in (
        ("READ", ("READS", "INDEP_READS", "COLL_READS", "NB_READS")),
        ("WRITE", ("WRITES", "INDEP_WRITES", "COLL_WRITES", "NB_WRITES")),
    ):
        hist_total = 0
        for label in ACCESS_SIZE_BINS.labels:
            hist_total += int(record.get(f"SIZE_{direction}_{label}"))
        op_total = 0
        for name in count_names:
            try:
                op_total += int(record.get(name))
            except KeyError:
                continue
        if hist_total != op_total:
            raise LogValidationError(
                f"{record!r}: {direction} histogram sums to {hist_total} "
                f"but op counters sum to {op_total}"
            )
        # Lower bound on achievable bytes: each op in bin i moved at least
        # edge[i] bytes (upper bound is unbounded for the 1G+ bin).
        min_bytes = 0
        for i, label in enumerate(ACCESS_SIZE_BINS.labels):
            n = int(record.get(f"SIZE_{direction}_{label}"))
            min_bytes += n * int(ACCESS_SIZE_BINS.edges[i])
        actual = record.bytes_read if direction == "READ" else record.bytes_written
        if actual < min_bytes:
            raise LogValidationError(
                f"{record!r}: {direction} bytes {actual} below histogram "
                f"lower bound {min_bytes}"
            )


def validate_log(log: DarshanLog) -> None:
    """Validate a whole log: job record, name bindings, every file record."""
    job = log.job
    if job.end_time < job.start_time:
        raise LogValidationError(
            f"job {job.job_id}: end before start"
        )
    names = log.name_records()
    for record in log.iter_records():
        if record.record_id not in names:
            raise LogValidationError(
                f"record id {record.record_id:#x} has no name record"
            )
        validate_record(record)
    # STDIO must not carry size histograms (instrumentation-gap fidelity).
    for record in log.records(ModuleId.STDIO):
        for counter in module_counters(ModuleId.STDIO):
            if counter.startswith("SIZE_"):
                raise LogValidationError(
                    "STDIO registry unexpectedly grew size histograms"
                )
        break  # registry is global; checking one record suffices

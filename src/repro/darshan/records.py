"""In-memory record types for the Darshan-style log.

A log (one per application instance, §2.2) contains:

* one :class:`JobRecord` — job id, user, process count, start/end times,
  and free-form metadata (platform name, science domain when the
  scheduler logs were merged in, §3.3.2);
* :class:`NameRecord` entries mapping a 64-bit record id to a file path
  and the mount point / storage layer it resolved to;
* per-module :class:`FileRecord` entries holding the counter arrays.

Shared files accessed collectively by all ranks are collapsed by the
runtime into a single record with ``rank == SHARED_FILE_RANK`` (−1); §3.4
of the paper restricts its performance analysis to exactly these records,
and so does :mod:`repro.analysis.performance`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterator, Mapping

import numpy as np

from repro.darshan.constants import ModuleId
from repro.darshan.counters import (
    counter_index,
    fcounter_index,
    module_counters,
    module_fcounters,
)

#: Rank value marking a record that aggregates all ranks of a shared file.
SHARED_FILE_RANK = -1


def record_id_for_path(path: str) -> int:
    """Stable 64-bit record id for a path (Darshan hashes path names too)."""
    digest = hashlib.sha256(path.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


@dataclass
class JobRecord:
    """Execution-level metadata recorded once per log."""

    job_id: int
    user_id: int
    nprocs: int
    start_time: float
    end_time: float
    #: e.g. "summit" or "cori"; real Darshan gets this from the hostname.
    platform: str = ""
    #: Science domain when scheduler/project logs were merged (may be "").
    domain: str = ""
    #: Free-form key/value metadata (exe name, darshan version, ...).
    metadata: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.nprocs <= 0:
            raise ValueError(f"nprocs must be positive, got {self.nprocs}")
        if self.end_time < self.start_time:
            raise ValueError(
                f"end_time {self.end_time} precedes start_time {self.start_time}"
            )

    @property
    def runtime(self) -> float:
        """Wall-clock seconds covered by this log."""
        return self.end_time - self.start_time


@dataclass(frozen=True)
class NameRecord:
    """Maps a record id to the path and the storage layer it lives on."""

    record_id: int
    path: str
    #: Mount point string, e.g. "/gpfs/alpine" or "/mnt/bb" — the analyses
    #: use :attr:`layer` which the runtime resolves from the platform's
    #: mount table.
    mount_point: str = ""
    #: Storage-layer key, e.g. "pfs" or "insystem" (see repro.platforms).
    layer: str = ""

    @classmethod
    def for_path(cls, path: str, mount_point: str = "", layer: str = "") -> "NameRecord":
        return cls(record_id_for_path(path), path, mount_point, layer)


class FileRecord:
    """One module's counters for one (file, rank) pair.

    Counter storage is a pair of NumPy arrays in registry order; named
    access goes through :meth:`get`/:meth:`set` (and the ``[]`` operator),
    which accept bare or module-qualified counter names.
    """

    __slots__ = ("module", "record_id", "rank", "counters", "fcounters")

    def __init__(
        self,
        module: ModuleId,
        record_id: int,
        rank: int = SHARED_FILE_RANK,
        counters: np.ndarray | None = None,
        fcounters: np.ndarray | None = None,
    ):
        ncounters = len(module_counters(module))
        nfcounters = len(module_fcounters(module))
        if counters is None:
            counters = np.zeros(ncounters, dtype=np.int64)
        else:
            counters = np.asarray(counters, dtype=np.int64)
            if counters.shape != (ncounters,):
                raise ValueError(
                    f"{module.prefix} expects {ncounters} counters, "
                    f"got shape {counters.shape}"
                )
        if fcounters is None:
            fcounters = np.zeros(nfcounters, dtype=np.float64)
        else:
            fcounters = np.asarray(fcounters, dtype=np.float64)
            if fcounters.shape != (nfcounters,):
                raise ValueError(
                    f"{module.prefix} expects {nfcounters} fcounters, "
                    f"got shape {fcounters.shape}"
                )
        if rank < SHARED_FILE_RANK:
            raise ValueError(f"rank must be >= -1, got {rank}")
        self.module = module
        self.record_id = record_id
        self.rank = rank
        self.counters = counters
        self.fcounters = fcounters

    # -- named access -----------------------------------------------------
    def get(self, name: str) -> float:
        """Read a counter by (bare or qualified) name."""
        try:
            return int(self.counters[counter_index(self.module, name)])
        except KeyError:
            return float(self.fcounters[fcounter_index(self.module, name)])

    def set(self, name: str, value: float) -> None:
        """Write a counter by (bare or qualified) name."""
        try:
            self.counters[counter_index(self.module, name)] = int(value)
        except KeyError:
            self.fcounters[fcounter_index(self.module, name)] = float(value)

    def add(self, name: str, value: float) -> None:
        """Increment a counter by (bare or qualified) name."""
        try:
            self.counters[counter_index(self.module, name)] += int(value)
        except KeyError:
            self.fcounters[fcounter_index(self.module, name)] += float(value)

    def __getitem__(self, name: str) -> float:
        return self.get(name)

    def __setitem__(self, name: str, value: float) -> None:
        self.set(name, value)

    # -- derived quantities the paper's analyses use ----------------------
    @property
    def bytes_read(self) -> int:
        return int(self.get("BYTES_READ")) if self._has("BYTES_READ") else 0

    @property
    def bytes_written(self) -> int:
        return int(self.get("BYTES_WRITTEN")) if self._has("BYTES_WRITTEN") else 0

    @property
    def read_time(self) -> float:
        return float(self.get("F_READ_TIME")) if self._has_f("F_READ_TIME") else 0.0

    @property
    def write_time(self) -> float:
        return float(self.get("F_WRITE_TIME")) if self._has_f("F_WRITE_TIME") else 0.0

    @property
    def is_shared(self) -> bool:
        """True when this record aggregates all ranks (§3.4's rank −1)."""
        return self.rank == SHARED_FILE_RANK

    def transfer_size(self) -> int:
        """Total read+write bytes — the paper's per-file transfer size (§3.1)."""
        return self.bytes_read + self.bytes_written

    def read_bandwidth(self) -> float:
        """Bytes/second for reads; 0 when no time was accumulated."""
        t = self.read_time
        return self.bytes_read / t if t > 0 else 0.0

    def write_bandwidth(self) -> float:
        """Bytes/second for writes; 0 when no time was accumulated."""
        t = self.write_time
        return self.bytes_written / t if t > 0 else 0.0

    def _has(self, bare: str) -> bool:
        return bare in module_counters(self.module)

    def _has_f(self, bare: str) -> bool:
        return bare in module_fcounters(self.module)

    def named_counters(self) -> Mapping[str, int]:
        """Dict view of integer counters (for debugging and report dumps)."""
        names = module_counters(self.module)
        return {n: int(v) for n, v in zip(names, self.counters)}

    def named_fcounters(self) -> Mapping[str, float]:
        names = module_fcounters(self.module)
        return {n: float(v) for n, v in zip(names, self.fcounters)}

    def __repr__(self) -> str:
        return (
            f"FileRecord({self.module.prefix}, id={self.record_id:#x}, "
            f"rank={self.rank}, R={self.bytes_read}B, W={self.bytes_written}B)"
        )


def iter_size_bins(record: FileRecord, direction: str) -> Iterator[tuple[str, int]]:
    """Yield ``(bin_label, count)`` for a POSIX/MPI-IO record's histogram.

    ``direction`` is ``"read"`` or ``"write"``. Raises ``KeyError`` for
    modules without size histograms (STDIO, LUSTRE).
    """
    if direction not in ("read", "write"):
        raise ValueError(f"direction must be 'read' or 'write', got {direction!r}")
    prefix = f"SIZE_{direction.upper()}_"
    names = module_counters(record.module)
    found = False
    for i, name in enumerate(names):
        if name.startswith(prefix):
            found = True
            yield name[len(prefix):], int(record.counters[i])
    if not found:
        raise KeyError(f"{record.module.prefix} has no {direction} size histogram")

"""Human-readable log summaries, in the style of ``darshan-parser``.

Facility staff triage individual Darshan logs with ``darshan-parser`` /
pydarshan's job summary: per-module aggregate counters, the busiest files,
and derived rates. This module renders the same view for our logs — used
by the log-forensics example and handy in tests when a generated log
needs eyeballing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.darshan.constants import DATA_MODULES, ModuleId
from repro.darshan.log import DarshanLog
from repro.units import format_size


@dataclass(frozen=True)
class ModuleSummary:
    """Aggregates for one instrumentation module within one log."""

    module: ModuleId
    nrecords: int
    nfiles: int
    bytes_read: int
    bytes_written: int
    read_time: float
    write_time: float
    meta_time: float

    @property
    def read_bandwidth(self) -> float:
        return self.bytes_read / self.read_time if self.read_time > 0 else 0.0

    @property
    def write_bandwidth(self) -> float:
        return (
            self.bytes_written / self.write_time if self.write_time > 0 else 0.0
        )


def summarize_module(log: DarshanLog, module: ModuleId) -> ModuleSummary:
    """Aggregate one module's records."""
    records = log.records(module)
    bytes_read = sum(r.bytes_read for r in records)
    bytes_written = sum(r.bytes_written for r in records)
    read_time = sum(r.read_time for r in records)
    write_time = sum(r.write_time for r in records)
    meta_time = 0.0
    for r in records:
        try:
            meta_time += float(r.get("F_META_TIME"))
        except KeyError:
            pass
    return ModuleSummary(
        module=module,
        nrecords=len(records),
        nfiles=len({r.record_id for r in records}),
        bytes_read=bytes_read,
        bytes_written=bytes_written,
        read_time=read_time,
        write_time=write_time,
        meta_time=meta_time,
    )


def top_files(
    log: DarshanLog, k: int = 5
) -> list[tuple[str, int]]:
    """The k busiest files by total transfer (POSIX+STDIO accounting)."""
    volumes: dict[int, int] = {}
    for module in (ModuleId.POSIX, ModuleId.STDIO):
        for r in log.records(module):
            volumes[r.record_id] = (
                volumes.get(r.record_id, 0) + r.transfer_size()
            )
    ranked = sorted(volumes.items(), key=lambda kv: -kv[1])[:k]
    return [(log.path_of(rid), vol) for rid, vol in ranked]


def render_log_summary(log: DarshanLog, *, top_k: int = 5) -> str:
    """The darshan-parser-style text report for one log."""
    job = log.job
    lines = [
        f"# job {job.job_id} (user {job.user_id}) on {job.platform or '?'}"
        + (f" [{job.domain}]" if job.domain else ""),
        f"# nprocs {job.nprocs}, runtime {job.runtime:.0f}s"
        + (f", {len(log.traces())} DXT traces" if log.dxt_enabled else ""),
    ]
    total_read, total_written = log.total_bytes()
    lines.append(
        f"# total: read {format_size(total_read)}, "
        f"written {format_size(total_written)}, {log.nfiles()} files"
    )
    for module in DATA_MODULES:
        s = summarize_module(log, module)
        if not s.nrecords:
            continue
        lines.append(
            f"{s.module.prefix:6s} {s.nrecords:6d} records "
            f"{s.nfiles:6d} files  R {format_size(s.bytes_read):>10} "
            f"@ {format_size(s.read_bandwidth):>10}/s  "
            f"W {format_size(s.bytes_written):>10} "
            f"@ {format_size(s.write_bandwidth):>10}/s  "
            f"meta {s.meta_time:.3f}s"
        )
    lustre = log.records(ModuleId.LUSTRE)
    if lustre:
        lines.append(f"LUSTRE {len(lustre):6d} layout records")
    busiest = top_files(log, top_k)
    if busiest:
        lines.append(f"top {len(busiest)} files by transfer:")
        for path, vol in busiest:
            lines.append(f"  {format_size(vol):>10}  {path}")
    return "\n".join(lines)

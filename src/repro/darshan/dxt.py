"""Darshan eXtended Tracing (DXT) — per-operation trace segments.

§2.2 of the paper: *"researchers proposed Darshan eXtended Tracing (DXT)
as an extension to provide high-resolution traces for in-depth analysis
of HPC I/O workloads. For the target two systems, DXT is disabled by
default. Furthermore, if enabled, it only collects POSIX and MPI-IO
operations, not tracing STDIO calls."*

We implement DXT with the same scope rules: a :class:`DxtTrace` holds
timestamped read/write segments (rank, offset, length, start, end) for
one file record, POSIX and MPI-IO only — attempting to trace STDIO raises,
mirroring the real limitation the paper works around. Traces serialize
into the container as their own region kind and round-trip losslessly.

DXT is what the §3.4 performance methodology *wishes* it had ("we do not
have the exact timestamp of when each operation happened"): with traces,
per-file bandwidth can be computed from actual overlap windows instead of
accumulated timers. :func:`bandwidth_from_trace` implements that better
estimator, and the tests show it agrees with the counter-based estimate
for serialized streams and diverges (correctly) for concurrent ones.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.darshan.accumulate import OP_DTYPE, OP_READ, OP_WRITE
from repro.darshan.constants import ModuleId
from repro.errors import LogFormatError, LogValidationError

#: Segment table dtype: one row per traced operation.
SEGMENT_DTYPE = np.dtype(
    [
        ("rank", np.int32),
        ("kind", np.uint8),       # OP_READ or OP_WRITE
        ("offset", np.int64),
        ("length", np.int64),
        ("start", np.float64),
        ("end", np.float64),
    ]
)

#: Modules DXT can trace (the paper's stated limitation).
TRACEABLE_MODULES = (ModuleId.POSIX, ModuleId.MPIIO)


@dataclass
class DxtTrace:
    """High-resolution trace for one (module, file record)."""

    module: ModuleId
    record_id: int
    segments: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=SEGMENT_DTYPE)
    )

    def __post_init__(self) -> None:
        if self.module not in TRACEABLE_MODULES:
            raise LogValidationError(
                f"DXT traces POSIX and MPI-IO only, not {self.module.prefix} "
                "(the instrumentation gap discussed in §2.2)"
            )
        segments = np.asarray(self.segments, dtype=SEGMENT_DTYPE)
        self.segments = segments
        self.validate()

    # ------------------------------------------------------------------
    def validate(self) -> None:
        s = self.segments
        if not len(s):
            return
        if (s["length"] < 0).any():
            raise LogValidationError("negative segment length")
        if (s["offset"] < 0).any():
            raise LogValidationError("negative segment offset")
        if (s["end"] < s["start"]).any():
            raise LogValidationError("segment ends before it starts")
        bad_kind = ~np.isin(s["kind"], (OP_READ, OP_WRITE))
        if bad_kind.any():
            raise LogValidationError("DXT segments must be reads or writes")

    @classmethod
    def from_ops(
        cls, module: ModuleId, record_id: int, rank: int, ops: np.ndarray
    ) -> "DxtTrace":
        """Build a trace from an accumulator operation batch.

        Only data operations are traced (DXT does not record opens/seeks).
        """
        if ops.dtype != OP_DTYPE:
            raise TypeError(f"ops must have OP_DTYPE, got {ops.dtype}")
        data = ops[np.isin(ops["kind"], (OP_READ, OP_WRITE))]
        segments = np.empty(len(data), dtype=SEGMENT_DTYPE)
        segments["rank"] = rank
        segments["kind"] = data["kind"]
        segments["offset"] = data["offset"]
        segments["length"] = data["size"]
        segments["start"] = data["start"]
        segments["end"] = data["start"] + data["duration"]
        return cls(module, record_id, segments)

    # -- queries ---------------------------------------------------------
    def nsegments(self) -> int:
        return len(self.segments)

    def bytes_moved(self, kind: int | None = None) -> int:
        s = self.segments
        if kind is not None:
            s = s[s["kind"] == kind]
        return int(s["length"].sum())

    def span(self) -> tuple[float, float]:
        """(first start, last end); (0, 0) for an empty trace."""
        if not len(self.segments):
            return (0.0, 0.0)
        return (
            float(self.segments["start"].min()),
            float(self.segments["end"].max()),
        )

    def busy_time(self, kind: int | None = None) -> float:
        """Union length of the segment intervals (concurrency-aware).

        This is the quantity the paper's counter-based methodology cannot
        observe for partially-shared files: overlapping per-rank intervals
        count once.
        """
        s = self.segments
        if kind is not None:
            s = s[s["kind"] == kind]
        if not len(s):
            return 0.0
        order = np.argsort(s["start"], kind="stable")
        starts = s["start"][order]
        ends = s["end"][order]
        total = 0.0
        cur_start, cur_end = float(starts[0]), float(ends[0])
        for i in range(1, len(starts)):
            st, en = float(starts[i]), float(ends[i])
            if st > cur_end:
                total += cur_end - cur_start
                cur_start, cur_end = st, en
            else:
                cur_end = max(cur_end, en)
        return total + (cur_end - cur_start)

    def sequentiality(self, kind: int) -> float:
        """Fraction of per-rank consecutive accesses (SSD-relevant, Rec 4)."""
        s = self.segments[self.segments["kind"] == kind]
        if len(s) < 2:
            return 1.0 if len(s) else 0.0
        consec = 0
        pairs = 0
        for rank in np.unique(s["rank"]):
            per = s[s["rank"] == rank]
            per = per[np.argsort(per["start"], kind="stable")]
            if len(per) < 2:
                continue
            prev_end = per["offset"][:-1] + per["length"][:-1]
            consec += int((per["offset"][1:] == prev_end).sum())
            pairs += len(per) - 1
        return consec / pairs if pairs else 1.0


def bandwidth_from_trace(trace: DxtTrace, kind: int) -> float:
    """Bytes/second over the *busy* window — the DXT-grade estimator.

    Counter-based analysis divides bytes by summed per-op durations,
    which over-counts concurrent rank activity; the trace-based estimate
    divides by the union of intervals instead.
    """
    busy = trace.busy_time(kind)
    if busy <= 0:
        return 0.0
    return trace.bytes_moved(kind) / busy


# --------------------------------------------------------------------------
# Serialization (used by repro.darshan.format through the DXT region kind).
# --------------------------------------------------------------------------

_HEADER = struct.Struct("<HHQQ")  # module, reserved, record_id, nsegments


def encode_traces(traces: list[DxtTrace]) -> bytes:
    """Encode traces to a raw (uncompressed) DXT region payload."""
    parts = [struct.pack("<Q", len(traces))]
    for t in traces:
        parts.append(
            _HEADER.pack(int(t.module), 0, t.record_id, len(t.segments))
        )
        parts.append(np.ascontiguousarray(t.segments).tobytes())
    return b"".join(parts)


def decode_traces(payload: bytes) -> list[DxtTrace]:
    """Decode a DXT region payload."""
    view = memoryview(payload)
    if len(view) < 8:
        raise LogFormatError("truncated DXT region")
    (count,) = struct.unpack_from("<Q", view, 0)
    off = 8
    out: list[DxtTrace] = []
    for _ in range(count):
        if off + _HEADER.size > len(view):
            raise LogFormatError("truncated DXT trace header")
        module_raw, _r, record_id, nsegs = _HEADER.unpack_from(view, off)
        off += _HEADER.size
        nbytes = nsegs * SEGMENT_DTYPE.itemsize
        if off + nbytes > len(view):
            raise LogFormatError("truncated DXT segment table")
        segments = np.frombuffer(
            view, dtype=SEGMENT_DTYPE, count=nsegs, offset=off
        ).copy()
        off += nbytes
        try:
            module = ModuleId(module_raw)
        except ValueError:
            raise LogFormatError(f"unknown DXT module id {module_raw}") from None
        out.append(DxtTrace(module, record_id, segments))
    if off != len(view):
        raise LogFormatError("trailing bytes in DXT region")
    return out

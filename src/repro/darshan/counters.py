"""Counter registries for each instrumentation module.

Each module defines an ordered tuple of **integer counters** and an ordered
tuple of **floating-point counters** (timers and timestamps, seconds). The
order is the on-disk order used by :mod:`repro.darshan.format` and the
column order used by the accumulator, so it is part of the format contract:
**append only, never reorder**.

Names follow real Darshan 3.x: the study's analyses are written against
``<MODULE>_BYTES_READ/WRITTEN``, ``<MODULE>_F_READ/WRITE_TIME`` and the
``<MODULE>_SIZE_{READ,WRITE}_<bin>`` histogram counters (§2.2 of the paper).
STDIO deliberately has *no* size-histogram counters — that instrumentation
gap is one of the paper's findings (Recommendation 4).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Mapping

from repro.darshan.bins import ACCESS_SIZE_BINS
from repro.darshan.constants import ModuleId

_SIZE_READ = tuple(f"SIZE_READ_{label}" for label in ACCESS_SIZE_BINS.labels)
_SIZE_WRITE = tuple(f"SIZE_WRITE_{label}" for label in ACCESS_SIZE_BINS.labels)

#: POSIX module integer counters.
POSIX_COUNTERS: tuple[str, ...] = (
    "OPENS",
    "READS",
    "WRITES",
    "SEEKS",
    "STATS",
    "FSYNCS",
    "BYTES_READ",
    "BYTES_WRITTEN",
    "CONSEC_READS",
    "CONSEC_WRITES",
    "SEQ_READS",
    "SEQ_WRITES",
    "RW_SWITCHES",
    "MAX_BYTE_READ",
    "MAX_BYTE_WRITTEN",
    *_SIZE_READ,
    *_SIZE_WRITE,
)

#: POSIX module floating-point counters (seconds).
POSIX_FCOUNTERS: tuple[str, ...] = (
    "F_OPEN_START_TIMESTAMP",
    "F_READ_START_TIMESTAMP",
    "F_WRITE_START_TIMESTAMP",
    "F_CLOSE_END_TIMESTAMP",
    "F_READ_TIME",
    "F_WRITE_TIME",
    "F_META_TIME",
)

#: MPI-IO module integer counters.
MPIIO_COUNTERS: tuple[str, ...] = (
    "INDEP_OPENS",
    "COLL_OPENS",
    "INDEP_READS",
    "INDEP_WRITES",
    "COLL_READS",
    "COLL_WRITES",
    "NB_READS",
    "NB_WRITES",
    "SYNCS",
    "BYTES_READ",
    "BYTES_WRITTEN",
    "RW_SWITCHES",
    *_SIZE_READ,
    *_SIZE_WRITE,
)

#: MPI-IO module floating-point counters (seconds).
MPIIO_FCOUNTERS: tuple[str, ...] = (
    "F_OPEN_START_TIMESTAMP",
    "F_READ_START_TIMESTAMP",
    "F_WRITE_START_TIMESTAMP",
    "F_CLOSE_END_TIMESTAMP",
    "F_READ_TIME",
    "F_WRITE_TIME",
    "F_META_TIME",
)

#: STDIO module integer counters. Note: no SIZE_ histogram — Darshan does
#: not instrument per-request sizes for STDIO (§2.2), and the paper's
#: Recommendation 4 asks for exactly that capability to be added.
STDIO_COUNTERS: tuple[str, ...] = (
    "OPENS",
    "READS",
    "WRITES",
    "SEEKS",
    "FLUSHES",
    "BYTES_READ",
    "BYTES_WRITTEN",
    "MAX_BYTE_READ",
    "MAX_BYTE_WRITTEN",
)

#: STDIO module floating-point counters (seconds).
STDIO_FCOUNTERS: tuple[str, ...] = (
    "F_OPEN_START_TIMESTAMP",
    "F_READ_START_TIMESTAMP",
    "F_WRITE_START_TIMESTAMP",
    "F_CLOSE_END_TIMESTAMP",
    "F_READ_TIME",
    "F_WRITE_TIME",
    "F_META_TIME",
)

#: LUSTRE module integer counters: file-layout metadata, no data path.
LUSTRE_COUNTERS: tuple[str, ...] = (
    "OSTS",
    "MDTS",
    "STRIPE_OFFSET",
    "STRIPE_SIZE",
    "STRIPE_WIDTH",
)

#: LUSTRE module has no timers.
LUSTRE_FCOUNTERS: tuple[str, ...] = ()

_REGISTRY: Mapping[ModuleId, tuple[tuple[str, ...], tuple[str, ...]]] = {
    ModuleId.POSIX: (POSIX_COUNTERS, POSIX_FCOUNTERS),
    ModuleId.MPIIO: (MPIIO_COUNTERS, MPIIO_FCOUNTERS),
    ModuleId.STDIO: (STDIO_COUNTERS, STDIO_FCOUNTERS),
    ModuleId.LUSTRE: (LUSTRE_COUNTERS, LUSTRE_FCOUNTERS),
}


def module_counters(module: ModuleId) -> tuple[str, ...]:
    """Ordered integer-counter names for a module."""
    return _REGISTRY[module][0]


def module_fcounters(module: ModuleId) -> tuple[str, ...]:
    """Ordered float-counter names for a module."""
    return _REGISTRY[module][1]


@lru_cache(maxsize=None)
def counter_index(module: ModuleId, name: str) -> int:
    """Index of an integer counter within its module's counter array.

    ``name`` may be bare (``"BYTES_READ"``) or fully qualified with the
    module prefix (``"POSIX_BYTES_READ"``).
    """
    bare = _strip_prefix(module, name)
    try:
        return _REGISTRY[module][0].index(bare)
    except ValueError:
        raise KeyError(f"{module.prefix} has no counter {name!r}") from None


@lru_cache(maxsize=None)
def fcounter_index(module: ModuleId, name: str) -> int:
    """Index of a float counter within its module's fcounter array."""
    bare = _strip_prefix(module, name)
    try:
        return _REGISTRY[module][1].index(bare)
    except ValueError:
        raise KeyError(f"{module.prefix} has no fcounter {name!r}") from None


def _strip_prefix(module: ModuleId, name: str) -> str:
    prefix = module.prefix + "_"
    return name[len(prefix):] if name.startswith(prefix) else name


def qualified_name(module: ModuleId, bare: str) -> str:
    """``(POSIX, "BYTES_READ") -> "POSIX_BYTES_READ"``."""
    return f"{module.prefix}_{bare}"


def has_size_histogram(module: ModuleId) -> bool:
    """Whether the module records per-request size histograms.

    True for POSIX and MPI-IO; False for STDIO (the gap Recommendation 4
    highlights) and LUSTRE (metadata only).
    """
    return any(c.startswith("SIZE_READ_") for c in _REGISTRY[module][0])

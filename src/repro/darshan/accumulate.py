"""Building counter records from I/O operation streams.

This is the heart of what the Darshan runtime does inside an instrumented
application (Figure 2 of the paper: *reduce* per-file operation streams to
counters). Given a batch of operations against one file by one rank (or
the merged stream of a shared file), :func:`accumulate` produces the
:class:`~repro.darshan.records.FileRecord` with:

* operation counts (opens, reads, writes, seeks, …);
* byte totals and max offsets touched;
* access-size histograms for POSIX and MPI-IO (not STDIO — the gap the
  paper's Recommendation 4 targets);
* sequential/consecutive access classification;
* cumulative read/write/meta times and first/last timestamps.

Operations are a NumPy structured array (:data:`OP_DTYPE`) so accumulating
a million-op stream is a handful of vectorized passes, per the
hpc-parallel guide's "no per-record Python loops on hot paths".
"""

from __future__ import annotations

import numpy as np

from repro.darshan.bins import ACCESS_SIZE_BINS
from repro.darshan.constants import ModuleId
from repro.darshan.counters import counter_index, has_size_histogram
from repro.darshan.records import FileRecord

# Operation kind codes (stable, used by repro.instrument.opstream too).
OP_OPEN = 0
OP_READ = 1
OP_WRITE = 2
OP_SEEK = 3
OP_STAT = 4
OP_FSYNC = 5
OP_FLUSH = 6
OP_CLOSE = 7

OP_KIND_NAMES = {
    OP_OPEN: "open",
    OP_READ: "read",
    OP_WRITE: "write",
    OP_SEEK: "seek",
    OP_STAT: "stat",
    OP_FSYNC: "fsync",
    OP_FLUSH: "flush",
    OP_CLOSE: "close",
}

#: Structured dtype for an operation batch. ``start`` is seconds relative
#: to job start; ``duration`` is seconds; ``offset``/``size`` are bytes.
OP_DTYPE = np.dtype(
    [
        ("kind", np.uint8),
        ("offset", np.int64),
        ("size", np.int64),
        ("start", np.float64),
        ("duration", np.float64),
    ]
)


def empty_ops(n: int = 0) -> np.ndarray:
    """Allocate an operation batch of length ``n``."""
    return np.zeros(n, dtype=OP_DTYPE)


def make_ops(kinds, offsets, sizes, starts, durations) -> np.ndarray:
    """Assemble an operation batch from parallel sequences."""
    kinds = np.asarray(kinds, dtype=np.uint8)
    n = len(kinds)
    ops = empty_ops(n)
    ops["kind"] = kinds
    ops["offset"] = np.asarray(offsets, dtype=np.int64)
    ops["size"] = np.asarray(sizes, dtype=np.int64)
    ops["start"] = np.asarray(starts, dtype=np.float64)
    ops["duration"] = np.asarray(durations, dtype=np.float64)
    if np.any(ops["size"] < 0):
        raise ValueError("operation sizes must be non-negative")
    if np.any(ops["duration"] < 0):
        raise ValueError("operation durations must be non-negative")
    return ops


def _sequentiality(offsets: np.ndarray, sizes: np.ndarray) -> tuple[int, int]:
    """(consecutive, sequential) op counts, Darshan-style.

    An access is *consecutive* when it starts exactly where the previous
    one ended and *sequential* when it starts at or past the previous end
    (Darshan counts consecutive ⊆ sequential). The first access is neither.
    """
    if len(offsets) < 2:
        return 0, 0
    prev_end = offsets[:-1] + sizes[:-1]
    consec = int(np.count_nonzero(offsets[1:] == prev_end))
    seq = int(np.count_nonzero(offsets[1:] >= prev_end))
    return consec, seq


def _rw_switches(kinds: np.ndarray) -> int:
    """Number of read↔write alternations in the data-op subsequence."""
    data = kinds[(kinds == OP_READ) | (kinds == OP_WRITE)]
    if len(data) < 2:
        return 0
    return int(np.count_nonzero(data[1:] != data[:-1]))


def accumulate(
    module: ModuleId,
    record_id: int,
    rank: int,
    ops: np.ndarray,
    *,
    collective: bool = False,
) -> FileRecord:
    """Reduce an operation batch to a single file record.

    ``collective`` marks MPI-IO collective operations (ignored for other
    modules). The batch must be sorted by ``start`` time; out-of-order
    batches raise ``ValueError`` because sequentiality detection would
    silently lie otherwise.
    """
    if ops.dtype != OP_DTYPE:
        raise TypeError(f"ops must have OP_DTYPE, got {ops.dtype}")
    if module is ModuleId.LUSTRE:
        raise ValueError("LUSTRE module records layout metadata, not operations")
    starts = ops["start"]
    if len(starts) > 1 and np.any(np.diff(starts) < 0):
        raise ValueError("operation batch must be sorted by start time")

    record = FileRecord(module, record_id, rank)
    kinds = ops["kind"]
    is_read = kinds == OP_READ
    is_write = kinds == OP_WRITE

    reads = ops[is_read]
    writes = ops[is_write]

    # -- counts ----------------------------------------------------------
    if module is ModuleId.MPIIO:
        open_name = "COLL_OPENS" if collective else "INDEP_OPENS"
        read_name = "COLL_READS" if collective else "INDEP_READS"
        write_name = "COLL_WRITES" if collective else "INDEP_WRITES"
        record.set(open_name, int(np.count_nonzero(kinds == OP_OPEN)))
        record.set(read_name, len(reads))
        record.set(write_name, len(writes))
        record.set("SYNCS", int(np.count_nonzero(kinds == OP_FSYNC)))
    else:
        record.set("OPENS", int(np.count_nonzero(kinds == OP_OPEN)))
        record.set("READS", len(reads))
        record.set("WRITES", len(writes))
        record.set("SEEKS", int(np.count_nonzero(kinds == OP_SEEK)))
        if module is ModuleId.POSIX:
            record.set("STATS", int(np.count_nonzero(kinds == OP_STAT)))
            record.set("FSYNCS", int(np.count_nonzero(kinds == OP_FSYNC)))
        else:  # STDIO
            record.set("FLUSHES", int(np.count_nonzero(kinds == OP_FLUSH)))

    # -- bytes and extents -------------------------------------------------
    record.set("BYTES_READ", int(reads["size"].sum()))
    record.set("BYTES_WRITTEN", int(writes["size"].sum()))
    if module is not ModuleId.MPIIO:
        if len(reads):
            record.set("MAX_BYTE_READ", int((reads["offset"] + reads["size"]).max() - 1))
        if len(writes):
            record.set("MAX_BYTE_WRITTEN", int((writes["offset"] + writes["size"]).max() - 1))

    # -- sequentiality (POSIX only, like Darshan) --------------------------
    if module is ModuleId.POSIX:
        consec_r, seq_r = _sequentiality(reads["offset"], reads["size"])
        consec_w, seq_w = _sequentiality(writes["offset"], writes["size"])
        record.set("CONSEC_READS", consec_r)
        record.set("CONSEC_WRITES", consec_w)
        record.set("SEQ_READS", seq_r)
        record.set("SEQ_WRITES", seq_w)
    if module in (ModuleId.POSIX, ModuleId.MPIIO):
        record.set("RW_SWITCHES", _rw_switches(kinds))

    # -- access-size histograms --------------------------------------------
    if has_size_histogram(module):
        base_r = counter_index(module, f"SIZE_READ_{ACCESS_SIZE_BINS.labels[0]}")
        base_w = counter_index(module, f"SIZE_WRITE_{ACCESS_SIZE_BINS.labels[0]}")
        nbins = ACCESS_SIZE_BINS.nbins
        record.counters[base_r : base_r + nbins] += ACCESS_SIZE_BINS.histogram(reads["size"])
        record.counters[base_w : base_w + nbins] += ACCESS_SIZE_BINS.histogram(writes["size"])

    # -- timers and timestamps ----------------------------------------------
    record.set("F_READ_TIME", float(reads["duration"].sum()))
    record.set("F_WRITE_TIME", float(writes["duration"].sum()))
    meta_mask = ~(is_read | is_write)
    record.set("F_META_TIME", float(ops["duration"][meta_mask].sum()))
    opens = ops[kinds == OP_OPEN]
    closes = ops[kinds == OP_CLOSE]
    if len(opens):
        record.set("F_OPEN_START_TIMESTAMP", float(opens["start"][0]))
    if len(reads):
        record.set("F_READ_START_TIMESTAMP", float(reads["start"][0]))
    if len(writes):
        record.set("F_WRITE_START_TIMESTAMP", float(writes["start"][0]))
    if len(closes):
        record.set(
            "F_CLOSE_END_TIMESTAMP",
            float((closes["start"] + closes["duration"]).max()),
        )
    return record


def merge_shared(records: list[FileRecord]) -> FileRecord:
    """Merge per-rank records of one file into a shared (rank −1) record.

    Counter columns are summed; timestamps take first-start / last-end.
    This mirrors Darshan's shared-file reduction at MPI_Finalize, which is
    what makes the §3.4 performance analysis sound: the merged timers
    cover all participating ranks.
    """
    if not records:
        raise ValueError("cannot merge an empty record list")
    module = records[0].module
    record_id = records[0].record_id
    for r in records:
        if r.module is not module or r.record_id != record_id:
            raise ValueError("merge_shared needs records of one file and module")
    counters = np.sum([r.counters for r in records], axis=0)
    fcounters = np.sum([r.fcounters for r in records], axis=0)
    merged = FileRecord(module, record_id, counters=counters, fcounters=fcounters)
    # Timestamps must not be summed: recompute extrema, skipping zeros
    # (zero means "never happened" by convention).
    for name, reduce_fn in (
        ("F_OPEN_START_TIMESTAMP", min),
        ("F_READ_START_TIMESTAMP", min),
        ("F_WRITE_START_TIMESTAMP", min),
        ("F_CLOSE_END_TIMESTAMP", max),
    ):
        values = [r.get(name) for r in records if r.get(name) > 0]
        merged.set(name, reduce_fn(values) if values else 0.0)
    if module is not ModuleId.MPIIO:
        for name in ("MAX_BYTE_READ", "MAX_BYTE_WRITTEN"):
            merged.set(name, max(r.get(name) for r in records))
    return merged

"""Format-level constants for the repro Darshan-style log.

The real Darshan log begins with a version string and a compressed job
region followed by per-module regions located through a region table. We
keep that architecture (self-describing, per-module regions, compression)
with our own magic and version so nobody mistakes these files for real
``.darshan`` logs.
"""

from __future__ import annotations

import enum

#: Magic bytes at offset 0 of every serialized log.
LOG_MAGIC = b"RPRODSHN"

#: Format version written into the header. Parsers refuse newer majors.
FORMAT_VERSION_MAJOR = 1
FORMAT_VERSION_MINOR = 0

#: The Darshan runtime version we emulate (Summit ran 3.1.7; Cori 3.0/3.1).
EMULATED_DARSHAN_VERSION = "3.1.7"


class ModuleId(enum.IntEnum):
    """Instrumentation modules, mirroring Darshan's module taxonomy.

    Values are stable on-disk identifiers; never renumber.
    """

    POSIX = 1
    MPIIO = 2
    STDIO = 3
    LUSTRE = 4

    @property
    def prefix(self) -> str:
        """Counter-name prefix (``POSIX_...``, ``MPIIO_...``)."""
        return self.name

    @classmethod
    def from_prefix(cls, prefix: str) -> "ModuleId":
        try:
            return cls[prefix.upper().replace("-", "")]
        except KeyError:
            raise ValueError(f"unknown module prefix {prefix!r}") from None


#: Modules that observe data-path I/O (LUSTRE only records layout metadata).
DATA_MODULES = (ModuleId.POSIX, ModuleId.MPIIO, ModuleId.STDIO)

#: Compression codecs supported by the container.
COMPRESSION_NONE = 0
COMPRESSION_ZLIB = 1

"""The in-memory log object: one Darshan-style log per application instance."""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.darshan.constants import DATA_MODULES, ModuleId
from repro.darshan.records import FileRecord, JobRecord, NameRecord


class DarshanLog:
    """A complete log: job record, name records, and per-module file records.

    Mirrors the structure in Figure 2 of the paper: header / job record /
    name records / one region per instrumented module.
    """

    def __init__(self, job: JobRecord):
        self.job = job
        self._names: dict[int, NameRecord] = {}
        self._records: dict[ModuleId, list[FileRecord]] = {}
        #: Optional DXT traces (disabled by default on the target systems,
        #: like real Darshan — §2.2). Keyed by (module, record_id).
        self._traces: dict[tuple[ModuleId, int], "object"] = {}

    # -- construction ------------------------------------------------------
    def register_name(self, name: NameRecord) -> None:
        """Register (or re-register, idempotently) a record-id → path entry."""
        existing = self._names.get(name.record_id)
        if existing is not None and existing != name:
            raise ValueError(
                f"record id {name.record_id:#x} already bound to "
                f"{existing.path!r}, refusing rebind to {name.path!r}"
            )
        self._names[name.record_id] = name

    def add_record(self, record: FileRecord) -> None:
        """Append a file record; its record id must have a name record."""
        if record.record_id not in self._names:
            raise KeyError(
                f"no name record for record id {record.record_id:#x}; "
                "register_name() first"
            )
        self._records.setdefault(record.module, []).append(record)

    def extend(self, records: Iterable[FileRecord]) -> None:
        for r in records:
            self.add_record(r)

    # -- access ------------------------------------------------------------
    @property
    def modules(self) -> tuple[ModuleId, ...]:
        """Modules with at least one record, in ModuleId order."""
        return tuple(sorted(self._records, key=int))

    def records(self, module: ModuleId) -> list[FileRecord]:
        """File records for one module (empty list when not instrumented)."""
        return self._records.get(module, [])

    def iter_records(self) -> Iterator[FileRecord]:
        """All file records across modules, module-major."""
        for module in self.modules:
            yield from self._records[module]

    def name_records(self) -> dict[int, NameRecord]:
        return dict(self._names)

    def name_of(self, record_id: int) -> NameRecord:
        return self._names[record_id]

    def path_of(self, record_id: int) -> str:
        return self._names[record_id].path

    # -- DXT traces ----------------------------------------------------------
    def attach_trace(self, trace) -> None:
        """Attach a :class:`repro.darshan.dxt.DxtTrace` for a file record.

        The record id must be named, and a file record for the module must
        exist (DXT augments counters, it does not replace them).
        """
        if trace.record_id not in self._names:
            raise KeyError(
                f"no name record for DXT trace of {trace.record_id:#x}"
            )
        if not any(
            r.record_id == trace.record_id
            for r in self._records.get(trace.module, [])
        ):
            raise KeyError(
                f"no {trace.module.prefix} file record for DXT trace of "
                f"{trace.record_id:#x}"
            )
        self._traces[(trace.module, trace.record_id)] = trace

    def traces(self) -> list:
        """All attached DXT traces (module-major, record order)."""
        return [self._traces[k] for k in sorted(self._traces, key=lambda k: (int(k[0]), k[1]))]

    def trace_for(self, module: ModuleId, record_id: int):
        """The trace for one record, or None when DXT was not enabled."""
        return self._traces.get((module, record_id))

    @property
    def dxt_enabled(self) -> bool:
        return bool(self._traces)

    # -- summary statistics --------------------------------------------------
    def nfiles(self) -> int:
        """Number of unique files (unique record ids with any data record)."""
        return len({r.record_id for r in self.iter_records()})

    def total_bytes(self) -> tuple[int, int]:
        """(read, written) bytes summed over data modules.

        Follows the paper's §3.1 accounting: when a file is accessed via
        MPI-IO, the POSIX record underneath reflects the actual file-system
        traffic, so summing POSIX + STDIO (and not MPI-IO) avoids double
        counting. LUSTRE records no data.
        """
        read = written = 0
        for module in (ModuleId.POSIX, ModuleId.STDIO):
            for r in self.records(module):
                read += r.bytes_read
                written += r.bytes_written
        return read, written

    def data_records(self) -> Iterator[FileRecord]:
        """Records from data-path modules only (POSIX, MPI-IO, STDIO)."""
        for module in DATA_MODULES:
            yield from self.records(module)

    def __repr__(self) -> str:
        counts = ", ".join(
            f"{m.prefix}:{len(rs)}" for m, rs in sorted(self._records.items(), key=lambda kv: int(kv[0]))
        )
        return (
            f"DarshanLog(job={self.job.job_id}, nprocs={self.job.nprocs}, "
            f"files={self.nfiles()}, records=[{counts}])"
        )

"""Self-describing binary container for Darshan-style logs.

Layout (all integers little-endian)::

    +--------------------------------------------------------------+
    | magic (8)  | ver major (u16) | ver minor (u16)               |
    | emulated darshan version (16, NUL padded)                    |
    | region count (u32)                                           |
    +--------------------------------------------------------------+
    | region table: one 40-byte descriptor per region              |
    |   kind (u16) | module (u16) | codec (u16) | reserved (u16)   |
    |   offset (u64) | raw_len (u64) | comp_len (u64) | crc32 (u32)|
    |   reserved (u32)                                             |
    +--------------------------------------------------------------+
    | region payloads (zlib-compressed by default)                 |
    +--------------------------------------------------------------+

Regions: one JOB region, one NAMES region, and one MODULE region per
instrumented module. Module payloads store the record arrays columnar
(ids, ranks, counter matrix, fcounter matrix) so a million-record log
serializes without a per-record Python loop — see the hpc-parallel guide's
advice on batch array I/O.

The real Darshan format differs in detail but shares the architecture:
self-describing header, compressed regions, per-module record blocks. The
parser validates magic, version, CRCs, and counter-array shapes, raising
:class:`repro.errors.LogFormatError` on any mismatch.
"""

from __future__ import annotations

import io
import struct
import zlib
from typing import BinaryIO, Union

import numpy as np

from repro.darshan.constants import (
    COMPRESSION_NONE,
    COMPRESSION_ZLIB,
    EMULATED_DARSHAN_VERSION,
    FORMAT_VERSION_MAJOR,
    FORMAT_VERSION_MINOR,
    LOG_MAGIC,
    ModuleId,
)
from repro.darshan.counters import module_counters, module_fcounters
from repro.darshan.log import DarshanLog
from repro.darshan.records import FileRecord, JobRecord, NameRecord
from repro.errors import LogFormatError

_HEADER = struct.Struct("<8sHH16sI")
_REGION = struct.Struct("<HHHHQQQII")

_KIND_JOB = 1
_KIND_NAMES = 2
_KIND_MODULE = 3
_KIND_DXT = 4


# -- string helpers ---------------------------------------------------------
def _pack_str(buf: io.BytesIO, s: str) -> None:
    data = s.encode("utf-8")
    buf.write(struct.pack("<I", len(data)))
    buf.write(data)


def _unpack_str(view: memoryview, off: int) -> tuple[str, int]:
    if off + 4 > len(view):
        raise LogFormatError("truncated string length")
    (n,) = struct.unpack_from("<I", view, off)
    off += 4
    if off + n > len(view):
        raise LogFormatError("truncated string payload")
    try:
        return bytes(view[off : off + n]).decode("utf-8"), off + n
    except UnicodeDecodeError as exc:
        raise LogFormatError("malformed UTF-8 in string field") from exc


# -- region payload encoders --------------------------------------------------
def _encode_job(job: JobRecord) -> bytes:
    buf = io.BytesIO()
    buf.write(struct.pack("<QQIdd", job.job_id, job.user_id, job.nprocs,
                          job.start_time, job.end_time))
    _pack_str(buf, job.platform)
    _pack_str(buf, job.domain)
    buf.write(struct.pack("<I", len(job.metadata)))
    for key in sorted(job.metadata):
        _pack_str(buf, key)
        _pack_str(buf, job.metadata[key])
    return buf.getvalue()


def _decode_job(payload: bytes) -> JobRecord:
    view = memoryview(payload)
    need = struct.calcsize("<QQIdd")
    if len(view) < need:
        raise LogFormatError("truncated job record")
    job_id, user_id, nprocs, start, end = struct.unpack_from("<QQIdd", view, 0)
    off = need
    platform, off = _unpack_str(view, off)
    domain, off = _unpack_str(view, off)
    if off + 4 > len(view):
        raise LogFormatError("truncated job metadata count")
    (nmeta,) = struct.unpack_from("<I", view, off)
    off += 4
    metadata: dict[str, str] = {}
    for _ in range(nmeta):
        key, off = _unpack_str(view, off)
        value, off = _unpack_str(view, off)
        metadata[key] = value
    return JobRecord(
        job_id=job_id, user_id=user_id, nprocs=nprocs,
        start_time=start, end_time=end,
        platform=platform, domain=domain, metadata=metadata,
    )


def _encode_names(names: dict[int, NameRecord]) -> bytes:
    buf = io.BytesIO()
    buf.write(struct.pack("<Q", len(names)))
    for record_id in sorted(names):
        nr = names[record_id]
        buf.write(struct.pack("<Q", nr.record_id))
        _pack_str(buf, nr.path)
        _pack_str(buf, nr.mount_point)
        _pack_str(buf, nr.layer)
    return buf.getvalue()


def _decode_names(payload: bytes) -> list[NameRecord]:
    view = memoryview(payload)
    if len(view) < 8:
        raise LogFormatError("truncated name region")
    (count,) = struct.unpack_from("<Q", view, 0)
    off = 8
    out: list[NameRecord] = []
    for _ in range(count):
        if off + 8 > len(view):
            raise LogFormatError("truncated name record id")
        (record_id,) = struct.unpack_from("<Q", view, off)
        off += 8
        path, off = _unpack_str(view, off)
        mount, off = _unpack_str(view, off)
        layer, off = _unpack_str(view, off)
        out.append(NameRecord(record_id, path, mount, layer))
    return out


def _encode_module(module: ModuleId, records: list[FileRecord]) -> bytes:
    ncounters = len(module_counters(module))
    nfcounters = len(module_fcounters(module))
    n = len(records)
    ids = np.fromiter((r.record_id for r in records), dtype=np.uint64, count=n)
    ranks = np.fromiter((r.rank for r in records), dtype=np.int64, count=n)
    counters = (
        np.stack([r.counters for r in records])
        if n else np.empty((0, ncounters), dtype=np.int64)
    )
    fcounters = (
        np.stack([r.fcounters for r in records])
        if n and nfcounters else np.empty((n, nfcounters), dtype=np.float64)
    )
    buf = io.BytesIO()
    buf.write(struct.pack("<QII", n, ncounters, nfcounters))
    buf.write(ids.tobytes())
    buf.write(ranks.tobytes())
    buf.write(np.ascontiguousarray(counters, dtype=np.int64).tobytes())
    buf.write(np.ascontiguousarray(fcounters, dtype=np.float64).tobytes())
    return buf.getvalue()


def _decode_module(module: ModuleId, payload: bytes) -> list[FileRecord]:
    view = memoryview(payload)
    head = struct.calcsize("<QII")
    if len(view) < head:
        raise LogFormatError("truncated module region header")
    n, ncounters, nfcounters = struct.unpack_from("<QII", view, 0)
    if ncounters != len(module_counters(module)):
        raise LogFormatError(
            f"{module.prefix}: file has {ncounters} counters, registry has "
            f"{len(module_counters(module))} — version mismatch"
        )
    if nfcounters != len(module_fcounters(module)):
        raise LogFormatError(
            f"{module.prefix}: file has {nfcounters} fcounters, registry has "
            f"{len(module_fcounters(module))}"
        )
    off = head
    expect = n * 8 + n * 8 + n * ncounters * 8 + n * nfcounters * 8
    if len(view) - off != expect:
        raise LogFormatError(
            f"{module.prefix}: module payload is {len(view) - off} bytes, "
            f"expected {expect}"
        )
    ids = np.frombuffer(view, dtype=np.uint64, count=n, offset=off); off += n * 8
    ranks = np.frombuffer(view, dtype=np.int64, count=n, offset=off); off += n * 8
    counters = np.frombuffer(
        view, dtype=np.int64, count=n * ncounters, offset=off
    ).reshape(n, ncounters)
    off += n * ncounters * 8
    fcounters = np.frombuffer(
        view, dtype=np.float64, count=n * nfcounters, offset=off
    ).reshape(n, nfcounters)
    return [
        FileRecord(
            module,
            int(ids[i]),
            int(ranks[i]),
            counters[i].copy(),
            fcounters[i].copy(),
        )
        for i in range(n)
    ]


# -- container ----------------------------------------------------------------
def write_log_bytes(log: DarshanLog, *, compress: bool = True) -> bytes:
    """Serialize a log to bytes."""
    regions: list[tuple[int, int, bytes]] = [(_KIND_JOB, 0, _encode_job(log.job))]
    regions.append((_KIND_NAMES, 0, _encode_names(log.name_records())))
    for module in log.modules:
        regions.append(
            (_KIND_MODULE, int(module), _encode_module(module, log.records(module)))
        )
    if log.dxt_enabled:
        from repro.darshan.dxt import encode_traces

        regions.append((_KIND_DXT, 0, encode_traces(log.traces())))

    codec = COMPRESSION_ZLIB if compress else COMPRESSION_NONE
    header = _HEADER.pack(
        LOG_MAGIC,
        FORMAT_VERSION_MAJOR,
        FORMAT_VERSION_MINOR,
        EMULATED_DARSHAN_VERSION.encode("ascii").ljust(16, b"\0"),
        len(regions),
    )
    table_size = _REGION.size * len(regions)
    offset = len(header) + table_size
    table = io.BytesIO()
    body = io.BytesIO()
    for kind, module, raw in regions:
        payload = zlib.compress(raw, 6) if compress else raw
        table.write(
            _REGION.pack(
                kind, module, codec, 0,
                offset, len(raw), len(payload),
                zlib.crc32(raw) & 0xFFFFFFFF, 0,
            )
        )
        body.write(payload)
        offset += len(payload)
    return header + table.getvalue() + body.getvalue()


def write_log(log: DarshanLog, path_or_file: Union[str, BinaryIO], *, compress: bool = True) -> None:
    """Serialize a log to a file path or binary file object."""
    data = write_log_bytes(log, compress=compress)
    if isinstance(path_or_file, str):
        with open(path_or_file, "wb") as fh:
            fh.write(data)
    else:
        path_or_file.write(data)


def read_log_bytes(data: bytes) -> DarshanLog:
    """Parse a serialized log, validating magic, version, shapes, and CRCs."""
    if len(data) < _HEADER.size:
        raise LogFormatError("file shorter than header")
    magic, major, minor, darshan_ver, nregions = _HEADER.unpack_from(data, 0)
    if magic != LOG_MAGIC:
        raise LogFormatError(f"bad magic {magic!r}")
    if major != FORMAT_VERSION_MAJOR:
        raise LogFormatError(
            f"unsupported format version {major}.{minor} "
            f"(this build reads {FORMAT_VERSION_MAJOR}.x)"
        )
    del darshan_ver  # informational only
    table_off = _HEADER.size
    table_end = table_off + nregions * _REGION.size
    if len(data) < table_end:
        raise LogFormatError("truncated region table")

    job: JobRecord | None = None
    names: list[NameRecord] = []
    module_payloads: list[tuple[ModuleId, bytes]] = []
    dxt_payloads: list[bytes] = []
    for i in range(nregions):
        kind, module_raw, codec, _r0, offset, raw_len, comp_len, crc, _r1 = (
            _REGION.unpack_from(data, table_off + i * _REGION.size)
        )
        if offset + comp_len > len(data):
            raise LogFormatError(f"region {i}: payload extends past end of file")
        payload = data[offset : offset + comp_len]
        if codec == COMPRESSION_ZLIB:
            try:
                # Bounded decompression: a corrupt/hostile raw_len can't
                # balloon memory — one byte past the declared size is
                # enough to prove the mismatch below.
                payload = zlib.decompressobj().decompress(payload, raw_len + 1)
            except zlib.error as exc:
                raise LogFormatError(f"region {i}: corrupt zlib stream") from exc
            except (MemoryError, OverflowError) as exc:
                raise LogFormatError(
                    f"region {i}: declared size {raw_len} unsatisfiable"
                ) from exc
        elif codec != COMPRESSION_NONE:
            raise LogFormatError(f"region {i}: unknown codec {codec}")
        if len(payload) != raw_len:
            raise LogFormatError(
                f"region {i}: decompressed to {len(payload)} bytes, "
                f"header says {raw_len}"
            )
        if (zlib.crc32(payload) & 0xFFFFFFFF) != crc:
            raise LogFormatError(f"region {i}: CRC mismatch")
        if kind == _KIND_JOB:
            if job is not None:
                raise LogFormatError("duplicate job region")
            job = _decode_job(payload)
        elif kind == _KIND_NAMES:
            names.extend(_decode_names(payload))
        elif kind == _KIND_MODULE:
            try:
                module = ModuleId(module_raw)
            except ValueError:
                raise LogFormatError(f"region {i}: unknown module id {module_raw}") from None
            module_payloads.append((module, payload))
        elif kind == _KIND_DXT:
            dxt_payloads.append(payload)
        else:
            raise LogFormatError(f"region {i}: unknown region kind {kind}")

    if job is None:
        raise LogFormatError("log has no job region")
    log = DarshanLog(job)
    for nr in names:
        log.register_name(nr)
    for module, payload in module_payloads:
        for record in _decode_module(module, payload):
            log.add_record(record)
    if dxt_payloads:
        from repro.darshan.dxt import decode_traces

        for payload in dxt_payloads:
            for trace in decode_traces(payload):
                log.attach_trace(trace)
    return log


def read_log(path_or_file: Union[str, BinaryIO]) -> DarshanLog:
    """Parse a log from a file path or binary file object."""
    if isinstance(path_or_file, str):
        with open(path_or_file, "rb") as fh:
            data = fh.read()
    else:
        data = path_or_file.read()
    return read_log_bytes(data)

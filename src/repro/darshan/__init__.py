"""A from-scratch Darshan-style I/O characterization log model.

This subpackage reimplements the pieces of Darshan (Carns et al., TOS 2011)
that the HPDC '22 study depends on:

* **Counter semantics** (:mod:`repro.darshan.counters`): per-file integer
  counters and floating-point timers for the POSIX, MPI-IO, STDIO, and
  LUSTRE modules, matching the names and meanings the paper analyzes
  (``POSIX_BYTES_READ``, ``STDIO_F_WRITE_TIME``,
  ``POSIX_SIZE_READ_100K_1M``, …).
* **Access-size histograms** (:mod:`repro.darshan.bins`): the ten
  request-size bins used in Figures 4–5 and the transfer-size bins used in
  Figures 3, 9, 11, 12.
* **Records** (:mod:`repro.darshan.records`): the job record, per-module
  file records (with the shared-file ``rank == -1`` convention §3.4 relies
  on), and name records mapping record ids to paths.
* **Self-describing binary format** (:mod:`repro.darshan.format`): a
  compressed, CRC-checked container with a region table, in the spirit of
  the real ``.darshan`` format, plus a parser.
* **Accumulation** (:mod:`repro.darshan.accumulate`): building counter
  records from streams of I/O operations, which is what the Darshan runtime
  does inside an instrumented application.
* **Validation** (:mod:`repro.darshan.validate`): semantic invariants a
  well-formed log must satisfy.
"""

from repro.darshan.bins import (
    ACCESS_SIZE_BINS,
    TRANSFER_SIZE_BINS,
    SizeBins,
)
from repro.darshan.constants import ModuleId
from repro.darshan.counters import counter_index, module_counters
from repro.darshan.log import DarshanLog
from repro.darshan.records import (
    SHARED_FILE_RANK,
    FileRecord,
    JobRecord,
    NameRecord,
)
from repro.darshan.format import read_log, read_log_bytes, write_log, write_log_bytes
from repro.darshan.validate import validate_log

__all__ = [
    "ACCESS_SIZE_BINS",
    "TRANSFER_SIZE_BINS",
    "SizeBins",
    "ModuleId",
    "counter_index",
    "module_counters",
    "DarshanLog",
    "SHARED_FILE_RANK",
    "FileRecord",
    "JobRecord",
    "NameRecord",
    "read_log",
    "read_log_bytes",
    "write_log",
    "write_log_bytes",
    "validate_log",
]

"""STDIO extended instrumentation — the counters Recommendation 4 asks for.

The paper's Recommendation 4: *"we recommend that the counters of the
process-level (e.g., operations on fread/fwrite, I/O request sizes and
timestamps) and SSD-oriented I/O characterizations (e.g., rewrite,
static/dynamic data) should be considered in I/O monitoring tools such as
Darshan."*

This module implements that proposal so its value can be demonstrated on
the simulator: given the operation stream of an STDIO-managed file (which
the baseline STDIO module reduces to byte/op totals only), it produces

* the **request-size histogram** STDIO currently lacks;
* **sequential / consecutive / random** access classification;
* **rewrite statistics**: bytes written more than once, the rewritten
  extent, and a static/dynamic split of the file's address space — the
  inputs to flash write-amplification reasoning (Hu et al., SYSTOR '09);
* a first-order **write-amplification factor (WAF)** estimate for an
  SSD-backed layer, from the rewrite ratio and the device erase-block
  granularity.

``repro.optimize.ssd`` consumes these to rank files/jobs by expected
flash wear, exactly the optimization loop the paper proposes for the
in-system layers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.darshan.accumulate import OP_DTYPE, OP_READ, OP_WRITE
from repro.darshan.bins import ACCESS_SIZE_BINS
from repro.units import KiB, MiB


@dataclass(frozen=True)
class StdioExtRecord:
    """Extended per-file STDIO statistics (the proposed counters)."""

    record_id: int
    rank: int
    #: Request-size histograms over the standard ten bins.
    read_size_hist: np.ndarray
    write_size_hist: np.ndarray
    #: Sequentiality (Darshan definitions; see accumulate._sequentiality).
    consec_reads: int
    consec_writes: int
    seq_reads: int
    seq_writes: int
    #: Bytes written to extents that had already been written in this
    #: open ("dynamic data"); first-writes are "static data".
    bytes_rewritten: int
    bytes_first_written: int
    #: Distinct byte extent touched by writes.
    write_extent: int

    @property
    def rewrite_ratio(self) -> float:
        """Rewritten share of written bytes (0 = write-once/static)."""
        total = self.bytes_rewritten + self.bytes_first_written
        return self.bytes_rewritten / total if total else 0.0

    @property
    def random_write_fraction(self) -> float:
        """Share of non-sequential writes (flash-hostile)."""
        writes = int(self.write_size_hist.sum())
        if writes <= 1:
            return 0.0
        return 1.0 - self.seq_writes / (writes - 1)

    def write_amplification(
        self, erase_block: int = 256 * KiB, over_provision: float = 0.1
    ) -> float:
        """First-order WAF estimate for an SSD-backed layer.

        Sequential first-writes approach WAF 1; random writes and
        rewrites force read-modify-write at erase-block granularity. The
        model: each random-or-rewritten write of mean size ``s`` costs
        ``erase_block / s`` physical writes, damped by over-provisioning.
        Deliberately simple — it ranks files, it does not price devices.
        """
        writes = int(self.write_size_hist.sum())
        if writes == 0:
            return 1.0
        total_written = self.bytes_rewritten + self.bytes_first_written
        mean_size = max(total_written / writes, 1.0)
        hostile_fraction = min(
            1.0, self.random_write_fraction + self.rewrite_ratio
        )
        raw = 1.0 + hostile_fraction * max(erase_block / mean_size - 1.0, 0.0)
        return 1.0 + (raw - 1.0) / (1.0 + over_provision * 10.0)


def _sequentiality(offsets: np.ndarray, sizes: np.ndarray) -> tuple[int, int]:
    if len(offsets) < 2:
        return 0, 0
    prev_end = offsets[:-1] + sizes[:-1]
    consec = int(np.count_nonzero(offsets[1:] == prev_end))
    seq = int(np.count_nonzero(offsets[1:] >= prev_end))
    return consec, seq


def _rewrite_stats(offsets: np.ndarray, sizes: np.ndarray) -> tuple[int, int, int]:
    """(bytes_rewritten, bytes_first_written, extent) for a write stream.

    Sweep-line over write intervals in arrival order: bytes covering
    already-written extents count as rewrites. O(n log n) with interval
    merging; write streams are per-file and modest.
    """
    written: list[tuple[int, int]] = []  # disjoint sorted intervals
    rewritten = 0
    first = 0
    for off, size in zip(offsets, sizes):
        if size <= 0:
            continue
        lo, hi = int(off), int(off + size)
        overlap = 0
        for a, b in written:
            if b <= lo or a >= hi:
                continue
            overlap += min(b, hi) - max(a, lo)
        rewritten += overlap
        first += (hi - lo) - overlap
        # merge interval in
        merged = [(lo, hi)]
        for a, b in written:
            m_lo, m_hi = merged[-1]
            if b < m_lo or a > m_hi:
                merged.append((a, b))
            else:
                merged[-1] = (min(a, m_lo), max(b, m_hi))
        written = sorted(merged)
        # normalize adjacency
        norm: list[tuple[int, int]] = []
        for a, b in written:
            if norm and a <= norm[-1][1]:
                norm[-1] = (norm[-1][0], max(b, norm[-1][1]))
            else:
                norm.append((a, b))
        written = norm
    extent = sum(b - a for a, b in written)
    return rewritten, first, extent


def accumulate_stdio_ext(
    record_id: int, rank: int, ops: np.ndarray
) -> StdioExtRecord:
    """Reduce an STDIO operation stream to the extended record.

    The same input the baseline accumulator sees — this is what the
    Darshan runtime *could* compute today if the counters existed.
    """
    if ops.dtype != OP_DTYPE:
        raise TypeError(f"ops must have OP_DTYPE, got {ops.dtype}")
    reads = ops[ops["kind"] == OP_READ]
    writes = ops[ops["kind"] == OP_WRITE]
    consec_r, seq_r = _sequentiality(reads["offset"], reads["size"])
    consec_w, seq_w = _sequentiality(writes["offset"], writes["size"])
    rewritten, first, extent = _rewrite_stats(writes["offset"], writes["size"])
    return StdioExtRecord(
        record_id=record_id,
        rank=rank,
        read_size_hist=ACCESS_SIZE_BINS.histogram(reads["size"]),
        write_size_hist=ACCESS_SIZE_BINS.histogram(writes["size"]),
        consec_reads=consec_r,
        consec_writes=consec_w,
        seq_reads=seq_r,
        seq_writes=seq_w,
        bytes_rewritten=rewritten,
        bytes_first_written=first,
        write_extent=extent,
    )

"""Byte-size units, parsing, and formatting.

The paper mixes decimal (PB, GB/s) and binary (16 MB GPFS blocks, 1 MB Lustre
stripes — both actually binary in the deployed systems) conventions. This
module pins the convention used throughout the library:

* All sizes in code are **integer bytes**.
* Symbols ``KiB/MiB/GiB/TiB/PiB`` are binary (powers of 1024).
* Symbols ``KB/MB/GB/TB/PB`` are decimal (powers of 1000), matching how the
  paper quotes capacities and bandwidths.

Darshan's access-size histogram bin edges (0–100, 100–1K, 1K–10K, …) are
decimal, matching the counter names in the real tool
(``POSIX_SIZE_READ_0_100`` etc.); those live in :mod:`repro.darshan.bins`.
"""

from __future__ import annotations

import re

KiB = 1024
MiB = 1024**2
GiB = 1024**3
TiB = 1024**4
PiB = 1024**5

KB = 1000
MB = 1000**2
GB = 1000**3
TB = 1000**4
PB = 1000**5

_UNIT_FACTORS = {
    "": 1,
    "B": 1,
    "KB": KB,
    "MB": MB,
    "GB": GB,
    "TB": TB,
    "PB": PB,
    "KIB": KiB,
    "MIB": MiB,
    "GIB": GiB,
    "TIB": TiB,
    "PIB": PiB,
    # Loose single-letter suffixes, decimal (matches Darshan bin labels
    # like "100_1K" and the figures' axis labels "1GB", "1TB+").
    "K": KB,
    "M": MB,
    "G": GB,
    "T": TB,
    "P": PB,
}

_SIZE_RE = re.compile(
    r"^\s*([0-9]+(?:\.[0-9]+)?)\s*([A-Za-z]*)\s*\+?\s*$"
)


def parse_size(text: str) -> int:
    """Parse a human-readable size like ``"16 MiB"`` or ``"1GB"`` to bytes.

    Trailing ``+`` (as in the figure label ``1TB+``) is tolerated and
    ignored. Raises :class:`ValueError` on unknown units or malformed input.

    >>> parse_size("1 KiB")
    1024
    >>> parse_size("1.5GB")
    1500000000
    """
    m = _SIZE_RE.match(text)
    if m is None:
        raise ValueError(f"unparseable size: {text!r}")
    value, unit = m.groups()
    factor = _UNIT_FACTORS.get(unit.upper())
    if factor is None:
        raise ValueError(f"unknown size unit {unit!r} in {text!r}")
    result = float(value) * factor
    rounded = round(result)
    # Tolerate float representation error ("33.05MB" is 33050000 bytes even
    # though 33.05 * 1e6 is 33050000.000000004 in binary floating point),
    # but still reject genuinely fractional byte counts like "1.5B".
    if abs(result - rounded) > 1e-6 * max(abs(result), 1.0):
        raise ValueError(f"size {text!r} is not a whole number of bytes")
    return int(rounded)


def format_size(nbytes: float, *, decimal: bool = True, precision: int = 2) -> str:
    """Format a byte count for tables and log lines.

    Uses decimal units by default to match the paper's presentation
    (``202.18 PB``). Negative values are formatted with a leading minus.

    >>> format_size(1_500_000_000)
    '1.50 GB'
    >>> format_size(2048, decimal=False)
    '2.00 KiB'
    """
    sign = "-" if nbytes < 0 else ""
    n = abs(float(nbytes))
    if decimal:
        steps = [("PB", PB), ("TB", TB), ("GB", GB), ("MB", MB), ("KB", KB)]
    else:
        steps = [("PiB", PiB), ("TiB", TiB), ("GiB", GiB), ("MiB", MiB), ("KiB", KiB)]
    for unit, factor in steps:
        if n >= factor:
            return f"{sign}{n / factor:.{precision}f} {unit}"
    return f"{sign}{n:.0f} B"


def format_count(n: float, *, precision: int = 1) -> str:
    """Format a count the way the paper's tables do (``7.7M``, ``281.6K``).

    >>> format_count(7_740_000)
    '7.7M'
    >>> format_count(950)
    '950'
    """
    n = float(n)
    sign = "-" if n < 0 else ""
    a = abs(n)
    if a >= 1e9:
        return f"{sign}{a / 1e9:.{precision}f}B"
    if a >= 1e6:
        return f"{sign}{a / 1e6:.{precision}f}M"
    if a >= 1e3:
        return f"{sign}{a / 1e3:.{precision}f}K"
    if a == int(a):
        return f"{sign}{int(a)}"
    return f"{sign}{a:.{precision}f}"

"""Command-line interface.

::

    python -m repro study    --platform summit --scale 1e-3 [--seed N]
    python -m repro shapes   --platform cori   --scale 1e-3
    python -m repro generate --platform summit --scale 5e-4 --jobs 4 --out year.npz
    python -m repro analyze  year.npz --exhibit table3
    python -m repro ior      --platform summit --layer pfs --api mpiio \\
                             --tasks 512 --direction write
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.analysis.report import HEADERS, render_results
from repro.core import CharacterizationStudy, StudyConfig
from repro.platforms import get_platform
from repro.platforms.interfaces import IOInterface
from repro.store.io import load_store, save_store
from repro.units import format_size, parse_size
from repro.workloads.generator import (
    GeneratorConfig,
    WorkloadGenerator,
    generate_with_shadows,
)

_EXHIBITS = {
    "table2": ("table2", "Table 2 - dataset summary"),
    "table3": ("table3", "Table 3 - files and volume per layer"),
    "table4": ("table4", "Table 4 - >1TB files"),
    "table5": ("table5", "Table 5 - job layer exclusivity"),
    "table6": ("table6", "Table 6 - interface usage"),
    "fig3": ("fig3", "Figure 3 - transfer-size CDFs"),
    "fig4": ("fig4", "Figure 4 - request-size CDFs"),
    "fig5": ("fig4", "Figure 5 - request-size CDFs (large jobs)"),
    "fig6": ("fig6", "Figure 6 - file classification"),
    "fig7": ("fig7", "Figure 7 - in-system domains"),
    "fig8": ("fig6", "Figure 8 - STDIO classification"),
    "fig9": ("fig9", "Figure 9 - interface transfer CDFs"),
    "fig10": ("fig7", "Figure 10 - STDIO domains"),
    "fig11": ("fig11", "Figures 11/12 - POSIX vs STDIO bandwidth"),
    "users": ("users", "User concentration (Lim et al. style)"),
    "temporal": ("temporal", "Temporal structure (Patel et al. style)"),
    "variability": ("variability", "Bandwidth variability (TOKIO style)"),
    "tuning": ("tuning", "User tuning trajectories (§5 future work)"),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HPDC'22 multi-layer I/O characterization, reproduced",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--platform", choices=("summit", "cori"), default="summit")
        p.add_argument("--scale", type=float, default=1e-3)
        p.add_argument("--seed", type=int, default=20220627)
        p.add_argument(
            "--jobs", type=int, default=1,
            help="worker processes for sharded generation "
                 "(1 = serial, 0 = all cores; output is identical)",
        )

    p_study = sub.add_parser("study", help="run every analysis, print the report")
    common(p_study)

    p_shapes = sub.add_parser("shapes", help="run the paper-shape checks")
    common(p_shapes)

    p_gen = sub.add_parser("generate", help="generate a store to .npz")
    common(p_gen)
    p_gen.add_argument("--out", required=True, help="output .npz path")

    p_an = sub.add_parser("analyze", help="run one exhibit over a saved store")
    p_an.add_argument("store", help=".npz store from 'generate'")
    p_an.add_argument(
        "--exhibit", choices=sorted(_EXHIBITS), default="table3"
    )

    p_adv = sub.add_parser("advise", help="run the optimization advisors")
    p_adv.add_argument("store", help=".npz store from 'generate'")
    p_adv.add_argument(
        "--advisor", choices=("aggregation", "staging"), default="staging"
    )

    p_rep = sub.add_parser("replay", help="facility layer-demand replay")
    p_rep.add_argument("store", help=".npz store from 'generate'")
    p_rep.add_argument("--bin-hours", type=float, default=1.0)

    p_ior = sub.add_parser("ior", help="run an IOR-style probe")
    p_ior.add_argument("--platform", choices=("summit", "cori"), default="summit")
    p_ior.add_argument("--layer", choices=("pfs", "insystem"), default="pfs")
    p_ior.add_argument(
        "--api", choices=("posix", "mpiio", "stdio"), default="posix"
    )
    p_ior.add_argument("--tasks", type=int, default=64)
    p_ior.add_argument("--transfer-size", default="1MiB")
    p_ior.add_argument("--block-size", default="256MiB")
    p_ior.add_argument("--direction", choices=("read", "write"), default="write")
    p_ior.add_argument("--collective", action="store_true")
    p_ior.add_argument("--file-per-proc", action="store_true")
    p_ior.add_argument("--seed", type=int, default=0)
    return parser


def _cmd_study(args) -> int:
    study = CharacterizationStudy(
        StudyConfig(seed=args.seed, scale=args.scale,
                    platforms=(args.platform,), jobs=args.jobs)
    )
    print(study.render(args.platform))
    return 0


def _cmd_shapes(args) -> int:
    study = CharacterizationStudy(
        StudyConfig(seed=args.seed, scale=args.scale,
                    platforms=(args.platform,), jobs=args.jobs)
    )
    checks = study.shape_checks(args.platform)
    for c in checks:
        print(c)
    failed = sum(not c.passed for c in checks)
    print(f"{len(checks) - failed}/{len(checks)} shapes reproduced")
    return 1 if failed else 0


def _cmd_generate(args) -> int:
    gen = WorkloadGenerator(args.platform, GeneratorConfig(scale=args.scale))
    store = generate_with_shadows(gen, args.seed, jobs=args.jobs)
    save_store(store, args.out)
    print(f"wrote {store!r} to {args.out}")
    return 0


def _cmd_analyze(args) -> int:
    from repro.analysis import (
        bandwidth_variability,
        dataset_summary,
        file_classification,
        insystem_domain_usage,
        interface_transfer_cdfs,
        interface_usage,
        large_files,
        layer_exclusivity,
        layer_volumes,
        performance_by_bin,
        request_cdfs,
        stdio_domain_usage,
        temporal_profile,
        transfer_cdfs,
        tuning_report,
        user_activity,
    )

    store = load_store(args.store)
    # All report paths share the store's analysis context, so rendering
    # several exhibits against one store scans the common axes once.
    ctx = store.analysis()
    runners = {
        "table2": lambda: dataset_summary(store, context=ctx),
        "table3": lambda: layer_volumes(store, context=ctx),
        "table4": lambda: large_files(store, context=ctx),
        "table5": lambda: layer_exclusivity(store, context=ctx),
        "table6": lambda: interface_usage(store, context=ctx),
        "fig3": lambda: transfer_cdfs(store, context=ctx),
        "fig4": lambda: request_cdfs(store, context=ctx),
        "fig5": lambda: request_cdfs(store, large_jobs_only=True, context=ctx),
        "fig6": lambda: file_classification(store, context=ctx),
        "fig7": lambda: insystem_domain_usage(store, context=ctx),
        "fig8": lambda: file_classification(store, stdio_only=True, context=ctx),
        "fig9": lambda: interface_transfer_cdfs(store, context=ctx),
        "fig10": lambda: stdio_domain_usage(store, context=ctx),
        "fig11": lambda: performance_by_bin(store, context=ctx),
        "users": lambda: user_activity(store, context=ctx),
        "temporal": lambda: temporal_profile(store, context=ctx),
        "variability": lambda: bandwidth_variability(store, context=ctx),
        "tuning": lambda: tuning_report(store, context=ctx),
    }
    header_key, title = _EXHIBITS[args.exhibit]
    print(render_results(title, HEADERS[header_key], runners[args.exhibit]()))
    return 0


def _cmd_advise(args) -> int:
    from repro.optimize import assess_staging, find_aggregation_opportunities

    store = load_store(args.store)
    machine = get_platform(store.platform)
    if args.advisor == "staging":
        a = assess_staging(store, machine)
        print(
            f"stageable PFS files: {100 * a.stageable_file_fraction:.1f}% "
            f"({format_size(a.stageable_bytes)})"
        )
        print(
            f"in-job I/O: direct {a.direct_seconds:,.0f}s vs staged "
            f"{a.staged_seconds:,.0f}s ({a.in_job_speedup:.1f}x); "
            f"movement {a.movement_seconds:,.0f}s; worthwhile: {a.worthwhile}"
        )
    else:
        for o in find_aggregation_opportunities(store, machine)[:10]:
            print(
                f"{o.layer:9s} {o.interface:6s} {o.direction:5s}: "
                f"{o.nfiles:8d} files, mean request "
                f"{format_size(o.mean_request)}, speedup {o.speedup:.1f}x, "
                f"saves {o.saved_seconds:,.0f}s"
            )
    return 0


def _cmd_replay(args) -> int:
    from repro.analysis.report import render_table
    from repro.iosim.replay import FacilityReplay

    store = load_store(args.store)
    machine = get_platform(store.platform)
    replay = FacilityReplay(
        store, machine, bin_seconds=args.bin_hours * 3600.0
    )
    print(
        render_table(
            ["system", "layer", "dir", "mean util", "peak util", ">80% of time"],
            replay.summary_rows(),
            title="Facility replay - layer demand vs capacity",
        )
    )
    return 0


def _cmd_ior(args) -> int:
    from repro.iosim.ior import IorConfig, run_ior

    machine = get_platform(args.platform)
    config = IorConfig(
        api=IOInterface.from_name(args.api),
        tasks=args.tasks,
        transfer_size=parse_size(args.transfer_size),
        block_size=parse_size(args.block_size),
        collective=args.collective,
        file_per_proc=args.file_per_proc,
    )
    result = run_ior(
        machine, args.layer, config, args.direction,
        rng=np.random.default_rng(args.seed),
    )
    print(
        f"IOR {args.api.upper()} {args.direction} on "
        f"{machine.layers[args.layer].name}: "
        f"{format_size(result.config.aggregate_bytes)} in "
        f"{result.seconds:.2f}s = {format_size(result.bandwidth)}/s"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "study": _cmd_study,
        "shapes": _cmd_shapes,
        "generate": _cmd_generate,
        "analyze": _cmd_analyze,
        "advise": _cmd_advise,
        "replay": _cmd_replay,
        "ior": _cmd_ior,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Command-line interface.

::

    python -m repro study    --platform summit --scale 1e-3 [--seed N]
    python -m repro shapes   --platform cori   --scale 1e-3
    python -m repro generate --platform summit --scale 5e-4 --jobs 4 --out year.npz
    python -m repro generate --spec noisy_neighbor --platform cori --out month.npz
    python -m repro generate --archetype sim_checkpoint --out solo.npz
    python -m repro generate --list-specs [--json]
    python -m repro analyze  year.npz --exhibit table3
    python -m repro analyze  --list [--json]
    python -m repro ingest   stream.ndjson --store year.npz [--follow] \\
                             [--checkpoint year.ckpt]
    python -m repro whatif   year.npz --scenario stripe --params '{"factor": 2}'
    python -m repro serve    year.npz --port 7786 --workers 4
    python -m repro query    table3 --port 7786
    python -m repro catalog  init fleet.json
    python -m repro catalog  add fleet.json jan --store jan.npz --period 2020-01
    python -m repro analyze  --catalog fleet.json --exhibit table3
    python -m repro query    compare_table3 --catalog fleet.json \\
                             --params '{"a": "jan", "b": "feb"}'
    python -m repro ior      --platform summit --layer pfs --api mpiio \\
                             --tasks 512 --direction write
"""

from __future__ import annotations

import argparse
import contextlib
import itertools
import json
import sys

import numpy as np

from repro.analysis.report import HEADERS, render_results, render_table
from repro.api import run_query
from repro.core import CharacterizationStudy, StudyConfig
from repro.federation.registry import federated_query_names
from repro.platforms import get_platform
from repro.platforms.interfaces import IOInterface
from repro.serve.registry import default_registry, exhibit_names
from repro.store.io import load_store, save_store
from repro.units import format_size, parse_size
from repro.workloads.generator import (
    GeneratorConfig,
    WorkloadGenerator,
    generate_with_shadows,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HPDC'22 multi-layer I/O characterization, reproduced",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--platform", choices=("summit", "cori"), default="summit")
        p.add_argument("--scale", type=float, default=1e-3)
        p.add_argument("--seed", type=int, default=20220627)
        p.add_argument(
            "--jobs", type=int, default=1,
            help="worker processes for sharded generation "
                 "(1 = serial, 0 = all cores; output is identical)",
        )

    def traceable(p):
        p.add_argument(
            "--trace", default=None, metavar="PATH", dest="trace",
            help="write a span trace of this run (Chrome-trace JSON; "
                 "a .ndjson/.jsonl suffix selects NDJSON)",
        )

    p_study = sub.add_parser("study", help="run every analysis, print the report")
    common(p_study)
    traceable(p_study)

    p_shapes = sub.add_parser("shapes", help="run the paper-shape checks")
    common(p_shapes)
    traceable(p_shapes)

    p_gen = sub.add_parser("generate", help="generate a store to disk")
    common(p_gen)
    traceable(p_gen)
    p_gen.add_argument(
        "--out", default=None,
        help="output path: .npz (compressed, portable) or a .store "
             "directory (uncompressed raw layout that later loads "
             "memory-mapped — the fast path for 'analyze --jobs')",
    )
    p_gen.add_argument(
        "--spec", default=None, metavar="NAME_OR_PATH",
        help="generate from a declarative workload spec: a builtin "
             "scenario-pack name (see --list-specs) or a .json/.toml "
             "spec file; --platform/--scale fill what the spec leaves "
             "unset",
    )
    p_gen.add_argument(
        "--archetype", default=None, metavar="NAME",
        help="generate a single builtin archetype of the platform's mix "
             "(e.g. sim_checkpoint) instead of the full mix",
    )
    p_gen.add_argument(
        "--list-specs", action="store_true", dest="list_specs",
        help="list every builtin scenario pack and workload pattern",
    )
    p_gen.add_argument(
        "--json", action="store_true", dest="as_json",
        help="with --list-specs: emit the listing as JSON "
             "(same shape as 'analyze --list --json')",
    )

    p_an = sub.add_parser("analyze", help="run one exhibit over a saved store")
    p_an.add_argument(
        "store", nargs="?", default=None,
        help=".npz file or .store directory from 'generate'",
    )
    p_an.add_argument(
        "--exhibit", default="table3",
        choices=sorted({*exhibit_names(), *federated_query_names()}),
    )
    p_an.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for sharded analysis "
             "(1 = serial, 0 = all cores; results are identical)",
    )
    p_an.add_argument(
        "--list", action="store_true",
        help="list every query name the analyze CLI and 'repro serve' share",
    )
    p_an.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit JSON: the query listing with --list (same shape as "
             "'generate --list-specs --json'), the serialized result "
             "otherwise",
    )
    p_an.add_argument(
        "--catalog", default=None, metavar="PATH",
        help="run the exhibit across a store catalog instead of one store "
             "(see 'repro catalog')",
    )
    p_an.add_argument(
        "--member", default=None,
        help="route to one member label, or a comma-separated subset "
             "(--catalog only)",
    )
    p_an.add_argument(
        "--facility", default=None,
        help="select members by facility label (--catalog only)",
    )
    p_an.add_argument(
        "--period", default=None,
        help="select members overlapping YYYY-MM[:YYYY-MM] (--catalog only)",
    )
    p_an.add_argument(
        "--params", default=None,
        help='extra query parameters as a JSON object, e.g. '
             '\'{"a": "m1", "b": "m2"}\' for compare queries',
    )
    traceable(p_an)

    p_cat = sub.add_parser(
        "catalog", help="manage a multi-store federation catalog"
    )
    cat_sub = p_cat.add_subparsers(dest="catalog_command", required=True)

    c_init = cat_sub.add_parser("init", help="create an empty catalog manifest")
    c_init.add_argument("catalog", help="manifest path (e.g. fleet.json)")

    c_add = cat_sub.add_parser("add", help="add a member store or endpoint")
    c_add.add_argument("catalog", help="manifest path")
    c_add.add_argument("label", help="unique member label (e.g. olcf-2020-01)")
    c_add.add_argument(
        "--store", default=None,
        help=".npz file or .store directory to add as a local member",
    )
    c_add.add_argument(
        "--endpoint", default=None, metavar="HOST:PORT",
        help="running 'repro serve' to add as a remote member",
    )
    c_add.add_argument(
        "--facility", default="", help="facility label (e.g. olcf, nersc)"
    )
    c_add.add_argument(
        "--period", default="",
        help="covered months as YYYY-MM or YYYY-MM:YYYY-MM",
    )

    c_rm = cat_sub.add_parser("remove", help="remove a member")
    c_rm.add_argument("catalog", help="manifest path")
    c_rm.add_argument("label", help="member label to remove")

    c_ls = cat_sub.add_parser("list", help="list members")
    c_ls.add_argument("catalog", help="manifest path")

    c_vf = cat_sub.add_parser(
        "verify", help="check every member and the catalog's invariants"
    )
    c_vf.add_argument("catalog", help="manifest path")

    c_rf = cat_sub.add_parser(
        "refresh", help="re-fingerprint members, bumping changed generations"
    )
    c_rf.add_argument("catalog", help="manifest path")

    p_ing = sub.add_parser(
        "ingest", help="ingest an NDJSON log stream into a store"
    )
    p_ing.add_argument(
        "stream", help="NDJSON stream file (one DarshanLog per line)"
    )
    p_ing.add_argument(
        "--store", required=True,
        help=".npz store to extend (created empty if missing)",
    )
    p_ing.add_argument(
        "--platform", choices=("summit", "cori"), default="summit",
        help="platform for a newly created store (existing stores keep theirs)",
    )
    p_ing.add_argument(
        "--scale", type=float, default=1e-3,
        help="paper-scale factor for a newly created store",
    )
    p_ing.add_argument(
        "--follow", action="store_true",
        help="keep tailing the stream for appended records",
    )
    p_ing.add_argument(
        "--batch-logs", type=int, default=256,
        help="logs applied (and checkpointed) per batch",
    )
    p_ing.add_argument(
        "--poll-interval", type=float, default=0.5,
        help="seconds between polls when the stream is idle (--follow)",
    )
    p_ing.add_argument(
        "--max-batches", type=int, default=None,
        help="stop after this many applied batches",
    )
    p_ing.add_argument(
        "--idle-exit", type=int, default=None, metavar="N",
        help="stop after N consecutive empty polls (--follow; default: never)",
    )
    p_ing.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="resume-offset file, written after every applied batch",
    )
    p_ing.add_argument(
        "--on-error", choices=("raise", "skip"), default="raise",
        help="policy for garbled stream lines (skip counts and continues)",
    )
    traceable(p_ing)

    p_srv = sub.add_parser(
        "serve", help="serve analysis queries over a loaded store (NDJSON/TCP)"
    )
    p_srv.add_argument(
        "store", nargs="?", default=None,
        help=".npz file or .store directory from 'generate' "
             "(omit with --catalog)",
    )
    p_srv.add_argument(
        "--catalog", default=None, metavar="PATH",
        help="serve the federated query surface over a store catalog "
             "instead of one store",
    )
    p_srv.add_argument("--host", default="127.0.0.1")
    p_srv.add_argument("--port", type=int, default=7786)
    p_srv.add_argument(
        "--workers", type=int, default=4, help="analysis worker threads"
    )
    p_srv.add_argument(
        "--queue-depth", type=int, default=32,
        help="admission queue bound; beyond it requests are shed "
             "with ServiceOverloadError",
    )
    p_srv.add_argument(
        "--cache-entries", type=int, default=256,
        help="LRU result-cache capacity (0 disables caching)",
    )
    p_srv.add_argument(
        "--timeout", type=float, default=None,
        help="default per-request deadline in seconds",
    )
    p_srv.add_argument(
        "--analysis-jobs", type=int, default=None,
        help="worker processes for sharded analysis primitives "
             "(default serial; 0 = all cores)",
    )
    traceable(p_srv)

    p_q = sub.add_parser("query", help="query a running 'repro serve'")
    p_q.add_argument("name", help="query name (see 'repro analyze --list')")
    p_q.add_argument(
        "--catalog", default=None, metavar="PATH",
        help="answer from a store catalog in-process instead of a server",
    )
    p_q.add_argument("--host", default="127.0.0.1")
    p_q.add_argument("--port", type=int, default=7786)
    p_q.add_argument(
        "--params", default=None,
        help='query parameters as a JSON object, e.g. \'{"top": 5}\'',
    )
    p_q.add_argument(
        "--timeout", type=float, default=None,
        help="per-request deadline in seconds",
    )
    p_q.add_argument(
        "--json", action="store_true", dest="as_json",
        help="print the raw JSON result instead of a rendered table",
    )

    p_wi = sub.add_parser(
        "whatif", help="what-if scenario sweep over a saved store"
    )
    p_wi.add_argument(
        "store", nargs="?", default=None,
        help=".npz file or .store directory from 'generate'",
    )
    p_wi.add_argument(
        "--scenario", default="identity",
        help="scenario name (see --list)",
    )
    p_wi.add_argument(
        "--params", default=None,
        help='scenario parameters as a JSON object, e.g. \'{"factor": 2}\'',
    )
    p_wi.add_argument(
        "--sweep", default=None, metavar="JSON",
        help="sweep axes as a JSON object of parameter -> list of values "
             '(e.g. \'{"factor": [0.5, 2, 4]}\'); points are the grid '
             "product, each merged over --params",
    )
    p_wi.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for sweep points "
             "(1 = serial, 0 = all cores; results are identical)",
    )
    p_wi.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit JSON: the scenario listing with --list (same shape "
             "as 'analyze --list --json'), the serialized result "
             "otherwise",
    )
    p_wi.add_argument(
        "--list", action="store_true",
        help="list every scenario with its parameters and defaults",
    )
    traceable(p_wi)

    p_adv = sub.add_parser("advise", help="run the optimization advisors")
    p_adv.add_argument("store", help=".npz store from 'generate'")
    p_adv.add_argument(
        "--advisor", choices=("aggregation", "staging"), default="staging"
    )

    p_rep = sub.add_parser("replay", help="facility layer-demand replay")
    p_rep.add_argument("store", help=".npz store from 'generate'")
    p_rep.add_argument("--bin-hours", type=float, default=1.0)

    p_ior = sub.add_parser("ior", help="run an IOR-style probe")
    p_ior.add_argument("--platform", choices=("summit", "cori"), default="summit")
    p_ior.add_argument("--layer", choices=("pfs", "insystem"), default="pfs")
    p_ior.add_argument(
        "--api", choices=("posix", "mpiio", "stdio"), default="posix"
    )
    p_ior.add_argument("--tasks", type=int, default=64)
    p_ior.add_argument("--transfer-size", default="1MiB")
    p_ior.add_argument("--block-size", default="256MiB")
    p_ior.add_argument("--direction", choices=("read", "write"), default="write")
    p_ior.add_argument("--collective", action="store_true")
    p_ior.add_argument("--file-per-proc", action="store_true")
    p_ior.add_argument("--seed", type=int, default=0)
    return parser


def _cmd_study(args) -> int:
    study = CharacterizationStudy(
        StudyConfig(seed=args.seed, scale=args.scale,
                    platforms=(args.platform,), jobs=args.jobs)
    )
    print(study.render(args.platform))
    return 0


def _cmd_shapes(args) -> int:
    study = CharacterizationStudy(
        StudyConfig(seed=args.seed, scale=args.scale,
                    platforms=(args.platform,), jobs=args.jobs)
    )
    # Through the shared registry: the CLI's shape run is the same query
    # `repro serve` answers as "shapes".
    checks = run_query(study.store(args.platform), "shapes")
    for c in checks:
        print(c)
    failed = sum(not c.passed for c in checks)
    print(f"{len(checks) - failed}/{len(checks)} shapes reproduced")
    return 1 if failed else 0


def _print_listing(listing: str, items: list[dict], as_json: bool) -> None:
    """One listing, the two shared renderings (text and --json)."""
    if as_json:
        from repro.serve.registry import listing_payload

        print(json.dumps(listing_payload(listing, items),
                         indent=2, sort_keys=True))
        return
    width = max(len(item["name"]) for item in items)
    for item in items:
        tag = f" [{item['kind']}]" if "kind" in item else ""
        print(f"{item['name']:<{width}}{tag:10s} {item['title']}")
        for line in item.get("detail", ()):
            print(f"    {line}")


def _cmd_generate(args) -> int:
    if args.list_specs:
        from repro.spec import pack_catalog, pattern_catalog

        items: list[dict] = []
        for name, spec in sorted(pack_catalog().items()):
            items.append({
                "name": name, "kind": "pack", "title": spec.description,
                "phases": [p.pattern for p in spec.phases],
            })
        for name, pattern in sorted(pattern_catalog().items()):
            params = [f.describe() for f in pattern.fields]
            items.append({
                "name": name, "kind": "pattern", "title": pattern.title,
                "params": params,
                "detail": [
                    f"--spec params {p['name']}={p['default']!r}  {p['doc']}"
                    for p in params
                ],
            })
        _print_listing("specs", items, args.as_json)
        return 0
    if args.out is None:
        print("generate: --out is required unless --list-specs is given",
              file=sys.stderr)
        return 2
    if args.spec is not None and args.archetype is not None:
        print("generate: --spec and --archetype are mutually exclusive",
              file=sys.stderr)
        return 2
    if args.spec is not None or args.archetype is not None:
        from repro.errors import SpecError
        from repro.spec import generate_from_spec, load_spec

        source = args.spec
        if args.archetype is not None:
            # A one-phase spec selecting the named builtin archetype —
            # --archetype is sugar over the same compile path.
            source = {
                "name": f"solo-{args.archetype}",
                "phases": [{"name": "solo", "pattern": "archetype",
                            "weight": 1.0,
                            "params": {"name": args.archetype}}],
            }
        try:
            spec = load_spec(source)
            store = generate_from_spec(
                spec, seed=args.seed, jobs=args.jobs,
                platform=args.platform, scale=args.scale,
            )
        except SpecError as exc:
            print(f"generate: {exc}", file=sys.stderr)
            return 1
        provenance = f" (spec {spec.name})"
    else:
        gen = WorkloadGenerator(args.platform, GeneratorConfig(scale=args.scale))
        store = generate_with_shadows(gen, args.seed, jobs=args.jobs)
        provenance = ""
    save_store(store, args.out)
    print(f"wrote {store!r} to {args.out}{provenance}")
    return 0


def _federated_executor(catalog_path: str, *, workers: int = 4):
    """(executor, federated registry) over one catalog manifest."""
    from repro.federation import FederationExecutor, federated_registry, load_catalog

    executor = FederationExecutor(load_catalog(catalog_path), max_workers=workers)
    return executor, federated_registry(executor)


def _cmd_analyze(args) -> int:
    registry = default_registry()
    if args.list:
        # The same registry `repro serve` dispatches on: the CLI surface
        # and the service surface cannot drift.
        if args.as_json:
            items = [
                {"name": name, "kind": spec.kind, "title": spec.title,
                 "params": list(spec.param_names)}
                for name, spec in sorted(registry.items())
            ]
            _print_listing("queries", items, True)
            return 0
        width = max(len(n) for n in registry)
        for name in sorted(registry):
            spec = registry[name]
            via = "analyze+serve" if spec.kind == "table" else "serve"
            print(f"{name:<{width}}  [{via:13s}] {spec.title}")
        return 0
    params = json.loads(args.params) if args.params else {}
    if args.catalog is not None:
        # The federated path: the exhibit runs across catalog members,
        # routed by --member/--facility/--period, through the very
        # QuerySpec objects `repro serve --catalog` would dispatch on.
        for axis in ("member", "facility", "period"):
            value = getattr(args, axis)
            if value is not None:
                params[axis] = value
        from repro.errors import ReproError
        from repro.serve.registry import validate_params

        try:
            executor, federated = _federated_executor(
                args.catalog, workers=args.jobs or 4
            )
            with executor:
                spec = federated.get(args.exhibit)
                if spec is None:
                    print(
                        f"analyze: {args.exhibit!r} is not a federated "
                        "query; federated names: "
                        f"{', '.join(sorted(federated))}",
                        file=sys.stderr,
                    )
                    return 2
                result = spec.run(None, None, validate_params(spec, params))
        except ReproError as exc:
            print(f"analyze: {exc}", file=sys.stderr)
            return 1
        if args.as_json:
            from repro.serve.registry import serialize_result

            print(json.dumps(serialize_result(spec, result),
                             indent=2, sort_keys=True))
            return 0
        print(render_results(spec.title, spec.headers, result))
        return 0
    if args.store is None:
        print("analyze: a store path is required unless --list or "
              "--catalog is given", file=sys.stderr)
        return 2
    store = load_store(args.store)
    if args.jobs != 1:
        store.set_analysis_jobs(args.jobs)
    spec = registry[args.exhibit]
    result = run_query(store, args.exhibit, params or None)
    if args.as_json:
        from repro.serve.registry import serialize_result

        print(json.dumps(serialize_result(spec, result),
                         indent=2, sort_keys=True))
        return 0
    print(render_results(spec.title, spec.headers, result))
    return 0


def _cmd_catalog(args) -> int:
    from repro.errors import CatalogError
    from repro.federation import StoreCatalog, load_catalog

    try:
        if args.catalog_command == "init":
            StoreCatalog.init(args.catalog)
            print(f"initialized empty catalog at {args.catalog}")
            return 0
        catalog = load_catalog(args.catalog)
        if args.catalog_command == "add":
            if bool(args.store) == bool(args.endpoint):
                print("catalog add: exactly one of --store or --endpoint "
                      "is required", file=sys.stderr)
                return 2
            if args.store:
                member = catalog.add_store(
                    args.label, args.store,
                    facility=args.facility, period=args.period,
                )
            else:
                host, _, port = args.endpoint.rpartition(":")
                try:
                    port = int(port)
                except ValueError:
                    print(f"catalog add: malformed --endpoint "
                          f"{args.endpoint!r} (want HOST:PORT)",
                          file=sys.stderr)
                    return 2
                member = catalog.add_endpoint(
                    args.label, host, port,
                    facility=args.facility, period=args.period,
                )
            print(f"added {member.kind} member {member.label!r} "
                  f"({member.rows} rows, {member.jobs} jobs)")
            return 0
        if args.catalog_command == "remove":
            member = catalog.remove(args.label)
            print(f"removed member {member.label!r}")
            return 0
        if args.catalog_command == "list":
            from repro.federation import FederationExecutor

            rows = FederationExecutor(catalog).members_table().to_rows()
            print(render_table(
                HEADERS["catalog"], rows,
                title=f"Catalog - {args.catalog} ({len(catalog)} members)",
            ))
            return 0
        if args.catalog_command == "verify":
            problems = catalog.verify()
            for problem in problems:
                print(f"FAIL {problem}")
            if problems:
                print(f"{len(problems)} problem(s) found")
                return 1
            print(f"catalog ok ({len(catalog)} members)")
            return 0
        if args.catalog_command == "refresh":
            bumped = catalog.refresh()
            if bumped:
                print("bumped generation of: " + ", ".join(bumped))
            else:
                print("all members up to date")
            return 0
    except CatalogError as exc:
        print(f"catalog: {exc}", file=sys.stderr)
        return 1
    raise AssertionError(f"unhandled catalog command {args.catalog_command}")


def _cmd_ingest(args) -> int:
    import os

    from repro.store.recordstore import RecordStore
    from repro.store.schema import empty_files, empty_jobs
    from repro.stream import ingest_stream
    from repro.workloads.domains import domain_catalog

    if os.path.exists(args.store):
        store = load_store(args.store)
    else:
        # An empty store pre-seeded with the platform's domain catalog,
        # so streamed and generated stores share domain codes.
        store = RecordStore(
            args.platform, empty_files(0), empty_jobs(0),
            domains=domain_catalog(args.platform), scale=args.scale,
        )
    mounts = get_platform(store.platform).mount_table()
    try:
        stats = ingest_stream(
            args.stream, store, mounts,
            checkpoint_path=args.checkpoint,
            on_error=args.on_error,
            batch_logs=args.batch_logs,
            follow_stream=args.follow,
            poll_interval=args.poll_interval,
            max_batches=args.max_batches,
            idle_polls=args.idle_exit,
        )
    except KeyboardInterrupt:  # tail mode: persist what was applied
        save_store(store, args.store)
        print(f"interrupted; saved {store!r} to {args.store}", file=sys.stderr)
        return 130
    save_store(store, args.store)
    skipped = f", {stats.skipped} lines skipped" if stats.skipped else ""
    print(
        f"ingested {stats.logs} logs ({stats.rows} rows in "
        f"{stats.batches} batches{skipped}) into {args.store}; "
        f"stream offset {stats.offset}"
    )
    return 0


def _cmd_serve(args) -> int:  # pragma: no cover - blocking accept loop
    from repro.serve.engine import QueryEngine
    from repro.serve.server import run_server

    if args.catalog is not None:
        # Federated serving: the engine's registry is replaced wholesale
        # with federated specs, so this server answers the catalog's
        # query surface (routing params, compare_*, catalog_members)
        # and nothing single-store.
        executor, federated = _federated_executor(
            args.catalog, workers=args.workers
        )
        engine = QueryEngine(
            executor.anchor_store(),
            max_workers=args.workers,
            max_queue=args.queue_depth,
            cache_entries=args.cache_entries,
            default_timeout=args.timeout,
            registry=federated,
        )
        run_server(engine, args.host, args.port)
        return 0
    if args.store is None:
        print("serve: a store path is required unless --catalog is given",
              file=sys.stderr)
        return 2
    store = load_store(args.store)
    engine = QueryEngine(
        store,
        max_workers=args.workers,
        max_queue=args.queue_depth,
        cache_entries=args.cache_entries,
        default_timeout=args.timeout,
        analysis_jobs=args.analysis_jobs,
    )
    run_server(engine, args.host, args.port)
    return 0


def _render_remote(result: dict) -> str:
    """Human rendering of a wire result (tables as tables, rest JSON)."""
    kind = result.get("kind")
    if kind == "table":
        return render_table(
            result["headers"], result["rows"], title=result.get("title", "")
        )
    if kind == "shapes":
        lines = []
        for c in result["checks"]:
            status = "PASS" if c["passed"] else "FAIL"
            lines.append(
                f"[{status}] {c['exhibit']:9s} {c['name']}: "
                f"expected {c['expected']}, measured {c['measured']}"
            )
        lines.append(
            f"{result['passed']}/{result['passed'] + result['failed']} "
            "shapes reproduced"
        )
        return "\n".join(lines)
    return json.dumps(result, indent=2, sort_keys=True)


def _cmd_query(args) -> int:
    from repro.serve.client import ServeClient

    params = json.loads(args.params) if args.params else {}
    if args.catalog is not None:
        # Same specs a federated server dispatches on, executed in
        # process — no server required for a one-shot fleet query.
        from repro.errors import ReproError
        from repro.serve.registry import serialize_result, validate_params

        try:
            executor, federated = _federated_executor(args.catalog)
            with executor:
                spec = federated.get(args.name)
                if spec is None:
                    print(
                        f"query: {args.name!r} is not a federated query; "
                        f"federated names: {', '.join(sorted(federated))}",
                        file=sys.stderr,
                    )
                    return 2
                raw = spec.run(None, None, validate_params(spec, params))
                result = serialize_result(spec, raw)
        except ReproError as exc:
            print(f"query: {exc}", file=sys.stderr)
            return 1
    else:
        with ServeClient(args.host, args.port) as client:
            result = client.query(args.name, params, timeout=args.timeout)
    if args.as_json:
        print(json.dumps(result, indent=2, sort_keys=True))
    else:
        print(_render_remote(result))
    if result.get("kind") == "shapes" and result.get("failed"):
        return 1
    return 0


def _cmd_advise(args) -> int:
    # Both advisors resolve through the shared QuerySpec registry — the
    # CLI runs the identical query a `repro serve` client would name
    # "advise_staging" / "advise_aggregation".
    store = load_store(args.store)
    if args.advisor == "staging":
        a = run_query(store, "advise_staging")
        print(
            f"stageable PFS files: {100 * a.stageable_file_fraction:.1f}% "
            f"({format_size(a.stageable_bytes)})"
        )
        print(
            f"in-job I/O: direct {a.direct_seconds:,.0f}s vs staged "
            f"{a.staged_seconds:,.0f}s ({a.in_job_speedup:.1f}x); "
            f"movement {a.movement_seconds:,.0f}s; worthwhile: {a.worthwhile}"
        )
    else:
        for o in run_query(store, "advise_aggregation", {"top": 10}):
            print(
                f"{o.layer:9s} {o.interface:6s} {o.direction:5s}: "
                f"{o.nfiles:8d} files, mean request "
                f"{format_size(o.mean_request)}, speedup {o.speedup:.1f}x, "
                f"saves {o.saved_seconds:,.0f}s"
            )
    return 0


def _cmd_whatif(args) -> int:
    from repro.whatif import get_scenario, scenario_catalog, sweep

    if args.list:
        if args.as_json:
            items = [
                {"name": name, "kind": "scenario", "title": s.title,
                 "description": s.description,
                 "params": [
                     {"name": p.name, "default": p.default, "doc": p.doc}
                     for p in s.params
                 ]}
                for name, s in sorted(scenario_catalog().items())
            ]
            _print_listing("scenarios", items, True)
            return 0
        for name, scenario in sorted(scenario_catalog().items()):
            print(f"{name}: {scenario.title}")
            print(f"    {scenario.description}")
            for spec in scenario.params:
                print(f"    --params {spec.name}={spec.default!r}  {spec.doc}")
        return 0
    if args.store is None:
        print("whatif: a store path is required unless --list is given",
              file=sys.stderr)
        return 2
    scenario = get_scenario(args.scenario)
    base = json.loads(args.params) if args.params else {}
    if args.sweep:
        axes = json.loads(args.sweep)
        if not isinstance(axes, dict) or not axes:
            print("whatif: --sweep must be a non-empty JSON object of "
                  "parameter -> list of values", file=sys.stderr)
            return 2
        names = sorted(axes)
        grids = [axes[n] if isinstance(axes[n], list) else [axes[n]]
                 for n in names]
        points = [dict(base, **dict(zip(names, values)))
                  for values in itertools.product(*grids)]
    else:
        points = [base]
    store = load_store(args.store)
    reports = sweep(store, scenario.name, points, jobs=args.jobs)
    if args.as_json:
        from repro.serve.registry import default_registry, serialize_result

        spec = default_registry()[f"whatif_{scenario.name}"]
        print(json.dumps(
            [serialize_result(spec, r) for r in reports],
            indent=2, sort_keys=True,
        ))
        return 0
    title = f"What-if - {scenario.title} ({store.platform})"
    print(render_results(title, HEADERS["whatif"], reports))
    moved = sum(r.moved_files for r in reports)
    if moved:
        print(f"({moved} file placements changed across "
              f"{len(reports)} point(s))")
    return 0


def _cmd_replay(args) -> int:
    from repro.analysis.report import render_table
    from repro.iosim.replay import FacilityReplay

    store = load_store(args.store)
    machine = get_platform(store.platform)
    replay = FacilityReplay(
        store, machine, bin_seconds=args.bin_hours * 3600.0
    )
    print(
        render_table(
            ["system", "layer", "dir", "mean util", "peak util", ">80% of time"],
            replay.summary_rows(),
            title="Facility replay - layer demand vs capacity",
        )
    )
    return 0


def _cmd_ior(args) -> int:
    from repro.iosim.ior import IorConfig, run_ior

    machine = get_platform(args.platform)
    config = IorConfig(
        api=IOInterface.from_name(args.api),
        tasks=args.tasks,
        transfer_size=parse_size(args.transfer_size),
        block_size=parse_size(args.block_size),
        collective=args.collective,
        file_per_proc=args.file_per_proc,
    )
    result = run_ior(
        machine, args.layer, config, args.direction,
        rng=np.random.default_rng(args.seed),
    )
    print(
        f"IOR {args.api.upper()} {args.direction} on "
        f"{machine.layers[args.layer].name}: "
        f"{format_size(result.config.aggregate_bytes)} in "
        f"{result.seconds:.2f}s = {format_size(result.bandwidth)}/s"
    )
    return 0


@contextlib.contextmanager
def _maybe_trace(path: str | None, command: str):
    """Install a Tracer for one CLI run and write it out at exit.

    Yields a span context wrapping the whole handler (``cli.<command>``)
    so every layer's spans — generation shards, ingest, analysis entry
    points, serve requests — nest under one root. The trace is written
    even when the handler raises: a trace of the failing run is exactly
    what you want on the floor.
    """
    if path is None:
        yield
        return
    from repro.obs import Tracer, set_tracer, trace_span, write_trace

    tracer = Tracer()
    previous = set_tracer(tracer)
    try:
        with trace_span(f"cli.{command}", "cli"):
            yield
    finally:
        set_tracer(previous)
        write_trace(path, tracer)
        store = tracer.store
        print(
            f"trace: {len(store)} spans -> {path}"
            + (f" ({store.dropped} dropped)" if store.dropped else ""),
            file=sys.stderr,
        )


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "study": _cmd_study,
        "shapes": _cmd_shapes,
        "generate": _cmd_generate,
        "analyze": _cmd_analyze,
        "catalog": _cmd_catalog,
        "ingest": _cmd_ingest,
        "serve": _cmd_serve,
        "query": _cmd_query,
        "advise": _cmd_advise,
        "whatif": _cmd_whatif,
        "replay": _cmd_replay,
        "ior": _cmd_ior,
    }
    with _maybe_trace(getattr(args, "trace", None), args.command):
        return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""The simulated Darshan runtime.

The workload generator's hot path emits columnar records directly; this
subpackage provides the *object path* that mirrors what the real Darshan
runtime does inside an application (Figure 2 of the paper):

* :mod:`opstream` — synthesize per-file I/O operation streams consistent
  with a target byte total / operation count / request-size histogram;
* :mod:`runtime` — run those streams through the counter accumulator
  (:mod:`repro.darshan.accumulate`) and assemble complete
  :class:`~repro.darshan.log.DarshanLog` objects, which can be written to
  disk with :func:`repro.darshan.format.write_log` and re-ingested with
  :func:`repro.store.ingest.ingest_logs`.

The integration tests materialize logs from generated store rows and
assert the round trip (store → logs → bytes → logs → store) preserves the
analyzed quantities.
"""

from repro.instrument.opstream import synthesize_ops
from repro.instrument.runtime import LogMaterializer

__all__ = ["synthesize_ops", "LogMaterializer"]

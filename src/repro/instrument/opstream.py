"""Synthesizing operation streams for the object-path runtime.

Given a file's target statistics — bytes moved, operation count, optional
request-size histogram — produce a concrete operation batch
(:data:`repro.darshan.accumulate.OP_DTYPE`) whose accumulation reproduces
those statistics: byte totals exactly, histograms bin-for-bin, sequential
offsets (the dominant HPC pattern), and timers spread across operations.
"""

from __future__ import annotations

import numpy as np

from repro.darshan.accumulate import (
    OP_CLOSE,
    OP_OPEN,
    OP_READ,
    OP_WRITE,
    empty_ops,
)
from repro.darshan.bins import ACCESS_SIZE_BINS


def _sizes_for_histogram(hist: np.ndarray, total_bytes: int) -> np.ndarray:
    """Request sizes matching a bin histogram and summing to total_bytes.

    Each op starts at its bin's lower edge (+1 byte for the 0-bin so a
    zero-size read never appears); leftover bytes are distributed to ops
    with headroom in their bin, largest bins first, so no op leaves its
    bin and the sum is exact. Raises ``ValueError`` when the histogram
    cannot realize the byte total (checked by log validation too).
    """
    hist = np.asarray(hist, dtype=np.int64)
    nops = int(hist.sum())
    if nops == 0:
        if total_bytes:
            raise ValueError("bytes without operations")
        return np.empty(0, dtype=np.int64)
    edges = ACCESS_SIZE_BINS.edges
    sizes = np.empty(nops, dtype=np.int64)
    lower = np.empty(nops, dtype=np.int64)
    upper = np.empty(nops, dtype=np.float64)
    pos = 0
    for b in range(ACCESS_SIZE_BINS.nbins):
        n = int(hist[b])
        if n == 0:
            continue
        lo = int(edges[b]) if edges[b] > 0 else 1
        hi = edges[b + 1]
        sizes[pos : pos + n] = lo
        lower[pos : pos + n] = lo
        upper[pos : pos + n] = hi - 1 if np.isfinite(hi) else np.inf
        pos += n
    remainder = total_bytes - int(sizes.sum())
    if remainder < 0:
        raise ValueError(
            f"total_bytes {total_bytes} below histogram floor {int(sizes.sum())}"
        )
    # Fill headroom from the largest bins down.
    for i in range(nops - 1, -1, -1):
        if remainder == 0:
            break
        room = upper[i] - sizes[i]
        add = int(min(room, remainder)) if np.isfinite(room) else remainder
        sizes[i] += add
        remainder -= add
    if remainder:
        # Every op is at its bin ceiling and bytes remain (possible only
        # for histograms built from integer-rounded means). Dump the rest
        # on the largest op: byte totals stay exact at the cost of that
        # one op drifting a bin — the accumulator recomputes the histogram
        # from actual sizes, so the log stays self-consistent.
        sizes[-1] += remainder
    return sizes


def _uniform_sizes(nops: int, total_bytes: int) -> np.ndarray:
    """Near-equal op sizes summing exactly to total_bytes (STDIO path)."""
    if nops == 0:
        if total_bytes:
            raise ValueError("bytes without operations")
        return np.empty(0, dtype=np.int64)
    base = total_bytes // nops
    sizes = np.full(nops, base, dtype=np.int64)
    sizes[: total_bytes - base * nops] += 1
    return sizes


def synthesize_ops(
    *,
    bytes_read: int,
    bytes_written: int,
    read_ops: int,
    write_ops: int,
    read_time: float,
    write_time: float,
    meta_time: float,
    read_hist: np.ndarray | None = None,
    write_hist: np.ndarray | None = None,
    start_time: float = 0.0,
) -> np.ndarray:
    """Build a sorted operation batch realizing the target statistics.

    Reads come first, then writes (the common read-inputs/write-outputs
    job phase structure), bracketed by open/close carrying the metadata
    time. Histograms, when given, must sum to the op counts.
    """
    if bytes_read < 0 or bytes_written < 0:
        raise ValueError("byte totals must be non-negative")
    read_sizes = (
        _sizes_for_histogram(read_hist, bytes_read)
        if read_hist is not None and np.asarray(read_hist).sum() > 0
        else _uniform_sizes(read_ops, bytes_read)
    )
    write_sizes = (
        _sizes_for_histogram(write_hist, bytes_written)
        if write_hist is not None and np.asarray(write_hist).sum() > 0
        else _uniform_sizes(write_ops, bytes_written)
    )
    nr, nw = len(read_sizes), len(write_sizes)
    n = nr + nw + 2  # + open + close
    ops = empty_ops(n)
    ops["kind"][0] = OP_OPEN
    ops["kind"][1 : 1 + nr] = OP_READ
    ops["kind"][1 + nr : 1 + nr + nw] = OP_WRITE
    ops["kind"][-1] = OP_CLOSE

    # Sequential offsets within each direction.
    ops["size"][1 : 1 + nr] = read_sizes
    ops["size"][1 + nr : 1 + nr + nw] = write_sizes
    if nr:
        ops["offset"][1 : 1 + nr] = np.concatenate(
            ([0], np.cumsum(read_sizes[:-1]))
        )
    if nw:
        ops["offset"][1 + nr : 1 + nr + nw] = np.concatenate(
            ([0], np.cumsum(write_sizes[:-1]))
        )

    # Durations: split timers evenly; open/close split the metadata time.
    ops["duration"][0] = meta_time / 2
    ops["duration"][-1] = meta_time / 2
    if nr:
        ops["duration"][1 : 1 + nr] = read_time / nr
    if nw:
        ops["duration"][1 + nr : 1 + nr + nw] = write_time / nw
    # Start times: strictly ordered, back-to-back.
    starts = start_time + np.concatenate(([0.0], np.cumsum(ops["duration"][:-1])))
    ops["start"] = starts
    return ops

"""Materializing DarshanLog objects from store rows.

The inverse of :func:`repro.store.ingest.ingest_logs`: take the columnar
rows of one Darshan log and rebuild the full object — job record, name
records with synthetic paths on the right mount points, per-module file
records produced by running synthesized operation streams through the
real counter accumulator. Writing the result with
:func:`repro.darshan.format.write_log` yields a complete on-disk log, the
same artifact the paper's pipeline starts from.
"""

from __future__ import annotations

import numpy as np

from repro.darshan.accumulate import accumulate
from repro.darshan.constants import ModuleId
from repro.darshan.log import DarshanLog
from repro.darshan.records import FileRecord, JobRecord, NameRecord
from repro.errors import StoreError
from repro.instrument.opstream import synthesize_ops
from repro.platforms.interfaces import IOInterface
from repro.platforms.machine import Machine
from repro.store.recordstore import RecordStore
from repro.store.schema import LAYER_INSYSTEM, LAYER_PFS
from repro.units import MiB


class LogMaterializer:
    """Builds DarshanLog objects for the logs present in a RecordStore."""

    def __init__(self, machine: Machine, store: RecordStore):
        self.machine = machine
        self.store = store

    def log_ids(self, limit: int | None = None) -> np.ndarray:
        """Distinct log ids in the store (optionally the first ``limit``)."""
        ids = np.unique(self.store.files["log_id"])
        return ids[:limit] if limit is not None else ids

    def materialize(self, log_id: int, *, dxt: bool = False) -> DarshanLog:
        """Build the full DarshanLog for one log id.

        ``dxt=True`` also attaches DXT traces for POSIX/MPI-IO records —
        the high-resolution mode that is off by default on the target
        systems (§2.2).
        """
        rows = self.store.files[self.store.files["log_id"] == log_id]
        if not len(rows):
            raise StoreError(f"no rows for log id {log_id}")
        job_id = int(rows["job_id"][0])
        jrows = self.store.jobs[self.store.jobs["job_id"] == job_id]
        if not len(jrows):
            raise StoreError(f"no job row for job {job_id}")
        jrow = jrows[0]
        domain = (
            self.store.domains[jrow["domain"]] if jrow["domain"] >= 0 else ""
        )
        job = JobRecord(
            job_id=job_id,
            user_id=int(jrow["user_id"]),
            nprocs=int(jrow["nprocs"]),
            start_time=float(jrow["start_time"]),
            end_time=float(jrow["start_time"] + jrow["runtime"]),
            platform=self.store.platform,
            domain=domain,
            metadata={"nnodes": str(int(jrow["nnodes"]))},
        )
        log = DarshanLog(job)
        lustre_done: set[int] = set()
        for row in rows:
            self._add_row(log, row, lustre_done, dxt=dxt)
        return log

    # ------------------------------------------------------------------
    def _path_for(self, row) -> tuple[str, str]:
        """(path, mount) for a row; deterministic in the record id."""
        layer = (
            self.machine.pfs
            if row["layer"] == LAYER_PFS
            else self.machine.in_system
        )
        ext_code = int(row["ext"])
        ext = (
            "." + self.store.extensions[ext_code]
            if 0 <= ext_code < len(self.store.extensions)
            else ""
        )
        rid = int(row["record_id"])
        return (
            f"{layer.mount_point}/u{int(row['user_id'])}/j{int(row['job_id'])}"
            f"/f{rid:016x}{ext}",
            layer.mount_point,
        )

    def _add_row(
        self, log: DarshanLog, row, lustre_done: set[int], *, dxt: bool = False
    ) -> None:
        interface = IOInterface(int(row["interface"]))
        path, mount = self._path_for(row)
        layer_key = "pfs" if row["layer"] == LAYER_PFS else "insystem"
        record_id = int(row["record_id"])
        name = NameRecord(record_id, path, mount, layer_key)
        try:
            log.register_name(name)
        except ValueError:
            pass  # the MPI-IO row and its POSIX shadow share the name
        ops = synthesize_ops(
            bytes_read=int(row["bytes_read"]),
            bytes_written=int(row["bytes_written"]),
            read_ops=int(row["reads"]),
            write_ops=int(row["writes"]),
            read_time=float(row["read_time"]),
            write_time=float(row["write_time"]),
            meta_time=float(row["meta_time"]),
            read_hist=row["read_hist"] if interface.records_request_sizes else None,
            write_hist=row["write_hist"] if interface.records_request_sizes else None,
            start_time=float(log.job.start_time),
        )
        record = accumulate(
            interface.module,
            record_id,
            int(row["rank"]),
            ops,
            collective=interface is IOInterface.MPIIO,
        )
        log.add_record(record)
        if dxt and interface in (IOInterface.POSIX, IOInterface.MPIIO):
            from repro.darshan.dxt import DxtTrace

            log.attach_trace(
                DxtTrace.from_ops(
                    interface.module, record_id, int(row["rank"]), ops
                )
            )
        # Lustre layout records for PFS files on a Lustre deployment
        # (one per file, regardless of how many interfaces touched it).
        if (
            row["layer"] == LAYER_PFS
            and self.machine.pfs.technology == "Lustre"
            and record_id not in lustre_done
        ):
            lustre_done.add(record_id)
            log.add_record(self._lustre_record(row, record_id))

    def _lustre_record(self, row, record_id: int) -> FileRecord:
        params = self.machine.pfs.params
        rec = FileRecord(ModuleId.LUSTRE, record_id, rank=int(row["rank"]))
        rec.set("OSTS", params.get("ost_count", 248))
        rec.set("MDTS", params.get("mds_count", 5))
        rec.set("STRIPE_SIZE", params.get("stripe_size", 1 * MiB))
        rec.set("STRIPE_WIDTH", params.get("stripe_count", 1))
        rec.set("STRIPE_OFFSET", record_id % params.get("ost_count", 248))
        return rec

    def materialize_many(self, limit: int) -> list[DarshanLog]:
        """Materialize up to ``limit`` logs (store order)."""
        return [self.materialize(int(i)) for i in self.log_ids(limit)]

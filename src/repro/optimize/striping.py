"""Lustre striping advisor (the paper's §5 future work).

Cori's default stripe count is 1 (§2.1.2), so by default even a terabyte
file is served by a single OST. The paper's future work asks how users
use tuning parameters like striping and whether better defaults exist.
This advisor recommends a stripe count per file size — wide enough to
feed the job's parallelism, never wider than the file has stripes or the
pool has OSTs — and prices the gain with the performance model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.iosim.lustre import LustreFilesystem
from repro.iosim.perfmodel import PerfModel, TransferSpec
from repro.platforms.interfaces import IOInterface
from repro.platforms.storage import StorageLayer
from repro.units import GiB, MiB


@dataclass(frozen=True)
class StripingRecommendation:
    """A stripe-count recommendation for one file."""

    file_size: int
    nprocs: int
    current_stripe_count: int
    recommended_stripe_count: int
    #: Predicted shared-read seconds, current vs recommended.
    current_seconds: float
    recommended_seconds: float

    @property
    def speedup(self) -> float:
        return (
            self.current_seconds / self.recommended_seconds
            if self.recommended_seconds > 0
            else float("inf")
        )


def recommend_stripe_count(
    file_size: int,
    nprocs: int,
    fs: LustreFilesystem,
    *,
    bytes_per_stripe_target: int = 1 * GiB,
) -> int:
    """Facility-style heuristic: ~one stripe per GiB, bounded by the
    job's processes and the OST pool, minimum the default."""
    if file_size <= 0:
        return fs.default_stripe_count
    by_size = -(-file_size // bytes_per_stripe_target)
    rec = min(by_size, max(nprocs, 1), fs.ost_count)
    return max(int(rec), fs.default_stripe_count)


def recommend_striping(
    sizes: np.ndarray,
    nprocs: np.ndarray,
    layer: StorageLayer,
    fs: LustreFilesystem,
    *,
    perf: PerfModel | None = None,
    request_size: int = 1 * MiB,
) -> list[StripingRecommendation]:
    """Recommendations for a batch of shared files, priced on reads."""
    perf = perf or PerfModel(deterministic=True)
    rng = np.random.default_rng(0)
    sizes = np.asarray(sizes, dtype=np.int64)
    nprocs = np.asarray(nprocs, dtype=np.int64)
    if sizes.shape != nprocs.shape:
        raise ValueError("sizes and nprocs must align")

    current = np.full(len(sizes), fs.default_stripe_count, dtype=np.float64)
    recommended = np.array(
        [
            recommend_stripe_count(int(s), int(p), fs)
            for s, p in zip(sizes, nprocs)
        ],
        dtype=np.float64,
    )
    stripe_size = fs.default_stripe_size
    cur_par = np.minimum(np.maximum(sizes / stripe_size, 1.0), current)
    rec_par = np.minimum(np.maximum(sizes / stripe_size, 1.0), recommended)

    def price(par: np.ndarray) -> np.ndarray:
        spec = TransferSpec(
            nbytes=sizes.astype(np.float64),
            request_size=np.full(len(sizes), float(request_size)),
            nprocs=nprocs.astype(np.float64),
            file_parallelism=par,
            shared=np.ones(len(sizes), dtype=bool),
        )
        return perf.transfer_time(layer, IOInterface.POSIX, "read", spec, rng)

    t_cur = price(cur_par)
    t_rec = price(rec_par)
    return [
        StripingRecommendation(
            file_size=int(sizes[i]),
            nprocs=int(nprocs[i]),
            current_stripe_count=int(current[i]),
            recommended_stripe_count=int(recommended[i]),
            current_seconds=float(t_cur[i]),
            recommended_seconds=float(t_rec[i]),
        )
        for i in range(len(sizes))
    ]

"""Request-aggregation advisor (Recommendations 2 and 6).

The paper: small requests dominate HPC I/O at both file and process
levels, and aggregation (collective MPI-IO buffering, I/O adaptation)
has been available "for quite some time" yet goes unused — so middleware
should aggregate *seamlessly*. This advisor quantifies the opportunity:
for every file whose mean request size falls below a threshold, it
re-prices the transfer at an aggregated request size with the same
parallelism and reports the predicted speedup, worst offenders first.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.iosim.perfmodel import COLLECTIVE_BUFFER, PerfModel, TransferSpec
from repro.platforms.interfaces import IOInterface
from repro.platforms.machine import Machine
from repro.store.recordstore import RecordStore
from repro.store.schema import LAYER_CODES
from repro.units import KiB


@dataclass(frozen=True)
class AggregationOpportunity:
    """One file population's predicted gain from request aggregation."""

    layer: str
    interface: str
    direction: str
    nfiles: int
    total_bytes: int
    mean_request: float
    #: Predicted mean per-file time, current vs aggregated (seconds).
    current_time: float
    aggregated_time: float

    @property
    def speedup(self) -> float:
        return (
            self.current_time / self.aggregated_time
            if self.aggregated_time > 0
            else float("inf")
        )

    @property
    def saved_seconds(self) -> float:
        """Aggregate I/O seconds saved across the population."""
        return (self.current_time - self.aggregated_time) * self.nfiles


def find_aggregation_opportunities(
    store: RecordStore,
    machine: Machine,
    *,
    perf: PerfModel | None = None,
    small_request_threshold: int = 64 * KiB,
    aggregated_request: int = COLLECTIVE_BUFFER,
    min_files: int = 20,
) -> list[AggregationOpportunity]:
    """Rank (layer, interface, direction) populations by predicted gain.

    Only POSIX and STDIO populations are considered (MPI-IO collective
    traffic is already aggregated); deterministic pricing (no noise) so
    the ranking is stable.
    """
    perf = perf or PerfModel(deterministic=True)
    rng = np.random.default_rng(0)
    out: list[AggregationOpportunity] = []
    f = store.files
    for layer_key, layer_code in LAYER_CODES.items():
        if layer_key == "other":
            continue
        layer = machine.layers[layer_key]
        for iface in (IOInterface.POSIX, IOInterface.STDIO):
            sel = f[(f["layer"] == layer_code) & (f["interface"] == int(iface))]
            for direction, bytes_col, ops_col in (
                ("read", "bytes_read", "reads"),
                ("write", "bytes_written", "writes"),
            ):
                nbytes = sel[bytes_col].astype(np.float64)
                ops = np.maximum(sel[ops_col].astype(np.float64), 1.0)
                mean_req = np.where(nbytes > 0, nbytes / ops, 0.0)
                mask = (nbytes > 0) & (mean_req < small_request_threshold)
                n = int(mask.sum())
                if n < min_files:
                    continue
                sub = sel[mask]
                spec_now = TransferSpec(
                    nbytes=sub[bytes_col].astype(np.float64),
                    request_size=np.maximum(
                        sub[bytes_col] / np.maximum(sub[ops_col], 1), 1.0
                    ),
                    nprocs=sub["nprocs"].astype(np.float64),
                    file_parallelism=np.ones(n),
                    shared=sub["rank"] == -1,
                )
                spec_agg = TransferSpec(
                    nbytes=spec_now.nbytes,
                    request_size=np.minimum(
                        np.maximum(spec_now.nbytes, 1.0),
                        float(aggregated_request),
                    ),
                    nprocs=spec_now.nprocs,
                    file_parallelism=spec_now.file_parallelism,
                    shared=spec_now.shared,
                )
                t_now = perf.transfer_time(layer, iface, direction, spec_now, rng)
                t_agg = perf.transfer_time(layer, iface, direction, spec_agg, rng)
                out.append(
                    AggregationOpportunity(
                        layer=layer_key,
                        interface=iface.label,
                        direction=direction,
                        nfiles=n,
                        total_bytes=int(sub[bytes_col].sum()),
                        mean_request=float(
                            sub[bytes_col].sum() / np.maximum(sub[ops_col].sum(), 1)
                        ),
                        current_time=float(t_now.mean()),
                        aggregated_time=float(t_agg.mean()),
                    )
                )
    out.sort(key=lambda o: -o.saved_seconds)
    return out

"""Optimization advisors — the paper's recommendations, operationalized.

The study closes with six recommendations for middleware and facilities.
This package turns the actionable ones into tools that run against a
:class:`~repro.store.recordstore.RecordStore` (or operation streams) and
*price* each opportunity with the performance model:

* :mod:`aggregation` — Recommendations 2 and 6: find files whose small
  requests would benefit from middleware-level aggregation (collective
  buffering / stream batching) and estimate the speedup.
* :mod:`staging` — Recommendation 3: find read-only / write-only PFS
  traffic that could be staged through the in-system layer, and compare
  end-to-end times.
* :mod:`striping` — §5 future work: recommend Lustre stripe counts per
  file size and price the gain over the default stripe count of 1.
* :mod:`ssd` — Recommendation 4: rank STDIO write streams by estimated
  flash write-amplification using the extended counters of
  :mod:`repro.darshan.stdio_ext`.
"""

from repro.optimize.aggregation import AggregationOpportunity, find_aggregation_opportunities
from repro.optimize.staging import StagingAssessment, assess_staging
from repro.optimize.striping import StripingRecommendation, recommend_striping
from repro.optimize.ssd import FlashWearReport, rank_flash_wear

__all__ = [
    "AggregationOpportunity",
    "find_aggregation_opportunities",
    "StagingAssessment",
    "assess_staging",
    "StripingRecommendation",
    "recommend_striping",
    "FlashWearReport",
    "rank_flash_wear",
]

"""Flash-wear ranking for SSD-backed in-system layers (Recommendation 4).

The paper: the in-system layers are flash/SSD, which suffer from write
amplification under random writes and frequent rewrites, yet Darshan
records nothing about STDIO access patterns at the process level — so the
optimization opportunities (separating static/dynamic data, caching
rewrites) stay invisible. With the extended counters of
:mod:`repro.darshan.stdio_ext` they become measurable; this module ranks
operation streams by estimated write amplification and proposes the
paper's own mitigations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.darshan.stdio_ext import StdioExtRecord, accumulate_stdio_ext
from repro.units import KiB


@dataclass(frozen=True)
class FlashWearReport:
    """Wear assessment for one file's write stream on a flash layer."""

    record_id: int
    ext: StdioExtRecord
    write_amplification: float
    #: Mitigations from the paper's Recommendation 4 that apply.
    mitigations: tuple[str, ...]

    @property
    def severity(self) -> str:
        if self.write_amplification < 1.5:
            return "low"
        if self.write_amplification < 4.0:
            return "moderate"
        return "severe"


#: The paper's proposed middleware mitigations.
MITIGATION_CACHE_REWRITES = "cache rewrites (coalesce dynamic data in memory)"
MITIGATION_SEPARATE_STATIC = "separate static and dynamic data into different files"
MITIGATION_BATCH_WRITES = "batch small/random writes into sequential segments"


def assess_stream(
    record_id: int,
    rank: int,
    ops: np.ndarray,
    *,
    erase_block: int = 256 * KiB,
) -> FlashWearReport:
    """Assess one operation stream (e.g. from a DXT trace or replay)."""
    ext = accumulate_stdio_ext(record_id, rank, ops)
    waf = ext.write_amplification(erase_block=erase_block)
    mitigations: list[str] = []
    if ext.rewrite_ratio > 0.2:
        mitigations.append(MITIGATION_CACHE_REWRITES)
    if 0.0 < ext.rewrite_ratio < 0.8 and ext.bytes_first_written > 0:
        mitigations.append(MITIGATION_SEPARATE_STATIC)
    if ext.random_write_fraction > 0.3:
        mitigations.append(MITIGATION_BATCH_WRITES)
    return FlashWearReport(
        record_id=record_id,
        ext=ext,
        write_amplification=waf,
        mitigations=tuple(mitigations),
    )


def rank_flash_wear(
    streams: list[tuple[int, int, np.ndarray]],
    *,
    erase_block: int = 256 * KiB,
    worst_first: bool = True,
) -> list[FlashWearReport]:
    """Assess many ``(record_id, rank, ops)`` streams and rank by WAF."""
    reports = [
        assess_stream(rid, rank, ops, erase_block=erase_block)
        for rid, rank, ops in streams
    ]
    reports.sort(key=lambda r: -r.write_amplification if worst_first else r.write_amplification)
    return reports

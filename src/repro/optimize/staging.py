"""Staging advisor (Recommendation 3).

The paper finds 95.7% (Summit) / 90.1% (Cori) of PFS files are read-only
or write-only — directly stageable through the fast layer — yet the
in-system layers sit underused. This advisor takes a store, finds the
stageable PFS traffic, and compares end-to-end time for the *current*
placement (direct PFS I/O inside the job) against a *staged* plan (fast
in-system I/O inside the job + scheduler-side movement outside it).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.iosim.perfmodel import PerfModel, TransferSpec
from repro.platforms.interfaces import IOInterface
from repro.platforms.machine import Machine
from repro.store.recordstore import RecordStore
from repro.store.schema import (
    LAYER_PFS,
    OPCLASS_READ_ONLY,
    OPCLASS_WRITE_ONLY,
)
from repro.units import MiB


@dataclass(frozen=True)
class StagingAssessment:
    """Predicted effect of staging a store's stageable PFS traffic."""

    platform: str
    #: Fraction of PFS files that are RO or WO (the paper's statistic).
    stageable_file_fraction: float
    stageable_bytes: int
    #: Seconds of in-job I/O for the stageable population, current vs staged.
    direct_seconds: float
    staged_seconds: float
    #: Scheduler-side movement seconds (outside the job window).
    movement_seconds: float

    @property
    def in_job_speedup(self) -> float:
        return (
            self.direct_seconds / self.staged_seconds
            if self.staged_seconds > 0
            else float("inf")
        )

    @property
    def worthwhile(self) -> bool:
        """Staging pays when in-job savings exceed half the movement cost
        (movement overlaps with queue wait in practice)."""
        saved = self.direct_seconds - self.staged_seconds
        return saved > 0.5 * self.movement_seconds


def assess_staging(
    store: RecordStore,
    machine: Machine,
    *,
    perf: PerfModel | None = None,
    sample: int | None = 200_000,
) -> StagingAssessment:
    """Price the Recommendation-3 opportunity for a platform's store.

    ``sample`` caps the priced population for speed (deterministic head
    sample; times scale linearly in population).
    """
    perf = perf or PerfModel(deterministic=True)
    rng = np.random.default_rng(0)
    f = store.files
    pfs_mask = (f["layer"] == LAYER_PFS) & (
        f["interface"] != int(IOInterface.MPIIO)
    )
    pfs = store.filter(pfs_mask)
    opclass = pfs.opclass()
    stageable_mask = np.isin(opclass, (OPCLASS_READ_ONLY, OPCLASS_WRITE_ONLY))
    frac = float(stageable_mask.mean()) if len(pfs.files) else 0.0
    rows = pfs.files[stageable_mask]
    if sample is not None and len(rows) > sample:
        rows = rows[:sample]

    pfs_layer = machine.pfs
    fast_layer = machine.in_system
    direct = staged = 0.0
    moved_bytes = 0
    for direction, bytes_col, ops_col in (
        ("read", "bytes_read", "reads"),
        ("write", "bytes_written", "writes"),
    ):
        nbytes = rows[bytes_col].astype(np.float64)
        active = nbytes > 0
        if not active.any():
            continue
        sub = rows[active]
        nb = sub[bytes_col].astype(np.float64)
        req = np.maximum(nb / np.maximum(sub[ops_col], 1), 1.0)
        shared = sub["rank"] == -1
        nprocs = sub["nprocs"].astype(np.float64)
        spec_pfs = TransferSpec(
            nbytes=nb, request_size=req, nprocs=nprocs,
            file_parallelism=np.ones(len(sub)), shared=shared,
        )
        spec_fast = TransferSpec(
            nbytes=nb, request_size=req, nprocs=nprocs,
            file_parallelism=np.minimum(
                np.maximum(nb / (128 * MiB), 1.0), fast_layer.server_count
            ),
            shared=shared,
        )
        iface = IOInterface.POSIX
        direct += float(
            perf.transfer_time(pfs_layer, iface, direction, spec_pfs, rng).sum()
        )
        staged += float(
            perf.transfer_time(fast_layer, iface, direction, spec_fast, rng).sum()
        )
        moved_bytes += int(nb.sum())

    # Movement runs at bulk PFS streaming rates, both directions summed.
    movement = 0.0
    if moved_bytes:
        bulk = TransferSpec(
            nbytes=np.array([moved_bytes], dtype=np.float64),
            request_size=np.array([8 * MiB], dtype=np.float64),
            nprocs=np.array([1.0]),
            file_parallelism=np.array([float(pfs_layer.server_count)]),
            shared=np.array([True]),
        )
        movement = float(
            perf.transfer_time(pfs_layer, IOInterface.POSIX, "read", bulk, rng)[0]
        )
    return StagingAssessment(
        platform=store.platform,
        stageable_file_fraction=frac,
        stageable_bytes=moved_bytes,
        direct_seconds=direct,
        staged_seconds=staged,
        movement_seconds=movement,
    )

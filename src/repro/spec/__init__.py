"""Declarative workload-pattern specs (DESIGN.md §15).

The spec subsystem in three layers:

* :mod:`repro.spec.schema` — the dict/JSON/TOML-friendly spec model and
  its strict, field-path-reporting validation (:func:`load_spec`);
* :mod:`repro.spec.compile` — lowering to the generator's native mix /
  machine / perf-model inputs (:func:`compile_spec`,
  :func:`generate_from_spec`), preserving seed determinism and
  ``--jobs`` shard-invariance by construction;
* :mod:`repro.spec.packs` — the builtin scenario packs
  (:func:`pack_catalog`), including the byte-identical ``paper_mix``.
"""

from repro.spec.compile import (
    CompiledSpec,
    Pattern,
    compile_spec,
    generate_from_spec,
    get_pattern,
    pattern_catalog,
)
from repro.spec.packs import get_pack, pack_catalog, pack_names
from repro.spec.schema import (
    ContentionOverlay,
    FaultOverlay,
    FieldSpec,
    PhaseSpec,
    WorkloadSpec,
    load_spec,
    validate_spec,
)

__all__ = [
    "CompiledSpec",
    "ContentionOverlay",
    "FaultOverlay",
    "FieldSpec",
    "Pattern",
    "PhaseSpec",
    "WorkloadSpec",
    "compile_spec",
    "generate_from_spec",
    "get_pack",
    "get_pattern",
    "load_spec",
    "pack_catalog",
    "pack_names",
    "pattern_catalog",
    "validate_spec",
]

"""Builtin scenario packs: named, validated workload specs.

Four packs ship with the library:

* ``paper_mix`` — the platform's full calibrated mix as a spec. Compiles
  to the *identical* generator inputs the direct archetype path uses, so
  its store is byte-identical to ``repro generate --platform ...`` (the
  differential test in ``tests/test_spec.py`` proves it at jobs 1 and 4).
* ``degraded_ost_month`` — the paper population generated while the PFS
  rides out an enclosure failure mid-rebuild (the dormant
  :data:`repro.iosim.faults.REBUILD_STORM` preset): ~10% of servers out,
  rebuild traffic on the survivors, harsher PFS contention.
* ``bb_eviction_storm`` — checkpoint storms and staging pipelines pushed
  through an in-system layer under eviction pressure
  (:data:`repro.iosim.faults.EVICTION_STORM`), over a paper background.
* ``noisy_neighbor`` — the paper mix plus epoch-training reads and a
  metadata sweep, all timed under 2.5x interfering load
  (:meth:`repro.iosim.contention.ContentionModel.crowded`).

Packs deliberately leave ``platform`` and ``scale`` unset so the caller
(or the CLI's ``--platform``/``--scale``) picks them; the golden
characterizations in ``tests/test_spec_packs.py`` pin each pack's
Table-3/Table-6-style shape so drift fails loudly.
"""

from __future__ import annotations

from repro.spec.schema import WorkloadSpec, validate_spec

_PACK_DICTS: dict[str, dict] = {
    "paper_mix": {
        "name": "paper_mix",
        "description": "the platform's calibrated paper mix, as a spec "
                       "(byte-identical to the direct archetype path)",
        "phases": [
            {"name": "paper", "pattern": "paper", "weight": 1.0},
        ],
    },
    "degraded_ost_month": {
        "name": "degraded_ost_month",
        "description": "paper population during a month-long PFS rebuild "
                       "storm: ~10% of servers out, rebuild traffic on "
                       "the rest, harsher PFS contention",
        "phases": [
            {"name": "paper", "pattern": "paper", "weight": 1.0},
        ],
        "overlays": {
            "fault": {"layer": "pfs", "preset": "rebuild-storm"},
        },
    },
    "bb_eviction_storm": {
        "name": "bb_eviction_storm",
        "description": "checkpoint storms and staging pipelines hammering "
                       "an in-system layer under eviction pressure, over "
                       "a paper background",
        "phases": [
            {"name": "bb_ckpt_storm", "pattern": "checkpoint_storm",
             "weight": 0.5,
             "params": {"layer": "insystem", "ckpt_gb": 96.0,
                        "files_per_run": 80.0}},
            {"name": "bb_staging", "pattern": "producer_consumer",
             "weight": 0.3,
             "params": {"layer": "insystem", "object_mb": 256.0}},
            {"name": "paper", "pattern": "paper", "weight": 0.2},
        ],
        "overlays": {
            "fault": {"layer": "insystem", "preset": "eviction-storm"},
        },
    },
    "noisy_neighbor": {
        "name": "noisy_neighbor",
        "description": "paper mix plus training reads and a metadata "
                       "sweep, timed under 2.5x interfering load on "
                       "both layers",
        "phases": [
            {"name": "paper", "pattern": "paper", "weight": 0.7},
            {"name": "training", "pattern": "epoch_training",
             "weight": 0.2,
             "params": {"dataset_gb": 768.0, "shards": 300}},
            {"name": "mdsweep", "pattern": "metadata_sweep",
             "weight": 0.1,
             "params": {"files_per_run": 1200.0, "file_kb": 8.0}},
        ],
        "overlays": {
            "contention": {"factor": 2.5},
        },
    },
}

_CACHE: dict[str, WorkloadSpec] | None = None


def pack_catalog() -> dict[str, WorkloadSpec]:
    """Every builtin pack, keyed by name (validated once, then cached)."""
    global _CACHE
    if _CACHE is None:
        _CACHE = {
            name: validate_spec(data) for name, data in _PACK_DICTS.items()
        }
    return dict(_CACHE)


def pack_names() -> list[str]:
    """Builtin pack names, sorted."""
    return sorted(_PACK_DICTS)


def get_pack(name: str) -> WorkloadSpec:
    """Look a builtin pack up by name."""
    from repro.errors import SpecError

    packs = pack_catalog()
    if name not in packs:
        raise SpecError(
            "", f"unknown scenario pack {name!r}; available: "
            f"{', '.join(pack_names())}"
        )
    return packs[name]

"""Compiling workload specs down to the generator's native inputs.

A validated :class:`~repro.spec.schema.WorkloadSpec` lowers to exactly
the three things :class:`~repro.workloads.generator.WorkloadGenerator`
already consumes:

* a **mix** — ``[(weight, ArchetypeSpec)]``: every phase expands to one
  or more ordinary archetypes (the ``paper`` pattern expands to the
  platform's whole calibrated mix; custom patterns build a fresh
  archetype named after the phase);
* an optional **machine** — the platform with a fault overlay's layer
  degraded via :func:`repro.iosim.faults.degrade_machine`;
* an optional **perf model** — contention reshaped by fault and/or
  noisy-neighbor overlays.

Nothing else changes, which is the whole determinism argument: the
generator keys all file randomness per (archetype-name, group-name,
log-block) RNG substream, so a compiled spec inherits seed determinism
and ``--jobs`` shard-invariance *by construction* (DESIGN.md §15). In
particular the builtin ``paper_mix`` spec compiles to the identical
(mix, config, machine=None, perf=None) tuple the direct archetype path
uses, hence a byte-identical store.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Callable, Mapping

from repro.errors import SpecError
from repro.iosim.perfmodel import PerfModel
from repro.platforms.interfaces import IOInterface
from repro.platforms.machine import Machine
from repro.spec.schema import FieldSpec, PhaseSpec, WorkloadSpec, load_spec
from repro.store.recordstore import RecordStore
from repro.units import GB, KB, MB, TB
from repro.workloads.archetypes import ArchetypeSpec, FileGroupSpec
from repro.workloads.distributions import DiscreteLogUniform, LogNormal
from repro.workloads.generator import GeneratorConfig, WorkloadGenerator
from repro.workloads.mixes import (
    BULK_STREAMING,
    CKPT_EXTS,
    COLLECTIVE_IO,
    DATA_EXTS,
    PFS_SMALL_WRITES,
    PFS_TINY_READS,
    STDIO_EXTS,
    cori_mix,
    small_files,
    summit_mix,
)

#: The generator's seed convention (the paper's submission date).
DEFAULT_SEED = 20220627

#: Domains present in *both* platforms' catalogs — custom patterns may
#: only use these, so one spec compiles on either platform.
_SAFE_DOMAINS = (
    "biology", "chemistry", "computer science", "earth science",
    "engineering", "machine learning", "materials", "physics",
)

_PROCS_PER_NODE = {"summit": 6, "cori": 32}


@dataclass(frozen=True)
class Pattern:
    """One workload pattern: a parameterized archetype template."""

    name: str
    title: str
    doc: str
    fields: tuple[FieldSpec, ...]
    #: (phase, platform, path) -> [(fraction, archetype)] with fractions
    #: summing to 1 within the phase.
    build: Callable[[PhaseSpec, str, str], list[tuple[float, ArchetypeSpec]]]

    def describe(self) -> dict:
        return {
            "name": self.name, "title": self.title, "doc": self.doc,
            "params": [f.describe() for f in self.fields],
        }


def _platform_mix(platform: str) -> list[tuple[float, ArchetypeSpec]]:
    return summit_mix() if platform == "summit" else cori_mix()


# ---------------------------------------------------------------------------
# Pattern builders.
# ---------------------------------------------------------------------------
def _build_paper(
    phase: PhaseSpec, platform: str, path: str
) -> list[tuple[float, ArchetypeSpec]]:
    # Fractions are the calibrated mix weights themselves (they sum to
    # 1.0 on both platforms), so a weight-1.0 paper phase reproduces the
    # direct path's weights bit-for-bit.
    return list(_platform_mix(platform))


def _build_archetype(
    phase: PhaseSpec, platform: str, path: str
) -> list[tuple[float, ArchetypeSpec]]:
    params = phase.param_dict()
    name = params["name"]
    if name is None:
        raise SpecError(f"{path}.params.name", "required key is missing")
    available = {spec.name: spec for _, spec in _platform_mix(platform)}
    if name not in available:
        raise SpecError(
            f"{path}.params.name",
            f"unknown {platform} archetype {name!r}; available: "
            f"{', '.join(sorted(available))}",
        )
    return [(1.0, available[name])]


def _layer_interface(layer: str) -> IOInterface:
    # Bulk data on the PFS rides MPI-IO collectives in the paper's
    # populations; in-system layers are POSIX/STDIO territory.
    return IOInterface.MPIIO if layer == "pfs" else IOInterface.POSIX


def _bb_capacity(layer: str, typical_bytes: float) -> LogNormal | None:
    if layer != "insystem":
        return None
    median = min(max(4.0 * typical_bytes, 20 * GB), 10 * TB)
    return LogNormal(median, 1.0, lo=20 * GB, hi=50 * TB)


def _build_checkpoint_storm(
    phase: PhaseSpec, platform: str, path: str
) -> list[tuple[float, ArchetypeSpec]]:
    p = phase.param_dict()
    layer = p["layer"]
    ckpt = p["ckpt_gb"] * GB
    wf = p["write_fraction"]
    ckpt_size = LogNormal(ckpt, 0.6, lo=max(1 * MB, ckpt / 64), hi=6 * TB)
    groups = (
        FileGroupSpec(
            name="ckpt",
            layer=layer, interface=_layer_interface(layer),
            files_per_run=p["files_per_run"],
            opclass_probs=((1 - wf) * 0.4, (1 - wf) * 0.6, wf),
            read_size=ckpt_size, write_size=ckpt_size,
            read_profile=COLLECTIVE_IO, write_profile=COLLECTIVE_IO,
            shared_prob=p["shared_fraction"],
            collective=layer == "pfs", ext_probs=CKPT_EXTS,
        ),
        FileGroupSpec(
            name="ckpt_logs",
            layer=layer, interface=IOInterface.STDIO,
            files_per_run=max(p["files_per_run"] * 0.2, 1.0),
            opclass_probs=(0.10, 0.15, 0.75),
            read_size=small_files(24 * KB), write_size=small_files(32 * KB),
            read_profile=PFS_TINY_READS, write_profile=PFS_SMALL_WRITES,
            shared_prob=0.1, ext_probs=STDIO_EXTS,
        ),
    )
    spec = ArchetypeSpec(
        name=phase.name,
        domains={"physics": 0.50, "materials": 0.20,
                 "chemistry": 0.15, "earth science": 0.15},
        nnodes=DiscreteLogUniform(2, p["nodes_max"]),
        procs_per_node=_PROCS_PER_NODE[platform],
        runtime=LogNormal(4800, 0.9, lo=300, hi=86400),
        instances=DiscreteLogUniform(1, 50),
        bb_capacity=_bb_capacity(layer, ckpt),
        groups=groups,
    )
    return [(1.0, spec)]


def _build_epoch_training(
    phase: PhaseSpec, platform: str, path: str
) -> list[tuple[float, ArchetypeSpec]]:
    p = phase.param_dict()
    layer = p["layer"]
    shard = max(p["dataset_gb"] * GB / p["shards"], 1.0)
    groups = (
        FileGroupSpec(
            # One epoch re-reads every shard; epochs are app instances,
            # so each log carries the full shard sweep.
            name="epoch_reads",
            layer=layer, interface=IOInterface.POSIX,
            files_per_run=float(p["shards"]),
            opclass_probs=(0.97, 0.01, 0.02),
            read_size=LogNormal(shard, 0.4, lo=1.0, hi=max(4 * shard, 1 * GB)),
            write_size=small_files(16 * KB),
            read_profile=BULK_STREAMING, write_profile=PFS_SMALL_WRITES,
            shared_prob=0.02, ext_probs=DATA_EXTS,
        ),
        FileGroupSpec(
            name="train_logs",
            layer=layer, interface=IOInterface.STDIO,
            files_per_run=max(float(p["shards"]) * 0.25, 1.0),
            opclass_probs=(0.08, 0.30, 0.62),
            read_size=small_files(24 * KB), write_size=small_files(24 * KB),
            read_profile=PFS_TINY_READS, write_profile=PFS_SMALL_WRITES,
            ext_probs=STDIO_EXTS,
        ),
    )
    spec = ArchetypeSpec(
        name=phase.name,
        domains={"machine learning": 0.55, "computer science": 0.25,
                 "biology": 0.20},
        nnodes=DiscreteLogUniform(1, 48),
        procs_per_node=_PROCS_PER_NODE[platform],
        runtime=LogNormal(7200, 0.8, lo=600, hi=86400),
        instances=DiscreteLogUniform(1, p["epochs"]),
        bb_capacity=_bb_capacity(layer, p["dataset_gb"] * GB),
        groups=groups,
    )
    return [(1.0, spec)]


def _build_producer_consumer(
    phase: PhaseSpec, platform: str, path: str
) -> list[tuple[float, ArchetypeSpec]]:
    p = phase.param_dict()
    layer = p["layer"]
    obj = LogNormal(p["object_mb"] * MB, 0.8, lo=1.0, hi=1 * TB)
    groups = (
        FileGroupSpec(
            name="staged_out",
            layer=layer, interface=IOInterface.POSIX,
            files_per_run=p["fanout"],
            opclass_probs=(0.0, 0.05, 0.95),
            read_size=obj, write_size=obj,
            read_profile=BULK_STREAMING, write_profile=BULK_STREAMING,
            shared_prob=0.05, ext_probs=DATA_EXTS,
        ),
        FileGroupSpec(
            name="staged_in",
            layer=layer, interface=IOInterface.POSIX,
            files_per_run=p["fanout"],
            opclass_probs=(0.95, 0.05, 0.0),
            read_size=obj, write_size=obj,
            read_profile=BULK_STREAMING, write_profile=BULK_STREAMING,
            shared_prob=0.05, ext_probs=DATA_EXTS,
        ),
        FileGroupSpec(
            name="pipeline_logs",
            layer="pfs", interface=IOInterface.STDIO,
            files_per_run=max(p["fanout"] * 0.1, 1.0),
            opclass_probs=(0.25, 0.15, 0.60),
            read_size=small_files(24 * KB), write_size=small_files(24 * KB),
            read_profile=PFS_TINY_READS, write_profile=PFS_SMALL_WRITES,
            ext_probs=STDIO_EXTS,
        ),
    )
    spec = ArchetypeSpec(
        name=phase.name,
        domains={"biology": 0.30, "physics": 0.25,
                 "computer science": 0.25, "earth science": 0.20},
        nnodes=DiscreteLogUniform(2, 128),
        procs_per_node=_PROCS_PER_NODE[platform],
        runtime=LogNormal(3600, 0.8, lo=300, hi=86400),
        instances=DiscreteLogUniform(2, 60),
        bb_capacity=_bb_capacity(layer, p["fanout"] * p["object_mb"] * MB),
        groups=groups,
    )
    return [(1.0, spec)]


def _build_metadata_sweep(
    phase: PhaseSpec, platform: str, path: str
) -> list[tuple[float, ArchetypeSpec]]:
    p = phase.param_dict()
    layer = p["layer"]
    rf = p["read_fraction"]
    tiny = LogNormal(p["file_kb"] * KB, 1.2, lo=1.0, hi=1 * GB)
    opclass = (rf * 0.9, 0.10, 0.90 - rf * 0.9)
    groups = (
        FileGroupSpec(
            name="meta_small",
            layer=layer, interface=IOInterface.POSIX,
            files_per_run=p["files_per_run"] * 0.5,
            opclass_probs=opclass,
            read_size=tiny, write_size=tiny,
            read_profile=PFS_TINY_READS, write_profile=PFS_SMALL_WRITES,
            ext_probs=DATA_EXTS,
        ),
        FileGroupSpec(
            name="meta_text",
            layer=layer, interface=IOInterface.STDIO,
            files_per_run=p["files_per_run"] * 0.5,
            opclass_probs=opclass,
            read_size=tiny, write_size=tiny,
            read_profile=PFS_TINY_READS, write_profile=PFS_SMALL_WRITES,
            ext_probs=STDIO_EXTS,
        ),
    )
    spec = ArchetypeSpec(
        name=phase.name,
        domains={"computer science": 0.35, "biology": 0.25,
                 "engineering": 0.20, "chemistry": 0.20},
        nnodes=DiscreteLogUniform(1, 16),
        procs_per_node=_PROCS_PER_NODE[platform],
        runtime=LogNormal(1200, 1.0, lo=60, hi=43200),
        instances=DiscreteLogUniform(1, 40),
        bb_capacity=_bb_capacity(layer, p["files_per_run"] * p["file_kb"] * KB),
        groups=groups,
    )
    return [(1.0, spec)]


_LAYER_FIELD = lambda default: FieldSpec(  # noqa: E731 - table below reads flat
    "layer", "string", default, "storage layer the pattern targets",
    choices=("pfs", "insystem"),
)

_PATTERNS: dict[str, Pattern] = {
    p.name: p
    for p in (
        Pattern(
            name="paper",
            title="the platform's full calibrated paper mix",
            doc="Expands to every archetype of the platform's published "
                "mix with its calibrated weight — the byte-identical "
                "baseline other phases compose against.",
            fields=(),
            build=_build_paper,
        ),
        Pattern(
            name="archetype",
            title="one builtin archetype by name",
            doc="Selects a single archetype out of the platform's paper "
                "mix (e.g. sim_checkpoint, bb_exclusive) at this phase's "
                "weight.",
            fields=(
                FieldSpec("name", "string", None,
                          "builtin archetype name (platform-specific)"),
            ),
            build=_build_archetype,
        ),
        Pattern(
            name="checkpoint_storm",
            title="bulk-synchronous checkpoint storms",
            doc="Write-dominated collective checkpoint traffic with "
                "restart reads and STDIO diagnostics.",
            fields=(
                _LAYER_FIELD("pfs"),
                FieldSpec("ckpt_gb", "number", 128.0,
                          "median checkpoint size in GB",
                          minimum=1e-3, maximum=4096.0),
                FieldSpec("files_per_run", "number", 60.0,
                          "checkpoint files per application run",
                          minimum=0.1, maximum=1e4),
                FieldSpec("write_fraction", "number", 0.9,
                          "fraction of files that are write-only",
                          minimum=0.05, maximum=1.0),
                FieldSpec("nodes_max", "integer", 512,
                          "upper bound of the job-size distribution",
                          minimum=2, maximum=4608),
                FieldSpec("shared_fraction", "number", 0.75,
                          "fraction of checkpoint files opened shared",
                          minimum=0.0, maximum=1.0),
            ),
            build=_build_checkpoint_storm,
        ),
        Pattern(
            name="epoch_training",
            title="epoch-structured training reads",
            doc="Read-intensive ML training: every epoch re-streams the "
                "dataset's shards; epochs are application instances.",
            fields=(
                _LAYER_FIELD("pfs"),
                FieldSpec("dataset_gb", "number", 512.0,
                          "total dataset size per job in GB",
                          minimum=1e-2, maximum=1e5),
                FieldSpec("shards", "integer", 200,
                          "dataset shard files read per epoch",
                          minimum=1, maximum=1e5),
                FieldSpec("epochs", "integer", 5,
                          "upper bound of epochs (app instances) per job",
                          minimum=1, maximum=1000),
            ),
            build=_build_epoch_training,
        ),
        Pattern(
            name="producer_consumer",
            title="producer-consumer staging pipelines",
            doc="Symmetric write-then-read staging through a layer: one "
                "group lands objects, a peer group consumes them.",
            fields=(
                _LAYER_FIELD("insystem"),
                FieldSpec("object_mb", "number", 64.0,
                          "median staged object size in MB",
                          minimum=1e-3, maximum=1e5),
                FieldSpec("fanout", "number", 40.0,
                          "staged objects per application run per side",
                          minimum=0.1, maximum=1e4),
            ),
            build=_build_producer_consumer,
        ),
        Pattern(
            name="metadata_sweep",
            title="metadata-heavy small-file sweeps",
            doc="Huge counts of tiny POSIX/STDIO files: open/close "
                "latency and metadata time dominate transfer time.",
            fields=(
                _LAYER_FIELD("pfs"),
                FieldSpec("files_per_run", "number", 900.0,
                          "small files touched per application run",
                          minimum=1.0, maximum=1e5),
                FieldSpec("file_kb", "number", 16.0,
                          "median file size in KB",
                          minimum=1e-2, maximum=1e5),
                FieldSpec("read_fraction", "number", 0.5,
                          "read-leaning share of the sweep",
                          minimum=0.0, maximum=1.0),
            ),
            build=_build_metadata_sweep,
        ),
    )
}


def pattern_catalog() -> dict[str, Pattern]:
    """Every pattern a phase may name, keyed by name."""
    return dict(_PATTERNS)


def get_pattern(name: Any, path: str = "pattern") -> Pattern:
    """Look a pattern up by name, with the SpecError contract."""
    if not isinstance(name, str) or name not in _PATTERNS:
        raise SpecError(
            path,
            f"unknown pattern {name!r}; available: "
            f"{', '.join(sorted(_PATTERNS))}",
        )
    return _PATTERNS[name]


# ---------------------------------------------------------------------------
# Overlays -> (machine, perf).
# ---------------------------------------------------------------------------
def _base_perf(platform: str) -> PerfModel:
    from repro.iosim.netmodel import network_for

    return PerfModel(network=network_for(platform))


def _apply_overlays(
    spec: WorkloadSpec, platform: str
) -> tuple[Machine | None, PerfModel | None]:
    from repro.iosim.contention import ContentionModel
    from repro.iosim.faults import (
        degrade_machine,
        degraded_perf_model,
        preset,
    )
    from repro.platforms import get_platform

    machine: Machine | None = None
    perf: PerfModel | None = None
    if spec.fault is not None:
        scenario = preset(spec.fault.preset)
        overrides = {}
        if spec.fault.servers_offline is not None:
            overrides["servers_offline"] = spec.fault.servers_offline
        if spec.fault.rebuild_overhead is not None:
            overrides["rebuild_overhead"] = spec.fault.rebuild_overhead
        if overrides:
            scenario = replace(scenario, **overrides)
        machine = degrade_machine(
            get_platform(platform), spec.fault.layer, scenario
        )
        perf = degraded_perf_model(
            _base_perf(platform), spec.fault.layer, scenario
        )
    if spec.contention is not None:
        base = perf if perf is not None else _base_perf(platform)
        crowded = dict(base.contention)
        for kind in ("pfs", "insystem"):
            model = crowded.get(kind) or ContentionModel.for_layer_kind(kind)
            crowded[kind] = model.crowded(spec.contention.factor)
        perf = replace(base, contention=crowded)
    return machine, perf


# ---------------------------------------------------------------------------
# The compiler.
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class CompiledSpec:
    """A spec lowered to the generator's native inputs."""

    spec: WorkloadSpec
    platform: str
    config: GeneratorConfig
    mix: tuple[tuple[float, ArchetypeSpec], ...]
    machine: Machine | None
    perf: PerfModel | None

    def generator(self) -> WorkloadGenerator:
        return WorkloadGenerator(
            self.platform,
            self.config,
            mix=list(self.mix),
            perf=self.perf,
            machine=self.machine,
        )

    def generate(
        self,
        seed: int = DEFAULT_SEED,
        *,
        jobs: int = 1,
        shadows: bool = True,
    ) -> RecordStore:
        """Generate the spec's store (deterministic, jobs-invariant)."""
        from repro.workloads.generator import generate_with_shadows

        generator = self.generator()
        if shadows:
            return generate_with_shadows(generator, seed, jobs=jobs)
        return generator.generate(seed, jobs=jobs)


def _scale_intensity(spec: ArchetypeSpec, intensity: float) -> ArchetypeSpec:
    # Skipped entirely at 1.0 so identity-intensity phases keep the
    # builtin ArchetypeSpec objects (and exact files_per_run floats).
    groups = tuple(
        replace(g, files_per_run=g.files_per_run * intensity)
        for g in spec.groups
    )
    return replace(spec, groups=groups)


def compile_spec(
    source: Mapping | WorkloadSpec | str,
    *,
    platform: str | None = None,
    scale: float | None = None,
) -> CompiledSpec:
    """Lower a spec to a :class:`CompiledSpec`.

    ``platform`` and ``scale`` fill gaps the spec leaves open; fields
    the spec *does* set win over the caller's arguments (a pack pinned
    to one platform always compiles for that platform).
    """
    spec = load_spec(source)
    resolved = spec.platform or platform
    if resolved is None:
        raise SpecError(
            "platform",
            f"spec {spec.name!r} does not set a platform; pass platform=... "
            "(CLI: --platform)",
        )
    config_kwargs: dict[str, Any] = {}
    effective_scale = spec.scale if spec.scale is not None else scale
    if effective_scale is not None:
        config_kwargs["scale"] = effective_scale
    if spec.target_jobs is not None:
        config_kwargs["target_jobs"] = spec.target_jobs
    if spec.no_io_fraction is not None:
        config_kwargs["no_io_fraction"] = spec.no_io_fraction
    config = GeneratorConfig(**config_kwargs)

    mix: list[tuple[float, ArchetypeSpec]] = []
    produced: dict[str, str] = {}  # archetype name -> producing phase path
    for i, phase in enumerate(spec.phases):
        path = f"phases[{i}]"
        pattern = get_pattern(phase.pattern, path=f"{path}.pattern")
        for fraction, archetype in pattern.build(phase, resolved, path):
            if phase.intensity != 1.0:
                archetype = _scale_intensity(archetype, phase.intensity)
            if archetype.name in produced:
                raise SpecError(
                    path,
                    f"compiles to archetype {archetype.name!r} already "
                    f"produced by {produced[archetype.name]}; archetype "
                    "names key RNG substreams and must be unique "
                    "(rename the phase or drop the duplicate pattern)",
                )
            produced[archetype.name] = path
            mix.append((phase.weight * fraction, archetype))

    machine, perf = _apply_overlays(spec, resolved)
    return CompiledSpec(
        spec=spec, platform=resolved, config=config,
        mix=tuple(mix), machine=machine, perf=perf,
    )


def generate_from_spec(
    source: Mapping | WorkloadSpec | str,
    *,
    seed: int = DEFAULT_SEED,
    jobs: int = 1,
    shadows: bool = True,
    platform: str | None = None,
    scale: float | None = None,
) -> RecordStore:
    """Compile ``source`` and generate its store in one step."""
    compiled = compile_spec(source, platform=platform, scale=scale)
    return compiled.generate(seed, jobs=jobs, shadows=shadows)

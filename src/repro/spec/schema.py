"""The declarative workload-pattern spec: data model + strict validation.

A workload spec is a plain dict (JSON/TOML-friendly: scalars, lists,
string-keyed objects only) describing a synthetic population as a *mix of
phases* plus optional *overlays*::

    {
      "name": "bb-heavy-month",
      "platform": "summit",            # optional; CLI/API can fill it
      "scale": 1e-3,                   # optional; CLI/API can fill it
      "phases": [
        {"name": "paper", "pattern": "paper", "weight": 0.6},
        {"name": "storms", "pattern": "checkpoint_storm", "weight": 0.4,
         "params": {"ckpt_gb": 200, "layer": "insystem"}},
      ],
      "overlays": {
        "fault": {"layer": "insystem", "preset": "eviction-storm"},
        "contention": {"factor": 2.0},
      },
    }

Each phase names a **pattern** — a parameterized archetype template
(checkpoint storms, epoch-structured training reads, producer-consumer
staging, metadata-heavy small-file sweeps, a single paper archetype, or
the platform's whole paper mix) — with a mix weight and an ``intensity``
scale factor. :mod:`repro.spec.compile` lowers the validated spec onto
the existing generator: every phase becomes ordinary
:class:`~repro.workloads.archetypes.ArchetypeSpec` entries of the
generator's mix, so all randomness still flows through the
per-(archetype, group, log-block) RNG substreams and determinism plus
``--jobs`` shard-invariance hold by construction (DESIGN.md §15).

Validation here is deliberately strict: unknown keys and out-of-range
values raise :class:`~repro.errors.SpecError` carrying the dotted field
path (``phases[1].params.ckpt_gb``) and the allowed range — never a bare
``KeyError``.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.errors import SpecError

#: Platforms a spec may target (mirrors the generator's catalog).
PLATFORMS = ("summit", "cori")

#: Storage layers a pattern may target.
LAYERS = ("pfs", "insystem")


# ---------------------------------------------------------------------------
# Field schema: one declared, bounded, documented parameter.
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class FieldSpec:
    """One declared spec field: typed, bounded, defaulted, documented."""

    name: str
    kind: str  # "number" | "integer" | "string" | "boolean"
    default: Any
    doc: str
    minimum: float | None = None
    maximum: float | None = None
    choices: tuple[str, ...] | None = None

    def resolve(self, value: Any, path: str) -> Any:
        """Validated value (or the default when ``value`` is None)."""
        if value is None:
            return self.default
        if self.kind == "boolean":
            if not isinstance(value, bool):
                raise SpecError(path, f"must be a boolean, got {value!r}")
            return value
        if self.kind == "string":
            if not isinstance(value, str):
                raise SpecError(path, f"must be a string, got {value!r}")
            if self.choices and value not in self.choices:
                raise SpecError(
                    path,
                    f"must be one of {', '.join(self.choices)}; got {value!r}",
                )
            return value
        # Numeric kinds. bool is an int subclass; reject it explicitly.
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise SpecError(path, f"must be a number, got {value!r}")
        if self.kind == "integer":
            if float(value) != int(value):
                raise SpecError(path, f"must be an integer, got {value!r}")
            value = int(value)
        else:
            value = float(value)
        if self.minimum is not None and value < self.minimum:
            raise SpecError(
                path, f"must be >= {self.minimum:g}, got {value:g}"
            )
        if self.maximum is not None and value > self.maximum:
            raise SpecError(
                path, f"must be <= {self.maximum:g}, got {value:g}"
            )
        return value

    def describe(self) -> dict:
        """JSON-shaped self-description (for ``--list-specs --json``)."""
        out: dict[str, Any] = {
            "name": self.name, "kind": self.kind,
            "default": self.default, "doc": self.doc,
        }
        if self.minimum is not None:
            out["minimum"] = self.minimum
        if self.maximum is not None:
            out["maximum"] = self.maximum
        if self.choices is not None:
            out["choices"] = list(self.choices)
        return out


def _require_mapping(value: Any, path: str) -> Mapping:
    if not isinstance(value, Mapping):
        raise SpecError(path, f"must be an object, got {type(value).__name__}")
    bad = [k for k in value if not isinstance(k, str)]
    if bad:
        raise SpecError(path, f"keys must be strings, got {bad[0]!r}")
    return value


def _reject_unknown(
    data: Mapping, allowed: tuple[str, ...], path: str
) -> None:
    unknown = sorted(set(data) - set(allowed))
    if unknown:
        raise SpecError(
            f"{path}.{unknown[0]}" if path else unknown[0],
            f"unknown key; allowed keys: {', '.join(allowed)}",
        )


# ---------------------------------------------------------------------------
# Validated spec model.
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class PhaseSpec:
    """One phase of the mix: a pattern instance with weight and params."""

    name: str
    pattern: str
    weight: float
    #: Multiplies every file group's ``files_per_run`` (1.0 = as built).
    intensity: float = 1.0
    #: Pattern parameters, resolved against the pattern's field schema
    #: (sorted items, hashable — compile results can be cached/compared).
    params: tuple[tuple[str, Any], ...] = ()

    def param_dict(self) -> dict[str, Any]:
        return dict(self.params)

    def to_dict(self) -> dict:
        out: dict[str, Any] = {
            "name": self.name, "pattern": self.pattern, "weight": self.weight,
        }
        if self.intensity != 1.0:
            out["intensity"] = self.intensity
        if self.params:
            out["params"] = self.param_dict()
        return out


@dataclass(frozen=True)
class FaultOverlay:
    """A degradation preset applied to one layer for the whole horizon."""

    layer: str
    preset: str
    #: None = the preset's own magnitude.
    servers_offline: float | None = None
    rebuild_overhead: float | None = None

    def to_dict(self) -> dict:
        out: dict[str, Any] = {"layer": self.layer, "preset": self.preset}
        if self.servers_offline is not None:
            out["servers_offline"] = self.servers_offline
        if self.rebuild_overhead is not None:
            out["rebuild_overhead"] = self.rebuild_overhead
        return out


@dataclass(frozen=True)
class ContentionOverlay:
    """Noisy-neighbor scaling of the contention model on both layers."""

    factor: float

    def to_dict(self) -> dict:
        return {"factor": self.factor}


@dataclass(frozen=True)
class WorkloadSpec:
    """A validated workload spec — the DSL's AST.

    Construct via :func:`load_spec` (dict / JSON / TOML / pack name);
    the constructor assumes already-validated values.
    """

    name: str
    phases: tuple[PhaseSpec, ...]
    platform: str | None = None
    scale: float | None = None
    target_jobs: int | None = None
    no_io_fraction: float | None = None
    description: str = ""
    fault: FaultOverlay | None = None
    contention: ContentionOverlay | None = None
    seed: int | None = field(default=None, compare=False)  # reserved

    def to_dict(self) -> dict:
        """The spec's canonical dict form (round-trips via load_spec)."""
        out: dict[str, Any] = {"name": self.name}
        if self.description:
            out["description"] = self.description
        for key in ("platform", "scale", "target_jobs", "no_io_fraction"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        out["phases"] = [p.to_dict() for p in self.phases]
        overlays: dict[str, Any] = {}
        if self.fault is not None:
            overlays["fault"] = self.fault.to_dict()
        if self.contention is not None:
            overlays["contention"] = self.contention.to_dict()
        if overlays:
            out["overlays"] = overlays
        return out


# -- top-level field schemas -------------------------------------------------
_TOP_KEYS = (
    "name", "description", "platform", "scale", "target_jobs",
    "no_io_fraction", "phases", "overlays",
)
_PHASE_KEYS = ("name", "pattern", "weight", "intensity", "params")
_OVERLAY_KEYS = ("fault", "contention")
_FAULT_KEYS = ("layer", "preset", "servers_offline", "rebuild_overhead")

_SCALE = FieldSpec("scale", "number", None,
                   "fraction of the platform's yearly jobs",
                   minimum=1e-7, maximum=1.0)
_TARGET_JOBS = FieldSpec("target_jobs", "integer", None,
                         "override the yearly job target", minimum=1)
_NO_IO = FieldSpec("no_io_fraction", "number", None,
                   "fraction of jobs producing no file records",
                   minimum=0.0, maximum=0.999)
_WEIGHT = FieldSpec("weight", "number", None,
                    "phase's share of the job mix", minimum=1e-9)
_INTENSITY = FieldSpec("intensity", "number", 1.0,
                       "multiplier on files per application run",
                       minimum=0.01, maximum=100.0)
_FRACTION = FieldSpec("fraction", "number", None,
                      "fraction of a layer's servers/bandwidth",
                      minimum=0.0, maximum=0.99)
_FACTOR = FieldSpec("factor", "number", None,
                    "interfering-load multiplier",
                    minimum=0.0625, maximum=64.0)


def _validate_name(value: Any, path: str) -> str:
    if not isinstance(value, str) or not value:
        raise SpecError(path, f"must be a non-empty string, got {value!r}")
    ok = value.replace("_", "").replace("-", "").replace(".", "")
    if not ok.isalnum():
        raise SpecError(
            path,
            f"must be alphanumeric plus '._-', got {value!r}",
        )
    return value


def _validate_phase(data: Any, path: str) -> PhaseSpec:
    from repro.spec.compile import get_pattern  # cycle-free at call time

    data = _require_mapping(data, path)
    _reject_unknown(data, _PHASE_KEYS, path)
    for key in ("name", "pattern"):
        if key not in data:
            raise SpecError(f"{path}.{key}", "required key is missing")
    name = _validate_name(data["name"], f"{path}.name")
    pattern = get_pattern(data["pattern"], path=f"{path}.pattern")
    if "weight" not in data:
        raise SpecError(f"{path}.weight", "required key is missing")
    weight = _WEIGHT.resolve(data["weight"], f"{path}.weight")
    intensity = _INTENSITY.resolve(data.get("intensity"), f"{path}.intensity")
    raw = _require_mapping(data.get("params", {}), f"{path}.params")
    allowed = tuple(f.name for f in pattern.fields)
    _reject_unknown(raw, allowed, f"{path}.params")
    params = {
        f.name: f.resolve(raw.get(f.name), f"{path}.params.{f.name}")
        for f in pattern.fields
    }
    return PhaseSpec(
        name=name, pattern=pattern.name, weight=weight,
        intensity=intensity, params=tuple(sorted(params.items())),
    )


def _validate_fault(data: Any, path: str) -> FaultOverlay:
    from repro.iosim.faults import PRESETS

    data = _require_mapping(data, path)
    _reject_unknown(data, _FAULT_KEYS, path)
    layer = data.get("layer")
    if layer not in LAYERS:
        raise SpecError(
            f"{path}.layer",
            f"must be one of {', '.join(LAYERS)}; got {layer!r}",
        )
    preset = data.get("preset")
    if preset not in PRESETS:
        raise SpecError(
            f"{path}.preset",
            f"unknown fault preset; available: {', '.join(sorted(PRESETS))}",
        )
    return FaultOverlay(
        layer=layer,
        preset=preset,
        servers_offline=_FRACTION.resolve(
            data.get("servers_offline"), f"{path}.servers_offline"
        ),
        rebuild_overhead=_FRACTION.resolve(
            data.get("rebuild_overhead"), f"{path}.rebuild_overhead"
        ),
    )


def validate_spec(data: Mapping) -> WorkloadSpec:
    """A :class:`WorkloadSpec` from a raw dict, or :class:`SpecError`."""
    data = _require_mapping(data, "")
    _reject_unknown(data, _TOP_KEYS, "")
    if "name" not in data:
        raise SpecError("name", "required key is missing")
    name = _validate_name(data["name"], "name")
    description = data.get("description", "")
    if not isinstance(description, str):
        raise SpecError("description", "must be a string")
    platform = data.get("platform")
    if platform is not None and platform not in PLATFORMS:
        raise SpecError(
            "platform",
            f"must be one of {', '.join(PLATFORMS)}; got {platform!r}",
        )
    scale = _SCALE.resolve(data.get("scale"), "scale")
    target_jobs = _TARGET_JOBS.resolve(data.get("target_jobs"), "target_jobs")
    no_io = _NO_IO.resolve(data.get("no_io_fraction"), "no_io_fraction")

    raw_phases = data.get("phases")
    if not isinstance(raw_phases, (list, tuple)) or not raw_phases:
        raise SpecError("phases", "must be a non-empty list of phase objects")
    phases = tuple(
        _validate_phase(p, f"phases[{i}]") for i, p in enumerate(raw_phases)
    )
    seen: dict[str, int] = {}
    for i, phase in enumerate(phases):
        if phase.name in seen:
            raise SpecError(
                f"phases[{i}].name",
                f"duplicate phase name {phase.name!r} (also phases"
                f"[{seen[phase.name]}]); phase names key RNG substreams "
                "and must be unique",
            )
        seen[phase.name] = i

    fault = contention = None
    if "overlays" in data:
        overlays = _require_mapping(data["overlays"], "overlays")
        _reject_unknown(overlays, _OVERLAY_KEYS, "overlays")
        if "fault" in overlays:
            fault = _validate_fault(overlays["fault"], "overlays.fault")
        if "contention" in overlays:
            cdata = _require_mapping(
                overlays["contention"], "overlays.contention"
            )
            _reject_unknown(cdata, ("factor",), "overlays.contention")
            if "factor" not in cdata:
                raise SpecError(
                    "overlays.contention.factor", "required key is missing"
                )
            contention = ContentionOverlay(
                factor=_FACTOR.resolve(
                    cdata["factor"], "overlays.contention.factor"
                )
            )
    return WorkloadSpec(
        name=name, phases=phases, platform=platform, scale=scale,
        target_jobs=target_jobs, no_io_fraction=no_io,
        description=description, fault=fault, contention=contention,
    )


# ---------------------------------------------------------------------------
# Loading: dict, JSON path, TOML path, or builtin pack name.
# ---------------------------------------------------------------------------
def _load_toml(path: str) -> Mapping:
    try:
        import tomllib  # Python >= 3.11
    except ImportError:  # pragma: no cover - 3.10 fallback
        try:
            import tomli as tomllib  # type: ignore[no-redef]
        except ImportError:
            raise SpecError(
                path,
                "TOML specs need Python >= 3.11 (tomllib) or the tomli "
                "package; re-serialize the spec as JSON",
            ) from None
    with open(path, "rb") as fh:
        try:
            return tomllib.load(fh)
        except tomllib.TOMLDecodeError as exc:
            raise SpecError(path, f"malformed TOML: {exc}") from exc


def load_spec(source: Mapping | WorkloadSpec | str | os.PathLike) -> WorkloadSpec:
    """A validated :class:`WorkloadSpec` from any accepted source.

    ``source`` may be an already-validated spec (returned as-is), a raw
    dict (validated), a builtin scenario-pack name (see
    :func:`repro.spec.packs.pack_names`), or a path to a ``.json`` /
    ``.toml`` file. All rejections are :class:`~repro.errors.SpecError`
    with the offending field path.
    """
    if isinstance(source, WorkloadSpec):
        return source
    if isinstance(source, Mapping):
        return validate_spec(source)
    path = os.fspath(source)
    from repro.spec.packs import pack_catalog

    packs = pack_catalog()
    if path in packs:
        return packs[path]
    if not os.path.exists(path):
        raise SpecError(
            path,
            "not a builtin pack name or an existing spec file; packs: "
            f"{', '.join(sorted(packs))}",
        )
    if path.endswith(".toml"):
        return validate_spec(_load_toml(path))
    with open(path, "rb") as fh:
        try:
            data = json.load(fh)
        except json.JSONDecodeError as exc:
            raise SpecError(path, f"malformed JSON: {exc}") from exc
    return validate_spec(data)

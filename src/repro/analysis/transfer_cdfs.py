"""Figures 3 and 9: CDFs of per-file data-transfer size.

Figure 3 groups files by layer and direction; Figure 9 splits Summit's
files by I/O interface. Following §3.1, a file's transfer size for a
direction is its total bytes moved in that direction; files with zero
bytes in a direction do not enter that direction's CDF.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.cdf import cdf_at
from repro.analysis.context import AnalysisContext, resolve
from repro.errors import AnalysisError
from repro.platforms.interfaces import IOInterface
from repro.store.recordstore import RecordStore
from repro.units import GB, MB, TB

#: Figure 3's x-axis thresholds.
FIG3_THRESHOLDS = np.array([1 * GB, 10 * GB, 100 * GB, 1 * TB], dtype=np.float64)
FIG3_LABELS = ("1GB", "10GB", "100GB", "1TB")

#: Figure 9's x-axis thresholds.
FIG9_THRESHOLDS = np.array([100 * MB, 1 * GB, 10 * GB], dtype=np.float64)
FIG9_LABELS = ("100MB", "1GB", "10GB")


@dataclass(frozen=True)
class TransferCdf:
    """One CDF curve: percentage of files at or below each threshold."""

    platform: str
    layer: str
    direction: str
    interface: str  # "" = POSIX+STDIO combined (Figure 3)
    nfiles: int
    thresholds: tuple[float, ...]
    labels: tuple[str, ...]
    percent_at: tuple[float, ...]

    def percent_below(self, threshold: float) -> float:
        """Percent of files <= a threshold present in this curve."""
        try:
            idx = self.thresholds.index(threshold)
        except ValueError:
            raise AnalysisError(
                f"threshold {threshold} not on the curve; have {self.thresholds}"
            ) from None
        return self.percent_at[idx]

    def to_rows(self) -> list[list[str]]:
        return [
            [
                self.platform,
                self.layer,
                self.interface or "POSIX+STDIO",
                self.direction,
                str(self.nfiles),
                *[f"{p:.2f}%" for p in self.percent_at],
            ]
        ]


_DIRECTION_COLS = (("read", "bytes_read"), ("write", "bytes_written"))


def transfer_cdfs(
    store: RecordStore,
    *,
    thresholds: np.ndarray = FIG3_THRESHOLDS,
    labels: tuple[str, ...] = FIG3_LABELS,
    context: AnalysisContext | None = None,
) -> list[TransferCdf]:
    """Figure 3: per (layer, direction) CDFs over POSIX+STDIO files."""
    ctx = resolve(store, context)
    key = ("result", "transfer_cdfs", tuple(float(t) for t in thresholds), labels)
    return ctx.cached(key, lambda: _fig3(ctx, thresholds, labels))


def _fig3(ctx: AnalysisContext, thresholds, labels) -> list[TransferCdf]:
    store = ctx.store
    out = []
    for layer, code in ctx.layer_items():
        for direction, col in _DIRECTION_COLS:
            values = ctx.positive(col, "unique", ("layer", code))
            if values.size == 0:
                continue
            out.append(
                TransferCdf(
                    platform=store.platform,
                    layer=layer,
                    direction=direction,
                    interface="",
                    nfiles=int(values.size),
                    thresholds=tuple(float(t) for t in thresholds),
                    labels=labels,
                    percent_at=tuple(cdf_at(values, thresholds)),
                )
            )
    return out


def interface_transfer_cdfs(
    store: RecordStore,
    *,
    thresholds: np.ndarray = FIG9_THRESHOLDS,
    labels: tuple[str, ...] = FIG9_LABELS,
    context: AnalysisContext | None = None,
) -> list[TransferCdf]:
    """Figure 9: per (interface, layer, direction) CDFs.

    Here MPI-IO rows are real curves (the figure has an MPI-IO panel);
    POSIX curves exclude the MPI-IO shadows to keep panels disjoint would
    be wrong — Darshan's POSIX module does see that traffic, so shadows
    stay in, matching the instrument's view.
    """
    ctx = resolve(store, context)
    key = (
        "result",
        "interface_transfer_cdfs",
        tuple(float(t) for t in thresholds),
        labels,
    )
    return ctx.cached(key, lambda: _fig9(ctx, thresholds, labels))


def _fig9(ctx: AnalysisContext, thresholds, labels) -> list[TransferCdf]:
    store = ctx.store
    out = []
    for iface in IOInterface:
        for layer, code in ctx.layer_items():
            for direction, col in _DIRECTION_COLS:
                values = ctx.positive(
                    col, ("interface", int(iface)), ("layer", code)
                )
                if values.size == 0:
                    continue
                out.append(
                    TransferCdf(
                        platform=store.platform,
                        layer=layer,
                        direction=direction,
                        interface=iface.label,
                        nfiles=int(values.size),
                        thresholds=tuple(float(t) for t in thresholds),
                        labels=labels,
                        percent_at=tuple(cdf_at(values, thresholds)),
                    )
                )
    return out

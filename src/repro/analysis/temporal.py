"""Temporal I/O structure, in the spirit of Patel et al. (SC '19).

The related work observes that HPC write traffic is *bursty* while reads
are steadier, with clear diurnal and weekly facility rhythms. This module
bins a store's transfer volume over time (attributing each log's bytes to
its job's start time — the resolution Darshan offers without DXT) and
computes the standard burstiness and rhythm statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.context import AnalysisContext, resolve
from repro.errors import AnalysisError
from repro.scheduler.trace import SECONDS_PER_DAY
from repro.store.recordstore import RecordStore


@dataclass(frozen=True)
class TemporalProfile:
    """Time-binned transfer volumes and derived statistics."""

    platform: str
    bin_seconds: float
    #: Bytes per time bin for reads and writes.
    read_series: np.ndarray
    write_series: np.ndarray

    def peak_to_mean(self, direction: str) -> float:
        """Burstiness: peak-bin volume over mean-bin volume (>= 1)."""
        series = self._series(direction)
        active = series[series > 0]
        if not active.size:
            return float("nan")
        return float(series.max() / series.mean()) if series.mean() > 0 else float("nan")

    def busiest_hour(self, direction: str) -> int:
        """Hour of day with the highest average volume (0-23)."""
        series = self._series(direction)
        bins_per_day = int(round(SECONDS_PER_DAY / self.bin_seconds))
        if bins_per_day <= 0 or len(series) < bins_per_day:
            raise AnalysisError("series shorter than one day")
        days = len(series) // bins_per_day
        folded = series[: days * bins_per_day].reshape(days, bins_per_day)
        per_bin = folded.mean(axis=0)
        bin_hours = 24.0 / bins_per_day
        return int(np.argmax(per_bin) * bin_hours)

    def _series(self, direction: str) -> np.ndarray:
        if direction == "read":
            return self.read_series
        if direction == "write":
            return self.write_series
        raise AnalysisError(f"direction must be read/write, got {direction!r}")

    def to_rows(self) -> list[list[str]]:
        return [
            [
                self.platform,
                direction,
                f"{self.peak_to_mean(direction):.2f}",
                str(self.busiest_hour(direction)),
            ]
            for direction in ("read", "write")
        ]


def temporal_profile(
    store: RecordStore,
    *,
    bin_seconds: float = 3600.0,
    context: AnalysisContext | None = None,
) -> TemporalProfile:
    """Bin the store's transfer volume over the trace horizon."""
    if bin_seconds <= 0:
        raise AnalysisError("bin_seconds must be positive")
    ctx = resolve(store, context)
    key = ("result", "temporal_profile", float(bin_seconds))
    return ctx.cached(key, lambda: _compute(ctx, bin_seconds))


def _compute(ctx: AnalysisContext, bin_seconds: float) -> TemporalProfile:
    store = ctx.store
    unique_idx = ctx.idx("unique")
    if not len(unique_idx):
        raise AnalysisError("store has no file records")
    jobs = store.jobs
    start_by_job = dict(zip(jobs["job_id"].tolist(), jobs["start_time"].tolist()))
    starts = np.array(
        [start_by_job.get(int(j), 0.0) for j in ctx.gather("job_id", "unique")],
        dtype=np.float64,
    )
    horizon = float(jobs["start_time"].max() + jobs["runtime"].max())
    nbins = max(int(np.ceil(horizon / bin_seconds)), 1)
    idx = np.minimum((starts / bin_seconds).astype(np.int64), nbins - 1)
    read_series = np.bincount(
        idx,
        weights=ctx.gather("bytes_read", "unique").astype(np.float64),
        minlength=nbins,
    )
    write_series = np.bincount(
        idx,
        weights=ctx.gather("bytes_written", "unique").astype(np.float64),
        minlength=nbins,
    )
    return TemporalProfile(
        platform=store.platform,
        bin_seconds=bin_seconds,
        read_series=read_series,
        write_series=write_series,
    )

"""Sharded analysis: primitive fan-out over contiguous row ranges.

:class:`ShardedAnalysisContext` is a drop-in
:class:`~repro.analysis.context.AnalysisContext` whose *primitives* —
boolean masks, index arrays, gathers, derived columns, histogram-bin
sums — are computed by pool workers over contiguous row ranges instead
of a single serial pass. The fifteen analysis entry points themselves
are untouched: they keep running in the parent against the assembled
primitive arrays, so sharding is invisible above this layer.

Bit-identity (the same contract DESIGN.md §8 states for the write-side
shards) rests on two properties every primitive has:

* **row-local** — a row's mask/opclass/transfer/bandwidth value is a
  function of that row alone, so a worker computing rows ``[lo, hi)``
  produces exactly the slice ``serial_result[lo:hi]``;
* **order-preserving** — index arrays are ascending and gathers follow
  them, so per-range results concatenated in range order equal the
  serial arrays; histogram-bin sums are exact ``int64`` reductions that
  add associatively across ranges.

Workers therefore run the *serial* ``AnalysisContext`` code over a
range-sliced view (:class:`_RangeStore`) — there is no second
implementation of any predicate to drift out of sync.

Zero-copy data paths (DESIGN.md §12):

* **rows to workers** — when the store was loaded from the raw layout
  (``RecordStore.files_path``), workers ``mmap`` the same ``files.npy``
  and share the page cache; otherwise the parent copies the file table
  once into a shared-memory backing segment that workers attach (and
  cache) by name. Either way no rows cross the pool pipe.
* **fixed-size results to parent** — the parent preallocates a
  :class:`repro.fabric.Arena` sized for the whole output; each worker
  writes only its ``[lo:hi)`` slice and the parent's arena view *is*
  the assembled array.
* **variable-size results** — per-range index/gather arrays travel as
  :class:`repro.fabric.TablesRef` headers (segment name + dtype +
  shape), concatenated by the parent while mapped, then unlinked.

Every fan-out goes through :func:`repro.parallel.run_sharded`, so pool
reuse, worker tracing, ShardError wrapping, and leak-proof cleanup on a
failing shard are shared with the generate/ingest pipelines.
"""

from __future__ import annotations

import os
import weakref

import numpy as np

from repro import fabric
from repro.analysis.context import AnalysisContext
from repro.errors import AnalysisError
from repro.parallel import contiguous_row_ranges, resolve_jobs, run_sharded

#: Below this many file rows the fan-out overhead outweighs the split;
#: the context silently degrades to the inherited serial computes.
MIN_ROWS = 2048

#: Variable-size worker results smaller than this are pickled directly —
#: a shm segment per 80-byte histogram sum would be pure overhead.
_INLINE_BYTES = 4096

#: Worker-side cache caps. Pool workers are persistent, so range
#: contexts (with their memoized masks) and backing handles are reused
#: across fan-outs; bounded so a long-lived worker serving many stores
#: cannot hoard memory.
_CTX_CACHE_CAP = 32
_BACKING_CACHE_CAP = 4


class _RangeStore:
    """The minimal store shape a worker-side AnalysisContext needs.

    Holds one contiguous slice of the file table. Never mutated, so the
    generation is forever 0 and the worker context can never go stale.
    """

    generation = 0

    def __init__(self, files: np.ndarray):
        self.files = files


# -- worker side -------------------------------------------------------------
# A backing entry owns its mapping AND every range context built over
# it; they are evicted together. Closing a shared-memory mapping does
# NOT fail while numpy views into it are alive — it silently unmaps and
# later reads crash — so the only safe close point is after the views'
# owners (the cached contexts) are dropped in the same step.
_backings: dict[tuple, tuple] = {}  # key -> (SharedMemory | None, rows)
_range_ctxs: dict[tuple, AnalysisContext] = {}


def _backing_key(backing) -> tuple:
    kind, src = backing
    if kind == "mmap":
        st = os.stat(src)
        return (kind, src, st.st_mtime_ns, st.st_size)
    return (kind, src.name)


def _open_rows(backing) -> tuple[tuple, np.ndarray]:
    key = _backing_key(backing)
    entry = _backings.get(key)
    if entry is None:
        while len(_backings) >= _BACKING_CACHE_CAP:
            old = next(iter(_backings))
            old_shm, _ = _backings.pop(old)
            for k in [k for k in _range_ctxs if k[0] == old]:
                del _range_ctxs[k]
            if old_shm is not None:
                old_shm.close()  # contexts (and their views) are gone
        kind, src = backing
        if kind == "mmap":
            # np.memmap owns its mapping; refcounting reclaims it.
            entry = (None, np.load(src, mmap_mode="r", allow_pickle=False))
        else:
            from multiprocessing import shared_memory

            shm = shared_memory.SharedMemory(name=src.name)
            rows = np.ndarray(
                src.shape, dtype=np.dtype(src.descr), buffer=shm.buf
            )
            entry = (shm, rows)
        _backings[key] = entry
    return key, entry[1]


def _range_context(backing, lo: int, hi: int) -> AnalysisContext:
    bkey, rows = _open_rows(backing)
    key = (bkey, lo, hi)
    ctx = _range_ctxs.get(key)
    if ctx is None:
        while len(_range_ctxs) >= _CTX_CACHE_CAP:
            del _range_ctxs[next(iter(_range_ctxs))]
        ctx = AnalysisContext(_RangeStore(rows[lo:hi]))
        _range_ctxs[key] = ctx
    return ctx


def _analysis_shard(task):
    """Pool worker: one primitive over one contiguous row range.

    Runs the inherited serial code on a range-local context (cached per
    range, so one fan-out's masks feed the next fan-out's index
    arrays). Fixed-size results are written straight into the parent's
    arena slice; variable-size results ship as shm refs or, when tiny,
    as themselves.
    """
    backing, lo, hi, op, out = task
    ctx = _range_context(backing, lo, hi)
    kind = op[0]
    if kind == "mask":
        val = ctx.mask(op[1])
    elif kind == "idx":
        val = ctx.idx(*op[1]) + lo  # local ascending + range base = global
    elif kind == "gather":
        val = ctx.gather(op[1], *op[2])
    elif kind == "positive":
        val = ctx.positive(op[1], *op[2])
    elif kind == "hist_sum":
        val = ctx.hist_sum(op[1], *op[2])
    elif kind == "transfer_sizes":
        val = ctx.transfer_sizes()
    elif kind == "opclass":
        val = ctx.opclass()
    elif kind == "bandwidth":
        val = ctx.bandwidth(op[1])
    else:
        raise AnalysisError(f"unknown sharded analysis op {op!r}")
    if out is not None:
        dest = out.open()
        if dest.dtype != val.dtype:
            raise AnalysisError(
                f"sharded {kind}: worker produced {val.dtype}, arena "
                f"expects {dest.dtype}"
            )
        dest[lo:hi] = val
        return None
    if val.nbytes > _INLINE_BYTES:
        return fabric.export_tables([np.ascontiguousarray(val)])
    # Small arrays may be views into the cached context; copy so the
    # pickle does not drag a base array across the pipe.
    return np.ascontiguousarray(val)


def _close_arenas(arenas: list) -> None:
    while arenas:
        arenas.pop().close()


# -- parent side -------------------------------------------------------------
class ShardedAnalysisContext(AnalysisContext):
    """An AnalysisContext whose primitives fan out over row ranges.

    Construct via :meth:`RecordStore.set_analysis_jobs` +
    :meth:`RecordStore.analysis`. Results are bit-identical to the
    serial context; only the wall-clock differs. Falls back to the
    inherited serial computes when the store is too small to split
    (fewer than ``min_rows`` rows, or fewer rows than workers).

    Cache keys are exactly the serial context's, so the append-delta
    machinery (:meth:`AnalysisContext.apply_append`) extends sharded-
    computed entries the same way it extends serial ones — after an
    append the backing segment is stale and is rebuilt on the next
    fan-out.
    """

    def __init__(self, store, *, jobs: int, min_rows: int | None = None):
        super().__init__(store)
        self._jobs = resolve_jobs(jobs)
        self._min_rows = MIN_ROWS if min_rows is None else int(min_rows)
        self._backing = None
        self._backing_src = None
        self._backing_arena = None
        self._ranges: tuple = ()
        # Arenas (backing + outputs) this context owns; the finalizer
        # unlinks them when the context is garbage collected, close()
        # does it eagerly. Shared by reference with the finalizer so
        # arenas added later are still covered.
        self._arenas: list = []
        self._finalizer = weakref.finalize(self, _close_arenas, self._arenas)

    # Arenas and shm handles cannot travel across pickling (the parent
    # owns the unlink); a restored context simply re-exports on demand.
    def __getstate__(self) -> dict:
        state = super().__getstate__()
        state["_backing"] = None
        state["_backing_src"] = None
        state["_backing_arena"] = None
        state["_ranges"] = ()
        state["_arenas"] = []
        state.pop("_finalizer", None)
        return state

    def __setstate__(self, state: dict) -> None:
        super().__setstate__(state)
        self._finalizer = weakref.finalize(self, _close_arenas, self._arenas)

    def close(self) -> None:
        """Release every owned shm segment and drop the memo.

        Arrays previously returned by primitives may alias the segments
        released here; closing a mapping unmaps it even under live
        numpy views (they do not pin it), so those arrays become
        invalid. Copy anything you need before closing. The memo is
        cleared so the context itself never resurrects a dangling
        entry — primitives recompute on next use.
        """
        with self._lock:
            self._memo.clear()
            self._grow.clear()
            self._backing = None
            self._backing_src = None
            self._backing_arena = None
            self._ranges = ()
            _close_arenas(self._arenas)

    # -- fan-out plumbing ----------------------------------------------------
    def _active(self) -> bool:
        n = len(self._store.files)
        return self._jobs > 1 and n >= max(self._min_rows, self._jobs, 2)

    def _ensure_backing(self):
        """(backing descriptor, row ranges) for the current file table."""
        files = self._store.files
        if self._backing is not None and self._backing_src is files:
            return self._backing, self._ranges
        if self._backing_arena is not None:
            # Stale backing (the table was swapped by an append): the
            # copy is dead weight, workers re-attach the fresh one.
            try:
                self._arenas.remove(self._backing_arena)
            except ValueError:
                pass
            self._backing_arena.close()
            self._backing_arena = None
        path = getattr(self._store, "files_path", None)
        if path is not None and isinstance(files, np.memmap):
            # Raw-layout store, table untouched since load: workers mmap
            # the same files.npy and share the page cache.
            backing = ("mmap", path)
        else:
            arena = fabric.Arena(files.dtype, files.shape)
            arena.view()[...] = files
            self._arenas.append(arena)
            self._backing_arena = arena
            backing = ("arena", arena.spec)
        nrows = len(files)
        # Enough planning blocks that every worker gets a range (the
        # ranges-per-jobs equality also keeps run_sharded on the same
        # pool size warm_pool created, which matters under serve's
        # threads).
        block = max(1, min(65536, -(-nrows // (self._jobs * 8))))
        self._backing = backing
        self._backing_src = files
        self._ranges = tuple(
            contiguous_row_ranges(nrows, self._jobs, block=block)
        )
        return self._backing, self._ranges

    def _fan_fixed(self, op, dtype) -> np.ndarray:
        """Fan out a row-aligned primitive into a parent-owned arena."""
        backing, ranges = self._ensure_backing()
        arena = fabric.Arena(np.dtype(dtype), self._store.files.shape)
        try:
            tasks = [(backing, lo, hi, op, arena.spec) for lo, hi in ranges]
            run_sharded(_analysis_shard, tasks, jobs=self._jobs)
        except BaseException:
            arena.close()
            raise
        self._arenas.append(arena)
        return arena.view()

    def _fan_reduce(self, op, reduce) -> np.ndarray:
        """Fan out a variable-size primitive; reduce in range order."""
        backing, ranges = self._ensure_backing()
        tasks = [(backing, lo, hi, op, None) for lo, hi in ranges]
        return run_sharded(
            _analysis_shard, tasks, jobs=self._jobs, reduce=reduce
        )

    # -- primitive overrides (cache keys identical to the serial ones) ------
    def mask(self, key) -> np.ndarray:
        if not self._active():
            return super().mask(key)
        return self.cached(
            ("mask", key), lambda: self._fan_fixed(("mask", key), np.bool_)
        )

    def transfer_sizes(self) -> np.ndarray:
        if not self._active():
            return super().transfer_sizes()
        dtype = np.result_type(
            self._store.files.dtype["bytes_read"],
            self._store.files.dtype["bytes_written"],
        )
        return self.cached(
            "transfer_sizes",
            lambda: self._fan_fixed(("transfer_sizes",), dtype),
        )

    def opclass(self) -> np.ndarray:
        if not self._active():
            return super().opclass()
        return self.cached(
            "opclass", lambda: self._fan_fixed(("opclass",), np.uint8)
        )

    def bandwidth(self, direction: str) -> np.ndarray:
        if direction not in ("read", "write"):
            raise AnalysisError(f"direction must be read/write, got {direction!r}")
        if not self._active():
            return super().bandwidth(direction)
        return self.cached(
            ("bandwidth", direction),
            lambda: self._fan_fixed(("bandwidth", direction), np.float64),
        )

    def idx(self, *keys) -> np.ndarray:
        if not keys:
            raise AnalysisError("idx() needs at least one mask key")
        keys = tuple(sorted(keys, key=repr))
        if not self._active():
            return super().idx(*keys)
        return self.cached(
            ("idx", keys),
            lambda: self._fan_reduce(("idx", keys), np.concatenate),
        )

    def gather(self, column: str, *keys) -> np.ndarray:
        keys = tuple(sorted(keys, key=repr))
        if not self._active():
            return super().gather(column, *keys)
        return self.cached(
            ("gather", column, keys),
            lambda: self._fan_reduce(("gather", column, keys), np.concatenate),
        )

    def positive(self, column: str, *keys) -> np.ndarray:
        keys = tuple(sorted(keys, key=repr))
        if not self._active():
            return super().positive(column, *keys)
        return self.cached(
            ("positive", column, keys),
            lambda: self._fan_reduce(
                ("positive", column, keys), np.concatenate
            ),
        )

    def hist_sum(self, column: str, *keys) -> np.ndarray:
        keys = tuple(sorted(keys, key=repr))
        if not self._active():
            return super().hist_sum(column, *keys)
        return self.cached(
            ("hist_sum", column, keys),
            lambda: self._fan_reduce(
                ("hist_sum", column, keys),
                # Exact int64 partial sums add associatively across
                # ranges — the same identity the append fold relies on.
                lambda parts: np.sum(np.stack(parts), axis=0),
            ),
        )

    def apply_append(self, files_full, files_tail, new_jobs) -> None:
        super().apply_append(files_full, files_tail, new_jobs)
        # The delta update copied every extended entry into growth
        # buffers (and hist_sum into fresh arrays), so no memo value
        # aliases the old arenas any more; the backing is stale either
        # way. Release it all — the next fan-out re-exports.
        with self._lock:
            self._backing = None
            self._backing_src = None
            self._backing_arena = None
            self._ranges = ()
            _close_arenas(self._arenas)

    def __repr__(self) -> str:
        base = super().__repr__()
        return "Sharded" + f"{base[:-1]}, jobs={self._jobs})"

"""Table 6: files using each I/O interface, per storage layer.

Table 6 counts *interface usage*: a file written through MPI-IO appears in
both the MPI-IO count and the POSIX count (Darshan records both modules),
which is why the paper's per-layer interface counts exceed the unique
file counts of Table 3. The store's POSIX shadow rows reproduce exactly
that semantics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.context import (
    AnalysisContext,
    AppendDelta,
    register_result_fold,
    resolve,
)
from repro.platforms.interfaces import IOInterface
from repro.store.recordstore import RecordStore
from repro.store.schema import LAYER_INSYSTEM, LAYER_PFS
from repro.units import format_count


@dataclass(frozen=True)
class InterfaceUsage:
    platform: str
    scale: float
    #: {layer: {interface: file count}} at store scale.
    counts: dict[str, dict[str, int]]

    def stdio_share(self) -> float:
        """STDIO files over all interface-usage counts (Summit: 39.8%,
        Cori: 14.2%)."""
        total = sum(sum(per.values()) for per in self.counts.values())
        stdio = sum(per["STDIO"] for per in self.counts.values())
        return stdio / total if total else float("nan")

    def stdio_over_posix(self, layer: str) -> float:
        """STDIO:POSIX ratio on a layer (Summit SCNL: 4.37x)."""
        per = self.counts[layer]
        return per["STDIO"] / per["POSIX"] if per["POSIX"] else float("inf")

    def to_rows(self) -> list[list[str]]:
        rows = []
        for layer in ("insystem", "pfs"):
            per = self.counts[layer]
            rows.append(
                [
                    self.platform,
                    layer,
                    format_count(per["POSIX"] / self.scale),
                    format_count(per["MPI-IO"] / self.scale),
                    format_count(per["STDIO"] / self.scale),
                ]
            )
        return rows


def interface_usage(
    store: RecordStore, *, context: AnalysisContext | None = None
) -> InterfaceUsage:
    """Compute Table 6 for one platform."""
    ctx = resolve(store, context)
    return ctx.cached(("result", "interface_usage"), lambda: _compute(ctx))


def _compute(ctx: AnalysisContext) -> InterfaceUsage:
    store = ctx.store
    counts: dict[str, dict[str, int]] = {}
    for name, code in (("insystem", LAYER_INSYSTEM), ("pfs", LAYER_PFS)):
        counts[name] = {
            iface.label: len(ctx.idx(("layer", code), ("interface", int(iface))))
            for iface in IOInterface
        }
    return InterfaceUsage(platform=store.platform, scale=store.scale, counts=counts)


def _fold(key, old: InterfaceUsage, delta: AppendDelta) -> InterfaceUsage:
    """Fold appended rows into Table 6: per-cell counts add."""
    counts = {
        layer: {
            iface.label: old.counts[layer][iface.label]
            + len(delta.tail_idx(("layer", code), ("interface", int(iface))))
            for iface in IOInterface
        }
        for layer, code in (("insystem", LAYER_INSYSTEM), ("pfs", LAYER_PFS))
    }
    return InterfaceUsage(platform=old.platform, scale=old.scale, counts=counts)


register_result_fold("interface_usage", _fold)

"""Shared analysis plan: one-pass masks/groupings over a RecordStore.

Every analysis in this package slices ``store.files`` along the same few
axes — storage layer, I/O interface, shared-file rank, nonzero bytes per
direction — and the seed implementation recomputed those boolean masks
(and copied full 250-byte rows, histograms included) once per analysis.
At facility scale that per-metric rescan dominates: the four stress-test
analyses together fell under the 300k rows/s floor.

:class:`AnalysisContext` is the shared plan. It lazily computes each
predicate **once** as a boolean mask, intersects masks into compact
``int64`` index arrays, caches the derived columns (total transfer per
direction, per-file bandwidth, op-class), and memoizes whole analysis
results. Everything is keyed on the owning store's *generation*: a
mutation (``RecordStore.extend``, or an explicit
:meth:`RecordStore.invalidate`) bumps the counter and a stale context
refuses to serve anything rather than return stale index arrays.

Analyses obtain the context via :meth:`RecordStore.analysis`; passing an
explicit ``context=`` to an analysis entry point overrides it (the
golden-equivalence suite uses that to pin contexts).

**Append-only growth** (the ``repro.stream`` ingest path) gets a cheaper
discipline than full invalidation: :meth:`AnalysisContext.apply_append`
extends every cached mask, index array, gather, and derived column in
place over just the new rows (every predicate is row-local, so the tail
rows' values are computable from the tail alone), and folds memoized
*results* whose aggregates reduce associatively — exact ``int64`` sums,
category counts, histogram bin tallies — through folds registered with
:func:`register_result_fold`. Results without a registered fold are
dropped (per-entry fallback to the old full-invalidation behaviour) and
recompute cold on next use. See DESIGN.md §11 for the contract.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Callable, Hashable, TypeVar

import numpy as np

from repro.errors import AnalysisError
from repro.obs.tracer import trace_event
from repro.platforms.interfaces import IOInterface
from repro.store.schema import (
    LAYER_CODES,
    OPCLASS_READ_ONLY,
    OPCLASS_READ_WRITE,
    OPCLASS_WRITE_ONLY,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.store.recordstore import RecordStore

T = TypeVar("T")

#: Base predicates the mask cache understands, beyond the parametric
#: ``("layer", code)`` / ``("interface", value)`` / ``("pos", column)``
#: forms. "unique" follows the paper's §3.1 accounting: a file accessed
#: via MPI-IO is counted once, through its POSIX record.
_BASE_MASKS = ("unique", "shared", "large_jobs")

#: Registered incremental folds for memoized results, keyed by the
#: result name (the second element of a ``("result", name, *params)``
#: memo key). See :func:`register_result_fold`.
_RESULT_FOLDS: dict[str, Callable] = {}


def register_result_fold(name: str, fold: Callable) -> Callable:
    """Register an incremental fold for the memoized result ``name``.

    ``fold(key, old, delta)`` receives the full memo key, the result
    computed at the previous generation, and an :class:`AppendDelta`
    over the appended rows; it must return the value a cold
    ``_compute`` over the grown table would produce, **bit-identically**
    — the differential harness enforces exactly that. Only results that
    are pure functions of the *file* table may register a fold: the
    append path merges duplicate job rows in place, and folded results
    are kept across appends without consulting the job table.
    """
    _RESULT_FOLDS[name] = fold
    return fold


def result_fold_names() -> tuple[str, ...]:
    """Names of results with a registered fold (introspection/tests)."""
    return tuple(sorted(_RESULT_FOLDS))


class AppendDelta:
    """One append's tail rows, exposed through context-shaped helpers.

    Fold functions read two things: aggregates over *just the appended
    rows* (the ``tail_*`` methods, backed by a private context over a
    tail-only store so they share the mask/idx plumbing and its key
    normalization), and — where a skip rule needs it — the full
    post-append context via :attr:`context`.
    """

    def __init__(
        self,
        context: "AnalysisContext",
        tail_context: "AnalysisContext",
        old_rows: int,
        new_rows: int,
    ):
        self.context = context
        self._tail = tail_context
        self.old_rows = old_rows
        self.new_rows = new_rows

    def tail_mask(self, key) -> np.ndarray:
        return self._tail.mask(key)

    def tail_idx(self, *keys) -> np.ndarray:
        """Indices into the tail rows (add ``old_rows`` for global)."""
        return self._tail.idx(*keys)

    def tail_gather(self, column: str, *keys) -> np.ndarray:
        return self._tail.gather(column, *keys)

    def tail_positive(self, column: str, *keys) -> np.ndarray:
        return self._tail.positive(column, *keys)

    def tail_opclass(self) -> np.ndarray:
        return self._tail.opclass()

    def tail_column(self, name: str) -> np.ndarray:
        return self._tail.column(name)

    def tail_hist_sum(self, column: str, *keys) -> np.ndarray:
        """Per-bin ``int64`` totals of a histogram column over tail rows."""
        return self._tail.hist_sum(column, *keys)


class AnalysisContext:
    """Memoized masks, index arrays, derived columns, and results.

    Cheap to construct — nothing is computed until asked for. All cache
    entries are tied to the store generation observed at construction;
    :attr:`stale` contexts raise on every access.
    """

    def __init__(self, store: "RecordStore"):
        self._store = store
        self._generation = store.generation
        self._memo: dict[Hashable, object] = {}
        # Memo hit/miss tallies, read by the tracing layer
        # (repro.obs.integrate.analysis_span) to annotate per-entry-point
        # spans with how much of the work was served from cache. Plain
        # int increments under the existing lock: no allocation pressure
        # on the hot path, live whether or not tracing is enabled.
        self._hits = 0
        self._misses = 0
        # Capacity-backed growth buffers for the append path: memo
        # values are views of these over-allocated arrays, so extending
        # a mask/idx/gather over appended rows writes just the tail
        # instead of reallocating O(n) per append. Keyed like _memo.
        self._grow: dict[Hashable, np.ndarray] = {}
        # Concurrent readers (repro.serve worker threads) share one
        # context per store. A single RLock around memoization keeps the
        # dict consistent and gives each key compute-once semantics; it
        # must be re-entrant because computes nest (idx() -> mask()).
        # Computes serialize under the lock — by design: cached values
        # are deterministic, and the serving layer's result cache and
        # coalescer provide the cross-request concurrency instead.
        self._lock = threading.RLock()

    # Locks are neither picklable nor deep-copyable; stores (which may
    # hold a memoized context) travel through both — shard merging and
    # the property-based aliasing checks. Rebuild the lock on restore.
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_lock"]
        state["_grow"] = {}  # capacity buffers are rebuilt on demand
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.RLock()
        # Pickling copies arrays, so restored memo values are no longer
        # views of the growth buffers; drop the buffers and let the next
        # append re-anchor each entry (correctness is unaffected).
        self._grow = {}

    # -- lifecycle -----------------------------------------------------------
    @property
    def store(self) -> "RecordStore":
        return self._store

    @property
    def generation(self) -> int:
        """Store generation this context was built against."""
        return self._generation

    @property
    def stale(self) -> bool:
        """True once the store mutated past this context."""
        return self._generation != self._store.generation

    def _check_fresh(self) -> None:
        if self.stale:
            raise AnalysisError(
                "stale AnalysisContext: store generation moved from "
                f"{self._generation} to {self._store.generation}; call "
                "store.analysis() for a fresh context"
            )

    def cache_counts(self) -> tuple[int, int]:
        """(memo hits, memo misses) since construction.

        Monotonic tallies; span instrumentation differences two
        snapshots to attribute cache behaviour to one entry point.
        """
        with self._lock:
            return self._hits, self._misses

    def cache_info(self) -> dict[str, int]:
        """Entry counts per cache kind (introspection for tests/benches)."""
        kinds: dict[str, int] = {}
        with self._lock:
            keys = list(self._memo)
        for key in keys:
            kind = key[0] if isinstance(key, tuple) else str(key)
            kinds[str(kind)] = kinds.get(str(kind), 0) + 1
        return kinds

    # -- append-only growth --------------------------------------------------
    def apply_append(
        self,
        files_full: np.ndarray,
        files_tail: np.ndarray,
        new_jobs: np.ndarray,
    ) -> None:
        """Grow the owning store in place, delta-updating this context.

        Called by :meth:`RecordStore.append` when this context is live
        and fresh. ``files_full`` is the already-grown file table (old
        rows then ``files_tail``), ``new_jobs`` the merged job table.
        The table swap, generation bump, and every cache update happen
        under the context lock, so concurrent readers (serve workers)
        observe either the fully-old or the fully-new state.

        Every cached mask/idx/gather/derived column is extended over
        just the tail rows; memoized results fold through
        :data:`_RESULT_FOLDS` or are dropped. Any failure inside the
        delta update falls back to clearing the memo outright — the
        context stays correct, merely cold.
        """
        from repro.store.recordstore import RecordStore
        from repro.store.schema import empty_jobs

        store = self._store
        with self._lock:
            self._check_fresh()
            old_rows = len(store.files)
            store.files = files_full
            store.jobs = new_jobs
            store._generation += 1
            self._generation = store._generation
            try:
                tail_store = RecordStore(
                    store.platform,
                    files_tail,
                    empty_jobs(0),
                    domains=store.domains,
                    extensions=store.extensions,
                    scale=store.scale,
                )
                delta = AppendDelta(
                    self, AnalysisContext(tail_store), old_rows, len(files_tail)
                )
                self._extend_primitives(delta)
                self._fold_results(delta)
            except Exception as exc:
                # Correctness over warmth: a failed delta update must
                # never leave a half-extended cache behind. The append
                # itself already succeeded — the store tables and
                # generation are consistent — so degrade to a cold
                # cache instead of failing the caller's append.
                self._memo.clear()
                self._grow.clear()
                trace_event(
                    "analysis.delta_fallback",
                    "analysis",
                    error=f"{type(exc).__name__}: {exc}",
                )

    def _extend_primitives(self, delta: "AppendDelta") -> None:
        """Extend every cached array entry over the appended rows.

        All primitives are row-local (each row's mask/derived value is a
        function of that row alone) and row-order-preserving (``idx`` is
        ascending, gathers follow it), so the grown entry is exactly the
        old entry followed by the tail entry computed on the tail rows.
        """
        n_old = delta.old_rows
        for key in list(self._memo):
            if isinstance(key, tuple):
                kind = key[0]
                if kind == "result":
                    continue  # handled by _fold_results
                if kind == "hist_sum":
                    # Not a row-aligned array: an exact int64 reduction.
                    # Bin totals add associatively, so the grown entry is
                    # the old totals plus the tail totals — elementwise
                    # add, no growth buffer involved.
                    self._memo[key] = self._memo[key] + delta.tail_hist_sum(
                        key[1], *key[2]
                    )
                    continue
                if kind == "mask":
                    tail = delta.tail_mask(key[1])
                elif kind == "idx":
                    tail = delta.tail_idx(*key[1]) + n_old
                elif kind == "gather":
                    tail = delta.tail_gather(key[1], *key[2])
                elif kind == "positive":
                    tail = delta.tail_positive(key[1], *key[2])
                elif kind == "bandwidth":
                    tail = delta._tail.bandwidth(key[1])
                else:  # unknown kind: drop rather than guess
                    del self._memo[key]
                    continue
            elif key == "transfer_sizes":
                tail = delta._tail.transfer_sizes()
            elif key == "opclass":
                tail = delta.tail_opclass()
            else:
                del self._memo[key]
                continue
            self._memo[key] = self._append_values(key, self._memo[key], tail)

    def _append_values(
        self, key: Hashable, old: np.ndarray, tail: np.ndarray
    ) -> np.ndarray:
        """``concat(old, tail)`` through a capacity-backed buffer.

        The returned array is a view ``buf[:n+k]`` of an over-allocated
        buffer; old views (``buf[:n]``) keep their contents because only
        rows past ``n`` are written. When the memo value is already
        anchored in the buffer, appending costs O(tail) — amortized
        O(tail) across appends including the occasional realloc copy.
        """
        old = np.asarray(old)
        tail = np.asarray(tail)
        n, k = len(old), len(tail)
        buf = self._grow.get(key)
        if buf is None or old.base is not buf or len(buf) < n + k:
            cap = max(64, int((n + k) * 1.5))
            buf = np.empty((cap,) + old.shape[1:], dtype=old.dtype)
            buf[:n] = old
            self._grow[key] = buf
        buf[n : n + k] = tail
        return buf[: n + k]

    def _fold_results(self, delta: "AppendDelta") -> None:
        """Fold registered memoized results; drop the rest."""
        result_keys = [
            k
            for k in self._memo
            if isinstance(k, tuple) and len(k) >= 2 and k[0] == "result"
        ]
        for key in result_keys:
            fold = _RESULT_FOLDS.get(key[1])
            if fold is None:
                del self._memo[key]
            else:
                self._memo[key] = fold(key, self._memo[key], delta)

    # -- generic memo --------------------------------------------------------
    def cached(self, key: Hashable, compute: Callable[[], T]) -> T:
        """Memoize ``compute()`` under ``key`` for this store generation.

        Thread-safe: the first caller for a key computes under the
        context lock, every later caller (from any thread) gets the same
        object back. Callers must treat returned arrays as read-only.
        """
        self._check_fresh()
        with self._lock:
            try:
                value = self._memo[key]  # type: ignore[return-value]
            except KeyError:
                self._misses += 1
                value = compute()
                self._memo[key] = value
            else:
                self._hits += 1
            return value

    # -- columns (views, never copies) --------------------------------------
    def column(self, name: str) -> np.ndarray:
        """A column view of ``store.files`` (no row copies)."""
        self._check_fresh()
        return self._store.files[name]

    # -- boolean masks -------------------------------------------------------
    def mask(self, key) -> np.ndarray:
        """One predicate over all file rows, computed once.

        Keys: ``"unique"`` (interface != MPI-IO), ``"shared"``
        (rank == −1), ``"large_jobs"`` (nprocs > 1024),
        ``("layer", code)``, ``("interface", value)``, and
        ``("pos", column)`` (column > 0).
        """
        return self.cached(("mask", key), lambda: self._compute_mask(key))

    def _compute_mask(self, key) -> np.ndarray:
        f = self._store.files
        if key == "unique":
            return f["interface"] != int(IOInterface.MPIIO)
        if key == "shared":
            return f["rank"] == -1
        if key == "large_jobs":
            return f["nprocs"] > 1024
        if isinstance(key, tuple) and len(key) == 2:
            kind, arg = key
            if kind == "layer":
                return f["layer"] == arg
            if kind == "interface":
                return f["interface"] == int(arg)
            if kind == "pos":
                return f[arg] > 0
        raise AnalysisError(f"unknown mask key {key!r}")

    # -- index arrays --------------------------------------------------------
    def idx(self, *keys) -> np.ndarray:
        """Row indices where every named mask holds, as a cached array.

        The conjunction of cached byte masks is far cheaper than the
        seed path's full-row fancy indexing, and the resulting ``int64``
        index array is reused by every analysis that groups on the same
        axes. Indices are ascending, so column gathers preserve row
        order — sums and CDFs come out bit-identical to a boolean
        selection.
        """

        def compute() -> np.ndarray:
            combined = self.mask(keys[0])
            for key in keys[1:]:
                combined = combined & self.mask(key)
            return np.flatnonzero(combined)

        if not keys:
            raise AnalysisError("idx() needs at least one mask key")
        # Mask conjunction is commutative; normalize the key order so
        # idx(a, b) and idx(b, a) share one cache entry.
        keys = tuple(sorted(keys, key=repr))
        return self.cached(("idx", keys), compute)

    def layer_items(self):
        """(name, code) pairs of the paper's real layers, 'other' skipped."""
        return tuple(
            (name, code) for name, code in LAYER_CODES.items() if name != "other"
        )

    # -- derived columns -----------------------------------------------------
    def transfer_sizes(self) -> np.ndarray:
        """Per-file total transfer (read + written), cached."""
        return self.cached(
            "transfer_sizes",
            lambda: self.column("bytes_read") + self.column("bytes_written"),
        )

    def opclass(self) -> np.ndarray:
        """Read-only / read-write / write-only code per file, cached."""

        def compute() -> np.ndarray:
            r = self.mask(("pos", "bytes_read"))
            w = self.mask(("pos", "bytes_written"))
            out = np.full(
                len(self._store.files), OPCLASS_READ_ONLY, dtype=np.uint8
            )
            out[r & w] = OPCLASS_READ_WRITE
            out[~r & w] = OPCLASS_WRITE_ONLY
            return out

        return self.cached("opclass", compute)

    def bandwidth(self, direction: str) -> np.ndarray:
        """Per-file bytes/s for a direction; NaN where no time recorded."""
        if direction not in ("read", "write"):
            raise AnalysisError(f"direction must be read/write, got {direction!r}")

        def compute() -> np.ndarray:
            nbytes = self.column(f"bytes_{'read' if direction == 'read' else 'written'}")
            times = self.column(f"{direction}_time")
            with np.errstate(divide="ignore", invalid="ignore"):
                return np.where(times > 0, nbytes / times, np.nan)

        return self.cached(("bandwidth", direction), compute)

    # -- grouped gathers -----------------------------------------------------
    def gather(self, column: str, *keys) -> np.ndarray:
        """Cached column values at ``idx(*keys)`` (one compact copy)."""
        keys = tuple(sorted(keys, key=repr))
        return self.cached(
            ("gather", column, keys), lambda: self.column(column)[self.idx(*keys)]
        )

    def hist_sum(self, column: str, *keys) -> np.ndarray:
        """Per-bin ``int64`` totals of a histogram column at ``idx(*keys)``.

        The aggregate behind the request-size CDFs. Cached as its own
        primitive (rather than inside the analysis result) because bin
        totals reduce associatively and exactly in ``int64`` — both the
        append delta path and the sharded context exploit that to fold
        partial sums instead of re-reading rows.
        """
        keys = tuple(sorted(keys, key=repr))
        return self.cached(
            ("hist_sum", column, keys),
            lambda: self.column(column)[self.idx(*keys)].sum(axis=0),
        )

    def positive(self, column: str, *keys) -> np.ndarray:
        """Cached positive entries of a gathered column.

        This is the per-(group, direction) value set behind the transfer
        CDFs: files with zero bytes in a direction do not enter that
        direction's curve.
        """

        def compute() -> np.ndarray:
            vals = self.gather(column, *keys)
            return vals[vals > 0]

        keys = tuple(sorted(keys, key=repr))
        return self.cached(("positive", column, keys), compute)

    def __repr__(self) -> str:
        state = "stale" if self.stale else "fresh"
        return (
            f"AnalysisContext({self._store.platform!r}, "
            f"generation={self._generation}, {state}, "
            f"{len(self._memo)} cached)"
        )


def resolve(store: "RecordStore", context: AnalysisContext | None) -> AnalysisContext:
    """The context analyses should use: explicit one, else the store's.

    An explicit context must belong to the same store object — silently
    analyzing store A with store B's masks would be a correctness bug.
    """
    if context is None:
        return store.analysis()
    if context.store is not store:
        raise AnalysisError("context belongs to a different store")
    context._check_fresh()
    return context

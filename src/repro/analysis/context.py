"""Shared analysis plan: one-pass masks/groupings over a RecordStore.

Every analysis in this package slices ``store.files`` along the same few
axes — storage layer, I/O interface, shared-file rank, nonzero bytes per
direction — and the seed implementation recomputed those boolean masks
(and copied full 250-byte rows, histograms included) once per analysis.
At facility scale that per-metric rescan dominates: the four stress-test
analyses together fell under the 300k rows/s floor.

:class:`AnalysisContext` is the shared plan. It lazily computes each
predicate **once** as a boolean mask, intersects masks into compact
``int64`` index arrays, caches the derived columns (total transfer per
direction, per-file bandwidth, op-class), and memoizes whole analysis
results. Everything is keyed on the owning store's *generation*: a
mutation (``RecordStore.extend``, or an explicit
:meth:`RecordStore.invalidate`) bumps the counter and a stale context
refuses to serve anything rather than return stale index arrays.

Analyses obtain the context via :meth:`RecordStore.analysis`; passing an
explicit ``context=`` to an analysis entry point overrides it (the
golden-equivalence suite uses that to pin contexts).
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Callable, Hashable, TypeVar

import numpy as np

from repro.errors import AnalysisError
from repro.platforms.interfaces import IOInterface
from repro.store.schema import (
    LAYER_CODES,
    OPCLASS_READ_ONLY,
    OPCLASS_READ_WRITE,
    OPCLASS_WRITE_ONLY,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.store.recordstore import RecordStore

T = TypeVar("T")

#: Base predicates the mask cache understands, beyond the parametric
#: ``("layer", code)`` / ``("interface", value)`` / ``("pos", column)``
#: forms. "unique" follows the paper's §3.1 accounting: a file accessed
#: via MPI-IO is counted once, through its POSIX record.
_BASE_MASKS = ("unique", "shared", "large_jobs")


class AnalysisContext:
    """Memoized masks, index arrays, derived columns, and results.

    Cheap to construct — nothing is computed until asked for. All cache
    entries are tied to the store generation observed at construction;
    :attr:`stale` contexts raise on every access.
    """

    def __init__(self, store: "RecordStore"):
        self._store = store
        self._generation = store.generation
        self._memo: dict[Hashable, object] = {}
        # Memo hit/miss tallies, read by the tracing layer
        # (repro.obs.integrate.analysis_span) to annotate per-entry-point
        # spans with how much of the work was served from cache. Plain
        # int increments under the existing lock: no allocation pressure
        # on the hot path, live whether or not tracing is enabled.
        self._hits = 0
        self._misses = 0
        # Concurrent readers (repro.serve worker threads) share one
        # context per store. A single RLock around memoization keeps the
        # dict consistent and gives each key compute-once semantics; it
        # must be re-entrant because computes nest (idx() -> mask()).
        # Computes serialize under the lock — by design: cached values
        # are deterministic, and the serving layer's result cache and
        # coalescer provide the cross-request concurrency instead.
        self._lock = threading.RLock()

    # Locks are neither picklable nor deep-copyable; stores (which may
    # hold a memoized context) travel through both — shard merging and
    # the property-based aliasing checks. Rebuild the lock on restore.
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.RLock()

    # -- lifecycle -----------------------------------------------------------
    @property
    def store(self) -> "RecordStore":
        return self._store

    @property
    def generation(self) -> int:
        """Store generation this context was built against."""
        return self._generation

    @property
    def stale(self) -> bool:
        """True once the store mutated past this context."""
        return self._generation != self._store.generation

    def _check_fresh(self) -> None:
        if self.stale:
            raise AnalysisError(
                "stale AnalysisContext: store generation moved from "
                f"{self._generation} to {self._store.generation}; call "
                "store.analysis() for a fresh context"
            )

    def cache_counts(self) -> tuple[int, int]:
        """(memo hits, memo misses) since construction.

        Monotonic tallies; span instrumentation differences two
        snapshots to attribute cache behaviour to one entry point.
        """
        with self._lock:
            return self._hits, self._misses

    def cache_info(self) -> dict[str, int]:
        """Entry counts per cache kind (introspection for tests/benches)."""
        kinds: dict[str, int] = {}
        with self._lock:
            keys = list(self._memo)
        for key in keys:
            kind = key[0] if isinstance(key, tuple) else str(key)
            kinds[str(kind)] = kinds.get(str(kind), 0) + 1
        return kinds

    # -- generic memo --------------------------------------------------------
    def cached(self, key: Hashable, compute: Callable[[], T]) -> T:
        """Memoize ``compute()`` under ``key`` for this store generation.

        Thread-safe: the first caller for a key computes under the
        context lock, every later caller (from any thread) gets the same
        object back. Callers must treat returned arrays as read-only.
        """
        self._check_fresh()
        with self._lock:
            try:
                value = self._memo[key]  # type: ignore[return-value]
            except KeyError:
                self._misses += 1
                value = compute()
                self._memo[key] = value
            else:
                self._hits += 1
            return value

    # -- columns (views, never copies) --------------------------------------
    def column(self, name: str) -> np.ndarray:
        """A column view of ``store.files`` (no row copies)."""
        self._check_fresh()
        return self._store.files[name]

    # -- boolean masks -------------------------------------------------------
    def mask(self, key) -> np.ndarray:
        """One predicate over all file rows, computed once.

        Keys: ``"unique"`` (interface != MPI-IO), ``"shared"``
        (rank == −1), ``"large_jobs"`` (nprocs > 1024),
        ``("layer", code)``, ``("interface", value)``, and
        ``("pos", column)`` (column > 0).
        """
        return self.cached(("mask", key), lambda: self._compute_mask(key))

    def _compute_mask(self, key) -> np.ndarray:
        f = self._store.files
        if key == "unique":
            return f["interface"] != int(IOInterface.MPIIO)
        if key == "shared":
            return f["rank"] == -1
        if key == "large_jobs":
            return f["nprocs"] > 1024
        if isinstance(key, tuple) and len(key) == 2:
            kind, arg = key
            if kind == "layer":
                return f["layer"] == arg
            if kind == "interface":
                return f["interface"] == int(arg)
            if kind == "pos":
                return f[arg] > 0
        raise AnalysisError(f"unknown mask key {key!r}")

    # -- index arrays --------------------------------------------------------
    def idx(self, *keys) -> np.ndarray:
        """Row indices where every named mask holds, as a cached array.

        The conjunction of cached byte masks is far cheaper than the
        seed path's full-row fancy indexing, and the resulting ``int64``
        index array is reused by every analysis that groups on the same
        axes. Indices are ascending, so column gathers preserve row
        order — sums and CDFs come out bit-identical to a boolean
        selection.
        """

        def compute() -> np.ndarray:
            combined = self.mask(keys[0])
            for key in keys[1:]:
                combined = combined & self.mask(key)
            return np.flatnonzero(combined)

        if not keys:
            raise AnalysisError("idx() needs at least one mask key")
        # Mask conjunction is commutative; normalize the key order so
        # idx(a, b) and idx(b, a) share one cache entry.
        keys = tuple(sorted(keys, key=repr))
        return self.cached(("idx", keys), compute)

    def layer_items(self):
        """(name, code) pairs of the paper's real layers, 'other' skipped."""
        return tuple(
            (name, code) for name, code in LAYER_CODES.items() if name != "other"
        )

    # -- derived columns -----------------------------------------------------
    def transfer_sizes(self) -> np.ndarray:
        """Per-file total transfer (read + written), cached."""
        return self.cached(
            "transfer_sizes",
            lambda: self.column("bytes_read") + self.column("bytes_written"),
        )

    def opclass(self) -> np.ndarray:
        """Read-only / read-write / write-only code per file, cached."""

        def compute() -> np.ndarray:
            r = self.mask(("pos", "bytes_read"))
            w = self.mask(("pos", "bytes_written"))
            out = np.full(
                len(self._store.files), OPCLASS_READ_ONLY, dtype=np.uint8
            )
            out[r & w] = OPCLASS_READ_WRITE
            out[~r & w] = OPCLASS_WRITE_ONLY
            return out

        return self.cached("opclass", compute)

    def bandwidth(self, direction: str) -> np.ndarray:
        """Per-file bytes/s for a direction; NaN where no time recorded."""
        if direction not in ("read", "write"):
            raise AnalysisError(f"direction must be read/write, got {direction!r}")

        def compute() -> np.ndarray:
            nbytes = self.column(f"bytes_{'read' if direction == 'read' else 'written'}")
            times = self.column(f"{direction}_time")
            with np.errstate(divide="ignore", invalid="ignore"):
                return np.where(times > 0, nbytes / times, np.nan)

        return self.cached(("bandwidth", direction), compute)

    # -- grouped gathers -----------------------------------------------------
    def gather(self, column: str, *keys) -> np.ndarray:
        """Cached column values at ``idx(*keys)`` (one compact copy)."""
        keys = tuple(sorted(keys, key=repr))
        return self.cached(
            ("gather", column, keys), lambda: self.column(column)[self.idx(*keys)]
        )

    def positive(self, column: str, *keys) -> np.ndarray:
        """Cached positive entries of a gathered column.

        This is the per-(group, direction) value set behind the transfer
        CDFs: files with zero bytes in a direction do not enter that
        direction's curve.
        """

        def compute() -> np.ndarray:
            vals = self.gather(column, *keys)
            return vals[vals > 0]

        keys = tuple(sorted(keys, key=repr))
        return self.cached(("positive", column, keys), compute)

    def __repr__(self) -> str:
        state = "stale" if self.stale else "fresh"
        return (
            f"AnalysisContext({self._store.platform!r}, "
            f"generation={self._generation}, {state}, "
            f"{len(self._memo)} cached)"
        )


def resolve(store: "RecordStore", context: AnalysisContext | None) -> AnalysisContext:
    """The context analyses should use: explicit one, else the store's.

    An explicit context must belong to the same store object — silently
    analyzing store A with store B's masks would be a correctness bug.
    """
    if context is None:
        return store.analysis()
    if context.store is not store:
        raise AnalysisError("context belongs to a different store")
    context._check_fresh()
    return context

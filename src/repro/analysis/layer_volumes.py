"""Table 3: file counts and total data-transfer volume per storage layer.

§3.1 accounting: a file accessed via MPI-IO is measured through its POSIX
record (MPI-IO issues POSIX underneath); STDIO files through STDIO. So
both counts and volumes select POSIX + STDIO rows.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.context import (
    AnalysisContext,
    AppendDelta,
    register_result_fold,
    resolve,
)
from repro.store.recordstore import RecordStore
from repro.store.schema import LAYER_INSYSTEM, LAYER_PFS
from repro.units import format_count, format_size


@dataclass(frozen=True)
class LayerRow:
    layer: str
    files: int
    bytes_read: int
    bytes_written: int

    def read_write_ratio(self) -> float:
        """Read volume over write volume (>1 = read-dominated)."""
        return self.bytes_read / self.bytes_written if self.bytes_written else float("inf")


@dataclass(frozen=True)
class LayerVolumes:
    platform: str
    scale: float
    insystem: LayerRow
    pfs: LayerRow

    def pfs_over_insystem_files(self) -> float:
        """The paper's 3.63x (Summit) / 28.87x (Cori) file-count ratio."""
        return self.pfs.files / self.insystem.files if self.insystem.files else float("inf")

    def to_rows(self) -> list[list[str]]:
        rows = []
        for row in (self.insystem, self.pfs):
            rows.append(
                [
                    self.platform,
                    row.layer,
                    format_count(row.files / self.scale),
                    format_size(row.bytes_read / self.scale),
                    format_size(row.bytes_written / self.scale),
                    f"{row.read_write_ratio():.2f}",
                ]
            )
        return rows


def layer_volumes(
    store: RecordStore, *, context: AnalysisContext | None = None
) -> LayerVolumes:
    """Compute Table 3 for one platform."""
    ctx = resolve(store, context)
    return ctx.cached(("result", "layer_volumes"), lambda: _compute(ctx))


def _compute(ctx: AnalysisContext) -> LayerVolumes:
    store = ctx.store
    rows = {}
    for name, code in (("insystem", LAYER_INSYSTEM), ("pfs", LAYER_PFS)):
        keys = ("unique", ("layer", code))
        rows[name] = LayerRow(
            layer=name,
            files=len(ctx.idx(*keys)),
            bytes_read=int(ctx.gather("bytes_read", *keys).sum()),
            bytes_written=int(ctx.gather("bytes_written", *keys).sum()),
        )
    return LayerVolumes(
        platform=store.platform,
        scale=store.scale,
        insystem=rows["insystem"],
        pfs=rows["pfs"],
    )


def _fold(key, old: LayerVolumes, delta: AppendDelta) -> LayerVolumes:
    """Fold appended rows into Table 3: counts and int64 sums add."""
    rows = {}
    for name, code in (("insystem", LAYER_INSYSTEM), ("pfs", LAYER_PFS)):
        keys = ("unique", ("layer", code))
        prev: LayerRow = getattr(old, name)
        rows[name] = LayerRow(
            layer=name,
            files=prev.files + len(delta.tail_idx(*keys)),
            bytes_read=prev.bytes_read
            + int(delta.tail_gather("bytes_read", *keys).sum()),
            bytes_written=prev.bytes_written
            + int(delta.tail_gather("bytes_written", *keys).sum()),
        )
    return LayerVolumes(
        platform=old.platform,
        scale=old.scale,
        insystem=rows["insystem"],
        pfs=rows["pfs"],
    )


register_result_fold("layer_volumes", _fold)

"""Do users tune their I/O across successive executions? (§5 future work)

The paper closes with: *"Another focus of this future study will be how
many users tune their I/O in subsequent application executions."* This
module implements that study over a store: for each user with enough
jobs, order the jobs in time, extract per-job tuning signals — mean POSIX
request size and MPI-IO adoption — and classify the user's trajectory as
improving, flat, or regressing by rank correlation against time.

Run against the synthetic population it returns "flat" for almost
everyone, which is precisely the paper's suspicion about production users
(optimizations "available for quite some time" going unused); the tests
also verify the detector fires on hand-built stores with real trends.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.context import AnalysisContext, resolve
from repro.errors import AnalysisError
from repro.platforms.interfaces import IOInterface
from repro.store.recordstore import RecordStore


@dataclass(frozen=True)
class UserTrajectory:
    """One user's tuning signal over their job sequence."""

    user_id: int
    njobs: int
    #: Per-job mean POSIX request size, time-ordered.
    request_sizes: np.ndarray
    #: Per-job MPI-IO share of interface rows, time-ordered.
    mpiio_shares: np.ndarray
    #: Spearman rank correlation of request size against job order.
    trend: float

    @property
    def classification(self) -> str:
        if not np.isfinite(self.trend):
            return "flat"
        if self.trend > 0.35:
            return "improving"
        if self.trend < -0.35:
            return "regressing"
        return "flat"


@dataclass(frozen=True)
class TuningReport:
    platform: str
    trajectories: tuple[UserTrajectory, ...]

    def fraction(self, classification: str) -> float:
        if not self.trajectories:
            return float("nan")
        hits = sum(
            1 for t in self.trajectories if t.classification == classification
        )
        return hits / len(self.trajectories)

    def to_rows(self) -> list[list[str]]:
        return [
            [
                self.platform,
                str(len(self.trajectories)),
                f"{100 * self.fraction('improving'):.1f}%",
                f"{100 * self.fraction('flat'):.1f}%",
                f"{100 * self.fraction('regressing'):.1f}%",
            ]
        ]


def _spearman(x: np.ndarray, y: np.ndarray) -> float:
    """Spearman rank correlation (scipy-free, ties by average rank)."""
    if len(x) < 3 or np.all(y == y[0]):
        return float("nan")

    def ranks(a: np.ndarray) -> np.ndarray:
        order = np.argsort(a, kind="stable")
        r = np.empty(len(a), dtype=np.float64)
        r[order] = np.arange(1, len(a) + 1)
        # average ties
        for v in np.unique(a):
            mask = a == v
            if mask.sum() > 1:
                r[mask] = r[mask].mean()
        return r

    rx, ry = ranks(x), ranks(y)
    sx, sy = rx.std(), ry.std()
    if sx == 0 or sy == 0:
        return float("nan")
    return float(((rx - rx.mean()) * (ry - ry.mean())).mean() / (sx * sy))


def tuning_report(
    store: RecordStore,
    *,
    min_jobs: int = 5,
    context: AnalysisContext | None = None,
) -> TuningReport:
    """Classify every qualifying user's tuning trajectory."""
    if min_jobs < 3:
        raise AnalysisError("min_jobs must be at least 3 for a trend")
    ctx = resolve(store, context)
    key = ("result", "tuning_report", min_jobs)
    return ctx.cached(key, lambda: _compute(ctx, min_jobs))


def _compute(ctx: AnalysisContext, min_jobs: int) -> TuningReport:
    store = ctx.store
    jobs = store.jobs
    files = store.files
    posix = files[files["interface"] == int(IOInterface.POSIX)]
    mpiio_ids = set(
        files["record_id"][files["interface"] == int(IOInterface.MPIIO)].tolist()
    )

    # Per-job aggregates.
    job_req: dict[int, float] = {}
    job_mpiio: dict[int, float] = {}
    for job_id in np.unique(posix["job_id"]):
        sel = posix[posix["job_id"] == job_id]
        ops = max(int(sel["reads"].sum() + sel["writes"].sum()), 1)
        nbytes = int(sel["bytes_read"].sum() + sel["bytes_written"].sum())
        job_req[int(job_id)] = nbytes / ops
        shadows = sum(1 for rid in sel["record_id"] if int(rid) in mpiio_ids)
        job_mpiio[int(job_id)] = shadows / len(sel) if len(sel) else 0.0

    trajectories: list[UserTrajectory] = []
    for user in np.unique(jobs["user_id"]):
        rows = jobs[jobs["user_id"] == user]
        rows = rows[np.argsort(rows["start_time"], kind="stable")]
        req = np.array(
            [job_req[int(j)] for j in rows["job_id"] if int(j) in job_req]
        )
        mp = np.array(
            [job_mpiio[int(j)] for j in rows["job_id"] if int(j) in job_mpiio]
        )
        if len(req) < min_jobs:
            continue
        order = np.arange(len(req), dtype=np.float64)
        trajectories.append(
            UserTrajectory(
                user_id=int(user),
                njobs=len(req),
                request_sizes=req,
                mpiio_shares=mp,
                trend=_spearman(order, req),
            )
        )
    return TuningReport(platform=store.platform, trajectories=tuple(trajectories))

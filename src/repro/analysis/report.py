"""ASCII rendering of analysis results — the bench harness output."""

from __future__ import annotations

from typing import Iterable, Sequence


def render_table(
    headers: Sequence[str], rows: Iterable[Sequence[str]], title: str = ""
) -> str:
    """Render an aligned ASCII table."""
    rows = [list(map(str, r)) for r in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, header has {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_results(title: str, headers: Sequence[str], results) -> str:
    """Render objects exposing ``to_rows()`` into one table."""
    if not isinstance(results, (list, tuple)):
        results = [results]
    rows: list[list[str]] = []
    for r in results:
        rows.extend(r.to_rows())
    return render_table(headers, rows, title=title)


#: Canonical headers per experiment, used by the bench harness.
HEADERS = {
    "table2": ["system", "logs", "jobs", "files", "node-hours", "logs/job"],
    "table3": ["system", "layer", "files", "read", "write", "R/W"],
    "table4": ["system", "layer", ">1TB read files", ">1TB write files"],
    "table5": ["system", "in-system only", "both", "PFS only", "in-sys-only %"],
    "table6": ["system", "layer", "POSIX", "MPI-IO", "STDIO"],
    "fig3": ["system", "layer", "ifaces", "dir", "files", "<=1GB", "<=10GB", "<=100GB", "<=1TB"],
    "fig9": ["system", "layer", "iface", "dir", "files", "<=100MB", "<=1GB", "<=10GB"],
    "fig4": ["system", "layer", "dir", "jobs", "calls",
             "0_100", "100_1K", "1K_10K", "10K_100K", "100K_1M",
             "1M_4M", "4M_10M", "10M_100M", "100M_1G", "1G_PLUS"],
    "fig6": ["system", "ifaces", "layer", "read-only", "read-write", "write-only"],
    "fig7": ["system", "flavor", "domain", "read", "write"],
    "fig11": ["system", "layer", "dir", "iface", "bin", "n",
              "median MB/s", "q1 MB/s", "q3 MB/s"],
    "users": ["system", "users", "top-10% job share", "top-10% byte share",
              "gini(jobs)", "gini(bytes)"],
    "temporal": ["system", "dir", "peak/mean", "busiest hour"],
    "variability": ["layer", "iface", "dir", "bin", "n", "median MB/s",
                    "IQR ratio", "p90/p10"],
    "tuning": ["system", "users", "improving", "flat", "regressing"],
    "whatif": ["system", "scenario", "layer", "dir", "files", "base s",
               "what-if s", "time x", "base MB/s", "what-if MB/s",
               "base util", "what-if util"],
    "compare": ["row", "column", "a", "b", "delta", "delta %"],
    "catalog": ["member", "kind", "facility", "platform", "period",
                "gen", "rows", "jobs"],
}

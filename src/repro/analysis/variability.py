"""Performance variability under production load (TOKIO-flavored).

TOKIO (reference [11]) characterizes how the *same* I/O pattern performs
differently across time on production systems. §3.4 of the paper shows
the same phenomenon through box-plot whiskers. This module quantifies it:
per (layer, interface, direction, transfer bin), the dispersion of the
per-file bandwidths — interquartile ratio and p90/p10 span — so the
contention model's production-load signature can be validated and
compared across configurations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.context import AnalysisContext, resolve
from repro.darshan.bins import TRANSFER_SIZE_BINS, SizeBins
from repro.platforms.interfaces import IOInterface
from repro.store.recordstore import RecordStore


@dataclass(frozen=True)
class VariabilityCell:
    """Dispersion of per-file bandwidth in one (layer, iface, dir, bin)."""

    layer: str
    interface: str
    direction: str
    bin_label: str
    n: int
    median: float
    iqr_ratio: float   # q3 / q1
    p90_over_p10: float

    def to_rows(self) -> list[list[str]]:
        return [
            [
                self.layer, self.interface, self.direction, self.bin_label,
                str(self.n), f"{self.median / 1e6:.1f}",
                f"{self.iqr_ratio:.2f}", f"{self.p90_over_p10:.2f}",
            ]
        ]


def bandwidth_variability(
    store: RecordStore,
    *,
    bins: SizeBins = TRANSFER_SIZE_BINS,
    min_samples: int = 30,
    context: AnalysisContext | None = None,
) -> list[VariabilityCell]:
    """Dispersion cells for all shared-file populations with enough data."""
    ctx = resolve(store, context)
    key = ("result", "bandwidth_variability", bins.name, bins.edges, min_samples)
    return ctx.cached(key, lambda: _compute(ctx, bins, min_samples))


def _compute(
    ctx: AnalysisContext, bins: SizeBins, min_samples: int
) -> list[VariabilityCell]:
    out: list[VariabilityCell] = []
    for layer, code in ctx.layer_items():
        for iface in (IOInterface.POSIX, IOInterface.STDIO):
            keys = ("shared", ("layer", code), ("interface", int(iface)))
            for direction, bytes_col, time_col in (
                ("read", "bytes_read", "read_time"),
                ("write", "bytes_written", "write_time"),
            ):
                nbytes = ctx.gather(bytes_col, *keys).astype(np.float64)
                times = ctx.gather(time_col, *keys)
                ok = (nbytes > 0) & (times > 0)
                bw = nbytes[ok] / times[ok]
                bin_idx = bins.index_array(nbytes[ok])
                for b in range(bins.nbins):
                    vals = bw[bin_idx == b]
                    if len(vals) < min_samples:
                        continue
                    q1, med, q3 = np.percentile(vals, [25, 50, 75])
                    p10, p90 = np.percentile(vals, [10, 90])
                    out.append(
                        VariabilityCell(
                            layer=layer,
                            interface=iface.label,
                            direction=direction,
                            bin_label=bins.labels[b],
                            n=int(len(vals)),
                            median=float(med),
                            iqr_ratio=float(q3 / q1) if q1 > 0 else float("inf"),
                            p90_over_p10=float(p90 / p10) if p10 > 0 else float("inf"),
                        )
                    )
    return out


def median_iqr_ratio(cells: list[VariabilityCell]) -> float:
    """Aggregate variability indicator across all populated cells."""
    ratios = [c.iqr_ratio for c in cells if np.isfinite(c.iqr_ratio)]
    return float(np.median(ratios)) if ratios else float("nan")

"""Table 2: dataset summary — logs, jobs, files, node-hours."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.context import AnalysisContext, resolve
from repro.store.recordstore import RecordStore
from repro.units import format_count


@dataclass(frozen=True)
class DatasetSummary:
    """One platform's row of Table 2 (raw counts at store scale plus the
    full-year extrapolation)."""

    platform: str
    scale: float
    logs: int
    jobs: int
    files: int
    node_hours: float
    #: Min/max Darshan logs per job (the paper quotes 1-34,341 / 1-9,999).
    logs_per_job_min: int
    logs_per_job_max: int

    @property
    def logs_scaled(self) -> float:
        return self.logs / self.scale

    @property
    def jobs_scaled(self) -> float:
        return self.jobs / self.scale

    @property
    def files_scaled(self) -> float:
        return self.files / self.scale

    @property
    def node_hours_scaled(self) -> float:
        return self.node_hours / self.scale

    def to_rows(self) -> list[list[str]]:
        return [
            [
                self.platform,
                format_count(self.logs_scaled),
                format_count(self.jobs_scaled),
                format_count(self.files_scaled),
                format_count(self.node_hours_scaled),
                f"{self.logs_per_job_min}-{format_count(self.logs_per_job_max, precision=0)}",
            ]
        ]


def dataset_summary(
    store: RecordStore, *, context: AnalysisContext | None = None
) -> DatasetSummary:
    """Compute Table 2 for one platform's store.

    Files are the paper's unit: unique (path, log) pairs, i.e. rows from
    POSIX/STDIO (MPI-IO files are counted once through their POSIX shadow
    — §3.1 accounting).
    """
    ctx = resolve(store, context)
    return ctx.cached(("result", "dataset_summary"), lambda: _compute(ctx))


def _compute(ctx: AnalysisContext) -> DatasetSummary:
    store = ctx.store
    nfiles = int(ctx.mask("unique").sum())
    jobs = store.jobs
    node_hours = float(np.sum(jobs["nnodes"].astype(np.float64) * jobs["runtime"]) / 3600.0)
    # Count logs from the job table: jobs whose I/O never touched a
    # tracked layer still produced Darshan logs (Table 2 counts them;
    # Table 5's layer partition does not).
    nlogs = int(jobs["nlogs"].sum()) if len(jobs) else store.nlogs
    lpj_min = int(jobs["nlogs"].min()) if len(jobs) else 0
    lpj_max = int(jobs["nlogs"].max()) if len(jobs) else 0
    return DatasetSummary(
        platform=store.platform,
        scale=store.scale,
        logs=nlogs,
        jobs=len(jobs),
        files=nfiles,
        node_hours=node_hours,
        logs_per_job_min=lpj_min,
        logs_per_job_max=lpj_max,
    )

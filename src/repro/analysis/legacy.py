"""Seed (pre-context) analysis implementations, preserved verbatim.

These are the direct per-analysis scan paths the analysis package
shipped with before the shared :mod:`repro.analysis.context` layer: each
function recomputes its own boolean masks over ``store.files`` and
fancy-indexes full record rows. They are kept as the **golden reference**
for ``tests/test_analysis_equivalence.py``, which asserts the context
path produces bit-identical results — the refactor must never silently
change a paper number.

Do not "optimize" this module; its value is that it does not share code
with the fast path. New analyses do not need a twin here unless they
join the equivalence suite.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.cdf import BoxStats, boxplot_stats, cdf_at, weighted_cdf
from repro.analysis.dataset_summary import DatasetSummary
from repro.analysis.domain_usage import DomainUsage
from repro.analysis.exclusivity import LayerExclusivity
from repro.analysis.file_classification import FileClassification
from repro.analysis.interface_usage import InterfaceUsage
from repro.analysis.large_files import LargeFiles
from repro.analysis.layer_volumes import LayerRow, LayerVolumes
from repro.analysis.performance import PerformanceByBin
from repro.analysis.request_cdfs import RequestCdf
from repro.analysis.transfer_cdfs import (
    FIG3_LABELS,
    FIG3_THRESHOLDS,
    FIG9_LABELS,
    FIG9_THRESHOLDS,
    TransferCdf,
)
from repro.analysis.variability import VariabilityCell
from repro.darshan.bins import ACCESS_SIZE_BINS, TRANSFER_SIZE_BINS, SizeBins
from repro.platforms.interfaces import IOInterface
from repro.store.recordstore import RecordStore
from repro.store.schema import (
    LAYER_CODES,
    LAYER_INSYSTEM,
    LAYER_PFS,
    OPCLASS_NAMES,
)
from repro.units import TB


def dataset_summary(store: RecordStore) -> DatasetSummary:
    """Seed Table 2 path."""
    f = store.files
    unique_mask = f["interface"] != int(IOInterface.MPIIO)
    nfiles = int(unique_mask.sum())
    jobs = store.jobs
    node_hours = float(np.sum(jobs["nnodes"].astype(np.float64) * jobs["runtime"]) / 3600.0)
    nlogs = int(jobs["nlogs"].sum()) if len(jobs) else store.nlogs
    lpj_min = int(jobs["nlogs"].min()) if len(jobs) else 0
    lpj_max = int(jobs["nlogs"].max()) if len(jobs) else 0
    return DatasetSummary(
        platform=store.platform,
        scale=store.scale,
        logs=nlogs,
        jobs=len(jobs),
        files=nfiles,
        node_hours=node_hours,
        logs_per_job_min=lpj_min,
        logs_per_job_max=lpj_max,
    )


def layer_volumes(store: RecordStore) -> LayerVolumes:
    """Seed Table 3 path."""
    f = store.files
    unique = f[f["interface"] != int(IOInterface.MPIIO)]
    rows = {}
    for name, code in (("insystem", LAYER_INSYSTEM), ("pfs", LAYER_PFS)):
        sel = unique[unique["layer"] == code]
        rows[name] = LayerRow(
            layer=name,
            files=len(sel),
            bytes_read=int(sel["bytes_read"].sum()),
            bytes_written=int(sel["bytes_written"].sum()),
        )
    return LayerVolumes(
        platform=store.platform,
        scale=store.scale,
        insystem=rows["insystem"],
        pfs=rows["pfs"],
    )


def large_files(store: RecordStore, threshold: int = 1 * TB) -> LargeFiles:
    """Seed Table 4 path."""
    f = store.files
    unique = f[f["interface"] != int(IOInterface.MPIIO)]
    counts = {}
    for name, code in (("insystem", LAYER_INSYSTEM), ("pfs", LAYER_PFS)):
        sel = unique[unique["layer"] == code]
        counts[name] = (
            int((sel["bytes_read"] > threshold).sum()),
            int((sel["bytes_written"] > threshold).sum()),
        )
    return LargeFiles(
        platform=store.platform,
        scale=store.scale,
        threshold=threshold,
        counts=counts,
    )


def layer_exclusivity(store: RecordStore) -> LayerExclusivity:
    """Seed Table 5 path."""
    f = store.files
    job_ids = store.jobs["job_id"]
    touches_pfs = np.isin(
        job_ids, np.unique(f["job_id"][f["layer"] == LAYER_PFS])
    )
    touches_ins = np.isin(
        job_ids, np.unique(f["job_id"][f["layer"] == LAYER_INSYSTEM])
    )
    return LayerExclusivity(
        platform=store.platform,
        scale=store.scale,
        insystem_only=int((touches_ins & ~touches_pfs).sum()),
        both=int((touches_ins & touches_pfs).sum()),
        pfs_only=int((touches_pfs & ~touches_ins).sum()),
    )


def interface_usage(store: RecordStore) -> InterfaceUsage:
    """Seed Table 6 path."""
    f = store.files
    counts: dict[str, dict[str, int]] = {}
    for name, code in (("insystem", LAYER_INSYSTEM), ("pfs", LAYER_PFS)):
        sel = f[f["layer"] == code]
        counts[name] = {
            iface.label: int((sel["interface"] == int(iface)).sum())
            for iface in IOInterface
        }
    return InterfaceUsage(platform=store.platform, scale=store.scale, counts=counts)


def _direction_bytes(files: np.ndarray, direction: str) -> np.ndarray:
    col = "bytes_read" if direction == "read" else "bytes_written"
    vals = files[col]
    return vals[vals > 0]


def transfer_cdfs(
    store: RecordStore,
    *,
    thresholds: np.ndarray = FIG3_THRESHOLDS,
    labels: tuple[str, ...] = FIG3_LABELS,
) -> list[TransferCdf]:
    """Seed Figure 3 path."""
    f = store.files
    unique = f[f["interface"] != int(IOInterface.MPIIO)]
    out = []
    for layer, code in LAYER_CODES.items():
        if layer == "other":
            continue
        sel = unique[unique["layer"] == code]
        for direction in ("read", "write"):
            values = _direction_bytes(sel, direction)
            if values.size == 0:
                continue
            out.append(
                TransferCdf(
                    platform=store.platform,
                    layer=layer,
                    direction=direction,
                    interface="",
                    nfiles=int(values.size),
                    thresholds=tuple(float(t) for t in thresholds),
                    labels=labels,
                    percent_at=tuple(cdf_at(values, thresholds)),
                )
            )
    return out


def interface_transfer_cdfs(
    store: RecordStore,
    *,
    thresholds: np.ndarray = FIG9_THRESHOLDS,
    labels: tuple[str, ...] = FIG9_LABELS,
) -> list[TransferCdf]:
    """Seed Figure 9 path."""
    f = store.files
    out = []
    for iface in IOInterface:
        by_iface = f[f["interface"] == int(iface)]
        for layer, code in LAYER_CODES.items():
            if layer == "other":
                continue
            sel = by_iface[by_iface["layer"] == code]
            for direction in ("read", "write"):
                values = _direction_bytes(sel, direction)
                if values.size == 0:
                    continue
                out.append(
                    TransferCdf(
                        platform=store.platform,
                        layer=layer,
                        direction=direction,
                        interface=iface.label,
                        nfiles=int(values.size),
                        thresholds=tuple(float(t) for t in thresholds),
                        labels=labels,
                        percent_at=tuple(cdf_at(values, thresholds)),
                    )
                )
    return out


def request_cdfs(
    store: RecordStore, *, large_jobs_only: bool = False
) -> list[RequestCdf]:
    """Seed Figure 4/5 path."""
    f = store.files
    sel = f[f["interface"] == int(IOInterface.POSIX)]
    if large_jobs_only:
        sel = sel[sel["nprocs"] > 1024]
    out = []
    for layer, code in LAYER_CODES.items():
        if layer == "other":
            continue
        per_layer = sel[sel["layer"] == code]
        if not len(per_layer):
            continue
        for direction, col in (("read", "read_hist"), ("write", "write_hist")):
            totals = per_layer[col].sum(axis=0)
            if totals.sum() == 0:
                continue
            out.append(
                RequestCdf(
                    platform=store.platform,
                    layer=layer,
                    direction=direction,
                    large_jobs_only=large_jobs_only,
                    total_calls=int(totals.sum()),
                    bin_labels=ACCESS_SIZE_BINS.labels,
                    cumulative_percent=tuple(weighted_cdf(totals)),
                    bin_totals=tuple(int(t) for t in totals),
                )
            )
    return out


def file_classification(
    store: RecordStore, *, stdio_only: bool = False
) -> FileClassification:
    """Seed Figure 6/8 path."""
    f = store.files
    if stdio_only:
        mask = f["interface"] == int(IOInterface.STDIO)
    else:
        mask = f["interface"] != int(IOInterface.MPIIO)
    sub = store.filter(mask)
    opclass = sub.opclass()
    counts: dict[str, dict[str, int]] = {}
    for layer, code in (("insystem", LAYER_INSYSTEM), ("pfs", LAYER_PFS)):
        layer_mask = sub.files["layer"] == code
        counts[layer] = {
            name: int(np.sum(layer_mask & (opclass == cls_code)))
            for cls_code, name in OPCLASS_NAMES.items()
        }
    return FileClassification(
        platform=store.platform,
        scale=store.scale,
        interfaces="stdio" if stdio_only else "posix+stdio",
        counts=counts,
    )


def _collect(store: RecordStore, files: np.ndarray, flavor: str) -> DomainUsage:
    codes = files["domain"]
    volumes: dict[str, tuple[int, int]] = {}
    for code in np.unique(codes):
        sel = files[codes == code]
        name = store.domains[code] if code >= 0 else ""
        volumes[name] = (
            int(sel["bytes_read"].sum()),
            int(sel["bytes_written"].sum()),
        )
    job_ids = np.unique(files["job_id"])
    jobs = store.jobs[np.isin(store.jobs["job_id"], job_ids)]
    jobs_by_domain: dict[str, int] = {}
    for code in np.unique(jobs["domain"]):
        name = store.domains[code] if code >= 0 else ""
        jobs_by_domain[name] = int((jobs["domain"] == code).sum())
    return DomainUsage(
        platform=store.platform,
        scale=store.scale,
        flavor=flavor,
        volumes=volumes,
        jobs_total=len(jobs),
        jobs_with_domain=int((jobs["domain"] >= 0).sum()),
        jobs_by_domain=jobs_by_domain,
    )


def insystem_domain_usage(store: RecordStore) -> DomainUsage:
    """Seed Figure 7 path."""
    f = store.files
    sel = f[
        (f["layer"] == LAYER_INSYSTEM)
        & (f["interface"] != int(IOInterface.MPIIO))
    ]
    return _collect(store, sel, "insystem")


def stdio_domain_usage(store: RecordStore) -> DomainUsage:
    """Seed Figure 10 path."""
    f = store.files
    sel = f[f["interface"] == int(IOInterface.STDIO)]
    return _collect(store, sel, "stdio")


def performance_by_bin(
    store: RecordStore,
    *,
    bins: SizeBins = TRANSFER_SIZE_BINS,
) -> list[PerformanceByBin]:
    """Seed Figure 11/12 path."""
    f = store.files
    shared = f[f["rank"] == -1]
    out = []
    for layer, code in LAYER_CODES.items():
        if layer == "other":
            continue
        by_layer = shared[shared["layer"] == code]
        for direction, bytes_col, time_col in (
            ("read", "bytes_read", "read_time"),
            ("write", "bytes_written", "write_time"),
        ):
            boxes: dict[str, tuple[BoxStats, ...]] = {}
            for iface in (IOInterface.POSIX, IOInterface.STDIO):
                sel = by_layer[by_layer["interface"] == int(iface)]
                nbytes = sel[bytes_col].astype(np.float64)
                times = sel[time_col]
                valid = (nbytes > 0) & (times > 0)
                nbytes, times = nbytes[valid], times[valid]
                bw = nbytes / times
                bin_idx = bins.index_array(nbytes)
                per_bin = []
                for b in range(bins.nbins):
                    per_bin.append(boxplot_stats(bw[bin_idx == b]))
                boxes[iface.label] = tuple(per_bin)
            if any(box.n for per in boxes.values() for box in per):
                out.append(
                    PerformanceByBin(
                        platform=store.platform,
                        layer=layer,
                        direction=direction,
                        bin_labels=bins.labels,
                        boxes=boxes,
                    )
                )
    return out


def bandwidth_variability(
    store: RecordStore,
    *,
    bins: SizeBins = TRANSFER_SIZE_BINS,
    min_samples: int = 30,
) -> list[VariabilityCell]:
    """Seed variability path (TOKIO-flavored dispersion cells)."""
    f = store.files
    shared = f[f["rank"] == -1]
    out: list[VariabilityCell] = []
    for layer, code in LAYER_CODES.items():
        if layer == "other":
            continue
        per_layer = shared[shared["layer"] == code]
        for iface in (IOInterface.POSIX, IOInterface.STDIO):
            sel = per_layer[per_layer["interface"] == int(iface)]
            for direction, bytes_col, time_col in (
                ("read", "bytes_read", "read_time"),
                ("write", "bytes_written", "write_time"),
            ):
                nbytes = sel[bytes_col].astype(np.float64)
                times = sel[time_col]
                ok = (nbytes > 0) & (times > 0)
                bw = nbytes[ok] / times[ok]
                bin_idx = bins.index_array(nbytes[ok])
                for b in range(bins.nbins):
                    vals = bw[bin_idx == b]
                    if len(vals) < min_samples:
                        continue
                    q1, med, q3 = np.percentile(vals, [25, 50, 75])
                    p10, p90 = np.percentile(vals, [10, 90])
                    out.append(
                        VariabilityCell(
                            layer=layer,
                            interface=iface.label,
                            direction=direction,
                            bin_label=bins.labels[b],
                            n=int(len(vals)),
                            median=float(med),
                            iqr_ratio=float(q3 / q1) if q1 > 0 else float("inf"),
                            p90_over_p10=float(p90 / p10) if p10 > 0 else float("inf"),
                        )
                    )
    return out

"""Figures 11 and 12: POSIX vs STDIO bandwidth by transfer-size bin.

Exactly the paper's §3.4 methodology:

* restrict to *single shared files* — records with rank −1, where all
  processes participate and the accumulated timers cover the whole
  concurrent access (per-rank partial records leave synchronization
  uncertain, so they are excluded);
* per-file bandwidth = ``BYTES_{READ,WRITTEN} / F_{READ,WRITE}_TIME``;
* group by bins of the direction's transfer size and box-plot per bin.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.cdf import BoxStats, boxplot_stats
from repro.analysis.context import AnalysisContext, resolve
from repro.darshan.bins import TRANSFER_SIZE_BINS, SizeBins
from repro.platforms.interfaces import IOInterface
from repro.store.recordstore import RecordStore


@dataclass(frozen=True)
class PerformanceByBin:
    """One panel of Figure 11/12: boxes per bin for POSIX and STDIO."""

    platform: str
    layer: str
    direction: str
    bin_labels: tuple[str, ...]
    #: {interface label: tuple of BoxStats, one per bin}
    boxes: dict[str, tuple[BoxStats, ...]]

    def median_speedup(self, bin_label: str) -> float:
        """POSIX-over-STDIO median bandwidth ratio in one bin.

        NaN when either box is empty — the paper had missing boxes too
        ("some of the boxplots are missing because of the absence of
        files in that size range").
        """
        i = self.bin_labels.index(bin_label)
        posix = self.boxes["POSIX"][i]
        stdio = self.boxes["STDIO"][i]
        if posix.n == 0 or stdio.n == 0 or stdio.median == 0:
            return float("nan")
        return posix.median / stdio.median

    def to_rows(self) -> list[list[str]]:
        rows = []
        for iface, per_bin in self.boxes.items():
            for label, box in zip(self.bin_labels, per_bin):
                if box.n == 0:
                    continue
                rows.append(
                    [
                        self.platform,
                        self.layer,
                        self.direction,
                        iface,
                        label,
                        str(box.n),
                        f"{box.median / 1e6:.1f}",
                        f"{box.q1 / 1e6:.1f}",
                        f"{box.q3 / 1e6:.1f}",
                    ]
                )
        return rows


def performance_by_bin(
    store: RecordStore,
    *,
    bins: SizeBins = TRANSFER_SIZE_BINS,
    context: AnalysisContext | None = None,
) -> list[PerformanceByBin]:
    """Compute all four panels (layer x direction) for one platform."""
    ctx = resolve(store, context)
    key = ("result", "performance_by_bin", bins.name, bins.edges)
    return ctx.cached(key, lambda: _compute(ctx, bins))


def _compute(ctx: AnalysisContext, bins: SizeBins) -> list[PerformanceByBin]:
    store = ctx.store
    out = []
    for layer, code in ctx.layer_items():
        for direction, bytes_col, time_col in (
            ("read", "bytes_read", "read_time"),
            ("write", "bytes_written", "write_time"),
        ):
            boxes: dict[str, tuple[BoxStats, ...]] = {}
            for iface in (IOInterface.POSIX, IOInterface.STDIO):
                keys = ("shared", ("layer", code), ("interface", int(iface)))
                nbytes = ctx.gather(bytes_col, *keys).astype(np.float64)
                times = ctx.gather(time_col, *keys)
                valid = (nbytes > 0) & (times > 0)
                nbytes, times = nbytes[valid], times[valid]
                bw = nbytes / times
                bin_idx = bins.index_array(nbytes)
                per_bin = []
                for b in range(bins.nbins):
                    per_bin.append(boxplot_stats(bw[bin_idx == b]))
                boxes[iface.label] = tuple(per_bin)
            if any(box.n for per in boxes.values() for box in per):
                out.append(
                    PerformanceByBin(
                        platform=store.platform,
                        layer=layer,
                        direction=direction,
                        bin_labels=bins.labels,
                        boxes=boxes,
                    )
                )
    return out


def panel(
    results: list[PerformanceByBin], layer: str, direction: str
) -> PerformanceByBin:
    """Select one panel from :func:`performance_by_bin` output."""
    for r in results:
        if r.layer == layer and r.direction == direction:
            return r
    raise KeyError(f"no panel for layer={layer!r} direction={direction!r}")

"""User-behavior statistics, in the spirit of Lim et al. (SC '17).

The related work (§4) characterizes "scientific user behavior and
data-sharing trends": how concentrated activity is across users, how many
jobs/files/bytes each user drives. The paper's own dataset carries user
ids; this module computes the standard concentration statistics over a
store so the synthetic population can be inspected the same way (and the
generator's skewed user model — few users run most jobs — is testable).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.context import AnalysisContext, resolve
from repro.errors import AnalysisError
from repro.store.recordstore import RecordStore


@dataclass(frozen=True)
class UserActivity:
    """Per-user aggregates plus concentration summaries."""

    platform: str
    nusers: int
    #: Sorted descending: jobs, files, bytes per user.
    jobs_per_user: np.ndarray
    files_per_user: np.ndarray
    bytes_per_user: np.ndarray

    def top_share(self, k: int, what: str = "bytes") -> float:
        """Share of activity driven by the top-k users."""
        arr = self._select(what)
        total = arr.sum()
        if total <= 0:
            return float("nan")
        return float(arr[:k].sum() / total)

    def gini(self, what: str = "bytes") -> float:
        """Gini coefficient of the per-user distribution (0 = equal)."""
        arr = np.sort(self._select(what).astype(np.float64))
        n = len(arr)
        total = arr.sum()
        if n == 0 or total <= 0:
            return float("nan")
        index = np.arange(1, n + 1)
        return float((2 * (index * arr).sum()) / (n * total) - (n + 1) / n)

    def _select(self, what: str) -> np.ndarray:
        try:
            return {
                "jobs": self.jobs_per_user,
                "files": self.files_per_user,
                "bytes": self.bytes_per_user,
            }[what]
        except KeyError:
            raise AnalysisError(
                f"unknown activity axis {what!r}; use jobs/files/bytes"
            ) from None

    def to_rows(self) -> list[list[str]]:
        return [
            [
                self.platform,
                str(self.nusers),
                f"{100 * self.top_share(max(1, self.nusers // 10), 'jobs'):.1f}%",
                f"{100 * self.top_share(max(1, self.nusers // 10), 'bytes'):.1f}%",
                f"{self.gini('jobs'):.3f}",
                f"{self.gini('bytes'):.3f}",
            ]
        ]


def user_activity(
    store: RecordStore, *, context: AnalysisContext | None = None
) -> UserActivity:
    """Compute per-user activity for a store."""
    ctx = resolve(store, context)
    return ctx.cached(("result", "user_activity"), lambda: _compute(ctx))


def _compute(ctx: AnalysisContext) -> UserActivity:
    store = ctx.store
    jobs = store.jobs
    files = store.files
    if not len(jobs):
        raise AnalysisError("store has no jobs")
    users, job_counts = np.unique(jobs["user_id"], return_counts=True)
    user_index = {int(u): i for i, u in enumerate(users)}

    file_counts = np.zeros(len(users), dtype=np.int64)
    byte_counts = np.zeros(len(users), dtype=np.int64)
    fu, fc = np.unique(files["user_id"], return_counts=True)
    for u, c in zip(fu, fc):
        idx = user_index.get(int(u))
        if idx is not None:
            file_counts[idx] = c
    volumes = ctx.transfer_sizes()
    order = np.argsort(files["user_id"], kind="stable")
    sorted_users = files["user_id"][order]
    sorted_vol = volumes[order]
    boundaries = np.searchsorted(sorted_users, users)
    boundaries = np.append(boundaries, len(sorted_users))
    for i in range(len(users)):
        byte_counts[i] = sorted_vol[boundaries[i] : boundaries[i + 1]].sum()

    def desc(a: np.ndarray) -> np.ndarray:
        return np.sort(a)[::-1]

    return UserActivity(
        platform=store.platform,
        nusers=len(users),
        jobs_per_user=desc(job_counts),
        files_per_user=desc(file_counts),
        bytes_per_user=desc(byte_counts),
    )

"""Distribution helpers: CDF evaluation and box-plot statistics."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError


def cdf_at(values: np.ndarray, thresholds: np.ndarray) -> np.ndarray:
    """Fraction of ``values`` <= each threshold (empirical CDF).

    Returns percentages in [0, 100]. Empty input raises
    :class:`AnalysisError` — a silent all-zero CDF would read as "no
    small files" rather than "no data".
    """
    values = np.asarray(values)
    if values.size == 0:
        raise AnalysisError("cannot build a CDF over an empty selection")
    values = np.sort(values)
    counts = np.searchsorted(values, np.asarray(thresholds), side="right")
    return 100.0 * counts / values.size


def weighted_cdf(weights_per_bin: np.ndarray) -> np.ndarray:
    """Cumulative percentage per ordered bin from per-bin totals.

    Used for the request-size CDFs (Figures 4/5), where Darshan only
    provides binned counts.
    """
    w = np.asarray(weights_per_bin, dtype=np.float64)
    total = w.sum()
    if total <= 0:
        raise AnalysisError("cannot build a CDF from zero total weight")
    return 100.0 * np.cumsum(w) / total


@dataclass(frozen=True)
class BoxStats:
    """Five-number summary plus count — one box of Figures 11/12."""

    n: int
    median: float
    q1: float
    q3: float
    whisker_lo: float
    whisker_hi: float

    @classmethod
    def empty(cls) -> "BoxStats":
        nan = float("nan")
        return cls(0, nan, nan, nan, nan, nan)


def boxplot_stats(values: np.ndarray) -> BoxStats:
    """Tukey box-plot statistics (1.5 IQR whiskers clipped to data)."""
    values = np.asarray(values, dtype=np.float64)
    values = values[np.isfinite(values)]
    if values.size == 0:
        return BoxStats.empty()
    q1, med, q3 = np.percentile(values, [25, 50, 75])
    iqr = q3 - q1
    lo_fence, hi_fence = q1 - 1.5 * iqr, q3 + 1.5 * iqr
    inside = values[(values >= lo_fence) & (values <= hi_fence)]
    if inside.size == 0:
        inside = values
    return BoxStats(
        n=int(values.size),
        median=float(med),
        q1=float(q1),
        q3=float(q3),
        # Whiskers clip outliers but never retract inside the box: when
        # every value beyond a quartile jumps its fence, the interpolated
        # quartile can pass the nearest inside value, and the whisker
        # collapses onto the box edge (matplotlib semantics).
        whisker_lo=float(min(inside.min(), q1)),
        whisker_hi=float(max(inside.max(), q3)),
    )

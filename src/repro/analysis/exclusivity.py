"""Table 5: jobs accessing files exclusively on one layer, or both.

The asymmetry between platforms is the finding: DataWarp's scheduler-side
staging makes 14.38% of Cori jobs CBB-exclusive (their PFS traffic happens
outside the Darshan window), while Summit's runtime-side staging
(Spectral/UnifyFS) leaves essentially no SCNL-exclusive jobs (§3.2.2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.context import AnalysisContext, resolve
from repro.store.recordstore import RecordStore
from repro.store.schema import LAYER_INSYSTEM, LAYER_PFS
from repro.units import format_count


@dataclass(frozen=True)
class LayerExclusivity:
    platform: str
    scale: float
    insystem_only: int
    both: int
    pfs_only: int

    @property
    def total(self) -> int:
        return self.insystem_only + self.both + self.pfs_only

    def insystem_only_fraction(self) -> float:
        """Cori's headline 14.38%."""
        return self.insystem_only / self.total if self.total else float("nan")

    def to_rows(self) -> list[list[str]]:
        return [
            [
                self.platform,
                format_count(self.insystem_only / self.scale),
                format_count(self.both / self.scale),
                format_count(self.pfs_only / self.scale),
                f"{100 * self.insystem_only_fraction():.2f}%",
            ]
        ]


def layer_exclusivity(
    store: RecordStore, *, context: AnalysisContext | None = None
) -> LayerExclusivity:
    """Compute Table 5 for one platform (over jobs with any file record)."""
    ctx = resolve(store, context)
    return ctx.cached(("result", "layer_exclusivity"), lambda: _compute(ctx))


def _compute(ctx: AnalysisContext) -> LayerExclusivity:
    store = ctx.store
    job_ids = store.jobs["job_id"]
    touches_pfs = np.isin(
        job_ids, np.unique(ctx.gather("job_id", ("layer", LAYER_PFS)))
    )
    touches_ins = np.isin(
        job_ids, np.unique(ctx.gather("job_id", ("layer", LAYER_INSYSTEM)))
    )
    return LayerExclusivity(
        platform=store.platform,
        scale=store.scale,
        insystem_only=int((touches_ins & ~touches_pfs).sum()),
        both=int((touches_ins & touches_pfs).sum()),
        pfs_only=int((touches_pfs & ~touches_ins).sum()),
    )

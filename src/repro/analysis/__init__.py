"""The paper's analyses (§3), one module per table/figure family.

Every analysis consumes a :class:`~repro.store.recordstore.RecordStore`
and returns a small result object with ``to_rows()`` for rendering via
:mod:`repro.analysis.report`. All entry points share the store's
:class:`~repro.analysis.context.AnalysisContext` (one-pass masks,
groupings, and derived columns — see that module), so running several
analyses over one store scans the file table's common axes only once.
The mapping to the paper:

========================  =====================================
Module                    Reproduces
========================  =====================================
``dataset_summary``       Table 2
``layer_volumes``         Table 3
``large_files``           Table 4
``exclusivity``           Table 5
``interface_usage``       Table 6
``transfer_cdfs``         Figures 3 and 9
``request_cdfs``          Figures 4 and 5
``file_classification``   Figures 6 and 8
``domain_usage``          Figures 7 and 10
``performance``           Figures 11 and 12
========================  =====================================
"""

from repro.analysis.cdf import boxplot_stats, cdf_at
from repro.analysis.context import AnalysisContext
from repro.analysis.dataset_summary import DatasetSummary, dataset_summary
from repro.analysis.layer_volumes import LayerVolumes, layer_volumes
from repro.analysis.large_files import LargeFiles, large_files
from repro.analysis.exclusivity import LayerExclusivity, layer_exclusivity
from repro.analysis.interface_usage import InterfaceUsage, interface_usage
from repro.analysis.transfer_cdfs import (
    interface_transfer_cdfs,
    transfer_cdfs,
)
from repro.analysis.request_cdfs import request_cdfs
from repro.analysis.file_classification import file_classification
from repro.analysis.domain_usage import insystem_domain_usage, stdio_domain_usage
from repro.analysis.performance import performance_by_bin
from repro.analysis.users import UserActivity, user_activity
from repro.analysis.temporal import TemporalProfile, temporal_profile
from repro.analysis.variability import (
    VariabilityCell,
    bandwidth_variability,
    median_iqr_ratio,
)
from repro.analysis.tuning import TuningReport, tuning_report

__all__ = [
    "AnalysisContext",
    "TuningReport",
    "tuning_report",
    "UserActivity",
    "user_activity",
    "TemporalProfile",
    "temporal_profile",
    "VariabilityCell",
    "bandwidth_variability",
    "median_iqr_ratio",
    "boxplot_stats",
    "cdf_at",
    "DatasetSummary",
    "dataset_summary",
    "LayerVolumes",
    "layer_volumes",
    "LargeFiles",
    "large_files",
    "LayerExclusivity",
    "layer_exclusivity",
    "InterfaceUsage",
    "interface_usage",
    "transfer_cdfs",
    "interface_transfer_cdfs",
    "request_cdfs",
    "file_classification",
    "insystem_domain_usage",
    "stdio_domain_usage",
    "performance_by_bin",
]

"""Figures 6 and 8: read-only / read-write / write-only classification.

Figure 6 classifies files using POSIX and STDIO; Figure 8 repeats the
analysis for STDIO-managed files only, where the paper found much higher
relative use of the in-system layers. The result also carries the two
derived statistics the text quotes: the stageable share of PFS files
(RO+WO: 95.7% Summit / 90.1% Cori, Recommendation 3) and the per-class
in-system:PFS usage ratios of the Figure 8 discussion.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.context import (
    AnalysisContext,
    AppendDelta,
    register_result_fold,
    resolve,
)
from repro.platforms.interfaces import IOInterface
from repro.store.recordstore import RecordStore
from repro.store.schema import (
    LAYER_INSYSTEM,
    LAYER_PFS,
    OPCLASS_NAMES,
)
from repro.units import format_count

_CLASS_ORDER = ("read-only", "read-write", "write-only")


@dataclass(frozen=True)
class FileClassification:
    platform: str
    scale: float
    #: "posix+stdio" (Figure 6) or "stdio" (Figure 8).
    interfaces: str
    #: {layer: {opclass: count}} at store scale.
    counts: dict[str, dict[str, int]]

    def stageable_pfs_fraction(self) -> float:
        """RO+WO share of PFS files (the Recommendation 3 statistic)."""
        per = self.counts["pfs"]
        total = sum(per.values())
        if not total:
            return float("nan")
        return (per["read-only"] + per["write-only"]) / total

    def insystem_over_pfs(self, opclass: str) -> float:
        """In-system:PFS count ratio for one class (Figure 8 discussion)."""
        pfs = self.counts["pfs"][opclass]
        ins = self.counts["insystem"][opclass]
        return ins / pfs if pfs else float("inf")

    def insystem_share(self, opclass: str) -> float:
        """In-system share of a class across both layers."""
        pfs = self.counts["pfs"][opclass]
        ins = self.counts["insystem"][opclass]
        total = pfs + ins
        return ins / total if total else float("nan")

    def to_rows(self) -> list[list[str]]:
        rows = []
        for layer in ("insystem", "pfs"):
            per = self.counts[layer]
            rows.append(
                [
                    self.platform,
                    self.interfaces,
                    layer,
                    *[format_count(per[c] / self.scale) for c in _CLASS_ORDER],
                ]
            )
        return rows


def file_classification(
    store: RecordStore,
    *,
    stdio_only: bool = False,
    context: AnalysisContext | None = None,
) -> FileClassification:
    """Figure 6 (``stdio_only=False``) or Figure 8 (``True``)."""
    ctx = resolve(store, context)
    key = ("result", "file_classification", stdio_only)
    return ctx.cached(key, lambda: _compute(ctx, stdio_only))


def _compute(ctx: AnalysisContext, stdio_only: bool) -> FileClassification:
    store = ctx.store
    base = "unique" if not stdio_only else ("interface", int(IOInterface.STDIO))
    opclass = ctx.opclass()
    counts: dict[str, dict[str, int]] = {}
    for layer, code in (("insystem", LAYER_INSYSTEM), ("pfs", LAYER_PFS)):
        idx = ctx.idx(base, ("layer", code))
        per_layer = opclass[idx]
        counts[layer] = {
            name: int(np.sum(per_layer == cls_code))
            for cls_code, name in OPCLASS_NAMES.items()
        }
    return FileClassification(
        platform=store.platform,
        scale=store.scale,
        interfaces="stdio" if stdio_only else "posix+stdio",
        counts=counts,
    )


def _fold(key, old: FileClassification, delta: AppendDelta) -> FileClassification:
    """Fold appended rows into Figure 6/8: per-(layer, class) counts add."""
    stdio_only = key[2]
    base = "unique" if not stdio_only else ("interface", int(IOInterface.STDIO))
    opclass = delta.tail_opclass()
    counts: dict[str, dict[str, int]] = {}
    for layer, code in (("insystem", LAYER_INSYSTEM), ("pfs", LAYER_PFS)):
        per_layer = opclass[delta.tail_idx(base, ("layer", code))]
        counts[layer] = {
            name: old.counts[layer][name] + int(np.sum(per_layer == cls_code))
            for cls_code, name in OPCLASS_NAMES.items()
        }
    return FileClassification(
        platform=old.platform,
        scale=old.scale,
        interfaces=old.interfaces,
        counts=counts,
    )


register_result_fold("file_classification", _fold)

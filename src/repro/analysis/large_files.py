"""Table 4: files with more than 1 TB of data transfer, per layer.

The paper counts read files (read transfer > 1 TB) and write files (write
transfer > 1 TB) separately; the headline shapes are that on Summit all
such files live on the PFS, while on Cori >1 TB *writes* go to the PFS
(91.35%) and >1 TB *reads* come from CBB (87.39%).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.context import AnalysisContext, resolve
from repro.store.recordstore import RecordStore
from repro.store.schema import LAYER_INSYSTEM, LAYER_PFS
from repro.units import TB, format_count


@dataclass(frozen=True)
class LargeFiles:
    platform: str
    scale: float
    threshold: int
    #: counts at store scale: {layer: (read_files, write_files)}
    counts: dict[str, tuple[int, int]]

    def pfs_write_share(self) -> float:
        """Fraction of >threshold write files on the PFS (Cori: 91.35%)."""
        pfs = self.counts["pfs"][1]
        total = pfs + self.counts["insystem"][1]
        return pfs / total if total else float("nan")

    def insystem_read_share(self) -> float:
        """Fraction of >threshold read files on the in-system layer
        (Cori: 87.39%)."""
        ins = self.counts["insystem"][0]
        total = ins + self.counts["pfs"][0]
        return ins / total if total else float("nan")

    def to_rows(self) -> list[list[str]]:
        rows = []
        for layer in ("insystem", "pfs"):
            r, w = self.counts[layer]
            rows.append(
                [
                    self.platform,
                    layer,
                    format_count(r / self.scale, precision=0),
                    format_count(w / self.scale, precision=0),
                ]
            )
        return rows


def large_files(
    store: RecordStore,
    threshold: int = 1 * TB,
    *,
    context: AnalysisContext | None = None,
) -> LargeFiles:
    """Compute Table 4 for one platform."""
    ctx = resolve(store, context)
    key = ("result", "large_files", threshold)
    return ctx.cached(key, lambda: _compute(ctx, threshold))


def _compute(ctx: AnalysisContext, threshold: int) -> LargeFiles:
    store = ctx.store
    counts = {}
    for name, code in (("insystem", LAYER_INSYSTEM), ("pfs", LAYER_PFS)):
        keys = ("unique", ("layer", code))
        counts[name] = (
            int((ctx.gather("bytes_read", *keys) > threshold).sum()),
            int((ctx.gather("bytes_written", *keys) > threshold).sum()),
        )
    return LargeFiles(
        platform=store.platform,
        scale=store.scale,
        threshold=threshold,
        counts=counts,
    )

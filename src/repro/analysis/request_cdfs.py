"""Figures 4 and 5: CDFs of per-process request sizes over Darshan bins.

Darshan provides request sizes only as per-file histograms (POSIX and
MPI-IO; STDIO has none — §2.2), so the CDF is over *calls*: the per-bin
totals summed over files, cumulated across the ten bins. Figure 5 is the
same analysis restricted to large jobs (> 1,024 processes).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.cdf import weighted_cdf
from repro.analysis.context import (
    AnalysisContext,
    AppendDelta,
    register_result_fold,
    resolve,
)
from repro.darshan.bins import ACCESS_SIZE_BINS
from repro.platforms.interfaces import IOInterface
from repro.store.recordstore import RecordStore


@dataclass(frozen=True)
class RequestCdf:
    """One curve: cumulative % of calls per access-size bin."""

    platform: str
    layer: str
    direction: str
    large_jobs_only: bool
    total_calls: int
    bin_labels: tuple[str, ...]
    cumulative_percent: tuple[float, ...]
    #: Exact per-bin call counts behind the curve. Carried so appended
    #: rows fold exactly: integer tallies add associatively, and the
    #: cumulative percentages are recomputed from the folded tallies —
    #: bit-identical to a cold pass over the grown table.
    bin_totals: tuple[int, ...]

    def percent_in_bin(self, label: str) -> float:
        """Non-cumulative share of calls in one bin."""
        i = self.bin_labels.index(label)
        prev = self.cumulative_percent[i - 1] if i else 0.0
        return self.cumulative_percent[i] - prev

    def to_rows(self) -> list[list[str]]:
        return [
            [
                self.platform,
                self.layer,
                self.direction,
                "large" if self.large_jobs_only else "all",
                str(self.total_calls),
                *[f"{p:.1f}" for p in self.cumulative_percent],
            ]
        ]


def request_cdfs(
    store: RecordStore,
    *,
    large_jobs_only: bool = False,
    context: AnalysisContext | None = None,
) -> list[RequestCdf]:
    """Figure 4 (``large_jobs_only=False``) or Figure 5 (``True``).

    POSIX rows only: the POSIX module's histograms reflect the actual
    file-system requests (including MPI-IO traffic through its shadows),
    and STDIO has no histograms to contribute.
    """
    ctx = resolve(store, context)
    key = ("result", "request_cdfs", large_jobs_only)
    return ctx.cached(key, lambda: _compute(ctx, large_jobs_only))


def _compute(ctx: AnalysisContext, large_jobs_only: bool) -> list[RequestCdf]:
    store = ctx.store
    out = []
    for layer, code in ctx.layer_items():
        keys = [("interface", int(IOInterface.POSIX)), ("layer", code)]
        if large_jobs_only:
            keys.append("large_jobs")
        idx = ctx.idx(*keys)
        if not len(idx):
            continue
        for direction, col in (("read", "read_hist"), ("write", "write_hist")):
            # Histogram rows are 80 bytes each; the hist_sum primitive
            # reduces them without caching the gathered copy (and lets
            # the sharded context sum per row range in workers).
            totals = ctx.hist_sum(col, *keys)
            if totals.sum() == 0:
                continue
            out.append(
                RequestCdf(
                    platform=store.platform,
                    layer=layer,
                    direction=direction,
                    large_jobs_only=large_jobs_only,
                    total_calls=int(totals.sum()),
                    bin_labels=ACCESS_SIZE_BINS.labels,
                    cumulative_percent=tuple(weighted_cdf(totals)),
                    bin_totals=tuple(int(t) for t in totals),
                )
            )
    return out


def _fold(key, old: list[RequestCdf], delta: AppendDelta) -> list[RequestCdf]:
    """Fold appended rows into Figure 4/5: bin tallies add exactly.

    Rebuilds the curve list in ``_compute``'s canonical layer-by-
    direction order with identical skip rules — a layer is skipped when
    its *full* (post-append) index is empty, a direction when its folded
    tallies are all zero — so a curve that only now crosses either
    threshold appears exactly as a cold recompute would emit it.
    """
    ctx = delta.context
    large_jobs_only = key[2]
    prev: dict[tuple[str, str], np.ndarray] = {
        (c.layer, c.direction): np.asarray(c.bin_totals, dtype=np.int64)
        for c in old
    }
    out = []
    for layer, code in ctx.layer_items():
        keys = [("interface", int(IOInterface.POSIX)), ("layer", code)]
        if large_jobs_only:
            keys.append("large_jobs")
        if not len(ctx.idx(*keys)):
            continue
        for direction, col in (("read", "read_hist"), ("write", "write_hist")):
            totals = delta.tail_hist_sum(col, *keys)
            seen = prev.get((layer, direction))
            if seen is not None:
                totals = seen + totals
            if totals.sum() == 0:
                continue
            out.append(
                RequestCdf(
                    platform=ctx.store.platform,
                    layer=layer,
                    direction=direction,
                    large_jobs_only=large_jobs_only,
                    total_calls=int(totals.sum()),
                    bin_labels=ACCESS_SIZE_BINS.labels,
                    cumulative_percent=tuple(weighted_cdf(totals)),
                    bin_totals=tuple(int(t) for t in totals),
                )
            )
    return out


register_result_fold("request_cdfs", _fold)

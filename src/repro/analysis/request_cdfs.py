"""Figures 4 and 5: CDFs of per-process request sizes over Darshan bins.

Darshan provides request sizes only as per-file histograms (POSIX and
MPI-IO; STDIO has none — §2.2), so the CDF is over *calls*: the per-bin
totals summed over files, cumulated across the ten bins. Figure 5 is the
same analysis restricted to large jobs (> 1,024 processes).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.cdf import weighted_cdf
from repro.analysis.context import AnalysisContext, resolve
from repro.darshan.bins import ACCESS_SIZE_BINS
from repro.platforms.interfaces import IOInterface
from repro.store.recordstore import RecordStore


@dataclass(frozen=True)
class RequestCdf:
    """One curve: cumulative % of calls per access-size bin."""

    platform: str
    layer: str
    direction: str
    large_jobs_only: bool
    total_calls: int
    bin_labels: tuple[str, ...]
    cumulative_percent: tuple[float, ...]

    def percent_in_bin(self, label: str) -> float:
        """Non-cumulative share of calls in one bin."""
        i = self.bin_labels.index(label)
        prev = self.cumulative_percent[i - 1] if i else 0.0
        return self.cumulative_percent[i] - prev

    def to_rows(self) -> list[list[str]]:
        return [
            [
                self.platform,
                self.layer,
                self.direction,
                "large" if self.large_jobs_only else "all",
                str(self.total_calls),
                *[f"{p:.1f}" for p in self.cumulative_percent],
            ]
        ]


def request_cdfs(
    store: RecordStore,
    *,
    large_jobs_only: bool = False,
    context: AnalysisContext | None = None,
) -> list[RequestCdf]:
    """Figure 4 (``large_jobs_only=False``) or Figure 5 (``True``).

    POSIX rows only: the POSIX module's histograms reflect the actual
    file-system requests (including MPI-IO traffic through its shadows),
    and STDIO has no histograms to contribute.
    """
    ctx = resolve(store, context)
    key = ("result", "request_cdfs", large_jobs_only)
    return ctx.cached(key, lambda: _compute(ctx, large_jobs_only))


def _compute(ctx: AnalysisContext, large_jobs_only: bool) -> list[RequestCdf]:
    store = ctx.store
    f = store.files
    out = []
    for layer, code in ctx.layer_items():
        keys = [("interface", int(IOInterface.POSIX)), ("layer", code)]
        if large_jobs_only:
            keys.append("large_jobs")
        idx = ctx.idx(*keys)
        if not len(idx):
            continue
        for direction, col in (("read", "read_hist"), ("write", "write_hist")):
            # Histogram rows are 80 bytes each; gather them once per
            # group and reduce immediately rather than caching the copy.
            totals = f[col][idx].sum(axis=0)
            if totals.sum() == 0:
                continue
            out.append(
                RequestCdf(
                    platform=store.platform,
                    layer=layer,
                    direction=direction,
                    large_jobs_only=large_jobs_only,
                    total_calls=int(totals.sum()),
                    bin_labels=ACCESS_SIZE_BINS.labels,
                    cumulative_percent=tuple(weighted_cdf(totals)),
                )
            )
    return out

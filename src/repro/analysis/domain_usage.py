"""Figures 7 and 10: data transfer grouped by science domain.

Figure 7: in-system-layer usage (POSIX+STDIO transfer volume) per domain.
Figure 10: STDIO transfer volume per domain across both layers, plus the
job-coverage statistic (the paper could attach a domain to 90.02% of
Cori's STDIO jobs).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.context import AnalysisContext, resolve
from repro.platforms.interfaces import IOInterface
from repro.store.recordstore import RecordStore
from repro.store.schema import LAYER_INSYSTEM
from repro.units import format_size


@dataclass(frozen=True)
class DomainUsage:
    platform: str
    scale: float
    #: "insystem" (Figure 7) or "stdio" (Figure 10).
    flavor: str
    #: domain -> (bytes_read, bytes_written) at store scale; "" = unknown.
    volumes: dict[str, tuple[int, int]]
    #: Jobs contributing, and how many had a known domain.
    jobs_total: int
    jobs_with_domain: int
    #: domain -> number of contributing jobs (Figure 7a counts jobs).
    jobs_by_domain: dict[str, int] = None  # type: ignore[assignment]

    def job_share(self, *domains: str) -> float:
        """Share of contributing jobs from the given domains (Figure 7a:
        computer science + physics cover ~60% of SCNL jobs)."""
        if not self.jobs_total:
            return float("nan")
        hits = sum(self.jobs_by_domain.get(d, 0) for d in domains)
        return hits / self.jobs_total

    def domain_coverage(self) -> float:
        """Fraction of jobs with a known domain (Cori STDIO: 90.02%)."""
        return (
            self.jobs_with_domain / self.jobs_total
            if self.jobs_total
            else float("nan")
        )

    def top_domain(self, direction: str) -> str:
        """Domain with the largest volume in a direction (Figure 7b:
        physics carries 71.95% of CBB transfer)."""
        idx = 0 if direction == "read" else 1
        named = {d: v for d, v in self.volumes.items() if d}
        if not named:
            return ""
        return max(named, key=lambda d: named[d][idx])

    def domain_share(self, domain: str) -> float:
        """Domain's share of total (read+write) volume."""
        total = sum(r + w for r, w in self.volumes.values())
        r, w = self.volumes.get(domain, (0, 0))
        return (r + w) / total if total else float("nan")

    def to_rows(self) -> list[list[str]]:
        rows = []
        for domain in sorted(self.volumes, key=lambda d: (d == "", d)):
            r, w = self.volumes[domain]
            rows.append(
                [
                    self.platform,
                    self.flavor,
                    domain or "(unknown)",
                    format_size(r / self.scale),
                    format_size(w / self.scale),
                ]
            )
        return rows


def _collect(ctx: AnalysisContext, flavor: str, *keys) -> DomainUsage:
    store = ctx.store
    f = store.files
    idx = ctx.idx(*keys)
    codes = f["domain"][idx]
    bytes_read = f["bytes_read"][idx]
    bytes_written = f["bytes_written"][idx]
    volumes: dict[str, tuple[int, int]] = {}
    for code in np.unique(codes):
        per = codes == code
        name = store.domains[code] if code >= 0 else ""
        volumes[name] = (
            int(bytes_read[per].sum()),
            int(bytes_written[per].sum()),
        )
    job_ids = np.unique(f["job_id"][idx])
    jobs = store.jobs[np.isin(store.jobs["job_id"], job_ids)]
    jobs_by_domain: dict[str, int] = {}
    for code in np.unique(jobs["domain"]):
        name = store.domains[code] if code >= 0 else ""
        jobs_by_domain[name] = int((jobs["domain"] == code).sum())
    return DomainUsage(
        platform=store.platform,
        scale=store.scale,
        flavor=flavor,
        volumes=volumes,
        jobs_total=len(jobs),
        jobs_with_domain=int((jobs["domain"] >= 0).sum()),
        jobs_by_domain=jobs_by_domain,
    )


def insystem_domain_usage(
    store: RecordStore, *, context: AnalysisContext | None = None
) -> DomainUsage:
    """Figure 7: per-domain POSIX+STDIO transfer on the in-system layer."""
    ctx = resolve(store, context)
    return ctx.cached(
        ("result", "insystem_domain_usage"),
        lambda: _collect(ctx, "insystem", ("layer", LAYER_INSYSTEM), "unique"),
    )


def stdio_domain_usage(
    store: RecordStore, *, context: AnalysisContext | None = None
) -> DomainUsage:
    """Figure 10: per-domain STDIO transfer across both layers."""
    ctx = resolve(store, context)
    return ctx.cached(
        ("result", "stdio_domain_usage"),
        lambda: _collect(ctx, "stdio", ("interface", int(IOInterface.STDIO))),
    )

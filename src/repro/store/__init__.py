"""Columnar record store.

The study's analyses run over millions of per-file records; per-object
Python traversal would dominate runtime. This subpackage provides a NumPy
structured-array store (:mod:`recordstore`) with the file- and job-level
schemas (:mod:`schema`), ingestion from :class:`~repro.darshan.log.DarshanLog`
objects (:mod:`ingest`), and an ``.npz`` round trip (:mod:`io`).

The generator's vectorized path emits stores directly; :mod:`ingest`
proves the object path and the columnar path agree (see the integration
tests).
"""

from repro.store.schema import (
    FILE_DTYPE,
    JOB_DTYPE,
    LAYER_CODES,
    LAYER_INSYSTEM,
    LAYER_OTHER,
    LAYER_PFS,
    OPCLASS_NAMES,
)
from repro.store.recordstore import RecordStore
from repro.store.ingest import ingest_logs
from repro.store.io import load_store, save_store
from repro.store.export import export_month

__all__ = [
    "FILE_DTYPE",
    "JOB_DTYPE",
    "LAYER_CODES",
    "LAYER_PFS",
    "LAYER_INSYSTEM",
    "LAYER_OTHER",
    "OPCLASS_NAMES",
    "RecordStore",
    "ingest_logs",
    "load_store",
    "save_store",
    "export_month",
]

"""``.npz`` persistence for record stores."""

from __future__ import annotations

import json

import numpy as np

from repro.errors import StoreError
from repro.store.recordstore import RecordStore

_FORMAT = "repro-store-v1"


def save_store(store: RecordStore, path: str) -> None:
    """Write a store to a compressed ``.npz`` file."""
    meta = {
        "format": _FORMAT,
        "platform": store.platform,
        "domains": list(store.domains),
        "extensions": list(store.extensions),
        "scale": store.scale,
    }
    np.savez_compressed(
        path,
        files=store.files,
        jobs=store.jobs,
        meta=np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8),
    )


def load_store(path: str) -> RecordStore:
    """Read a store written by :func:`save_store`."""
    with np.load(path, allow_pickle=False) as npz:
        try:
            meta = json.loads(bytes(npz["meta"].tobytes()).decode("utf-8"))
            files = npz["files"]
            jobs = npz["jobs"]
        except KeyError as exc:
            raise StoreError(f"{path}: missing array {exc}") from None
    if meta.get("format") != _FORMAT:
        raise StoreError(f"{path}: unknown store format {meta.get('format')!r}")
    return RecordStore(
        meta["platform"],
        files,
        jobs,
        domains=meta["domains"],
        extensions=meta["extensions"],
        scale=meta["scale"],
    )

"""``.npz`` persistence for record stores."""

from __future__ import annotations

import json
import zipfile

import numpy as np

from repro.errors import StoreError
from repro.store.recordstore import RecordStore

_FORMAT = "repro-store-v1"

#: Version of the *meta blob's* schema, recorded alongside ``format``.
#: Bump when meta gains/changes required keys; readers accept anything
#: up to their own version (older files load, newer files are refused
#: with a typed error instead of a KeyError deep in RecordStore).
SCHEMA_VERSION = 1

_REQUIRED_META = ("platform", "domains", "extensions", "scale")


def save_store(store: RecordStore, path: str) -> None:
    """Write a store to a compressed ``.npz`` file."""
    meta = {
        "format": _FORMAT,
        "schema_version": SCHEMA_VERSION,
        "platform": store.platform,
        "domains": list(store.domains),
        "extensions": list(store.extensions),
        "scale": store.scale,
    }
    np.savez_compressed(
        path,
        files=store.files,
        jobs=store.jobs,
        meta=np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8),
    )


def _parse_meta(path: str, blob: np.ndarray) -> dict:
    """Decode and validate the JSON meta blob (typed errors only)."""
    try:
        meta = json.loads(bytes(blob.tobytes()).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise StoreError(f"{path}: corrupt store meta blob ({exc})") from None
    if not isinstance(meta, dict):
        raise StoreError(f"{path}: store meta must be a JSON object")
    if meta.get("format") != _FORMAT:
        raise StoreError(f"{path}: unknown store format {meta.get('format')!r}")
    version = meta.get("schema_version", 1)  # v1 files predate the field
    if not isinstance(version, int) or version < 1:
        raise StoreError(f"{path}: invalid schema_version {version!r}")
    if version > SCHEMA_VERSION:
        raise StoreError(
            f"{path}: store schema_version {version} is newer than this "
            f"library supports ({SCHEMA_VERSION}); upgrade repro to read it"
        )
    missing = [k for k in _REQUIRED_META if k not in meta]
    if missing:
        raise StoreError(
            f"{path}: store meta missing key(s) {', '.join(missing)}"
        )
    return meta


def load_store(path: str) -> RecordStore:
    """Read a store written by :func:`save_store`.

    Corrupt or truncated files surface as :class:`StoreError` (never a
    raw ``json``/``zipfile``/unicode exception); a missing file is still
    ``FileNotFoundError``.
    """
    try:
        with np.load(path, allow_pickle=False) as npz:
            try:
                meta = _parse_meta(path, npz["meta"])
                files = npz["files"]
                jobs = npz["jobs"]
            except KeyError as exc:
                raise StoreError(f"{path}: missing array {exc}") from None
    except (zipfile.BadZipFile, EOFError) as exc:
        raise StoreError(f"{path}: not a readable .npz ({exc})") from None
    except ValueError as exc:
        raise StoreError(f"{path}: corrupt store file ({exc})") from None
    return RecordStore(
        meta["platform"],
        files,
        jobs,
        domains=meta["domains"],
        extensions=meta["extensions"],
        scale=meta["scale"],
    )

"""Record-store persistence: portable ``.npz`` and an mmap-able raw layout.

Two on-disk layouts share one meta schema:

* **npz** (default) — a single compressed ``.npz`` file. Portable and
  compact; the whole table inflates into memory on load.
* **raw** — a *store directory* holding ``files.npy`` and ``jobs.npy``
  in plain :mod:`numpy.lib.format` plus a ``meta.json`` sidecar. Nothing
  is compressed, so :func:`load_store` can map the tables with
  ``mmap_mode="r"``: opening a facility-year store costs page-table
  setup, not a full read, and the sharded analysis workers
  (:mod:`repro.analysis.sharded`) open the same ``files.npy`` zero-copy
  instead of receiving rows over a pipe. The convention is a ``.store``
  path suffix; :func:`save_store` picks the layout from the suffix and
  :func:`load_store` detects a directory automatically.

The meta blob is identical across layouts (same required keys, same
``schema_version`` gate), so a raw store is exactly an uncompressed,
seekable spelling of its ``.npz`` twin — the round-trip tests pin the
two layouts byte-identical.
"""

from __future__ import annotations

import json
import os
import zipfile

import numpy as np

from repro.errors import StoreError
from repro.store.recordstore import RecordStore

#: Version of the *meta blob's* schema, recorded alongside ``format``.
#: Readers accept anything up to their own version (older files load,
#: newer files are refused with a typed error instead of a KeyError deep
#: in RecordStore). Re-exported from :mod:`repro.store.schema`, where it
#: lives so in-memory stores can be stamped without importing this module.
from repro.store.schema import SCHEMA_VERSION

_FORMAT = "repro-store-v1"

_REQUIRED_META = ("platform", "domains", "extensions", "scale")

#: Path suffix that selects the raw (mmap-able) layout on save.
RAW_SUFFIX = ".store"


def _meta_blob(store: RecordStore) -> dict:
    return {
        "format": _FORMAT,
        "schema_version": SCHEMA_VERSION,
        "platform": store.platform,
        "domains": list(store.domains),
        "extensions": list(store.extensions),
        "scale": store.scale,
    }


def save_store(store: RecordStore, path: str, *, layout: str | None = None) -> None:
    """Write a store to disk.

    ``layout`` is ``"npz"`` (compressed single file) or ``"raw"`` (an
    mmap-able store directory); ``None`` infers ``raw`` for paths ending
    in ``.store`` and ``npz`` otherwise.
    """
    path = os.fspath(path)
    if layout is None:
        layout = "raw" if path.endswith(RAW_SUFFIX) else "npz"
    if layout == "npz":
        np.savez_compressed(
            path,
            files=store.files,
            jobs=store.jobs,
            meta=np.frombuffer(
                json.dumps(_meta_blob(store)).encode("utf-8"), dtype=np.uint8
            ),
        )
    elif layout == "raw":
        os.makedirs(path, exist_ok=True)
        np.save(os.path.join(path, "files.npy"), store.files, allow_pickle=False)
        np.save(os.path.join(path, "jobs.npy"), store.jobs, allow_pickle=False)
        # Meta is written last: a crash mid-save leaves a directory that
        # load_store rejects with a typed error, never a half-read store.
        tmp = os.path.join(path, "meta.json.tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(_meta_blob(store), fh)
        os.replace(tmp, os.path.join(path, "meta.json"))
    else:
        raise StoreError(f"unknown store layout {layout!r} (want 'npz' or 'raw')")


def _validate_meta(path: str, meta: object) -> dict:
    """Shared meta validation for both layouts (typed errors only)."""
    if not isinstance(meta, dict):
        raise StoreError(f"{path}: store meta must be a JSON object")
    if meta.get("format") != _FORMAT:
        raise StoreError(f"{path}: unknown store format {meta.get('format')!r}")
    version = meta.get("schema_version", 1)  # v1 files predate the field
    if not isinstance(version, int) or version < 1:
        raise StoreError(f"{path}: invalid schema_version {version!r}")
    if version > SCHEMA_VERSION:
        raise StoreError(
            f"{path}: store schema_version {version} is newer than this "
            f"library supports ({SCHEMA_VERSION}); upgrade repro to read it"
        )
    missing = [k for k in _REQUIRED_META if k not in meta]
    if missing:
        raise StoreError(
            f"{path}: store meta missing key(s) {', '.join(missing)}"
        )
    return meta


def _parse_meta(path: str, blob: np.ndarray) -> dict:
    """Decode and validate the JSON meta blob (typed errors only)."""
    try:
        meta = json.loads(bytes(blob.tobytes()).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise StoreError(f"{path}: corrupt store meta blob ({exc})") from None
    return _validate_meta(path, meta)


def _load_raw(path: str, mmap: bool | None) -> RecordStore:
    meta_path = os.path.join(path, "meta.json")
    try:
        with open(meta_path, "r", encoding="utf-8") as fh:
            meta = json.load(fh)
    except FileNotFoundError:
        raise StoreError(
            f"{path}: not a raw store directory (missing meta.json)"
        ) from None
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise StoreError(f"{path}: corrupt store meta ({exc})") from None
    meta = _validate_meta(path, meta)
    mmap_mode = "r" if (mmap or mmap is None) else None
    tables = {}
    for name in ("files", "jobs"):
        npy = os.path.join(path, f"{name}.npy")
        try:
            tables[name] = np.load(npy, mmap_mode=mmap_mode, allow_pickle=False)
        except FileNotFoundError:
            raise StoreError(f"{path}: missing array '{name}'") from None
        except ValueError as exc:
            raise StoreError(f"{npy}: corrupt array file ({exc})") from None
    store = RecordStore(
        meta["platform"],
        tables["files"],
        tables["jobs"],
        domains=meta["domains"],
        extensions=meta["extensions"],
        scale=meta["scale"],
        schema_version=meta.get("schema_version", 1),
    )
    # Remember the on-disk backing so the sharded analysis fan-out can
    # hand workers a path to mmap instead of exporting rows into shm.
    store.files_path = os.path.join(path, "files.npy")
    return store


def load_store(path: str, *, mmap: bool | None = None) -> RecordStore:
    """Read a store written by :func:`save_store` (either layout).

    A raw store directory is memory-mapped read-only by default
    (``mmap=False`` forces a full read into private memory); ``.npz``
    files always load eagerly — zip compression cannot be mapped, which
    is exactly why the raw layout exists. Corrupt or truncated files
    surface as :class:`StoreError` (never a raw ``json``/``zipfile``/
    unicode exception); a missing file is still ``FileNotFoundError``.
    """
    path = os.fspath(path)
    if os.path.isdir(path):
        return _load_raw(path, mmap)
    try:
        with np.load(path, allow_pickle=False) as npz:
            try:
                meta = _parse_meta(path, npz["meta"])
                files = npz["files"]
                jobs = npz["jobs"]
            except KeyError as exc:
                raise StoreError(f"{path}: missing array {exc}") from None
    except (zipfile.BadZipFile, EOFError) as exc:
        raise StoreError(f"{path}: not a readable .npz ({exc})") from None
    except ValueError as exc:
        raise StoreError(f"{path}: corrupt store file ({exc})") from None
    return RecordStore(
        meta["platform"],
        files,
        jobs,
        domains=meta["domains"],
        extensions=meta["extensions"],
        scale=meta["scale"],
        schema_version=meta.get("schema_version", 1),
    )

"""Exporting a month of logs, the way the paper published its datasets.

The authors released one month of Darshan logs per platform (Summit DOI
10.13139/OLCF/1865904; Cori DOI 10.5281/zenodo.6476501) "to promote
interest and research in the HPC I/O community". This module produces the
equivalent artifact from a synthetic store: every log of every job that
*started* within the chosen month, written as self-describing binary
files with a JSON manifest — the bundle a downstream researcher would
download and feed to their own tooling (ours round-trips it through
:func:`repro.store.ingest.ingest_logs`; theirs would use pydarshan).
"""

from __future__ import annotations

import json
import os

import numpy as np

from repro.darshan.format import write_log
from repro.errors import StoreError
from repro.platforms.machine import Machine
from repro.scheduler.trace import SECONDS_PER_DAY
from repro.store.recordstore import RecordStore

#: Calendar months approximated as 30-day windows of the trace year.
MONTH_SECONDS = 30 * SECONDS_PER_DAY

MANIFEST_NAME = "MANIFEST.json"


def export_month(
    store: RecordStore,
    machine: Machine,
    month: int,
    outdir: str,
    *,
    dxt: bool = False,
    max_logs: int | None = None,
) -> dict:
    """Write one month's logs to ``outdir``; returns the manifest.

    ``month`` is 0-based within the trace year. ``max_logs`` caps the
    export (with the truncation recorded in the manifest — no silent
    clipping).
    """
    if not 0 <= month < 13:
        raise StoreError(f"month must be in [0, 13), got {month}")
    lo, hi = month * MONTH_SECONDS, (month + 1) * MONTH_SECONDS
    jobs = store.jobs
    in_month = (jobs["start_time"] >= lo) & (jobs["start_time"] < hi)
    job_ids = set(jobs["job_id"][in_month].tolist())
    if not job_ids:
        raise StoreError(f"no jobs start in month {month}")

    # Imported here: repro.instrument.runtime consumes the store package,
    # so a module-level import would be circular through store.__init__.
    from repro.instrument.runtime import LogMaterializer

    materializer = LogMaterializer(machine, store)
    log_ids = [
        int(l)
        for l in np.unique(store.files["log_id"])
        if int(l) >> 20 in job_ids
    ]
    truncated = False
    if max_logs is not None and len(log_ids) > max_logs:
        log_ids = log_ids[:max_logs]
        truncated = True

    os.makedirs(outdir, exist_ok=True)
    entries = []
    for log_id in log_ids:
        log = materializer.materialize(log_id, dxt=dxt)
        fname = f"{store.platform}_j{log.job.job_id}_l{log_id}.rdshn"
        write_log(log, os.path.join(outdir, fname))
        entries.append(
            {
                "file": fname,
                "job_id": log.job.job_id,
                "nprocs": log.job.nprocs,
                "files": log.nfiles(),
            }
        )
    manifest = {
        "platform": store.platform,
        "month": month,
        "scale": store.scale,
        "jobs_in_month": len(job_ids),
        "logs_exported": len(entries),
        "truncated": truncated,
        "dxt": dxt,
        "logs": entries,
    }
    with open(os.path.join(outdir, MANIFEST_NAME), "w") as fh:
        json.dump(manifest, fh, indent=2)
    return manifest

"""Merging shard-local RecordStores into one global store.

The sharded generate/ingest pipelines build one :class:`RecordStore` per
shard, each with its own extension catalog and (for ingest) its own dense
``log_id`` space. This module reassembles them deterministically:

* **Catalog union** — domain and extension catalogs are unioned in
  first-seen order across shards (shard order, then catalog order), and
  every code column is remapped through a small lookup table. Because the
  pipelines shard *contiguously*, first-seen order equals the order a
  serial pass over the same inputs would have produced.
* **Log-id remap** (``remap_log_ids=True``) — shard ``s``'s log-id space
  is shifted up by the combined width of all earlier shards' spaces (a
  per-shard bijection, collision-free across shards). Ingest numbers a
  shard's logs ``0..n-1`` in path order, so the offsets reproduce the
  global serial enumeration exactly — including id gaps left by logs
  that contributed no file rows.
* **Job rows** — the same physical job may appear in several shards (its
  logs split across shards, or generator shards each carrying the full
  job table). Duplicate job ids are merged: static attributes must agree,
  ``used_bb`` is OR-ed, and ``nlogs`` follows ``nlogs_rule`` — ``"max"``
  for generator shards (each shard reports the job's full log count) and
  ``"sum"`` for ingest shards (each shard saw a subset of the logs).
  Alternatively ``remap_job_ids=True`` treats shards as independent
  populations and renumbers jobs densely instead of merging.

The merged store is a fresh object at generation 0 with its own (empty)
analysis cache; the shard stores are never mutated.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import MergeSchemaError, StoreError
from repro.obs.tracer import trace_span
from repro.store.recordstore import RecordStore

#: Job columns that must be identical across duplicate job rows.
_JOB_STATIC = ("user_id", "nnodes", "nprocs", "domain", "runtime", "start_time")


def _union_catalog(
    catalogs: Sequence[Sequence[str]],
) -> tuple[tuple[str, ...], list[np.ndarray]]:
    """Union catalogs in first-seen order; return per-shard code LUTs.

    Each LUT is indexed by ``old_code + 1`` so the sentinel code −1
    (unknown domain / no extension) maps to itself.
    """
    union: list[str] = []
    index: dict[str, int] = {}
    luts: list[np.ndarray] = []
    for cat in catalogs:
        lut = np.empty(len(cat) + 1, dtype=np.int16)
        lut[0] = -1
        for i, name in enumerate(cat):
            if name not in index:
                index[name] = len(union)
                union.append(name)
            lut[i + 1] = index[name]
        luts.append(lut)
    return tuple(union), luts


def _is_identity(lut: np.ndarray) -> bool:
    return bool((lut == np.arange(-1, len(lut) - 1, dtype=np.int16)).all())


def _remap_log_ids(files: np.ndarray, jobs: np.ndarray, base: int) -> int:
    """Shift this shard's log-id space up by ``base``; return its width.

    Shard-local ingest numbers logs ``0..n-1`` in path order (empty logs
    included, via the job table's ``nlogs``), so an offset — not a dense
    re-rank — reproduces the serial enumeration, preserving the id gaps
    of logs that contributed no file rows.
    """
    width = int(jobs["nlogs"].sum()) if len(jobs) else 0
    if len(files):
        lo = int(files["log_id"].min())
        if lo < 0:
            raise StoreError(f"cannot remap negative log id {lo}")
        width = max(width, int(files["log_id"].max()) + 1)
        files["log_id"] += base
    return width


def _merge_job_tables(
    jobs_parts: list[np.ndarray], nlogs_rule: str
) -> np.ndarray:
    """Merge job rows across shards, deduplicating by ``job_id``."""
    allj = np.concatenate(jobs_parts)
    if not len(allj):
        return allj
    order = np.argsort(allj["job_id"], kind="stable")
    sj = allj[order]
    _, first, counts = np.unique(sj["job_id"], return_index=True, return_counts=True)
    merged = sj[first].copy()
    for name in _JOB_STATIC:
        if not (sj[name] == np.repeat(merged[name], counts)).all():
            raise StoreError(
                f"duplicate job rows disagree on {name!r}; shards do not "
                "describe the same population (use remap_job_ids=True to "
                "merge independent populations)"
            )
    merged["used_bb"] = np.maximum.reduceat(sj["used_bb"], first)
    if nlogs_rule == "sum":
        merged["nlogs"] = np.add.reduceat(sj["nlogs"], first)
    else:
        merged["nlogs"] = np.maximum.reduceat(sj["nlogs"], first)
    return merged


def merge_stores(
    stores: Iterable[RecordStore],
    *,
    remap_log_ids: bool = False,
    remap_job_ids: bool = False,
    nlogs_rule: str = "max",
) -> RecordStore:
    """Merge shard-local stores into one store (see module docstring)."""
    stores = list(stores)
    if not stores:
        raise StoreError("cannot merge zero stores")
    with trace_span("store.merge", "store") as sp:
        if sp is not None:
            sp.add(shards=len(stores), rows=sum(len(s.files) for s in stores))
        return _merge_stores(
            stores,
            remap_log_ids=remap_log_ids,
            remap_job_ids=remap_job_ids,
            nlogs_rule=nlogs_rule,
        )


def _merge_stores(
    stores: list[RecordStore],
    *,
    remap_log_ids: bool,
    remap_job_ids: bool,
    nlogs_rule: str,
) -> RecordStore:
    if nlogs_rule not in ("max", "sum"):
        raise StoreError(f"nlogs_rule must be 'max' or 'sum', got {nlogs_rule!r}")
    first = stores[0]
    for s in stores[1:]:
        if s.schema_version != first.schema_version:
            # A typed refusal, not a KeyError deep in column remapping:
            # stores written at different schema versions may disagree
            # about what the columns *mean*.
            raise MergeSchemaError(
                f"cannot merge stores with schema versions "
                f"{first.schema_version} and {s.schema_version}; re-save "
                "the older store with this library to upgrade it"
            )
        if s.platform != first.platform:
            raise StoreError(
                f"cannot merge platforms {first.platform!r} and {s.platform!r}"
            )
        if s.scale != first.scale:
            raise StoreError(
                f"cannot merge stores at scales {first.scale} and {s.scale}"
            )

    domains, dom_luts = _union_catalog([s.domains for s in stores])
    extensions, ext_luts = _union_catalog([s.extensions for s in stores])

    files = np.concatenate([s.files for s in stores])
    jobs_parts: list[np.ndarray] = []
    offsets = np.cumsum([0] + [len(s.files) for s in stores])
    log_base = 0
    job_base = 1
    for i, s in enumerate(stores):
        part = files[offsets[i] : offsets[i + 1]]
        if not _is_identity(dom_luts[i]):
            part["domain"] = dom_luts[i][part["domain"].astype(np.int32) + 1]
        if not _is_identity(ext_luts[i]):
            part["ext"] = ext_luts[i][part["ext"].astype(np.int32) + 1]
        if remap_log_ids:
            log_base += _remap_log_ids(part, s.jobs, log_base)
        # Copy a shard's job table only when it must be rewritten; the
        # read-only case concatenates below anyway, and with shm-backed
        # shard views the skipped copy keeps the hand-off zero-copy
        # until the single final concatenation.
        jobs = s.jobs
        if remap_job_ids:
            jobs = jobs.copy()  # job ids are rewritten in place below
        if len(jobs) and not _is_identity(dom_luts[i]):
            if jobs is s.jobs:
                jobs = jobs.copy()
            jobs["domain"] = dom_luts[i][jobs["domain"].astype(np.int32) + 1]
        if remap_job_ids:
            uniq, inverse = np.unique(jobs["job_id"], return_inverse=True)
            jobs["job_id"] = job_base + inverse
            if len(part):
                part["job_id"] = job_base + np.searchsorted(
                    uniq, part["job_id"]
                )
            job_base += len(uniq)
        jobs_parts.append(jobs)

    if remap_job_ids:
        merged_jobs = np.concatenate(jobs_parts)
    else:
        merged_jobs = _merge_job_tables(jobs_parts, nlogs_rule)
    return RecordStore(
        first.platform,
        files,
        merged_jobs,
        domains=domains,
        extensions=extensions,
        scale=first.scale,
        schema_version=first.schema_version,
    )


def canonicalize(store: RecordStore) -> RecordStore:
    """A new store with rows in canonical order.

    The canonical file order sorts by (job, log, record id, interface,
    layer, rank) — enough to make any two row-equal stores byte-equal
    regardless of the order their shards were generated or merged in.
    The differential suite compares stores in this order.
    """
    f = store.files
    order = np.lexsort(
        (f["rank"], f["layer"], f["interface"], f["record_id"], f["log_id"], f["job_id"])
    )
    jorder = np.argsort(store.jobs["job_id"], kind="stable")
    return RecordStore(
        store.platform,
        f[order],
        store.jobs[jorder],
        domains=store.domains,
        extensions=store.extensions,
        scale=store.scale,
        schema_version=store.schema_version,
    )

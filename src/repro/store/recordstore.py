"""The RecordStore: a platform's synthetic year in columnar form."""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import StoreError
from repro.platforms.interfaces import IOInterface
from repro.store.schema import (
    FILE_DTYPE,
    JOB_DTYPE,
    LAYER_CODES,
    OPCLASS_READ_ONLY,
    OPCLASS_READ_WRITE,
    OPCLASS_WRITE_ONLY,
    SCHEMA_VERSION,
)


class RecordStore:
    """File and job tables for one platform, plus categorical catalogs.

    ``scale`` records what fraction of the real year the synthetic
    population represents; analyses multiply counts by ``1/scale`` when
    reporting extrapolated totals (distribution-shaped results are
    scale-free). See DESIGN.md §5.
    """

    def __init__(
        self,
        platform: str,
        files: np.ndarray,
        jobs: np.ndarray,
        *,
        domains: Sequence[str] = (),
        extensions: Sequence[str] = (),
        scale: float = 1.0,
        schema_version: int = SCHEMA_VERSION,
    ):
        if files.dtype != FILE_DTYPE:
            raise StoreError(f"files table has dtype {files.dtype}, want FILE_DTYPE")
        if jobs.dtype != JOB_DTYPE:
            raise StoreError(f"jobs table has dtype {jobs.dtype}, want JOB_DTYPE")
        if not 0 < scale <= 1:
            raise StoreError(f"scale must be in (0, 1], got {scale}")
        self.platform = platform
        self.files = files
        self.jobs = jobs
        self.domains = tuple(domains)
        self.extensions = tuple(extensions)
        self.scale = scale
        # Schema version of the file this store was loaded from (or the
        # library's current version for in-memory stores); merge and
        # federation refuse to union stores that disagree.
        self.schema_version = schema_version
        self._generation = 0
        self._analysis = None
        self._analysis_jobs = None
        self._analysis_min_rows = None
        # Set by the raw-layout loader: path of the on-disk files.npy,
        # letting sharded analysis workers mmap rows instead of
        # receiving them through shared memory.
        self.files_path = None
        # Capacity-backed buffer behind the append path: append() keeps
        # ``files`` as a view of an over-allocated array so repeated
        # small appends write just the tail instead of copying O(n).
        self._files_buf = None
        if len(files) and files["domain"].max() >= len(self.domains):
            raise StoreError("file domain code out of catalog range")
        if len(jobs) and jobs["domain"].max() >= len(self.domains):
            raise StoreError("job domain code out of catalog range")

    # The capacity buffer is a transient optimization; pickling it would
    # ship up to 1.5x the live rows (and the copy breaks the view
    # anchoring anyway), so it is dropped and rebuilt on demand.
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_files_buf"] = None  # numpy pickles the view's rows only
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self.__dict__.setdefault("_files_buf", None)
        self.__dict__.setdefault("_analysis_jobs", None)
        self.__dict__.setdefault("_analysis_min_rows", None)
        self.__dict__.setdefault("files_path", None)
        self.__dict__.setdefault("schema_version", SCHEMA_VERSION)

    # -- analysis cache ------------------------------------------------------
    @property
    def generation(self) -> int:
        """Mutation counter; bumped by :meth:`invalidate` and :meth:`extend`.

        The :class:`~repro.analysis.context.AnalysisContext` returned by
        :meth:`analysis` is keyed on this value — a context built against
        an older generation refuses to serve its cached index arrays.
        """
        return self._generation

    def invalidate(self) -> None:
        """Bust the analysis cache after any in-place table mutation.

        Filtering/concat build *new* stores (each with a fresh cache), so
        only code that writes into ``files``/``jobs`` directly — ingest
        append paths, replay experiments — needs to call this.
        """
        self._generation += 1
        self._analysis = None

    def set_analysis_jobs(
        self, jobs: int | None, *, min_rows: int | None = None
    ) -> None:
        """Route :meth:`analysis` through a sharded context.

        ``jobs`` follows the ``--jobs`` convention (None/1 serial, 0 =
        usable cores, N = N workers). ``min_rows`` overrides the
        fan-out threshold (below it the sharded context computes
        serially); the default is tuned for real stores, tests pass 0
        to force sharding on tiny ones. Takes effect on the next
        :meth:`analysis` call; any live context is dropped so the
        setting applies immediately.
        """
        from repro.parallel import resolve_jobs

        resolve_jobs(jobs)  # validate eagerly; resolve lazily at build time
        self._analysis_jobs = jobs
        self._analysis_min_rows = min_rows
        self._analysis = None

    def analysis(self):
        """The store's shared :class:`AnalysisContext` (built lazily).

        Repeated analyses over the same store reuse one context, so the
        common masks, index arrays, and derived columns are computed at
        most once per store generation. After
        :meth:`set_analysis_jobs` with more than one worker, the context
        is a :class:`~repro.analysis.sharded.ShardedAnalysisContext`
        that fans primitive computation out over row ranges — results
        are bit-identical to the serial context.
        """
        from repro.analysis.context import AnalysisContext

        if self._analysis is None or self._analysis.generation != self._generation:
            jobs = self._analysis_jobs
            if jobs is not None and jobs != 1:
                from repro.analysis.sharded import ShardedAnalysisContext

                self._analysis = ShardedAnalysisContext(
                    self, jobs=jobs, min_rows=self._analysis_min_rows
                )
            else:
                self._analysis = AnalysisContext(self)
        return self._analysis

    def extend(self, files: np.ndarray, jobs: np.ndarray | None = None) -> None:
        """Append rows in place (the ingest/replay-append mutation path).

        Unlike :meth:`concat` this mutates the store, so it bumps the
        generation and invalidates any outstanding analysis context.
        """
        if files.dtype != FILE_DTYPE:
            raise StoreError(f"files table has dtype {files.dtype}, want FILE_DTYPE")
        if len(files) and files["domain"].max() >= len(self.domains):
            raise StoreError("file domain code out of catalog range")
        if jobs is not None:
            if jobs.dtype != JOB_DTYPE:
                raise StoreError(f"jobs table has dtype {jobs.dtype}, want JOB_DTYPE")
            if len(jobs) and jobs["domain"].max() >= len(self.domains):
                raise StoreError("job domain code out of catalog range")
            self.jobs = np.concatenate([self.jobs, jobs])
        self.files = np.concatenate([self.files, files])
        self.invalidate()

    # -- append-only growth (delta-aware) ------------------------------------
    def append(
        self,
        files: np.ndarray,
        jobs: np.ndarray | None = None,
        *,
        new_extensions: Sequence[str] = (),
    ) -> None:
        """Append rows with delta-aware cache invalidation.

        The streaming counterpart of :meth:`extend`: when a fresh
        :class:`~repro.analysis.context.AnalysisContext` is live, its
        cached masks, index arrays, and foldable memoized results are
        *extended* over the new rows instead of discarded (see
        :meth:`AnalysisContext.apply_append`); otherwise this degrades
        to exactly the :meth:`extend` behaviour. Either way the
        generation advances, so generation-keyed consumers (the serve
        result cache) observe the mutation.

        ``jobs`` rows whose ``job_id`` already exists are *merged*, not
        duplicated, mirroring batch ingest's last-log-wins accounting:
        ``nlogs`` adds, ``used_bb`` ORs, and the remaining fields take
        the new row's values. ``new_extensions`` appends names to the
        extension catalog (append-only: existing codes keep meaning).
        """
        if files.dtype != FILE_DTYPE:
            raise StoreError(f"files table has dtype {files.dtype}, want FILE_DTYPE")
        new_extensions = tuple(new_extensions)
        if new_extensions:
            dupes = set(new_extensions) & set(self.extensions)
            if dupes or len(set(new_extensions)) != len(new_extensions):
                raise StoreError(
                    f"append: extension names already cataloged or repeated: "
                    f"{sorted(dupes) or sorted(new_extensions)}"
                )
            self.extensions = self.extensions + new_extensions
        if len(files):
            if files["domain"].max() >= len(self.domains):
                raise StoreError("file domain code out of catalog range")
            if files["ext"].max() >= len(self.extensions):
                raise StoreError("file extension code out of catalog range")
        merged_jobs = self._merged_jobs_for_append(jobs)
        grown = self._grown_files(files)
        ctx = self._analysis
        if ctx is not None and not ctx.stale:
            ctx.apply_append(grown, files, merged_jobs)
        else:
            self.files = grown
            self.jobs = merged_jobs
            self.invalidate()

    def _grown_files(self, tail: np.ndarray) -> np.ndarray:
        """The grown file table as a view of the capacity buffer."""
        n, k = len(self.files), len(tail)
        buf = self._files_buf
        if buf is None or self.files.base is not buf or len(buf) < n + k:
            cap = max(1024, int((n + k) * 3 // 2))
            buf = np.empty(cap, dtype=FILE_DTYPE)
            buf[:n] = self.files
            self._files_buf = buf
        buf[n : n + k] = tail
        return buf[: n + k]

    def _merged_jobs_for_append(self, jobs: np.ndarray | None) -> np.ndarray:
        """The post-append job table (duplicate job ids merged)."""
        if jobs is None or not len(jobs):
            return self.jobs
        if jobs.dtype != JOB_DTYPE:
            raise StoreError(f"jobs table has dtype {jobs.dtype}, want JOB_DTYPE")
        if jobs["domain"].max() >= len(self.domains):
            raise StoreError("job domain code out of catalog range")
        index = {int(j): i for i, j in enumerate(self.jobs["job_id"])}
        fresh = np.ones(len(jobs), dtype=bool)
        merged = None
        for i, job_id in enumerate(jobs["job_id"]):
            at = index.get(int(job_id))
            if at is None:
                continue
            if merged is None:
                merged = self.jobs.copy()
            row = jobs[i]
            # Batch ingest rebuilds a job's row from each of its logs in
            # turn (last log wins) while counting nlogs and OR-ing
            # used_bb; replaying that here keeps a streamed store
            # byte-identical to a batch ingest of the same logs.
            for field in ("user_id", "nnodes", "nprocs", "domain",
                          "runtime", "start_time"):
                merged[field][at] = row[field]
            merged["nlogs"][at] += row["nlogs"]
            merged["used_bb"][at] = max(merged["used_bb"][at], row["used_bb"])
            fresh[i] = False
        new_rows = jobs[fresh]
        if len(np.unique(new_rows["job_id"])) != len(new_rows):
            raise StoreError("append: duplicate job ids within one batch")
        return np.concatenate([self.jobs if merged is None else merged, new_rows])

    # -- basic shape ---------------------------------------------------------
    def __len__(self) -> int:
        return len(self.files)

    @property
    def njobs(self) -> int:
        return len(self.jobs)

    @property
    def nlogs(self) -> int:
        """Distinct Darshan logs represented in the file table."""
        if not len(self.files):
            return 0
        return len(np.unique(self.files["log_id"]))

    def scaled(self, count: float) -> float:
        """Extrapolate a count to full-year scale."""
        return count / self.scale

    # -- filtering -------------------------------------------------------------
    def filter(self, mask: np.ndarray) -> "RecordStore":
        """New store with file rows selected by a boolean mask.

        The job table is restricted to jobs that still have file rows (or
        had none to begin with: job-level analyses use
        :meth:`filter_jobs`).
        """
        mask = np.asarray(mask)
        if mask.dtype != bool or mask.shape != (len(self.files),):
            raise StoreError(
                f"mask must be bool of shape ({len(self.files)},), "
                f"got {mask.dtype} {mask.shape}"
            )
        files = self.files[mask]
        keep_jobs = np.isin(self.jobs["job_id"], np.unique(files["job_id"]))
        return RecordStore(
            self.platform, files, self.jobs[keep_jobs],
            domains=self.domains, extensions=self.extensions, scale=self.scale,
            schema_version=self.schema_version,
        )

    def where(
        self,
        *,
        layer: str | None = None,
        interface: IOInterface | None = None,
        shared: bool | None = None,
        domain: str | None = None,
        min_nprocs: int | None = None,
    ) -> "RecordStore":
        """Keyword-sugar filter over the common analysis axes."""
        mask = np.ones(len(self.files), dtype=bool)
        if layer is not None:
            try:
                mask &= self.files["layer"] == LAYER_CODES[layer]
            except KeyError:
                raise StoreError(f"unknown layer {layer!r}") from None
        if interface is not None:
            mask &= self.files["interface"] == int(interface)
        if shared is not None:
            mask &= (self.files["rank"] == -1) == shared
        if domain is not None:
            try:
                code = self.domains.index(domain)
            except ValueError:
                raise StoreError(
                    f"unknown domain {domain!r}; catalog: {self.domains}"
                ) from None
            mask &= self.files["domain"] == code
        if min_nprocs is not None:
            mask &= self.files["nprocs"] > min_nprocs
        return self.filter(mask)

    def filter_jobs(self, mask: np.ndarray) -> "RecordStore":
        """New store with job rows (and their files) selected by a mask."""
        mask = np.asarray(mask)
        if mask.dtype != bool or mask.shape != (len(self.jobs),):
            raise StoreError("job mask shape/dtype mismatch")
        jobs = self.jobs[mask]
        keep = np.isin(self.files["job_id"], jobs["job_id"])
        return RecordStore(
            self.platform, self.files[keep], jobs,
            domains=self.domains, extensions=self.extensions, scale=self.scale,
            schema_version=self.schema_version,
        )

    # -- derived columns ----------------------------------------------------------
    def transfer_sizes(self) -> np.ndarray:
        """Per-file total transfer size (read + written), §3.1."""
        return self.files["bytes_read"] + self.files["bytes_written"]

    def opclass(self) -> np.ndarray:
        """Read-only / read-write / write-only code per file (Figures 6, 8).

        Files with zero bytes both ways (metadata-only opens) are classed
        read-only, matching how zero-transfer records skew neither volume.
        """
        r = self.files["bytes_read"] > 0
        w = self.files["bytes_written"] > 0
        out = np.full(len(self.files), OPCLASS_READ_ONLY, dtype=np.uint8)
        out[r & w] = OPCLASS_READ_WRITE
        out[~r & w] = OPCLASS_WRITE_ONLY
        return out

    def read_bandwidth(self) -> np.ndarray:
        """Per-file read bytes/s; NaN where no read time was recorded."""
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(
                self.files["read_time"] > 0,
                self.files["bytes_read"] / self.files["read_time"],
                np.nan,
            )

    def write_bandwidth(self) -> np.ndarray:
        """Per-file write bytes/s; NaN where no write time was recorded."""
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(
                self.files["write_time"] > 0,
                self.files["bytes_written"] / self.files["write_time"],
                np.nan,
            )

    def domain_names(self, codes: np.ndarray) -> list[str]:
        """Map domain codes to names ('' for unknown)."""
        return ["" if c < 0 else self.domains[c] for c in np.asarray(codes)]

    # -- combination -----------------------------------------------------------------
    @classmethod
    def concat(cls, stores: Iterable["RecordStore"]) -> "RecordStore":
        """Concatenate stores of the same platform/catalogs/scale.

        The result is a *new* store at generation 0 with its own (empty)
        analysis cache; the inputs keep their generations and any live
        :class:`~repro.analysis.context.AnalysisContext` they hold. For
        shard-local stores with differing catalogs or colliding id
        spaces, use :func:`repro.store.merge.merge_stores` instead.
        """
        stores = list(stores)
        if not stores:
            raise StoreError("cannot concat zero stores")
        first = stores[0]
        for s in stores[1:]:
            if (
                s.platform != first.platform
                or s.domains != first.domains
                or s.extensions != first.extensions
                or s.scale != first.scale
            ):
                raise StoreError("stores differ in platform/catalogs/scale")
        return cls(
            first.platform,
            np.concatenate([s.files for s in stores]),
            np.concatenate([s.jobs for s in stores]),
            domains=first.domains,
            extensions=first.extensions,
            scale=first.scale,
            schema_version=first.schema_version,
        )

    def __repr__(self) -> str:
        return (
            f"RecordStore({self.platform!r}, files={len(self.files):,}, "
            f"jobs={len(self.jobs):,}, scale={self.scale:g})"
        )

"""The RecordStore: a platform's synthetic year in columnar form."""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import StoreError
from repro.platforms.interfaces import IOInterface
from repro.store.schema import (
    FILE_DTYPE,
    JOB_DTYPE,
    LAYER_CODES,
    OPCLASS_READ_ONLY,
    OPCLASS_READ_WRITE,
    OPCLASS_WRITE_ONLY,
)


class RecordStore:
    """File and job tables for one platform, plus categorical catalogs.

    ``scale`` records what fraction of the real year the synthetic
    population represents; analyses multiply counts by ``1/scale`` when
    reporting extrapolated totals (distribution-shaped results are
    scale-free). See DESIGN.md §5.
    """

    def __init__(
        self,
        platform: str,
        files: np.ndarray,
        jobs: np.ndarray,
        *,
        domains: Sequence[str] = (),
        extensions: Sequence[str] = (),
        scale: float = 1.0,
    ):
        if files.dtype != FILE_DTYPE:
            raise StoreError(f"files table has dtype {files.dtype}, want FILE_DTYPE")
        if jobs.dtype != JOB_DTYPE:
            raise StoreError(f"jobs table has dtype {jobs.dtype}, want JOB_DTYPE")
        if not 0 < scale <= 1:
            raise StoreError(f"scale must be in (0, 1], got {scale}")
        self.platform = platform
        self.files = files
        self.jobs = jobs
        self.domains = tuple(domains)
        self.extensions = tuple(extensions)
        self.scale = scale
        self._generation = 0
        self._analysis = None
        if len(files) and files["domain"].max() >= len(self.domains):
            raise StoreError("file domain code out of catalog range")
        if len(jobs) and jobs["domain"].max() >= len(self.domains):
            raise StoreError("job domain code out of catalog range")

    # -- analysis cache ------------------------------------------------------
    @property
    def generation(self) -> int:
        """Mutation counter; bumped by :meth:`invalidate` and :meth:`extend`.

        The :class:`~repro.analysis.context.AnalysisContext` returned by
        :meth:`analysis` is keyed on this value — a context built against
        an older generation refuses to serve its cached index arrays.
        """
        return self._generation

    def invalidate(self) -> None:
        """Bust the analysis cache after any in-place table mutation.

        Filtering/concat build *new* stores (each with a fresh cache), so
        only code that writes into ``files``/``jobs`` directly — ingest
        append paths, replay experiments — needs to call this.
        """
        self._generation += 1
        self._analysis = None

    def analysis(self):
        """The store's shared :class:`AnalysisContext` (built lazily).

        Repeated analyses over the same store reuse one context, so the
        common masks, index arrays, and derived columns are computed at
        most once per store generation.
        """
        from repro.analysis.context import AnalysisContext

        if self._analysis is None or self._analysis.generation != self._generation:
            self._analysis = AnalysisContext(self)
        return self._analysis

    def extend(self, files: np.ndarray, jobs: np.ndarray | None = None) -> None:
        """Append rows in place (the ingest/replay-append mutation path).

        Unlike :meth:`concat` this mutates the store, so it bumps the
        generation and invalidates any outstanding analysis context.
        """
        if files.dtype != FILE_DTYPE:
            raise StoreError(f"files table has dtype {files.dtype}, want FILE_DTYPE")
        if len(files) and files["domain"].max() >= len(self.domains):
            raise StoreError("file domain code out of catalog range")
        if jobs is not None:
            if jobs.dtype != JOB_DTYPE:
                raise StoreError(f"jobs table has dtype {jobs.dtype}, want JOB_DTYPE")
            if len(jobs) and jobs["domain"].max() >= len(self.domains):
                raise StoreError("job domain code out of catalog range")
            self.jobs = np.concatenate([self.jobs, jobs])
        self.files = np.concatenate([self.files, files])
        self.invalidate()

    # -- basic shape ---------------------------------------------------------
    def __len__(self) -> int:
        return len(self.files)

    @property
    def njobs(self) -> int:
        return len(self.jobs)

    @property
    def nlogs(self) -> int:
        """Distinct Darshan logs represented in the file table."""
        if not len(self.files):
            return 0
        return len(np.unique(self.files["log_id"]))

    def scaled(self, count: float) -> float:
        """Extrapolate a count to full-year scale."""
        return count / self.scale

    # -- filtering -------------------------------------------------------------
    def filter(self, mask: np.ndarray) -> "RecordStore":
        """New store with file rows selected by a boolean mask.

        The job table is restricted to jobs that still have file rows (or
        had none to begin with: job-level analyses use
        :meth:`filter_jobs`).
        """
        mask = np.asarray(mask)
        if mask.dtype != bool or mask.shape != (len(self.files),):
            raise StoreError(
                f"mask must be bool of shape ({len(self.files)},), "
                f"got {mask.dtype} {mask.shape}"
            )
        files = self.files[mask]
        keep_jobs = np.isin(self.jobs["job_id"], np.unique(files["job_id"]))
        return RecordStore(
            self.platform, files, self.jobs[keep_jobs],
            domains=self.domains, extensions=self.extensions, scale=self.scale,
        )

    def where(
        self,
        *,
        layer: str | None = None,
        interface: IOInterface | None = None,
        shared: bool | None = None,
        domain: str | None = None,
        min_nprocs: int | None = None,
    ) -> "RecordStore":
        """Keyword-sugar filter over the common analysis axes."""
        mask = np.ones(len(self.files), dtype=bool)
        if layer is not None:
            try:
                mask &= self.files["layer"] == LAYER_CODES[layer]
            except KeyError:
                raise StoreError(f"unknown layer {layer!r}") from None
        if interface is not None:
            mask &= self.files["interface"] == int(interface)
        if shared is not None:
            mask &= (self.files["rank"] == -1) == shared
        if domain is not None:
            try:
                code = self.domains.index(domain)
            except ValueError:
                raise StoreError(
                    f"unknown domain {domain!r}; catalog: {self.domains}"
                ) from None
            mask &= self.files["domain"] == code
        if min_nprocs is not None:
            mask &= self.files["nprocs"] > min_nprocs
        return self.filter(mask)

    def filter_jobs(self, mask: np.ndarray) -> "RecordStore":
        """New store with job rows (and their files) selected by a mask."""
        mask = np.asarray(mask)
        if mask.dtype != bool or mask.shape != (len(self.jobs),):
            raise StoreError("job mask shape/dtype mismatch")
        jobs = self.jobs[mask]
        keep = np.isin(self.files["job_id"], jobs["job_id"])
        return RecordStore(
            self.platform, self.files[keep], jobs,
            domains=self.domains, extensions=self.extensions, scale=self.scale,
        )

    # -- derived columns ----------------------------------------------------------
    def transfer_sizes(self) -> np.ndarray:
        """Per-file total transfer size (read + written), §3.1."""
        return self.files["bytes_read"] + self.files["bytes_written"]

    def opclass(self) -> np.ndarray:
        """Read-only / read-write / write-only code per file (Figures 6, 8).

        Files with zero bytes both ways (metadata-only opens) are classed
        read-only, matching how zero-transfer records skew neither volume.
        """
        r = self.files["bytes_read"] > 0
        w = self.files["bytes_written"] > 0
        out = np.full(len(self.files), OPCLASS_READ_ONLY, dtype=np.uint8)
        out[r & w] = OPCLASS_READ_WRITE
        out[~r & w] = OPCLASS_WRITE_ONLY
        return out

    def read_bandwidth(self) -> np.ndarray:
        """Per-file read bytes/s; NaN where no read time was recorded."""
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(
                self.files["read_time"] > 0,
                self.files["bytes_read"] / self.files["read_time"],
                np.nan,
            )

    def write_bandwidth(self) -> np.ndarray:
        """Per-file write bytes/s; NaN where no write time was recorded."""
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(
                self.files["write_time"] > 0,
                self.files["bytes_written"] / self.files["write_time"],
                np.nan,
            )

    def domain_names(self, codes: np.ndarray) -> list[str]:
        """Map domain codes to names ('' for unknown)."""
        return ["" if c < 0 else self.domains[c] for c in np.asarray(codes)]

    # -- combination -----------------------------------------------------------------
    @classmethod
    def concat(cls, stores: Iterable["RecordStore"]) -> "RecordStore":
        """Concatenate stores of the same platform/catalogs/scale.

        The result is a *new* store at generation 0 with its own (empty)
        analysis cache; the inputs keep their generations and any live
        :class:`~repro.analysis.context.AnalysisContext` they hold. For
        shard-local stores with differing catalogs or colliding id
        spaces, use :func:`repro.store.merge.merge_stores` instead.
        """
        stores = list(stores)
        if not stores:
            raise StoreError("cannot concat zero stores")
        first = stores[0]
        for s in stores[1:]:
            if (
                s.platform != first.platform
                or s.domains != first.domains
                or s.extensions != first.extensions
                or s.scale != first.scale
            ):
                raise StoreError("stores differ in platform/catalogs/scale")
        return cls(
            first.platform,
            np.concatenate([s.files for s in stores]),
            np.concatenate([s.jobs for s in stores]),
            domains=first.domains,
            extensions=first.extensions,
            scale=first.scale,
        )

    def __repr__(self) -> str:
        return (
            f"RecordStore({self.platform!r}, files={len(self.files):,}, "
            f"jobs={len(self.jobs):,}, scale={self.scale:g})"
        )

"""Structured dtypes and categorical codes for the record store.

One **file row** per (Darshan log, file, interface) — the paper's unit of
analysis ("we consider a file as a unique file if it can be uniquely
identified by the combination of its path and name in a single Darshan
log", §3.1). One **job row** per batch job.

Categorical columns are small integer codes; the mapping to names lives in
the store's metadata (for domains) or in this module (layers).
"""

from __future__ import annotations

import numpy as np

from repro.darshan.bins import ACCESS_SIZE_BINS

#: Version of the store schema (tables + meta blob). Lives here rather
#: than :mod:`repro.store.io` so :class:`~repro.store.recordstore.RecordStore`
#: can stamp in-memory stores without importing the persistence layer;
#: ``io`` re-exports it. Bump when meta gains/changes required keys.
SCHEMA_VERSION = 1

#: Storage-layer codes.
LAYER_PFS = 0
LAYER_INSYSTEM = 1
LAYER_OTHER = 255

LAYER_CODES = {"pfs": LAYER_PFS, "insystem": LAYER_INSYSTEM, "other": LAYER_OTHER}
LAYER_NAMES = {v: k for k, v in LAYER_CODES.items()}

#: Read-only / read-write / write-only classification (Figures 6 and 8).
OPCLASS_READ_ONLY = 0
OPCLASS_READ_WRITE = 1
OPCLASS_WRITE_ONLY = 2
OPCLASS_NAMES = {
    OPCLASS_READ_ONLY: "read-only",
    OPCLASS_READ_WRITE: "read-write",
    OPCLASS_WRITE_ONLY: "write-only",
}

_NBINS = ACCESS_SIZE_BINS.nbins

#: Per-file record row.
FILE_DTYPE = np.dtype(
    [
        ("job_id", np.int64),
        ("log_id", np.int64),
        ("user_id", np.int64),
        ("record_id", np.uint64),
        ("layer", np.uint8),
        ("interface", np.uint8),     # IOInterface value
        ("rank", np.int32),          # -1 = shared (all ranks)
        ("nprocs", np.int32),        # processes in the job
        ("domain", np.int16),        # index into store.domains; -1 unknown
        ("ext", np.int16),           # index into store.extensions; -1 none
        ("bytes_read", np.int64),
        ("bytes_written", np.int64),
        ("read_time", np.float64),   # seconds
        ("write_time", np.float64),
        ("meta_time", np.float64),
        ("reads", np.int64),         # op counts
        ("writes", np.int64),
        ("read_hist", np.int64, (_NBINS,)),
        ("write_hist", np.int64, (_NBINS,)),
    ]
)

#: Per-job row.
JOB_DTYPE = np.dtype(
    [
        ("job_id", np.int64),
        ("user_id", np.int64),
        ("nnodes", np.int32),
        ("nprocs", np.int32),
        ("domain", np.int16),
        ("runtime", np.float64),     # seconds
        ("start_time", np.float64),  # seconds from trace origin
        ("nlogs", np.int32),         # Darshan logs produced
        ("used_bb", np.uint8),       # touched the in-system layer?
    ]
)


def empty_files(n: int = 0) -> np.ndarray:
    """Allocate a file table with ``domain``/``ext`` pre-set to 'unknown'."""
    arr = np.zeros(n, dtype=FILE_DTYPE)
    if n:
        arr["domain"] = -1
        arr["ext"] = -1
        arr["rank"] = -1
    return arr


def empty_jobs(n: int = 0) -> np.ndarray:
    arr = np.zeros(n, dtype=JOB_DTYPE)
    if n:
        arr["domain"] = -1
    return arr

"""Ingesting DarshanLog objects into a RecordStore.

This is the slow-but-faithful path: the same transformation the study's
tooling performs on real ``.darshan`` files. The workload generator's
vectorized path emits equivalent rows directly; the integration tests
assert the two paths agree on a shared population.

Layer resolution follows §3.1's accounting: a file accessed through
MPI-IO contributes its POSIX record's bytes (MPI-IO sits on POSIX), so
MPI-IO rows are kept for interface-usage analyses but flagged via the
``interface`` column, and volume analyses select POSIX+STDIO rows only.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.darshan.constants import ModuleId
from repro.darshan.log import DarshanLog
from repro.platforms.machine import MountTable
from repro.store.recordstore import RecordStore
from repro.store.schema import LAYER_CODES, LAYER_OTHER, empty_files, empty_jobs


def _extension_of(path: str) -> str:
    name = path.rsplit("/", 1)[-1]
    if "." not in name[1:]:
        return ""
    return name.rsplit(".", 1)[-1].lower()


def ingest_logs(
    logs: Iterable[DarshanLog],
    platform: str,
    mounts: MountTable,
    *,
    domains: Sequence[str] = (),
    scale: float = 1.0,
) -> RecordStore:
    """Build a RecordStore from parsed logs.

    ``domains`` is the science-domain catalog; logs whose job record names
    a domain outside the catalog get code −1 (like Cori's jobs without
    NEWT project info, §3.3.2).
    """
    domains = tuple(domains)
    domain_code = {d: i for i, d in enumerate(domains)}

    rows = []
    job_rows: dict[int, tuple] = {}
    extensions: dict[str, int] = {}
    log_counts: dict[int, int] = {}

    for log_id, log in enumerate(logs):
        job = log.job
        dcode = domain_code.get(job.domain, -1)
        log_counts[job.job_id] = log_counts.get(job.job_id, 0) + 1
        names = log.name_records()
        touched_bb = False
        for module in (ModuleId.POSIX, ModuleId.MPIIO, ModuleId.STDIO):
            for rec in log.records(module):
                nr = names[rec.record_id]
                layer = mounts.resolve(nr.path)
                layer_code = (
                    LAYER_CODES.get(layer.key, LAYER_OTHER)
                    if layer is not None else LAYER_OTHER
                )
                if layer is not None and layer.key == "insystem":
                    touched_bb = True
                ext = _extension_of(nr.path)
                ext_code = -1
                if ext:
                    ext_code = extensions.setdefault(ext, len(extensions))
                row = (
                    job.job_id, log_id, job.user_id, rec.record_id,
                    layer_code, int(module), rec.rank, job.nprocs,
                    dcode, ext_code,
                    rec.bytes_read, rec.bytes_written,
                    rec.read_time, rec.write_time,
                    float(rec.get("F_META_TIME")),
                    _op_count(rec, "read"), _op_count(rec, "write"),
                    _hist(rec, "READ"), _hist(rec, "WRITE"),
                )
                rows.append(row)
        prev = job_rows.get(job.job_id)
        job_rows[job.job_id] = (
            job.job_id, job.user_id,
            int(job.metadata.get("nnodes", "1")), job.nprocs, dcode,
            job.runtime, job.start_time,
            log_counts[job.job_id],
            1 if (touched_bb or (prev is not None and prev[8])) else 0,
        )

    files = empty_files(len(rows))
    for i, row in enumerate(rows):
        files[i] = row
    jobs = empty_jobs(len(job_rows))
    for i, row in enumerate(job_rows.values()):
        jobs[i] = row
    ext_list = sorted(extensions, key=extensions.get)
    return RecordStore(
        platform, files, jobs,
        domains=domains, extensions=ext_list, scale=scale,
    )


def _op_count(rec, direction: str) -> int:
    """Total read/write operation count across the module's counters."""
    total = 0
    names = (
        ("READS", "INDEP_READS", "COLL_READS", "NB_READS")
        if direction == "read"
        else ("WRITES", "INDEP_WRITES", "COLL_WRITES", "NB_WRITES")
    )
    for name in names:
        try:
            total += int(rec.get(name))
        except KeyError:
            continue
    return total


def _hist(rec, direction: str) -> np.ndarray:
    """Request-size histogram (zeros for STDIO, which lacks one)."""
    from repro.darshan.bins import ACCESS_SIZE_BINS
    from repro.darshan.counters import has_size_histogram

    out = np.zeros(ACCESS_SIZE_BINS.nbins, dtype=np.int64)
    if has_size_histogram(rec.module):
        for i, label in enumerate(ACCESS_SIZE_BINS.labels):
            out[i] = int(rec.get(f"SIZE_{direction}_{label}"))
    return out

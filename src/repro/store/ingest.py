"""Ingesting DarshanLog objects into a RecordStore.

This is the slow-but-faithful path: the same transformation the study's
tooling performs on real ``.darshan`` files. The workload generator's
vectorized path emits equivalent rows directly; the integration tests
assert the two paths agree on a shared population.

Layer resolution follows §3.1's accounting: a file accessed through
MPI-IO contributes its POSIX record's bytes (MPI-IO sits on POSIX), so
MPI-IO rows are kept for interface-usage analyses but flagged via the
``interface`` column, and volume analyses select POSIX+STDIO rows only.

Rows are accumulated **per log into NumPy column chunks** (one small
array per column per log, concatenated once at the end) rather than a
Python list of per-record tuples: the tuple path churned one ~260-byte
structured assignment per record and made facility-scale ingest memory
behaviour quadratic-ish in practice.

:func:`ingest_log_paths` is the file-level entry point; with ``jobs > 1``
it shards the path list contiguously over a process pool, each worker
ingesting a shard-local store, and merges them with stable log-id and
extension-catalog remapping (:mod:`repro.store.merge`) — the result is
row-identical to a serial ingest of the same paths.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.darshan.constants import ModuleId
from repro.darshan.log import DarshanLog
from repro.errors import LogFormatError
from repro.obs.tracer import trace_span
from repro.platforms.machine import MountTable
from repro.store.recordstore import RecordStore
from repro.store.schema import LAYER_CODES, LAYER_OTHER, empty_files, empty_jobs

#: Scalar file-table columns in ingest fill order (histograms handled
#: separately: they are per-record arrays, stacked per log).
_SCALAR_COLS = (
    "job_id", "log_id", "user_id", "record_id", "layer", "interface",
    "rank", "nprocs", "domain", "ext", "bytes_read", "bytes_written",
    "read_time", "write_time", "meta_time", "reads", "writes",
)


def _extension_of(path: str) -> str:
    name = path.rsplit("/", 1)[-1]
    if "." not in name[1:]:
        return ""
    return name.rsplit(".", 1)[-1].lower()


def ingest_logs(
    logs: Iterable[DarshanLog],
    platform: str,
    mounts: MountTable,
    *,
    domains: Sequence[str] = (),
    extensions: Sequence[str] = (),
    scale: float = 1.0,
) -> RecordStore:
    """Build a RecordStore from parsed logs.

    ``domains`` is the science-domain catalog; logs whose job record names
    a domain outside the catalog get code −1 (like Cori's jobs without
    NEWT project info, §3.3.2). ``extensions`` pre-seeds the extension
    catalog (codes 0..n−1 in the given order, unseen extensions appended
    first-seen after it) so an ingested store can share codes with a
    generated or spec-compiled one.
    """
    with trace_span("ingest.logs", "ingest") as sp:
        store = _ingest_logs(
            logs, platform, mounts,
            domains=domains, extensions=extensions, scale=scale,
        )
        if sp is not None:
            sp.add(platform=platform, rows=len(store.files), jobs=len(store.jobs))
        return store


def _ingest_logs(
    logs: Iterable[DarshanLog],
    platform: str,
    mounts: MountTable,
    *,
    domains: Sequence[str] = (),
    extensions: Sequence[str] = (),
    scale: float = 1.0,
) -> RecordStore:
    domains = tuple(domains)
    domain_code = {d: i for i, d in enumerate(domains)}

    chunks: dict[str, list[np.ndarray]] = {c: [] for c in _SCALAR_COLS}
    hist_chunks: dict[str, list[np.ndarray]] = {"read_hist": [], "write_hist": []}
    nrows = 0
    job_rows: dict[int, tuple] = {}
    extensions = {e: i for i, e in enumerate(extensions)}
    log_counts: dict[int, int] = {}

    for log_id, log in enumerate(logs):
        job = log.job
        dcode = domain_code.get(job.domain, -1)
        log_counts[job.job_id] = log_counts.get(job.job_id, 0) + 1
        names = log.name_records()
        touched_bb = False
        cols: dict[str, list] = {c: [] for c in _SCALAR_COLS}
        hists: dict[str, list[np.ndarray]] = {"read_hist": [], "write_hist": []}
        for module in (ModuleId.POSIX, ModuleId.MPIIO, ModuleId.STDIO):
            for rec in log.records(module):
                nr = names[rec.record_id]
                layer = mounts.resolve(nr.path)
                layer_code = (
                    LAYER_CODES.get(layer.key, LAYER_OTHER)
                    if layer is not None else LAYER_OTHER
                )
                if layer is not None and layer.key == "insystem":
                    touched_bb = True
                ext = _extension_of(nr.path)
                ext_code = -1
                if ext:
                    ext_code = extensions.setdefault(ext, len(extensions))
                cols["job_id"].append(job.job_id)
                cols["log_id"].append(log_id)
                cols["user_id"].append(job.user_id)
                cols["record_id"].append(rec.record_id)
                cols["layer"].append(layer_code)
                cols["interface"].append(int(module))
                cols["rank"].append(rec.rank)
                cols["nprocs"].append(job.nprocs)
                cols["domain"].append(dcode)
                cols["ext"].append(ext_code)
                cols["bytes_read"].append(rec.bytes_read)
                cols["bytes_written"].append(rec.bytes_written)
                cols["read_time"].append(rec.read_time)
                cols["write_time"].append(rec.write_time)
                cols["meta_time"].append(float(rec.get("F_META_TIME")))
                cols["reads"].append(_op_count(rec, "read"))
                cols["writes"].append(_op_count(rec, "write"))
                hists["read_hist"].append(_hist(rec, "READ"))
                hists["write_hist"].append(_hist(rec, "WRITE"))
        if cols["job_id"]:
            nrows += len(cols["job_id"])
            for c in _SCALAR_COLS:
                chunks[c].append(np.asarray(cols[c]))
            for c in ("read_hist", "write_hist"):
                hist_chunks[c].append(np.stack(hists[c]))
        prev = job_rows.get(job.job_id)
        job_rows[job.job_id] = (
            job.job_id, job.user_id,
            int(job.metadata.get("nnodes", "1")), job.nprocs, dcode,
            job.runtime, job.start_time,
            log_counts[job.job_id],
            1 if (touched_bb or (prev is not None and prev[8])) else 0,
        )

    files = empty_files(nrows)
    if nrows:
        for c in _SCALAR_COLS:
            files[c] = np.concatenate(chunks[c])
        for c in ("read_hist", "write_hist"):
            files[c] = np.concatenate(hist_chunks[c])
    jobs = empty_jobs(len(job_rows))
    for i, row in enumerate(job_rows.values()):
        jobs[i] = row
    ext_list = sorted(extensions, key=extensions.get)
    return RecordStore(
        platform, files, jobs,
        domains=domains, extensions=ext_list, scale=scale,
    )


def _read_one(path: str) -> DarshanLog:
    """Parse one log file, tagging format errors with the failing path."""
    import os

    from repro.darshan.format import read_log

    try:
        return read_log(os.fspath(path))
    except LogFormatError as exc:
        raise LogFormatError(f"{path}: {exc}") from exc


def _ingest_shard(payload) -> RecordStore:
    """Pool worker: ingest one contiguous shard of log paths."""
    paths, platform, mounts, domains, extensions, scale = payload
    with trace_span("ingest.shard", "ingest") as sp:
        if sp is not None:
            sp.add(paths=len(paths))
        return ingest_logs(
            (_read_one(p) for p in paths), platform, mounts,
            domains=domains, extensions=extensions, scale=scale,
        )


def ingest_log_paths(
    paths: Iterable[str],
    platform: str,
    mounts: MountTable,
    *,
    domains: Sequence[str] = (),
    extensions: Sequence[str] = (),
    scale: float = 1.0,
    jobs: int | None = None,
) -> RecordStore:
    """Ingest serialized logs from disk, optionally sharded over a pool.

    Shards are contiguous, file-size-balanced slices of the path list, so
    the merged store is row-identical to a serial ingest in path order
    (same log-id enumeration, same first-seen extension catalog). A
    corrupt log fails the whole ingest with a
    :class:`repro.errors.ShardError` naming the shard and the file.
    """
    import os

    from repro.parallel import (
        SHARDS_PER_WORKER,
        contiguous_shards,
        resolve_jobs,
        run_sharded,
    )
    from repro.store.merge import merge_stores

    paths = [os.fspath(p) for p in paths]
    njobs = resolve_jobs(jobs)
    with trace_span("ingest.paths", "ingest") as sp:
        if sp is not None:
            sp.add(paths=len(paths), jobs=njobs)
        if njobs <= 1 or len(paths) <= 1:
            return ingest_logs(
                (_read_one(p) for p in paths), platform, mounts,
                domains=domains, extensions=extensions, scale=scale,
            )
        costs = [
            max(os.path.getsize(p), 1) if os.path.exists(p) else 1 for p in paths
        ]
        slices = contiguous_shards(costs, njobs * SHARDS_PER_WORKER)
        payloads = [
            (paths[sl], platform, mounts, tuple(domains), tuple(extensions), scale)
            for sl in slices
        ]
        # Shard stores travel as shared-memory headers, never pickled
        # payloads; the merge copies, then every segment is unlinked.
        return run_sharded(
            _ingest_shard, payloads, jobs=njobs, shm=True,
            reduce=lambda shards: merge_stores(
                shards, remap_log_ids=True, nlogs_rule="sum"
            ),
        )


def _op_count(rec, direction: str) -> int:
    """Total read/write operation count across the module's counters."""
    total = 0
    names = (
        ("READS", "INDEP_READS", "COLL_READS", "NB_READS")
        if direction == "read"
        else ("WRITES", "INDEP_WRITES", "COLL_WRITES", "NB_WRITES")
    )
    for name in names:
        try:
            total += int(rec.get(name))
        except KeyError:
            continue
    return total


def _hist(rec, direction: str) -> np.ndarray:
    """Request-size histogram (zeros for STDIO, which lacks one)."""
    from repro.darshan.bins import ACCESS_SIZE_BINS
    from repro.darshan.counters import has_size_histogram

    out = np.zeros(ACCESS_SIZE_BINS.nbins, dtype=np.int64)
    if has_size_histogram(rec.module):
        for i, label in enumerate(ACCESS_SIZE_BINS.labels):
            out[i] = int(rec.get(f"SIZE_{direction}_{label}"))
    return out

"""Zero-copy shard fabric: shared-memory hand-off between processes.

The sharded pipelines (generate, ingest, sharded analysis) move columnar
NumPy tables between pool workers and the parent. Pickling those tables
across the pool's result pipe costs two full copies plus pipe syscalls
per shard — BENCH_generate.json recorded the sharded pipeline running
*slower* than serial because of exactly that tax. This module replaces
the payload pickle with POSIX shared memory: the producer writes the raw
table bytes into a :class:`multiprocessing.shared_memory.SharedMemory`
segment and ships only a tiny picklable *header* (segment name, dtype
descriptor, shape, byte offset); the consumer maps the segment and
builds array views — no payload bytes ever cross the pipe.

Ownership/lifecycle contract (DESIGN.md §12):

* The **creating worker** copies its arrays in, *unregisters* the
  segment from its own resource tracker (so a worker exiting does not
  tear the segment down under the parent), closes its mapping, and from
  then on never touches it again.
* The **parent** re-registers the segment with *its* resource tracker
  on attach — if the parent dies before unlinking, the tracker reaps
  the segment instead of leaking ``/dev/shm`` entries — and is solely
  responsible for :func:`release` (close + unlink) once the data has
  been reduced.
* A worker that fails mid-export unlinks its own partial segment before
  reporting the error; the parent unlinks every *successful* shard's
  segment before re-raising a :class:`~repro.errors.ShardError`, so one
  bad shard never strands the others' memory.

Every segment created by this process is tracked in a module registry
(:func:`live_segments`) and force-unlinked at interpreter exit as a
last-ditch guard; tests assert the registry drains back to empty.
"""

from __future__ import annotations

import atexit
import itertools
import os
import secrets
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np

#: /dev/shm name prefix for every fabric segment; tests and operators
#: can spot (and sweep) repro-owned segments by it.
SEGMENT_PREFIX = "repro-fab"

#: Byte alignment of each table inside a multi-table segment. 64 keeps
#: every dtype we ship naturally aligned and cache-line friendly.
_ALIGN = 64

_counter = itertools.count()

#: Names of segments this process created (owner side) and has not yet
#: unlinked. Drained by :func:`release` / :func:`unlink_by_name`; purged
#: at exit so a crashed run cannot strand /dev/shm entries.
_live: set[str] = set()

#: Consumer-side attach cache (pool workers map the same backing segment
#: for many tasks; re-mapping per task would cost a syscall round trip
#: each time). Bounded: oldest mapping is closed once the cap is hit.
_attach_cache: dict[str, shared_memory.SharedMemory] = {}
_ATTACH_CACHE_CAP = 32


def _segment_name() -> str:
    return f"{SEGMENT_PREFIX}-{os.getpid()}-{next(_counter)}-{secrets.token_hex(4)}"


def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Unregister a segment from this process's resource tracker.

    Best-effort: the tracker API is internal, but without this call a
    pool worker's tracker unlinks the segment when the worker exits —
    while the parent still holds views into it.
    """
    try:
        resource_tracker.unregister(shm._name, "shared_memory")  # noqa: SLF001
    except Exception:  # pragma: no cover - tracker internals moved
        pass


def _track(shm: shared_memory.SharedMemory) -> None:
    """Adopt unlink responsibility in this process's resource tracker."""
    try:
        resource_tracker.register(shm._name, "shared_memory")  # noqa: SLF001
    except Exception:  # pragma: no cover - tracker internals moved
        pass


def live_segments() -> tuple[str, ...]:
    """Names of segments this process owns and has not yet unlinked."""
    return tuple(sorted(_live))


@dataclass(frozen=True)
class TableHeader:
    """Placement of one array inside a segment (picklable, ~100 bytes)."""

    descr: object  # np.lib.format-style dtype descriptor
    shape: tuple[int, ...]
    offset: int


@dataclass(frozen=True)
class TablesRef:
    """Header for a whole segment: the only thing that crosses the pipe."""

    name: str
    nbytes: int
    tables: tuple[TableHeader, ...]


def _descr(dtype: np.dtype) -> object:
    return np.lib.format.dtype_to_descr(dtype)


def export_tables(arrays: list[np.ndarray]) -> TablesRef:
    """Copy arrays into one fresh shared segment; return its header.

    One memcpy per array (the only copy the hand-off ever makes). The
    caller — typically a pool worker — must not use the segment after
    this returns: the parent owns it. A failure mid-copy unlinks the
    partial segment before propagating.
    """
    headers: list[TableHeader] = []
    offset = 0
    for a in arrays:
        a = np.ascontiguousarray(a)
        headers.append(TableHeader(_descr(a.dtype), a.shape, offset))
        offset += -(-a.nbytes // _ALIGN) * _ALIGN
    shm = shared_memory.SharedMemory(
        create=True, size=max(offset, 1), name=_segment_name()
    )
    try:
        for a, h in zip(arrays, headers):
            a = np.ascontiguousarray(a)
            view = np.ndarray(a.shape, dtype=a.dtype, buffer=shm.buf, offset=h.offset)
            view[...] = a
            del view  # drop the buffer reference before close/unlink paths
        ref = TablesRef(shm.name, shm.size, tuple(headers))
    except BaseException:
        _untrack(shm)
        try:
            shm.unlink()
        except Exception:
            pass
        shm.close()
        raise
    _untrack(shm)  # the parent adopts unlink responsibility on attach
    shm.close()
    return ref


def import_tables(ref: TablesRef) -> tuple[list[np.ndarray], shared_memory.SharedMemory]:
    """Map a segment and return zero-copy views plus the open mapping.

    The caller owns the returned :class:`SharedMemory`: the views are
    valid only while it stays open, and the caller must hand it to
    :func:`release` when done. The segment is re-registered with this
    process's resource tracker so an unclean exit still reclaims it.
    """
    shm = shared_memory.SharedMemory(name=ref.name)
    _track(shm)
    _live.add(shm.name)
    views = [
        np.ndarray(h.shape, dtype=np.dtype(h.descr), buffer=shm.buf, offset=h.offset)
        for h in ref.tables
    ]
    return views, shm


def release(shm: shared_memory.SharedMemory, *, unlink: bool = True) -> None:
    """Unlink (by default) and close a mapping.

    Unlink happens first: once the name is gone nothing can leak even
    if the close below is blocked. The ``BufferError`` guard covers
    callers holding raw memoryview exports (which do pin the mapping).

    **numpy views do NOT pin the mapping.** ``np.ndarray(buffer=...)``
    drops its buffer export right after construction, so ``close()``
    silently unmaps underneath live arrays and any later element access
    crashes the process. Callers must copy everything they need out of
    imported views *before* calling ``release`` — ``run_sharded``'s
    reduce step is the canonical copy point.
    """
    name = shm.name
    if unlink:
        try:
            shm.unlink()
        except FileNotFoundError:  # another owner got there first
            pass
        _live.discard(name)
    try:
        shm.close()
    except BufferError:  # views alive; the mapping dies with them
        pass


def unlink_by_name(name: str) -> None:
    """Unlink a segment by name without holding a mapping (error paths)."""
    try:
        shm = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        _live.discard(name)
        return
    release(shm, unlink=True)


# -- record-store hand-off ---------------------------------------------------
@dataclass(frozen=True)
class StoreRef:
    """Picklable stand-in for a shard's RecordStore: headers plus the
    (small) catalog metadata. No row bytes; pickles in ~hundreds of
    bytes regardless of shard size — the regression guard in
    tests/test_fabric.py pins that."""

    platform: str
    domains: tuple[str, ...]
    extensions: tuple[str, ...]
    scale: float
    tables: TablesRef


def export_store(store) -> StoreRef:
    """Worker side: move a shard-local RecordStore's tables into shm."""
    return StoreRef(
        store.platform,
        tuple(store.domains),
        tuple(store.extensions),
        store.scale,
        export_tables([store.files, store.jobs]),
    )


def import_store(ref: StoreRef):
    """Parent side: rebuild the RecordStore over zero-copy views.

    Returns ``(store, mapping)``; the store's tables alias the mapping,
    so the mapping must outlive every use of the store (the sharded
    pipelines merge first, then :func:`release`).
    """
    from repro.store.recordstore import RecordStore

    (files, jobs), shm = import_tables(ref.tables)
    store = RecordStore(
        ref.platform,
        files,
        jobs,
        domains=ref.domains,
        extensions=ref.extensions,
        scale=ref.scale,
    )
    return store, shm


# -- preallocated output arenas ---------------------------------------------
@dataclass(frozen=True)
class ArenaSpec:
    """Picklable description of a parent-owned output arena."""

    name: str
    descr: object
    shape: tuple[int, ...]

    def open(self) -> np.ndarray:
        """Map the arena (consumer side, cached) and view the array."""
        shm = attach_cached(self.name)
        return np.ndarray(self.shape, dtype=np.dtype(self.descr), buffer=shm.buf)


class Arena:
    """A parent-preallocated segment that workers fill range-by-range.

    The fixed-size half of the sharded-analysis hand-off: the parent
    sizes the arena for the whole output array, each worker writes only
    its contiguous row range, and the parent's view of the full array is
    the assembled result — zero copies on either side. The parent keeps
    the mapping open for as long as the view is referenced (the sharded
    context memoizes the view) and unlinks via :meth:`close`.
    """

    def __init__(self, dtype: np.dtype, shape: tuple[int, ...]):
        dtype = np.dtype(dtype)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        self._shm = shared_memory.SharedMemory(
            create=True, size=max(nbytes, 1), name=_segment_name()
        )
        _live.add(self._shm.name)
        self.spec = ArenaSpec(self._shm.name, _descr(dtype), tuple(shape))

    def view(self) -> np.ndarray:
        return np.ndarray(
            self.spec.shape, dtype=np.dtype(self.spec.descr), buffer=self._shm.buf
        )

    def close(self) -> None:
        release(self._shm, unlink=True)


# -- consumer-side mapping cache --------------------------------------------
def attach_cached(name: str) -> shared_memory.SharedMemory:
    """Map a segment read-through a per-process cache (worker hot path).

    Pool workers are long-lived; the sharded analysis context sends many
    tasks against the same backing segment, and mapping it once per
    worker instead of once per task is part of keeping the fan-out
    overhead per call in the microseconds. Cached mappings do NOT take
    unlink ownership.
    """
    shm = _attach_cache.get(name)
    if shm is None:
        while len(_attach_cache) >= _ATTACH_CACHE_CAP:
            _, old = _attach_cache.popitem()
            old.close()
        shm = shared_memory.SharedMemory(name=name)
        _attach_cache[name] = shm
    return shm


def drop_cached(name: str) -> None:
    shm = _attach_cache.pop(name, None)
    if shm is not None:
        shm.close()


def _purge() -> None:  # pragma: no cover - interpreter teardown
    for name in list(_live):
        try:
            unlink_by_name(name)
        except Exception:
            pass
    for shm in list(_attach_cache.values()):
        try:
            shm.close()
        except Exception:
            pass
    _attach_cache.clear()


atexit.register(_purge)

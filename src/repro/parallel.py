"""Deterministic process-pool fan-out for the sharded pipelines.

The generate and ingest paths both follow the same recipe: split the work
into *shards* whose boundaries depend only on the input (never on worker
count or scheduling), run each shard in a worker process, and reassemble
the shard results **in shard order**. Determinism then rests on two
invariants this module helps enforce:

* shard boundaries are contiguous, cost-balanced slices of the unit list,
  so the concatenation of shard outputs equals the serial iteration order;
* randomness is keyed per *unit* (see the generator's per-block RNG
  substreams), never per shard, so the sampled population is identical for
  every worker count.

Worker failures are wrapped in :class:`repro.errors.ShardError` carrying
the failing shard's id; one bad shard fails the whole run loudly rather
than silently dropping a slice of the year.

When tracing is active (:mod:`repro.obs`), each pool worker runs its
shard under a fresh tracer and ships the finished span records back
inside the result tuple; the parent splices them into its own tracer
(one export track per shard), so a sharded run still yields one
coherent trace. The inline (``jobs <= 1``) path needs none of that —
the parent's tracer is already active where the work runs.
"""

from __future__ import annotations

import multiprocessing
import os
import traceback
from typing import Callable, Sequence, TypeVar

from repro.errors import ConfigurationError, ShardError
from repro.obs.integrate import adopt_worker_records, capture_worker
from repro.obs.tracer import get_tracer, trace_span

T = TypeVar("T")

#: Shards per worker: more shards than workers lets the pool rebalance a
#: straggler, while contiguity keeps reassembly order-deterministic.
SHARDS_PER_WORKER = 4


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``--jobs`` value: None/1 → serial, 0 → all cores."""
    if jobs is None:
        return 1
    if not isinstance(jobs, int) or isinstance(jobs, bool):
        raise ConfigurationError(f"jobs must be an int, got {jobs!r}")
    if jobs < 0:
        raise ConfigurationError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


def contiguous_shards(costs: Sequence[float], nshards: int) -> list[slice]:
    """Split ``range(len(costs))`` into ≤ ``nshards`` contiguous slices.

    Greedy sweep: close a shard once it has accumulated its fair share of
    the remaining cost. Contiguity (never cost-optimal bin packing) is
    deliberate — concatenating shard outputs in shard order must reproduce
    the serial unit order exactly.
    """
    n = len(costs)
    if n == 0:
        return []
    nshards = max(1, min(nshards, n))
    total = float(sum(costs))
    if total <= 0:
        # Degenerate cost model: equal-count slices.
        step = -(-n // nshards)
        return [slice(i, min(i + step, n)) for i in range(0, n, step)]
    out: list[slice] = []
    start = 0
    acc = 0.0
    spent = 0.0
    for i, c in enumerate(costs):
        acc += float(c)
        shards_left = nshards - len(out)
        if shards_left <= 1:
            break  # the last shard absorbs the tail
        fair = (total - spent) / shards_left
        # Close the shard at its fair share — unless every remaining unit
        # is needed to fill the remaining shards one apiece.
        if acc >= fair and (n - i - 1) >= (shards_left - 1):
            out.append(slice(start, i + 1))
            start = i + 1
            spent += acc
            acc = 0.0
    if start < n:
        out.append(slice(start, n))
    return out


def _invoke(args: tuple) -> tuple:
    """Pool entry point: run one shard, never raise across the pipe.

    ``capture`` asks the worker to trace the shard under a fresh tracer
    and return the span records alongside the value (``None`` when
    tracing is off or the shard ran inline under the parent's tracer).
    """
    fn, shard_id, payload, capture = args
    try:
        if capture:
            value, records = capture_worker(fn, payload)
        else:
            value, records = fn(payload), None
        return ("ok", shard_id, value, records)
    except Exception as exc:  # noqa: BLE001 - reported via ShardError
        return (
            "err",
            shard_id,
            f"{type(exc).__name__}: {exc}",
            traceback.format_exc(),
        )


def run_sharded(
    fn: Callable[[object], T],
    payloads: Sequence[object],
    *,
    jobs: int | None,
) -> list[T]:
    """Run ``fn`` over each payload, fanning out across ``jobs`` processes.

    Results come back ordered by shard index regardless of completion
    order. ``fn`` must be a module-level (picklable) callable. With
    ``jobs`` ≤ 1 or a single payload everything runs inline — the serial
    and parallel code paths are literally the same function applications.
    """
    njobs = resolve_jobs(jobs)
    inline = njobs <= 1 or len(payloads) <= 1
    # Workers trace into their own stores and ship records back; inline
    # shards run under the parent's already-active tracer directly.
    capture = not inline and get_tracer() is not None
    tasks = [(fn, i, p, capture) for i, p in enumerate(payloads)]
    if inline:
        results = [_invoke(t) for t in tasks]
    else:
        with trace_span("parallel.run", "parallel") as sp:
            if sp is not None:
                sp.add(jobs=njobs, shards=len(tasks))
            ctx = multiprocessing.get_context()
            with ctx.Pool(processes=min(njobs, len(tasks))) as pool:
                results = pool.map(_invoke, tasks)
    out: list[T] = [None] * len(tasks)  # type: ignore[list-item]
    for res in results:
        if res[0] == "err":
            _, shard_id, message, tb = res
            err = ShardError(shard_id, message)
            err.worker_traceback = tb
            raise err
        _, shard_id, value, records = res
        if records:
            adopt_worker_records(records, shard_id)
        out[shard_id] = value
    return out

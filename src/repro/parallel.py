"""Deterministic process-pool fan-out for the sharded pipelines.

The generate and ingest paths both follow the same recipe: split the work
into *shards* whose boundaries depend only on the input (never on worker
count or scheduling), run each shard in a worker process, and reassemble
the shard results **in shard order**. Determinism then rests on two
invariants this module helps enforce:

* shard boundaries are contiguous, cost-balanced slices of the unit list,
  so the concatenation of shard outputs equals the serial iteration order;
* randomness is keyed per *unit* (see the generator's per-block RNG
  substreams), never per shard, so the sampled population is identical for
  every worker count.

Two perf disciplines keep the fan-out from eating its own winnings
(DESIGN.md §12):

* **Zero-copy hand-off** — with ``shm=True`` a worker's RecordStore
  result travels as a :class:`repro.fabric.StoreRef` header while the
  table bytes move through shared memory; nothing but headers crosses
  the pool pipe. The caller supplies ``reduce`` so the parent can merge
  the shard views and release every segment before returning.
* **Pool reuse** — one pool per worker count is kept alive for the
  process (torn down at exit), so a run that fans out repeatedly — the
  sharded analysis context issues one fan-out per primitive — pays pool
  startup once, not per call.

Worker failures are wrapped in :class:`repro.errors.ShardError` carrying
the failing shard's id; one bad shard fails the whole run loudly rather
than silently dropping a slice of the year — and the parent unlinks every
other shard's shared segment first, so the failure leaks nothing.

When tracing is active (:mod:`repro.obs`), each pool worker runs its
shard under a fresh tracer and ships the finished span records back
inside the result tuple; the parent splices them into its own tracer
(one export track per shard), so a sharded run still yields one
coherent trace. The inline (``jobs <= 1``) path needs none of that —
the parent's tracer is already active where the work runs.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import traceback
from typing import Callable, Sequence, TypeVar

from repro import fabric
from repro.errors import ConfigurationError, ShardError
from repro.obs.integrate import adopt_worker_records, capture_worker
from repro.obs.tracer import get_tracer, trace_span

T = TypeVar("T")

#: Shards per worker: more shards than workers lets the pool rebalance a
#: straggler, while contiguity keeps reassembly order-deterministic.
SHARDS_PER_WORKER = 4

#: Start method for the shared pools. ``fork`` is the fast default where
#: available (no re-import, payloads stay cheap); override with
#: ``REPRO_MP_START=forkserver|spawn`` for embedders whose main process
#: cannot be forked safely (threads holding locks, GPU contexts, ...).
_START_ENV = "REPRO_MP_START"


def usable_cores() -> int:
    """Cores this process may actually run on.

    Under CPU affinity (cgroup pinning, ``taskset``, batch-scheduler
    slots) ``os.cpu_count()`` reports the machine, not the allocation;
    sizing a pool to it oversubscribes the slot. Prefer the affinity
    mask where the platform exposes one.
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # macOS/Windows: no affinity API
        return os.cpu_count() or 1


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``--jobs`` value: None/1 → serial, 0 → usable cores."""
    if jobs is None:
        return 1
    if not isinstance(jobs, int) or isinstance(jobs, bool):
        raise ConfigurationError(f"jobs must be an int, got {jobs!r}")
    if jobs < 0:
        raise ConfigurationError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        return usable_cores()
    return jobs


def contiguous_shards(costs: Sequence[float], nshards: int) -> list[slice]:
    """Split ``range(len(costs))`` into ≤ ``nshards`` contiguous slices.

    Greedy sweep: close a shard once it has accumulated its fair share of
    the remaining cost. Contiguity (never cost-optimal bin packing) is
    deliberate — concatenating shard outputs in shard order must reproduce
    the serial unit order exactly.
    """
    n = len(costs)
    if n == 0:
        return []
    nshards = max(1, min(nshards, n))
    total = float(sum(costs))
    if total <= 0:
        # Degenerate cost model: equal-count slices.
        step = -(-n // nshards)
        return [slice(i, min(i + step, n)) for i in range(0, n, step)]
    out: list[slice] = []
    start = 0
    acc = 0.0
    spent = 0.0
    for i, c in enumerate(costs):
        acc += float(c)
        shards_left = nshards - len(out)
        if shards_left <= 1:
            break  # the last shard absorbs the tail
        fair = (total - spent) / shards_left
        # Close the shard at its fair share — unless every remaining unit
        # is needed to fill the remaining shards one apiece.
        if acc >= fair and (n - i - 1) >= (shards_left - 1):
            out.append(slice(start, i + 1))
            start = i + 1
            spent += acc
            acc = 0.0
    if start < n:
        out.append(slice(start, n))
    return out


def contiguous_row_ranges(
    nrows: int, nshards: int, *, block: int = 65536
) -> list[tuple[int, int]]:
    """Contiguous ``(lo, hi)`` row ranges, cost-balanced at block grain.

    The read-side twin of :func:`contiguous_shards`: rows cost the same,
    so the planner runs over ``ceil(nrows / block)`` equal-cost blocks
    (never a per-row cost list) and converts the block slices back to
    row bounds. Used by the sharded analysis context.
    """
    if nrows <= 0:
        return []
    nblocks = -(-nrows // block)
    slices = contiguous_shards([1.0] * nblocks, nshards)
    return [
        (sl.start * block, min(sl.stop * block, nrows)) for sl in slices
    ]


# -- persistent pools --------------------------------------------------------
_pools: dict[int, object] = {}
_POOL_CACHE_CAP = 2


def _pool_context():
    method = os.environ.get(_START_ENV)
    if method:
        return multiprocessing.get_context(method)
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def get_pool(processes: int):
    """A shared pool with ``processes`` workers, created once per size.

    Reuse amortizes worker startup across every fan-out of a run (the
    PR 3 pipeline paid pool construction per call, which on small runs
    cost more than the sharded work saved). The cache keeps the last
    couple of sizes; anything older is drained.
    """
    pool = _pools.get(processes)
    if pool is None:
        while len(_pools) >= _POOL_CACHE_CAP:
            oldest = next(iter(_pools))
            _pools.pop(oldest).terminate()
        pool = _pool_context().Pool(processes=processes)
        _pools[processes] = pool
    return pool


def _drop_pool(processes: int) -> None:
    """Discard a pool whose workers died (broken pools don't heal)."""
    pool = _pools.pop(processes, None)
    if pool is not None:
        pool.terminate()


def warm_pool(jobs: int | None) -> None:
    """Eagerly create the pool for ``jobs`` workers (from the caller's
    thread). Fork-starting a pool from inside a worker *thread* is the
    classic multiprocessing deadlock; services that will fan out from
    threads (``repro serve --analysis-jobs``) warm the pool at startup
    instead."""
    njobs = resolve_jobs(jobs)
    if njobs > 1:
        get_pool(njobs)


def pool_map(processes: int, fn, tasks: list) -> list:
    """``pool.map`` through the shared pool cache."""
    return get_pool(processes).map(fn, tasks)


def shutdown_pools() -> None:
    """Terminate every cached pool (tests and interpreter exit)."""
    for pool in list(_pools.values()):
        pool.terminate()
        pool.join()
    _pools.clear()


atexit.register(shutdown_pools)


def _invoke(args: tuple) -> tuple:
    """Pool entry point: run one shard, never raise across the pipe.

    ``capture`` asks the worker to trace the shard under a fresh tracer
    and return the span records alongside the value (``None`` when
    tracing is off or the shard ran inline under the parent's tracer).
    ``encode`` moves a RecordStore result's tables into shared memory
    and returns the :class:`repro.fabric.StoreRef` header in its place —
    the pickle crossing the pipe stays a few hundred bytes per shard no
    matter how many million rows the shard produced.
    """
    fn, shard_id, payload, capture, encode = args
    try:
        if capture:
            value, records = capture_worker(fn, payload)
        else:
            value, records = fn(payload), None
        if encode:
            value = _encode_value(value)
        return ("ok", shard_id, value, records)
    except Exception as exc:  # noqa: BLE001 - reported via ShardError
        return (
            "err",
            shard_id,
            f"{type(exc).__name__}: {exc}",
            traceback.format_exc(),
        )


def _encode_value(value):
    from repro.store.recordstore import RecordStore

    if isinstance(value, tuple):
        # Compound results (the what-if sweep's (report, store) pairs)
        # encode elementwise: each RecordStore member rides shm, the
        # rest pickle as usual.
        return tuple(_encode_value(v) for v in value)
    if isinstance(value, RecordStore):
        return fabric.export_store(value)
    return value


def _decode_value(value, segments: list):
    if isinstance(value, tuple):
        return tuple(_decode_value(v, segments) for v in value)
    if isinstance(value, fabric.StoreRef):
        store, shm = fabric.import_store(value)
        segments.append(shm)
        return store
    if isinstance(value, fabric.TablesRef):
        # A bare array shipped through shm (the sharded analysis
        # context's variable-size primitives export their own refs).
        views, shm = fabric.import_tables(value)
        segments.append(shm)
        return views[0] if len(views) == 1 else views
    return value


def _segment_names(value):
    """Shm segment names behind a decoded-able result value, if any."""
    if isinstance(value, tuple):
        for v in value:
            yield from _segment_names(v)
    elif isinstance(value, fabric.StoreRef):
        yield value.tables.name
    elif isinstance(value, fabric.TablesRef):
        yield value.name


def run_sharded(
    fn: Callable[[object], T],
    payloads: Sequence[object],
    *,
    jobs: int | None,
    shm: bool = False,
    reduce: Callable[[list[T]], object] | None = None,
):
    """Run ``fn`` over each payload, fanning out across ``jobs`` processes.

    Results come back ordered by shard index regardless of completion
    order. ``fn`` must be a module-level (picklable) callable. With
    ``jobs`` ≤ 1 or a single payload everything runs inline — the serial
    and parallel code paths are literally the same function applications.

    ``shm=True`` routes RecordStore results through the shared-memory
    fabric instead of the pool pipe; it requires ``reduce``, which runs
    over the zero-copy shard views while the segments are still mapped —
    every segment is closed and unlinked before this function returns
    (success or failure), so the reduced value must not alias shard
    memory (:func:`repro.store.merge.merge_stores` copies, and is the
    intended reducer).
    """
    if shm and reduce is None:
        raise ConfigurationError("run_sharded(shm=True) requires a reduce callable")
    njobs = resolve_jobs(jobs)
    inline = njobs <= 1 or len(payloads) <= 1
    # Workers trace into their own stores and ship records back; inline
    # shards run under the parent's already-active tracer directly.
    capture = not inline and get_tracer() is not None
    encode = shm and not inline
    tasks = [(fn, i, p, capture, encode) for i, p in enumerate(payloads)]
    if inline:
        results = [_invoke(t) for t in tasks]
    else:
        with trace_span("parallel.run", "parallel") as sp:
            if sp is not None:
                sp.add(jobs=njobs, shards=len(tasks), shm=encode)
            nproc = min(njobs, len(tasks))
            try:
                results = pool_map(nproc, _invoke, tasks)
            except ShardError:
                raise
            except Exception:
                # A lost worker breaks the whole pool object, not just
                # the call; drop it so the next run starts clean.
                _drop_pool(nproc)
                raise
    segments: list = []
    out: list[T] = [None] * len(tasks)  # type: ignore[list-item]
    try:
        for res in results:
            if res[0] == "err":
                _, shard_id, message, tb = res
                err = ShardError(shard_id, message)
                err.worker_traceback = tb
                raise err
            _, shard_id, value, records = res
            if records:
                adopt_worker_records(records, shard_id)
            out[shard_id] = _decode_value(value, segments)
        return reduce(out) if reduce is not None else out
    except BaseException:
        # One bad shard (or a failing reduce) must not strand the other
        # shards' /dev/shm segments: close what we mapped, unlink what
        # we never got to.
        mapped = {s.name for s in segments}
        for res in results:
            if res[0] != "ok":
                continue
            for name in _segment_names(res[2]):
                if name not in mapped:
                    fabric.unlink_by_name(name)
        raise
    finally:
        for shm_seg in segments:
            fabric.release(shm_seg, unlink=True)

"""Bridging generated populations into the scheduler substrate.

The workload generator emits columnar job rows (enough for the paper's
analyses); this bridge lifts them back into :class:`JobSpec` objects so
the batch scheduler, DataWarp manager, and staging engine can execute the
same population as a discrete simulation — used by the integration tests
and the capacity-planning example to check that the synthetic year is
*schedulable* on the paper's machines.
"""

from __future__ import annotations

import numpy as np

from repro.platforms.machine import Machine
from repro.scheduler.job import BurstBufferRequest, JobSpec
from repro.store.recordstore import RecordStore
from repro.store.schema import LAYER_INSYSTEM
from repro.units import GB


def jobs_from_store(
    store: RecordStore,
    machine: Machine,
    *,
    queue_delay: float = 0.0,
) -> list[JobSpec]:
    """Lift a store's job rows into JobSpecs, submit-ordered.

    Burst-buffer requests are reconstructed for jobs that touched the
    in-system layer on DataWarp platforms: capacity sized to the job's
    in-system footprint rounded up a granularity unit (what a user would
    sensibly request).
    """
    jobs = store.jobs
    files = store.files
    is_datawarp = machine.in_system.technology == "DataWarp"
    granularity = machine.in_system.params.get("granularity", 20 * GB)

    # Per-job in-system footprint (bytes written + read once each).
    bb_bytes: dict[int, int] = {}
    if is_datawarp:
        ins = files[files["layer"] == LAYER_INSYSTEM]
        if len(ins):
            order = np.argsort(ins["job_id"], kind="stable")
            sorted_jobs = ins["job_id"][order]
            volumes = (
                ins["bytes_read"].astype(np.int64) + ins["bytes_written"]
            )[order]
            uniq, starts = np.unique(sorted_jobs, return_index=True)
            boundaries = np.append(starts, len(sorted_jobs))
            for i, job_id in enumerate(uniq):
                bb_bytes[int(job_id)] = int(
                    volumes[boundaries[i] : boundaries[i + 1]].sum()
                )

    specs: list[JobSpec] = []
    domains = store.domains
    for row in jobs:
        job_id = int(row["job_id"])
        bb_request = None
        footprint = bb_bytes.get(job_id, 0)
        if footprint > 0:
            capacity = max(
                int(np.ceil(footprint / granularity)) * granularity,
                granularity,
            )
            bb_request = BurstBufferRequest(capacity_bytes=capacity)
        specs.append(
            JobSpec(
                job_id=job_id,
                user_id=int(row["user_id"]),
                project=f"proj{int(row['user_id']) % 97}",
                domain=domains[row["domain"]] if row["domain"] >= 0 else "",
                nnodes=int(row["nnodes"]),
                nprocs=int(row["nprocs"]),
                runtime=float(row["runtime"]),
                submit_time=max(float(row["start_time"]) - queue_delay, 0.0),
                app_instances=int(row["nlogs"]),
                bb_request=bb_request,
            )
        )
    specs.sort(key=lambda j: (j.submit_time, j.job_id))
    return specs

"""A capacity batch scheduler (LSF/Slurm stand-in).

Event-driven FCFS with an aggregate node-count capacity model: a job
starts as soon as enough nodes are free (no per-node placement — layer
analyses only need start times, concurrency, and burst-buffer lifecycle).
DataWarp requests are granted before start and released at end, with
stage-in executed pre-start and stage-out post-end, mirroring Cori's
scheduler integration (§2.1.2).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.errors import SchedulerError
from repro.iosim.datawarp import DataWarpManager, StageDirective, StageKind
from repro.scheduler.job import JobSpec


@dataclass(frozen=True)
class ScheduledJob:
    """A job with its assigned execution window."""

    spec: JobSpec
    start_time: float
    end_time: float
    #: Number of jobs already running when this one started (load proxy).
    concurrent_jobs: int

    @property
    def wait_time(self) -> float:
        return self.start_time - self.spec.submit_time


class BatchScheduler:
    """FCFS scheduler over an aggregate node pool."""

    def __init__(self, total_nodes: int, datawarp: DataWarpManager | None = None):
        if total_nodes <= 0:
            raise SchedulerError("total_nodes must be positive")
        self.total_nodes = total_nodes
        self.datawarp = datawarp

    def schedule(self, jobs: list[JobSpec]) -> list[ScheduledJob]:
        """Assign start times to jobs, FCFS in submit order.

        Jobs wider than the machine are rejected with
        :class:`SchedulerError` (a real scheduler would too).
        """
        for spec in jobs:
            if spec.nnodes > self.total_nodes:
                raise SchedulerError(
                    f"job {spec.job_id} wants {spec.nnodes} nodes, "
                    f"machine has {self.total_nodes}"
                )
        pending = sorted(jobs, key=lambda j: (j.submit_time, j.job_id))
        running: list[tuple[float, int, int]] = []  # (end_time, job_id, nodes)
        free = self.total_nodes
        out: list[ScheduledJob] = []
        prev_start = 0.0
        for spec in pending:
            now = spec.submit_time
            # Release everything that finished before this submission.
            free = self._drain(running, now, free)
            # Strict FCFS: jobs start in submit order — no implicit
            # backfill past a waiting predecessor (that is EASY's job,
            # repro.scheduler.backfill).
            start = max(now, prev_start)
            while free < spec.nnodes:
                if not running:  # pragma: no cover - guarded by width check
                    raise SchedulerError("deadlock: no running jobs to free nodes")
                end_time, finished_id, nodes = heapq.heappop(running)
                free += nodes
                self._release_bb(finished_id)
                start = max(start, end_time)
            concurrent = len(running)
            free -= spec.nnodes
            prev_start = start
            end = start + spec.runtime
            heapq.heappush(running, (end, spec.job_id, spec.nnodes))
            self._grant_bb(spec)
            out.append(ScheduledJob(spec, start, end, concurrent))
        # Drain the tail so DataWarp allocations are all released.
        self._drain(running, float("inf"), free)
        return out

    def _drain(self, running: list[tuple[float, int, int]], now: float, free: int) -> int:
        while running and running[0][0] <= now:
            _, job_id, nodes = heapq.heappop(running)
            free += nodes
            self._release_bb(job_id)
        return free

    def _grant_bb(self, spec: JobSpec) -> None:
        if self.datawarp is None or spec.bb_request is None:
            return
        self.datawarp.allocate(spec.job_id, spec.bb_request.capacity_bytes)
        for pfs_path, bb_path, size in spec.bb_request.stage_in:
            self.datawarp.stage_in(
                spec.job_id,
                StageDirective(StageKind.IN, pfs_path, bb_path, size),
            )

    def _release_bb(self, job_id: int) -> None:
        if self.datawarp is None:
            return
        if job_id in self.datawarp.active_jobs():
            alloc = self.datawarp.allocation(job_id)
            # Execute declared stage-outs for files that exist.
            for directive in list(alloc.staged_out):
                del directive  # already executed by the runtime
            self.datawarp.release(job_id)


def utilization(scheduled: list[ScheduledJob], total_nodes: int, horizon: float) -> float:
    """Fraction of node-time consumed over a horizon (sanity metric)."""
    if horizon <= 0:
        raise SchedulerError("horizon must be positive")
    used = sum(s.spec.nnodes * (min(s.end_time, horizon) - min(s.start_time, horizon))
               for s in scheduled)
    return used / (total_nodes * horizon)

"""Job specifications.

A job is the scheduler-level unit (LSF on Summit, Slurm on Cori). One job
runs one or more *application instances*; each instance that performs I/O
produces one Darshan log (§2.2: "a single production job may produce
multiple Darshan logs"; the paper saw 1–34,341 logs per Summit job).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class BurstBufferRequest:
    """A #DW-style burst-buffer capacity request with staging directives."""

    capacity_bytes: int
    #: (pfs_path, bb_path, size) triples staged before the job starts.
    stage_in: tuple[tuple[str, str, int], ...] = ()
    #: (bb_path, pfs_path, size) triples staged after the job exits.
    stage_out: tuple[tuple[str, str, int], ...] = ()

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ConfigurationError("burst-buffer capacity must be positive")


@dataclass(frozen=True)
class JobSpec:
    """One batch job as submitted."""

    job_id: int
    user_id: int
    project: str
    #: Science domain of the project (§3.3.2 merges this from scheduler /
    #: NEWT logs; Slurm on Cori lacked it for ~10% of jobs -> "").
    domain: str
    nnodes: int
    nprocs: int
    #: Seconds of wall-clock the job will actually run.
    runtime: float
    submit_time: float
    #: Number of application instances (each one Darshan log if it does I/O).
    app_instances: int = 1
    #: DataWarp-style request; None when the job does not use the BB.
    bb_request: BurstBufferRequest | None = None
    #: Free-form attributes (executable name, queue, ...).
    attributes: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.nnodes <= 0:
            raise ConfigurationError(f"job {self.job_id}: nnodes must be positive")
        if self.nprocs <= 0:
            raise ConfigurationError(f"job {self.job_id}: nprocs must be positive")
        if self.runtime <= 0:
            raise ConfigurationError(f"job {self.job_id}: runtime must be positive")
        if self.submit_time < 0:
            raise ConfigurationError(f"job {self.job_id}: negative submit time")
        if self.app_instances <= 0:
            raise ConfigurationError(f"job {self.job_id}: app_instances must be >= 1")

    @property
    def node_seconds(self) -> float:
        return self.nnodes * self.runtime

    @property
    def node_hours(self) -> float:
        """Node-hours, the Table 2 unit."""
        return self.node_seconds / 3600.0

    @property
    def is_large(self) -> bool:
        """The paper's Figure 5 large-job predicate: > 1024 processes."""
        return self.nprocs > 1024

"""Batch-job substrate: job specs, year-long arrival traces, scheduling.

The paper's dataset is *jobs* (281.6K on Summit, 749.5K on Cori) each
producing 1..many Darshan logs (application instances). This subpackage
provides the job-level machinery: specification (:mod:`job`), a year-long
arrival process with diurnal/weekly structure (:mod:`trace`), and a
capacity scheduler that assigns start times and honours burst-buffer
directives (:mod:`batch`).
"""

from repro.scheduler.job import BurstBufferRequest, JobSpec
from repro.scheduler.trace import ArrivalProcess, TraceConfig
from repro.scheduler.batch import BatchScheduler, ScheduledJob
from repro.scheduler.bridge import jobs_from_store
from repro.scheduler.backfill import EasyBackfillScheduler

__all__ = [
    "jobs_from_store",
    "EasyBackfillScheduler",
    "BurstBufferRequest",
    "JobSpec",
    "ArrivalProcess",
    "TraceConfig",
    "BatchScheduler",
    "ScheduledJob",
]

"""Year-long job arrival process.

Submissions at production facilities are bursty with strong diurnal and
weekly structure (working-hours peaks, weekend troughs, maintenance gaps).
We model arrivals as an inhomogeneous Poisson process: a base rate chosen
to hit a target yearly job count, modulated by hour-of-day and day-of-week
profiles, sampled by thinning — all vectorized.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

SECONDS_PER_DAY = 86_400.0
SECONDS_PER_WEEK = 7 * SECONDS_PER_DAY
SECONDS_PER_YEAR = 365 * SECONDS_PER_DAY


@dataclass(frozen=True)
class TraceConfig:
    """Parameters of the arrival process."""

    #: Expected number of jobs over the horizon.
    target_jobs: int
    #: Trace horizon in seconds (a year by default).
    horizon: float = SECONDS_PER_YEAR
    #: Peak-to-mean ratio of the diurnal cycle (1 = flat).
    diurnal_peak: float = 1.6
    #: Weekend submission rate relative to weekdays.
    weekend_factor: float = 0.55
    #: Fraction of the year lost to facility maintenance windows.
    downtime_fraction: float = 0.02

    def __post_init__(self) -> None:
        if self.target_jobs <= 0:
            raise ConfigurationError("target_jobs must be positive")
        if self.horizon <= 0:
            raise ConfigurationError("horizon must be positive")
        if self.diurnal_peak < 1:
            raise ConfigurationError("diurnal_peak must be >= 1")
        if not 0 < self.weekend_factor <= 1:
            raise ConfigurationError("weekend_factor must be in (0, 1]")
        if not 0 <= self.downtime_fraction < 0.5:
            raise ConfigurationError("downtime_fraction must be in [0, 0.5)")


class ArrivalProcess:
    """Inhomogeneous Poisson arrivals via thinning."""

    def __init__(self, config: TraceConfig):
        self.config = config

    def intensity(self, t: np.ndarray) -> np.ndarray:
        """Relative (unnormalized) submission intensity at times ``t``.

        Diurnal cosine peaking mid-afternoon (~15:00), weekday/weekend
        step, and zeroed maintenance windows placed deterministically
        every ~4 weeks.
        """
        t = np.asarray(t, dtype=np.float64)
        tod = (t % SECONDS_PER_DAY) / SECONDS_PER_DAY  # 0..1
        amp = (self.config.diurnal_peak - 1.0) / (self.config.diurnal_peak + 1.0)
        diurnal = 1.0 + amp * np.cos(2 * np.pi * (tod - 15.0 / 24.0))
        dow = np.floor(t / SECONDS_PER_DAY) % 7  # day 0 = Monday
        weekly = np.where(dow >= 5, self.config.weekend_factor, 1.0)
        out = diurnal * weekly
        if self.config.downtime_fraction > 0:
            period = 28 * SECONDS_PER_DAY
            window = self.config.downtime_fraction * period
            out = np.where((t % period) < window, 0.0, out)
        return out

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        """Sorted arrival times over the horizon (seconds from start).

        The count is Poisson around ``target_jobs`` (exactly the target in
        expectation); thinning shapes the temporal structure.
        """
        cfg = self.config
        # Upper bound of the intensity for thinning.
        lam_max = cfg.diurnal_peak
        mean_intensity = self._mean_intensity()
        base_rate = cfg.target_jobs / (cfg.horizon * mean_intensity)
        n_candidates = rng.poisson(base_rate * lam_max * cfg.horizon)
        candidates = rng.uniform(0, cfg.horizon, size=n_candidates)
        accept = rng.uniform(0, lam_max, size=n_candidates) < self.intensity(candidates)
        times = np.sort(candidates[accept])
        return times

    def _mean_intensity(self, grid: int = 20_000) -> float:
        """Numerical mean of the relative intensity over the horizon."""
        t = np.linspace(0, self.config.horizon, grid, endpoint=False)
        return float(self.intensity(t).mean())

"""EASY backfill scheduling.

The FCFS scheduler in :mod:`repro.scheduler.batch` leaves the machine
draining while a wide job waits at the head of the queue. Production
schedulers (Slurm on Cori, LSF on Summit) close that gap with *EASY
backfill*: later jobs may jump ahead if starting them now cannot delay
the head job's reserved start. This module implements it as an
event-driven simulation with the same inputs/outputs as the FCFS path,
so the two policies are directly comparable (see the tests: backfill
strictly reduces waits on a draining machine without ever delaying the
queue head).

Walltime estimates equal actual runtimes here (perfectly honest users);
the classic overestimate study is a knob away via ``walltime_factor``.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.errors import SchedulerError
from repro.scheduler.batch import ScheduledJob
from repro.scheduler.job import JobSpec


@dataclass
class _Running:
    end_time: float
    job_id: int
    nnodes: int

    def __lt__(self, other: "_Running") -> bool:
        return (self.end_time, self.job_id) < (other.end_time, other.job_id)


class EasyBackfillScheduler:
    """EASY backfill over an aggregate node pool."""

    def __init__(self, total_nodes: int, *, walltime_factor: float = 1.0):
        if total_nodes <= 0:
            raise SchedulerError("total_nodes must be positive")
        if walltime_factor < 1.0:
            raise SchedulerError("walltime_factor must be >= 1 (an estimate)")
        self.total_nodes = total_nodes
        self.walltime_factor = walltime_factor

    # ------------------------------------------------------------------
    def schedule(self, jobs: list[JobSpec]) -> list[ScheduledJob]:
        for spec in jobs:
            if spec.nnodes > self.total_nodes:
                raise SchedulerError(
                    f"job {spec.job_id} wants {spec.nnodes} nodes, "
                    f"machine has {self.total_nodes}"
                )
        arrivals = sorted(jobs, key=lambda j: (j.submit_time, j.job_id))
        queue: list[JobSpec] = []  # FCFS order
        running: list[_Running] = []
        free = self.total_nodes
        now = 0.0
        out: dict[int, ScheduledJob] = {}
        i = 0

        def start(spec: JobSpec) -> None:
            nonlocal free
            free -= spec.nnodes
            end = now + spec.runtime
            heapq.heappush(running, _Running(end, spec.job_id, spec.nnodes))
            out[spec.job_id] = ScheduledJob(
                spec, now, end, concurrent_jobs=len(running) - 1
            )

        def estimated_end(r: _Running) -> float:
            # The scheduler reasons with walltime estimates; completions
            # still happen at actual runtimes.
            spec = out[r.job_id].spec
            return out[r.job_id].start_time + spec.runtime * self.walltime_factor

        def fill() -> None:
            nonlocal free
            # Start queue heads while they fit.
            while queue and queue[0].nnodes <= free:
                start(queue.pop(0))
            if not queue:
                return
            head = queue[0]
            # Shadow time: when will the head fit, given estimated ends?
            avail = free
            shadow = now
            spare_at_shadow = 0
            for r in sorted(running, key=estimated_end):
                avail += r.nnodes
                if avail >= head.nnodes:
                    shadow = estimated_end(r)
                    spare_at_shadow = avail - head.nnodes
                    break
            else:  # pragma: no cover - width pre-checked
                raise SchedulerError("head can never fit")
            # Backfill: any later job that fits now and either finishes
            # (by estimate) before the shadow time, or is narrow enough to
            # coexist with the head at its reserved start.
            j = 1
            while j < len(queue):
                cand = queue[j]
                fits_now = cand.nnodes <= free
                ends_before = (
                    now + cand.runtime * self.walltime_factor <= shadow
                )
                narrow = cand.nnodes <= spare_at_shadow
                if fits_now and (ends_before or narrow):
                    start(queue.pop(j))
                    if cand.nnodes <= spare_at_shadow:
                        spare_at_shadow -= cand.nnodes
                else:
                    j += 1

        while i < len(arrivals) or queue or running:
            # Next event: arrival or completion.
            next_arrival = arrivals[i].submit_time if i < len(arrivals) else None
            next_end = running[0].end_time if running else None
            if next_arrival is not None and (
                next_end is None or next_arrival <= next_end
            ):
                now = max(now, next_arrival)
                while i < len(arrivals) and arrivals[i].submit_time <= now:
                    queue.append(arrivals[i])
                    i += 1
            elif next_end is not None:
                now = max(now, next_end)
                while running and running[0].end_time <= now:
                    free += heapq.heappop(running).nnodes
            else:  # pragma: no cover - loop condition prevents this
                break
            fill()

        return [out[spec.job_id] for spec in jobs if spec.job_id in out]

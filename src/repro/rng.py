"""Deterministic random-stream management.

Every stochastic component in the library draws from a
:class:`numpy.random.Generator` handed to it by its caller; nothing reads
global state. A study holds one :class:`RngHub` built from a single integer
seed and spawns *named* child streams from it, so that

* the same seed always reproduces the same synthetic year, byte for byte;
* adding a new consumer of randomness does not perturb existing streams
  (streams are keyed by name, not by draw order);
* independent components can generate in parallel without coupling.

This follows NumPy's recommended ``SeedSequence.spawn``-style pattern, but
keyed deterministically by hashing the stream name into the entropy chain
rather than by spawn order.
"""

from __future__ import annotations

import hashlib
from typing import Iterator

import numpy as np


def _name_to_words(name: str) -> list[int]:
    """Hash a stream name into 32-bit words suitable for SeedSequence keys."""
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return [int.from_bytes(digest[i : i + 4], "little") for i in range(0, 16, 4)]


class RngHub:
    """Factory of named, independent random generators from one seed.

    >>> hub = RngHub(1234)
    >>> a = hub.generator("workload.summit")
    >>> b = hub.generator("workload.cori")
    >>> a is not b
    True

    Requesting the same name twice yields generators with identical streams
    (each call returns a *fresh* generator positioned at the start):

    >>> float(hub.generator("x").random()) == float(hub.generator("x").random())
    True
    """

    def __init__(self, seed: int):
        if not isinstance(seed, (int, np.integer)):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self._seed = int(seed)

    @property
    def seed(self) -> int:
        """The root seed this hub was built from."""
        return self._seed

    def generator(self, name: str) -> np.random.Generator:
        """Return a fresh generator for the named stream."""
        ss = np.random.SeedSequence([self._seed, *_name_to_words(name)])
        return np.random.Generator(np.random.PCG64(ss))

    def child(self, name: str) -> "RngHub":
        """Derive a sub-hub; its streams are independent of the parent's.

        Used when a component (e.g. one platform's generator) needs to hand
        out its own named streams without knowing the global namespace.
        """
        words = _name_to_words(name)
        mixed = int.from_bytes(
            hashlib.sha256(
                self._seed.to_bytes(16, "little", signed=True)
                + b"/"
                + name.encode("utf-8")
            ).digest()[:8],
            "little",
        )
        del words  # entropy fully captured in `mixed`
        return RngHub(mixed)

    def stream_names(self) -> Iterator[str]:  # pragma: no cover - trivial
        """Hubs are stateless name->stream maps; there is nothing to list."""
        return iter(())

    def __repr__(self) -> str:
        return f"RngHub(seed={self._seed})"

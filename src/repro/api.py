"""The supported public API surface.

This module is the **stable contract** external callers should import
against — everything exported here (and lazily re-exported at the top
level, so ``from repro import run_query`` works) is covered by the API
snapshot test and will not change signature without a deliberate,
documented break. Deep module paths (``repro.analysis...``,
``repro.serve.engine...``) keep working, but only this surface is
promised.

The surface, by lifecycle stage:

* **Make data** — :func:`generate_store` (synthesize a platform's
  year, from the builtin archetype mix or a declarative spec),
  :func:`load_store` / :func:`save_store` (``.npz`` persistence),
  :class:`CharacterizationStudy` + :class:`StudyConfig` (the full
  multi-platform study pipeline).
* **Describe populations** — :func:`load_spec` / :func:`compile_spec` /
  :func:`list_specs` + :class:`WorkloadSpec` and the typed
  :class:`SpecError`: the declarative workload-pattern DSL and its
  builtin scenario packs (DESIGN.md §15); ``generate_store(spec=...)``
  turns a spec straight into a store.
* **Ask questions** — :func:`run_query` / :func:`list_queries`: every
  user-facing query — CLI exhibit, server query, advisor, shape check —
  resolves through the one :mod:`repro.serve.registry` table, so the
  in-process API, ``repro analyze``/``advise``/``shapes``, and ``repro
  serve`` can never drift apart.
* **Scale sideways** — :class:`StoreCatalog` / :func:`load_catalog`:
  the multi-store federation manifest (many facilities/months, local or
  remote members) behind ``repro catalog`` and the ``--catalog`` flags;
  see DESIGN.md §14.
* **Watch it run** — :class:`Tracer` with :func:`set_tracer` /
  :func:`get_tracer` and :func:`write_trace` (Chrome-trace/NDJSON
  export): cross-layer span tracing per DESIGN.md §10.

Example::

    import repro

    store = repro.generate_store("summit", scale=1e-3, seed=7)
    rows = repro.run_query(store, "table3")
    print(repro.list_queries())
"""

from __future__ import annotations

from typing import Mapping

from repro.core import CharacterizationStudy, StudyConfig
from repro.errors import ReproError, SpecError, UnknownQueryError
from repro.federation import StoreCatalog, load_catalog
from repro.obs import Tracer, get_tracer, set_tracer, write_trace
from repro.obs.integrate import analysis_span
from repro.spec import WorkloadSpec, compile_spec, load_spec
from repro.store.io import load_store, save_store
from repro.store.recordstore import RecordStore

__all__ = [
    "CharacterizationStudy",
    "RecordStore",
    "ReproError",
    "SpecError",
    "StoreCatalog",
    "StudyConfig",
    "Tracer",
    "WorkloadSpec",
    "compile_spec",
    "generate_store",
    "get_tracer",
    "list_queries",
    "list_specs",
    "load_catalog",
    "load_spec",
    "load_store",
    "run_query",
    "save_store",
    "set_tracer",
    "write_trace",
]


def generate_store(
    platform: str | None = None,
    *,
    spec: Mapping | WorkloadSpec | str | None = None,
    scale: float | None = None,
    seed: int = 20220627,
    jobs: int = 1,
    shadows: bool = True,
) -> RecordStore:
    """Synthesize one platform's year as a :class:`RecordStore`.

    Two sources, one signature:

    * ``generate_store("summit", scale=1e-3)`` — the platform's builtin
      calibrated archetype mix (``scale`` defaults to ``1e-3``);
    * ``generate_store(spec="noisy_neighbor", platform="summit")`` — a
      declarative workload spec: a builtin scenario-pack name, a path to
      a ``.json``/``.toml`` spec file, a raw dict, or a
      :class:`WorkloadSpec`. ``platform``/``scale`` fill whatever the
      spec leaves unset (spec fields win); the builtin ``paper_mix``
      spec is byte-identical to the direct path.

    Deterministic in ``seed`` and independent of ``jobs`` (the sharded
    pipeline is byte-identical for every worker count; ``0`` uses all
    cores) — for specs this holds by construction, because compilation
    only produces archetype mixes for the same per-(archetype, group,
    log-block) RNG substreams. ``shadows`` appends the POSIX shadow rows
    for MPI-IO files (§3.1 accounting) — the representation every
    analysis and the study pipeline expect; pass ``False`` only to study
    the raw interface rows.
    """
    if spec is not None:
        from repro.spec import generate_from_spec

        return generate_from_spec(
            spec, seed=seed, jobs=jobs, shadows=shadows,
            platform=platform, scale=scale,
        )
    if platform is None:
        raise SpecError("platform", "required unless spec=... is given")
    from repro.workloads.generator import (
        GeneratorConfig,
        WorkloadGenerator,
        generate_with_shadows,
    )

    generator = WorkloadGenerator(
        platform, GeneratorConfig(scale=1e-3 if scale is None else scale)
    )
    if shadows:
        return generate_with_shadows(generator, seed, jobs=jobs)
    return generator.generate(seed, jobs=jobs)


def list_specs() -> list[str]:
    """Every builtin scenario-pack name ``generate_store(spec=...)``
    (and ``repro generate --spec``) accepts, sorted."""
    from repro.spec import pack_names

    return pack_names()


def run_query(
    store: RecordStore,
    name: str,
    params: Mapping | None = None,
) -> object:
    """Run one named query over a store, through the shared registry.

    The in-process twin of ``repro analyze``/``repro query``: the name
    resolves through the same :class:`~repro.serve.registry.QuerySpec`
    table the server and CLI dispatch on, parameters are validated
    against the spec, and the analysis runs against the store's shared
    :class:`~repro.analysis.context.AnalysisContext` — so the result is
    object-identical to what a :class:`~repro.serve.engine.QueryEngine`
    would compute for the same request.

    Returns the query's native result object (rows via ``to_rows()``
    for tables, advisor dataclasses, ShapeCheck lists); raises
    :class:`~repro.errors.UnknownQueryError` for unknown names and
    :class:`~repro.errors.ServeError` for bad parameters.
    """
    from repro.serve.registry import default_registry, validate_params

    registry = default_registry()
    spec = registry.get(name)
    if spec is None:
        raise UnknownQueryError(
            f"unknown query {name!r}; available: {', '.join(sorted(registry))}"
        )
    params = validate_params(spec, params)
    context = store.analysis()
    with analysis_span(name, context):
        return spec.run(store, context, params)


def list_queries() -> list[str]:
    """Every name :func:`run_query` accepts, sorted.

    The same names ``repro analyze --list`` prints and ``repro serve``
    answers (the server adds its two engine-level meta queries,
    ``stats`` and ``queries``, on top).
    """
    from repro.serve.registry import default_registry

    return sorted(default_registry())

"""A minimal HDF5-like library over the simulated substrates.

The paper names HDF5 as the place its optimizations belong: collective
buffering, request aggregation, layer-aware placement. This module
implements the core of such a library — hierarchical files holding
chunked datasets, hyperslab writes/reads translated to byte extents —
wired to this repository's machinery:

* chunking routes through :class:`~repro.middleware.chunkcache.WriteBackChunkCache`
  when aggregation is enabled (Recommendation 4/6 applied);
* every downstream operation is recorded and accumulated into a real
  :class:`~repro.darshan.records.FileRecord` at close, so the library is
  *observable the way the paper observes applications*;
* transfer times are priced by the performance model, so "aggregation
  on vs off" is a measurable experiment (see the tests and
  ``bench_middleware.py``).

Datasets are C-order arrays carved into fixed chunks; a hyperslab selects
``[start, start+count)`` per dimension. Only the byte-extent math matters
for I/O behaviour, so element data is never materialized.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.darshan.accumulate import (
    OP_CLOSE,
    OP_OPEN,
    OP_READ,
    OP_WRITE,
    accumulate,
    empty_ops,
)
from repro.darshan.constants import ModuleId
from repro.darshan.records import FileRecord, record_id_for_path
from repro.errors import ConfigurationError, SimulationError
from repro.iosim.perfmodel import PerfModel, TransferSpec
from repro.middleware.chunkcache import WriteBackChunkCache
from repro.platforms.interfaces import IOInterface
from repro.platforms.machine import Machine
from repro.units import MiB


@dataclass(frozen=True)
class DatasetSpec:
    """Shape/layout of one dataset."""

    name: str
    shape: tuple[int, ...]
    itemsize: int
    chunk_shape: tuple[int, ...]
    #: Byte offset of the dataset within the file's address space.
    base_offset: int

    def __post_init__(self) -> None:
        if not self.shape or any(s <= 0 for s in self.shape):
            raise ConfigurationError(f"{self.name}: bad shape {self.shape}")
        if len(self.chunk_shape) != len(self.shape):
            raise ConfigurationError(f"{self.name}: chunk rank mismatch")
        if any(c <= 0 for c in self.chunk_shape):
            raise ConfigurationError(f"{self.name}: bad chunks {self.chunk_shape}")
        if self.itemsize <= 0:
            raise ConfigurationError(f"{self.name}: bad itemsize")

    @property
    def nbytes(self) -> int:
        return int(np.prod(self.shape)) * self.itemsize

    def slab_extents(
        self, start: tuple[int, ...], count: tuple[int, ...]
    ) -> list[tuple[int, int]]:
        """Contiguous (offset, length) byte extents of a hyperslab.

        C-order: the last dimension is contiguous, so each run along it
        is one extent; outer dimensions iterate. Runs are merged when a
        full inner selection makes consecutive rows adjacent.
        """
        if len(start) != len(self.shape) or len(count) != len(self.shape):
            raise SimulationError(f"{self.name}: slab rank mismatch")
        for s, c, dim in zip(start, count, self.shape):
            if s < 0 or c <= 0 or s + c > dim:
                raise SimulationError(
                    f"{self.name}: slab [{s}, {s + c}) outside dim {dim}"
                )
        # Row length in elements along the last axis.
        inner = count[-1]
        outer_dims = list(zip(start[:-1], count[:-1], self.shape[:-1]))
        strides = np.cumprod([1] + list(self.shape[::-1][:-1]))[::-1]

        extents: list[tuple[int, int]] = []
        for outer_index in np.ndindex(*[c for _, c, _ in outer_dims] or (1,)):
            flat = start[-1]
            for (s, _c, _d), idx, stride in zip(
                outer_dims, outer_index, strides[:-1]
            ):
                flat += (s + idx) * stride
            offset = self.base_offset + flat * self.itemsize
            length = inner * self.itemsize
            if extents and extents[-1][0] + extents[-1][1] == offset:
                extents[-1] = (extents[-1][0], extents[-1][1] + length)
            else:
                extents.append((offset, length))
        return extents


class H5Dataset:
    """A dataset handle; writes/reads record operations on the file."""

    def __init__(self, file: "H5File", spec: DatasetSpec):
        self._file = file
        self.spec = spec

    def write_slab(self, start: tuple[int, ...], count: tuple[int, ...]) -> int:
        """Write a hyperslab; returns the bytes written."""
        total = 0
        for offset, length in self.spec.slab_extents(start, count):
            self._file._record_write(offset, length)
            total += length
        return total

    def read_slab(self, start: tuple[int, ...], count: tuple[int, ...]) -> int:
        """Read a hyperslab; returns the bytes read."""
        total = 0
        for offset, length in self.spec.slab_extents(start, count):
            self._file._record_read(offset, length)
            total += length
        return total


class H5File:
    """An HDF5-ish container bound to a platform storage layer."""

    def __init__(
        self,
        machine: Machine,
        layer_key: str,
        path: str,
        *,
        perf: PerfModel | None = None,
        aggregate: bool = True,
        cache_chunk_bytes: int = 1 * MiB,
        cache_capacity_chunks: int = 64,
        nprocs: int = 1,
    ):
        if layer_key not in machine.layers:
            raise ConfigurationError(f"no layer {layer_key!r} on {machine.name}")
        self.machine = machine
        self.layer = machine.layers[layer_key]
        self.path = path
        self.perf = perf or PerfModel(deterministic=True)
        self.aggregate = aggregate
        self.nprocs = nprocs
        self._cache = (
            WriteBackChunkCache(cache_chunk_bytes, cache_capacity_chunks)
            if aggregate
            else None
        )
        self._datasets: dict[str, DatasetSpec] = {}
        self._next_offset = 0
        self._writes: list[tuple[int, int]] = []  # direct (uncached) writes
        self._reads: list[tuple[int, int]] = []
        self._closed = False

    # ------------------------------------------------------------------
    def create_dataset(
        self,
        name: str,
        shape: tuple[int, ...],
        *,
        itemsize: int = 8,
        chunks: tuple[int, ...] | None = None,
    ) -> H5Dataset:
        if self._closed:
            raise SimulationError("file is closed")
        if name in self._datasets:
            raise SimulationError(f"dataset {name!r} exists")
        if chunks is None:
            chunks = tuple(min(d, 128) for d in shape)
        spec = DatasetSpec(
            name=name,
            shape=tuple(shape),
            itemsize=itemsize,
            chunk_shape=tuple(chunks),
            base_offset=self._next_offset,
        )
        self._next_offset += spec.nbytes
        self._datasets[name] = spec
        return H5Dataset(self, spec)

    def dataset(self, name: str) -> H5Dataset:
        try:
            return H5Dataset(self, self._datasets[name])
        except KeyError:
            raise SimulationError(f"no dataset {name!r}") from None

    # ------------------------------------------------------------------
    def _record_write(self, offset: int, length: int) -> None:
        if self._closed:
            raise SimulationError("file is closed")
        if self._cache is not None:
            self._cache.write(offset, length)
        else:
            self._writes.append((offset, length))

    def _record_read(self, offset: int, length: int) -> None:
        if self._closed:
            raise SimulationError("file is closed")
        self._reads.append((offset, length))

    # ------------------------------------------------------------------
    def close(self) -> "H5CloseReport":
        """Flush, price the I/O, and emit the Darshan-style record."""
        if self._closed:
            raise SimulationError("file already closed")
        self._closed = True
        if self._cache is not None:
            self._cache.flush()
            flushed = self._cache._flushed
        else:
            flushed = self._writes

        n_reads, n_writes = len(self._reads), len(flushed)
        ops = empty_ops(n_reads + n_writes + 2)
        ops["kind"][0] = OP_OPEN
        ops["kind"][-1] = OP_CLOSE
        idx = 1
        for offset, length in self._reads:
            ops["kind"][idx] = OP_READ
            ops["offset"][idx] = offset
            ops["size"][idx] = length
            idx += 1
        for offset, length in flushed:
            ops["kind"][idx] = OP_WRITE
            ops["offset"][idx] = offset
            ops["size"][idx] = length
            idx += 1

        read_bytes = int(sum(l for _, l in self._reads))
        write_bytes = int(sum(l for _, l in flushed))
        times = {}
        rng = np.random.default_rng(0)
        for direction, nbytes, nops in (
            ("read", read_bytes, n_reads),
            ("write", write_bytes, n_writes),
        ):
            if nbytes == 0:
                times[direction] = 0.0
                continue
            spec = TransferSpec(
                nbytes=np.array([float(nbytes)]),
                request_size=np.array([max(nbytes / max(nops, 1), 1.0)]),
                nprocs=np.array([float(self.nprocs)]),
                file_parallelism=np.array([1.0]),
                shared=np.array([self.nprocs > 1]),
            )
            times[direction] = float(
                self.perf.transfer_time(
                    self.layer, IOInterface.POSIX, direction, spec, rng
                )[0]
            )
        # Spread durations and stamp times so accumulation validates.
        ops["duration"][1 : 1 + n_reads] = (
            times["read"] / n_reads if n_reads else 0.0
        )
        ops["duration"][1 + n_reads : 1 + n_reads + n_writes] = (
            times["write"] / n_writes if n_writes else 0.0
        )
        ops["start"] = np.concatenate(
            ([0.0], np.cumsum(ops["duration"][:-1]))
        )
        record = accumulate(
            ModuleId.POSIX, record_id_for_path(self.path), 0, ops
        )
        return H5CloseReport(
            path=self.path,
            record=record,
            read_seconds=times["read"],
            write_seconds=times["write"],
            app_writes=(
                self._cache.stats.app_writes if self._cache else n_writes
            ),
            downstream_writes=n_writes,
        )


@dataclass(frozen=True)
class H5CloseReport:
    """What the library did for one file."""

    path: str
    record: FileRecord
    read_seconds: float
    write_seconds: float
    app_writes: int
    downstream_writes: int

    @property
    def aggregation_factor(self) -> float:
        return (
            self.app_writes / self.downstream_writes
            if self.downstream_writes
            else float("inf")
        )

"""Write-back chunk cache: coalesce small and repeated writes.

The mechanism Recommendation 4 asks middleware to adopt for flash-backed
layers: instead of issuing every application write to the file system,
absorb writes into fixed-size dirty chunks and flush chunk-aligned,
sequential extents. Rewrites that hit a dirty chunk are absorbed for
free; random small writes leave the cache as large aligned ones.

The cache is deliberately simple (dirty-chunk map + LRU eviction, no read
path) — enough to *measure* the effect: feed an application write stream
in, get the downstream write stream out, and compare operation counts,
write amplification (via :mod:`repro.darshan.stdio_ext`) and priced time
(via :mod:`repro.iosim.perfmodel`) against the uncached stream.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.darshan.accumulate import OP_DTYPE, OP_WRITE, empty_ops
from repro.errors import ConfigurationError
from repro.units import MiB


@dataclass
class CacheStats:
    """What the cache did to the stream."""

    app_writes: int = 0
    app_bytes: int = 0
    #: Bytes absorbed because the target chunk was already dirty.
    absorbed_bytes: int = 0
    flushed_writes: int = 0
    flushed_bytes: int = 0
    evictions: int = 0

    @property
    def write_reduction(self) -> float:
        """Application writes per downstream write (>= 1 is a win)."""
        return (
            self.app_writes / self.flushed_writes
            if self.flushed_writes
            else float("inf")
        )


class WriteBackChunkCache:
    """Absorbs a write stream; emits chunk-aligned downstream writes."""

    def __init__(self, chunk_size: int = 1 * MiB, capacity_chunks: int = 64):
        if chunk_size <= 0:
            raise ConfigurationError("chunk_size must be positive")
        if capacity_chunks <= 0:
            raise ConfigurationError("capacity_chunks must be positive")
        self.chunk_size = chunk_size
        self.capacity_chunks = capacity_chunks
        #: chunk index -> dirty byte count (LRU order).
        self._dirty: OrderedDict[int, int] = OrderedDict()
        self.stats = CacheStats()
        self._flushed: list[tuple[int, int]] = []  # (offset, size)
        self._clock = 0.0

    # ------------------------------------------------------------------
    def write(self, offset: int, size: int) -> None:
        """Apply one application write."""
        if offset < 0 or size < 0:
            raise ConfigurationError("offset/size must be non-negative")
        if size == 0:
            return
        self.stats.app_writes += 1
        self.stats.app_bytes += size
        first = offset // self.chunk_size
        last = (offset + size - 1) // self.chunk_size
        for chunk in range(first, last + 1):
            lo = max(offset, chunk * self.chunk_size)
            hi = min(offset + size, (chunk + 1) * self.chunk_size)
            span = hi - lo
            if chunk in self._dirty:
                # Rewrite or accretion into an already-dirty chunk:
                # absorbed, no downstream traffic.
                self.stats.absorbed_bytes += min(span, self._dirty[chunk])
                self._dirty[chunk] = min(
                    self._dirty[chunk] + span, self.chunk_size
                )
                self._dirty.move_to_end(chunk)
            else:
                self._dirty[chunk] = span
                if len(self._dirty) > self.capacity_chunks:
                    self._evict()

    def _evict(self) -> None:
        chunk, _ = self._dirty.popitem(last=False)
        self._emit(chunk)
        self.stats.evictions += 1

    def _emit(self, chunk: int) -> None:
        # Write-back flushes the full chunk extent (read-modify-write is
        # the device's problem no longer: aligned, sequential-per-chunk).
        self._flushed.append((chunk * self.chunk_size, self.chunk_size))
        self.stats.flushed_writes += 1
        self.stats.flushed_bytes += self.chunk_size

    def flush(self) -> None:
        """Flush all dirty chunks (file close / fsync)."""
        for chunk in sorted(self._dirty):
            self._emit(chunk)
        self._dirty.clear()

    # ------------------------------------------------------------------
    def downstream_ops(self) -> np.ndarray:
        """The flushed write stream as an accumulator operation batch.

        Offsets ascend per flush order; timestamps are synthetic ticks
        (the accumulator only needs ordering).
        """
        n = len(self._flushed)
        ops = empty_ops(n)
        if n:
            ops["kind"] = OP_WRITE
            ops["offset"] = [o for o, _ in self._flushed]
            ops["size"] = [s for _, s in self._flushed]
            ops["start"] = np.arange(n, dtype=np.float64)
            ops["duration"] = 1e-6
        return ops

    @staticmethod
    def apply_to_stream(
        ops: np.ndarray,
        *,
        chunk_size: int = 1 * MiB,
        capacity_chunks: int = 64,
    ) -> tuple[np.ndarray, CacheStats]:
        """Run a write stream through a fresh cache; return the
        downstream stream and the stats. Non-write operations are
        dropped (the cache has no read path)."""
        if ops.dtype != OP_DTYPE:
            raise TypeError(f"ops must have OP_DTYPE, got {ops.dtype}")
        cache = WriteBackChunkCache(chunk_size, capacity_chunks)
        writes = ops[ops["kind"] == OP_WRITE]
        for offset, size in zip(writes["offset"], writes["size"]):
            cache.write(int(offset), int(size))
        cache.flush()
        return cache.downstream_ops(), cache.stats

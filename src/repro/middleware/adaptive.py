"""Adaptive layer placement — Finding A's "automatic and dynamic
management" inside the middleware.

Given a dataset's *access plan* (how many bytes it will read/write, at
what request sizes, by how many processes), decide which storage layer
serves it faster, pricing both with the performance model and charging
the staging movement that an in-system placement implies (stage-in for
data that must pre-exist; stage-out for products that must survive the
job). This is exactly the decision the paper says I/O libraries leave to
"simple heuristics as the defaults" today.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.iosim.perfmodel import PerfModel, TransferSpec
from repro.platforms.interfaces import IOInterface
from repro.platforms.machine import Machine
from repro.units import MiB


@dataclass(frozen=True)
class AccessPlan:
    """A dataset's planned I/O for one job."""

    bytes_read: int
    bytes_written: int
    request_size: int
    nprocs: int
    shared: bool = True
    #: Must the data exist before the job (inputs) / survive it (outputs)?
    persistent_input: bool = True
    persistent_output: bool = True

    def __post_init__(self) -> None:
        if self.bytes_read < 0 or self.bytes_written < 0:
            raise ConfigurationError("byte totals must be non-negative")
        if self.request_size <= 0 or self.nprocs <= 0:
            raise ConfigurationError("request_size and nprocs must be positive")
        if self.bytes_read == 0 and self.bytes_written == 0:
            raise ConfigurationError("plan moves no data")


@dataclass(frozen=True)
class PlacementDecision:
    """The outcome: chosen layer and both priced alternatives."""

    layer_key: str
    pfs_seconds: float
    insystem_seconds: float
    #: Movement charged to the in-system option (stage-in/out), seconds.
    staging_seconds: float

    @property
    def speedup(self) -> float:
        """Chosen option's advantage over the alternative."""
        a, b = self.pfs_seconds, self.insystem_seconds + self.staging_seconds
        return (max(a, b) / min(a, b)) if min(a, b) > 0 else float("inf")


def _price(
    machine: Machine,
    layer_key: str,
    plan: AccessPlan,
    perf: PerfModel,
    rng: np.random.Generator,
) -> float:
    layer = machine.layers[layer_key]
    total = 0.0
    for direction, nbytes in (("read", plan.bytes_read), ("write", plan.bytes_written)):
        if nbytes == 0:
            continue
        if layer_key == "pfs":
            par = float(layer.server_count if plan.shared else 1)
            block = layer.params.get("block_size") or layer.params.get("stripe_size")
            if block:
                par = min(par, max(nbytes / block, 1.0))
        else:
            par = min(max(nbytes / (128 * MiB), 1.0), layer.server_count)
        spec = TransferSpec(
            nbytes=np.array([float(nbytes)]),
            request_size=np.array([float(plan.request_size)]),
            nprocs=np.array([float(plan.nprocs)]),
            file_parallelism=np.array([par]),
            shared=np.array([plan.shared]),
        )
        total += float(
            perf.transfer_time(layer, IOInterface.POSIX, direction, spec, rng)[0]
        )
    return total


def place_dataset(
    machine: Machine,
    plan: AccessPlan,
    *,
    perf: PerfModel | None = None,
    count_staging_in_job: bool = False,
) -> PlacementDecision:
    """Choose the layer for a dataset's access plan.

    ``count_staging_in_job`` charges the staging movement against the
    in-system option (the Summit/runtime-staging situation); the default
    treats it as free in-job time (the Cori/scheduler-staging situation),
    still reporting its cost separately.
    """
    perf = perf or PerfModel(deterministic=True)
    rng = np.random.default_rng(0)
    pfs_seconds = _price(machine, "pfs", plan, perf, rng)
    fast_seconds = _price(machine, "insystem", plan, perf, rng)

    # Staging movement at bulk PFS rates.
    staged_bytes = 0
    if plan.bytes_read and plan.persistent_input:
        staged_bytes += plan.bytes_read
    if plan.bytes_written and plan.persistent_output:
        staged_bytes += plan.bytes_written
    staging_seconds = 0.0
    if staged_bytes:
        pfs = machine.pfs
        spec = TransferSpec(
            nbytes=np.array([float(staged_bytes)]),
            request_size=np.array([float(8 * MiB)]),
            nprocs=np.array([1.0]),
            file_parallelism=np.array([float(pfs.server_count)]),
            shared=np.array([True]),
        )
        staging_seconds = float(
            perf.transfer_time(pfs, IOInterface.POSIX, "read", spec, rng)[0]
        )

    fast_total = fast_seconds + (
        staging_seconds if count_staging_in_job else 0.0
    )
    layer_key = "insystem" if fast_total < pfs_seconds else "pfs"
    return PlacementDecision(
        layer_key=layer_key,
        pfs_seconds=pfs_seconds,
        insystem_seconds=fast_seconds,
        staging_seconds=staging_seconds,
    )

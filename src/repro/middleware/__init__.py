"""I/O middleware optimizations — what the paper asks HDF5 et al. to do.

Finding A: *"this diversity and complexity demand automatic and dynamic
management within I/O middleware libraries"*. Recommendation 4: middleware
should *"separate static/dynamic data and cache rewrites"* for the
SSD-backed in-system layers. This package implements both proposals so
they can be evaluated on the simulator:

* :mod:`chunkcache` — a write-back chunk cache that coalesces small and
  repeated writes into chunk-aligned flushes (caching rewrites, batching
  random writes). Paired with :mod:`repro.darshan.stdio_ext` it shows the
  write-amplification reduction directly.
* :mod:`adaptive` — an adaptive layer placer that decides, per dataset,
  whether the PFS or the in-system layer serves an access plan faster
  (the "automatic and dynamic management" loop), pricing both with the
  performance model.
"""

from repro.middleware.chunkcache import CacheStats, WriteBackChunkCache
from repro.middleware.adaptive import AccessPlan, PlacementDecision, place_dataset
from repro.middleware.h5sim import H5CloseReport, H5Dataset, H5File

__all__ = [
    "H5File",
    "H5Dataset",
    "H5CloseReport",
    "WriteBackChunkCache",
    "CacheStats",
    "AccessPlan",
    "PlacementDecision",
    "place_dataset",
]

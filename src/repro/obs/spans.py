"""Span records and the bounded ring-buffer span store.

A :class:`SpanRecord` is deliberately dumb data — plain slots, picklable
— because records cross process boundaries: sharded pipeline workers
trace into their own store and ship the records back to the parent
inside the shard result payload (:mod:`repro.parallel`).

The :class:`SpanStore` bounds tracing memory the same way the serving
layer's latency reservoirs bound theirs: a fixed-capacity ring where the
newest spans win. A runaway instrumentation point can therefore never
grow a trace without bound — it evicts the oldest spans and counts the
loss in :attr:`SpanStore.dropped` instead.
"""

from __future__ import annotations

import threading

#: Complete span (has a duration) — Chrome trace phase "X".
PHASE_SPAN = "X"
#: Instant event (a point in time) — Chrome trace phase "i".
PHASE_EVENT = "i"

#: Default ring capacity: ~66k spans at ~100 bytes apiece keeps even an
#: aggressively traced facility-scale run under ~10 MB of span state.
DEFAULT_CAPACITY = 65_536


class SpanRecord:
    """One finished span or instant event.

    ``start_ns`` is wall-anchored monotonic time (see
    :mod:`repro.obs.clock`), ``dur_ns`` a pure monotonic delta (0 for
    events). ``tid`` is a tracer-local small integer; ``depth`` the
    span-stack depth at open time, which makes parent/child nesting
    checkable without re-deriving containment from timestamps.
    """

    __slots__ = ("name", "cat", "tid", "start_ns", "dur_ns", "depth",
                 "phase", "args")

    def __init__(self, name, cat, tid, start_ns, dur_ns, depth,
                 phase=PHASE_SPAN, args=None):
        self.name = name
        self.cat = cat
        self.tid = tid
        self.start_ns = start_ns
        self.dur_ns = dur_ns
        self.depth = depth
        self.phase = phase
        self.args = args

    # __slots__ classes pickle their state through these two hooks; the
    # tuple form doubles as the compact wire form workers ship back.
    def __getstate__(self):
        return (self.name, self.cat, self.tid, self.start_ns, self.dur_ns,
                self.depth, self.phase, self.args)

    def __setstate__(self, state):
        (self.name, self.cat, self.tid, self.start_ns, self.dur_ns,
         self.depth, self.phase, self.args) = state

    @property
    def end_ns(self) -> int:
        return self.start_ns + self.dur_ns

    def __repr__(self) -> str:
        kind = "span" if self.phase == PHASE_SPAN else "event"
        return (
            f"SpanRecord({self.name!r}, {kind}, tid={self.tid}, "
            f"depth={self.depth}, dur={self.dur_ns / 1e6:.3f}ms)"
        )


class SpanStore:
    """Fixed-capacity, thread-safe ring buffer of finished spans.

    ``records()`` returns spans in insertion order (oldest surviving
    first). Insertion order is *finish* order, so children precede their
    parents — exporters and tests sort by ``(tid, start_ns)`` when they
    need document order.
    """

    __slots__ = ("_buf", "_capacity", "_lock", "_total")

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._capacity = capacity
        self._buf: list[SpanRecord] = []
        self._total = 0
        self._lock = threading.Lock()

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def total(self) -> int:
        """Spans ever added (including any the ring has evicted)."""
        return self._total

    @property
    def dropped(self) -> int:
        """Spans evicted by the capacity bound."""
        return max(0, self._total - self._capacity)

    def __len__(self) -> int:
        return min(self._total, self._capacity)

    def add(self, record: SpanRecord) -> None:
        with self._lock:
            if len(self._buf) < self._capacity:
                self._buf.append(record)
            else:
                self._buf[self._total % self._capacity] = record
            self._total += 1

    def records(self) -> list[SpanRecord]:
        """Snapshot of surviving spans, oldest first."""
        with self._lock:
            if self._total <= self._capacity:
                return list(self._buf)
            pos = self._total % self._capacity
            return self._buf[pos:] + self._buf[:pos]

    def clear(self) -> None:
        with self._lock:
            self._buf.clear()
            self._total = 0

    def __repr__(self) -> str:
        return (
            f"SpanStore({len(self)}/{self._capacity} spans, "
            f"{self.dropped} dropped)"
        )

"""Instrumentation glue between the tracer and the pipeline layers.

The hot layers stay almost tracer-agnostic: they call the two helpers
here (plus :func:`~repro.obs.tracer.trace_span` directly), and this
module owns the conventions — span naming, the analysis cache hit/miss
attributes, and the worker-to-parent record round trip used by
:mod:`repro.parallel`.

Span name/category conventions (one ``layer.verb`` namespace per layer):

=============  ==========================================================
category       spans
=============  ==========================================================
``cli``        ``cli.study``, ``cli.generate``, ``cli.analyze``, ...
``workloads``  ``workloads.generate``, ``workloads.sample_jobs``,
               ``workloads.shard``, ``workloads.assemble``,
               ``workloads.shadows``
``ingest``     ``ingest.paths``, ``ingest.shard``, ``ingest.logs``
``store``      ``store.merge``
``parallel``   ``parallel.run`` plus adopted worker tracks (one export
               track per shard thread)
``analysis``   ``analysis.<entry point>`` with ``cache_hits`` /
               ``cache_misses`` attributes
``serve``      ``serve.request``, ``serve.execute`` plus
               ``serve.cache_hit`` / ``serve.coalesced`` /
               ``serve.shed`` / ``serve.timeout`` instant events
=============  ==========================================================
"""

from __future__ import annotations

from repro.obs.spans import DEFAULT_CAPACITY
from repro.obs.tracer import _NOOP, Tracer, get_tracer, set_tracer


class _AnalysisSpan:
    """Span around one analysis entry point, annotated with the shared
    context's memo hit/miss deltas (how much of the work was cached)."""

    __slots__ = ("_span", "_context", "_hits0", "_misses0")

    def __init__(self, span, context):
        self._span = span
        self._context = context

    def __enter__(self):
        if self._context is not None:
            self._hits0, self._misses0 = self._context.cache_counts()
        self._span.__enter__()
        return self._span

    def __exit__(self, exc_type, exc, tb):
        if self._context is not None:
            hits, misses = self._context.cache_counts()
            self._span.add(
                cache_hits=hits - self._hits0,
                cache_misses=misses - self._misses0,
            )
        return self._span.__exit__(exc_type, exc, tb)


def analysis_span(name: str, context=None):
    """Span for one analysis entry point; no-op when tracing is off.

    ``context`` is the :class:`~repro.analysis.context.AnalysisContext`
    the entry point runs against; when given, the span is annotated
    with the memo hits/misses the call incurred — a warm rerun shows
    up as all-hits, a cold run as the real mask/gather work.
    """
    tracer = get_tracer()
    if tracer is None:
        return _NOOP
    return _AnalysisSpan(tracer.span(f"analysis.{name}", "analysis"), context)


def capture_worker(fn, payload, capacity: int = DEFAULT_CAPACITY):
    """Run ``fn(payload)`` under a fresh tracer; return (value, records).

    The pool-worker side of the round trip: the records list is plain
    picklable data that travels back inside the shard result payload.
    The fresh tracer is installed as the worker's active tracer so the
    instrumentation points inside ``fn`` light up exactly as they would
    in the parent.
    """
    tracer = Tracer(capacity=capacity, process="repro-worker")
    previous = set_tracer(tracer)
    try:
        value = fn(payload)
    finally:
        set_tracer(previous)
    return value, tracer.records()


def adopt_worker_records(records, shard_id: int) -> None:
    """Parent side: splice one shard's captured records into the active
    tracer (no-op if tracing was disabled meanwhile)."""
    tracer = get_tracer()
    if tracer is not None and records:
        tracer.adopt(records, f"shard{shard_id}")

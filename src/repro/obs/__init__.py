"""Cross-layer span tracing for the whole pipeline (DESIGN.md §10).

The paper's contribution is observability of a multi-layer I/O stack;
this package gives the reproduction's own stack (generate → ingest →
analyze → serve → replay) the same property: every layer carries
permanent instrumentation points that are free when tracing is off and
feed one bounded span store when it is on.

Quickstart::

    from repro.obs import Tracer, set_tracer, write_trace

    tracer = Tracer()
    set_tracer(tracer)
    ...  # run any pipeline: generate, analyses, a QueryEngine, ...
    set_tracer(None)
    write_trace("trace.json", tracer)   # open in ui.perfetto.dev

or, from the CLI, ``repro study --trace trace.json``.

Modules: :mod:`~repro.obs.clock` (the one clock source),
:mod:`~repro.obs.tracer` (thread-local span stacks, context-manager /
decorator API), :mod:`~repro.obs.spans` (bounded ring-buffer store),
:mod:`~repro.obs.export` (Chrome-trace / NDJSON), and
:mod:`~repro.obs.integrate` (layer glue + naming conventions).
"""

from repro.obs.clock import perf_ns
from repro.obs.export import to_chrome, write_chrome, write_ndjson, write_trace
from repro.obs.integrate import analysis_span
from repro.obs.spans import SpanRecord, SpanStore
from repro.obs.tracer import (
    Tracer,
    get_tracer,
    set_tracer,
    trace_event,
    trace_span,
    traced,
)

__all__ = [
    "SpanRecord",
    "SpanStore",
    "Tracer",
    "analysis_span",
    "get_tracer",
    "perf_ns",
    "set_tracer",
    "to_chrome",
    "trace_event",
    "trace_span",
    "traced",
    "write_chrome",
    "write_ndjson",
    "write_trace",
]

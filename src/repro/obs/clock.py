"""The one clock source for every latency and span timestamp.

Before this module existed the serving layer mixed ``time.perf_counter``
(engine latency histograms) with ad-hoc ``perf_counter`` deltas in the
socket front end, and any new subsystem was free to pick a third clock.
Spans and latency reservoirs must share a clock or cross-layer traces
lie: a request span timed on one clock cannot be compared against the
query histogram timed on another.

Everything times with :func:`perf_ns` (``time.perf_counter_ns``: the
highest-resolution monotonic clock the platform offers, integer
nanoseconds, immune to wall-clock steps). Because ``perf_counter`` has
an arbitrary per-process origin, spans that must line up *across*
processes (sharded generate/ingest workers) are anchored once per
tracer with :func:`wall_anchor_ns` — the wall-clock epoch of this
process's perf origin — so ``anchor + perf_ns()`` is comparable across
workers to within wall-clock sync error, while every *duration* stays a
pure monotonic delta.
"""

from __future__ import annotations

import time

#: The shared monotonic clock: integer nanoseconds, arbitrary origin.
perf_ns = time.perf_counter_ns


def wall_anchor_ns() -> int:
    """Wall-clock epoch (ns) of this process's ``perf_ns`` origin.

    ``wall_anchor_ns() + perf_ns()`` approximates ``time.time_ns()`` but
    inherits perf_counter's monotonicity for everything measured after
    the anchor is taken. Taken once per :class:`~repro.obs.tracer.Tracer`
    so all of a tracer's spans share one anchor.
    """
    return time.time_ns() - time.perf_counter_ns()


def ns_to_ms(ns: int) -> float:
    """Nanoseconds to milliseconds (float)."""
    return ns / 1e6


def ns_to_s(ns: int) -> float:
    """Nanoseconds to seconds (float)."""
    return ns / 1e9


def ns_to_us(ns: int) -> float:
    """Nanoseconds to microseconds (float) — Chrome-trace's unit."""
    return ns / 1e3

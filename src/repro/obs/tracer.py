"""The span tracer: thread-local span stacks over a bounded store.

Design constraints, in priority order:

1. **Zero cost when disabled.** Instrumentation points stay in the hot
   paths permanently, so the disabled form must not allocate: the
   module-level :func:`trace_span` returns a shared no-op context
   manager when no tracer is active, and never builds an attrs dict.
   Hot callers attach attributes only through the ``sp is not None``
   guard (the no-op's ``__enter__`` returns ``None``).
2. **Bounded memory when enabled.** Finished spans land in a
   :class:`~repro.obs.spans.SpanStore` ring; an over-instrumented run
   drops its oldest spans instead of growing.
3. **Cross-process coherence.** A tracer stamps spans with
   wall-anchored monotonic time (:mod:`repro.obs.clock`), so records
   captured by sharded-pipeline workers and adopted by the parent
   (:meth:`Tracer.adopt`) line up on one timeline.

Nesting is tracked explicitly: each thread keeps a stack of open spans,
and every record carries its stack ``depth``, so parent/child structure
survives export and adoption without timestamp heuristics.
"""

from __future__ import annotations

import functools
import threading

from repro.obs.clock import perf_ns, wall_anchor_ns
from repro.obs.spans import (
    DEFAULT_CAPACITY,
    PHASE_EVENT,
    PHASE_SPAN,
    SpanRecord,
    SpanStore,
)


class _NoopSpan:
    """The shared disabled-tracing context manager (allocates nothing)."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb):
        return False


_NOOP = _NoopSpan()


class _Span:
    """An open span: context manager handle with attachable attributes."""

    __slots__ = ("_tracer", "name", "cat", "args", "_tid", "_depth", "_start")

    def __init__(self, tracer: "Tracer", name: str, cat: str, args):
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args

    def add(self, **attrs) -> "_Span":
        """Attach attributes to the span (exported as Chrome-trace args)."""
        if self.args is None:
            self.args = attrs
        else:
            self.args.update(attrs)
        return self

    def __enter__(self) -> "_Span":
        tracer = self._tracer
        self._tid = tracer._tid()
        stack = tracer._stack()
        self._depth = len(stack)
        stack.append(self)
        self._start = perf_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end = perf_ns()
        tracer = self._tracer
        tracer._stack().pop()
        if exc_type is not None:
            self.add(error=f"{exc_type.__name__}: {exc}")
        tracer.store.add(
            SpanRecord(
                self.name, self.cat, self._tid,
                tracer.anchor_ns + self._start, end - self._start,
                self._depth, PHASE_SPAN, self.args,
            )
        )
        return False


class Tracer:
    """Collects spans from any number of threads into one bounded store."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY, process: str = "repro"):
        self.store = SpanStore(capacity)
        self.process = process
        #: Wall-clock epoch of this process's perf_counter origin; added
        #: to every span start so traces from different processes share
        #: a timeline (durations stay pure monotonic deltas).
        self.anchor_ns = wall_anchor_ns()
        self._local = threading.local()
        self._tid_lock = threading.Lock()
        self._next_tid = 1
        self.thread_names: dict[int, str] = {}

    # -- thread bookkeeping --------------------------------------------------
    def _tid(self) -> int:
        tid = getattr(self._local, "tid", None)
        if tid is None:
            with self._tid_lock:
                tid = self._next_tid
                self._next_tid += 1
                self.thread_names[tid] = threading.current_thread().name
            self._local.tid = tid
        return tid

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _alloc_tid(self, name: str) -> int:
        with self._tid_lock:
            tid = self._next_tid
            self._next_tid += 1
            self.thread_names[tid] = name
        return tid

    # -- recording -----------------------------------------------------------
    def span(self, name: str, cat: str = "", **attrs) -> _Span:
        """A context manager timing one span on the calling thread."""
        return _Span(self, name, cat, attrs or None)

    def event(self, name: str, cat: str = "", **attrs) -> None:
        """An instant event (zero duration) at the current time."""
        self.store.add(
            SpanRecord(
                name, cat, self._tid(), self.anchor_ns + perf_ns(), 0,
                len(self._stack()), PHASE_EVENT, attrs or None,
            )
        )

    def record(
        self,
        name: str,
        cat: str,
        start_perf_ns: int,
        dur_ns: int,
        **attrs,
    ) -> None:
        """Add a completed span directly, bypassing the thread stack.

        For async code: a coroutine that awaits mid-span interleaves
        with other tasks on the same loop thread, so stack-discipline
        spans would mis-nest. Record the span after the fact from two
        :func:`~repro.obs.clock.perf_ns` readings instead.
        """
        self.store.add(
            SpanRecord(
                name, cat, self._tid(), self.anchor_ns + start_perf_ns,
                dur_ns, 0, PHASE_SPAN, attrs or None,
            )
        )

    # -- cross-process splice ------------------------------------------------
    def adopt(self, records, label: str) -> None:
        """Splice another tracer's records (e.g. a pool worker's) in.

        Worker-local thread ids are remapped to fresh ids here, named
        ``label:<worker thread name>``, so shards land on distinct
        export tracks; timestamps and depths pass through unchanged
        (both tracers anchor to the wall clock).
        """
        tid_map: dict[object, int] = {}
        for rec in records:
            tid = tid_map.get(rec.tid)
            if tid is None:
                tid = tid_map[rec.tid] = self._alloc_tid(f"{label}:{rec.tid}")
            self.store.add(
                SpanRecord(
                    rec.name, rec.cat, tid, rec.start_ns, rec.dur_ns,
                    rec.depth, rec.phase, rec.args,
                )
            )

    # -- reading -------------------------------------------------------------
    def records(self):
        """Snapshot of finished spans (insertion — i.e. finish — order)."""
        return self.store.records()

    def __len__(self) -> int:
        return len(self.store)

    def __repr__(self) -> str:
        return f"Tracer({self.process!r}, {self.store!r})"


# -- the active tracer --------------------------------------------------------
_active: Tracer | None = None


def get_tracer() -> Tracer | None:
    """The process-wide active tracer, or None when tracing is disabled."""
    return _active


def set_tracer(tracer: Tracer | None) -> Tracer | None:
    """Install (or clear) the active tracer; returns the previous one."""
    global _active
    previous = _active
    _active = tracer
    return previous


def trace_span(name: str, cat: str = ""):
    """Span on the active tracer, or a shared no-op when disabled.

    The hot-path entry point: when tracing is off this allocates
    nothing (no attrs dict, no context-manager object — the no-op is a
    module-level singleton whose ``__enter__`` returns ``None``).
    Attach attributes only under an ``if sp is not None:`` guard::

        with trace_span("ingest.shard", "ingest") as sp:
            ...
            if sp is not None:
                sp.add(rows=len(files))
    """
    tracer = _active
    if tracer is None:
        return _NOOP
    return tracer.span(name, cat)


def trace_event(name: str, cat: str = "", **attrs) -> None:
    """Instant event on the active tracer; silently dropped when disabled."""
    tracer = _active
    if tracer is not None:
        tracer.event(name, cat, **attrs)


def traced(name: str | None = None, cat: str = ""):
    """Decorator form: wrap every call of ``fn`` in a span.

    With tracing disabled the wrapper adds one attribute load and one
    ``is None`` test per call — no allocation.
    """

    def decorate(fn):
        label = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            tracer = _active
            if tracer is None:
                return fn(*args, **kwargs)
            with tracer.span(label, cat):
                return fn(*args, **kwargs)

        return wrapper

    return decorate

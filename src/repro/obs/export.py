"""Trace export: Chrome-trace (Perfetto-loadable) JSON and NDJSON.

Two forms, per the "emit standard formats so existing viewers work"
lesson of the parallel-I/O tooling literature:

* **Chrome trace** (``to_chrome`` / ``write_chrome``) — the JSON object
  form (``{"traceEvents": [...]}``) that ``chrome://tracing`` and
  https://ui.perfetto.dev open directly. Spans become complete events
  (``"ph": "X"``, microsecond ``ts``/``dur``), instant events become
  ``"ph": "i"``; process/thread metadata events name the tracks.
* **NDJSON** (``write_ndjson``) — one span per line in the tracer's own
  flat schema, for ``grep``/``jq``-style post-processing and for
  streaming appends where a single JSON document is awkward.

:func:`write_trace` picks by file suffix (``.ndjson``/``.jsonl`` →
NDJSON, anything else → Chrome trace): the one entry point the CLI's
``--trace`` flag needs.
"""

from __future__ import annotations

import json
import math

import numpy as np

from repro.obs.spans import PHASE_SPAN, SpanRecord
from repro.obs.tracer import Tracer


def _jsonable(value):
    """JSON-safe attribute values (numpy scalars, non-finite floats)."""
    if isinstance(value, np.generic):
        value = value.item()
    if isinstance(value, float) and not math.isfinite(value):
        return repr(value)
    if isinstance(value, (str, int, float, bool, type(None))):
        return value
    return str(value)


def _args_dict(record: SpanRecord) -> dict:
    if not record.args:
        return {}
    return {str(k): _jsonable(v) for k, v in record.args.items()}


def _sorted_records(records) -> list[SpanRecord]:
    # Finish order (ring insertion) puts children before parents; sort
    # into document order so viewers and diffs see a stable timeline.
    return sorted(records, key=lambda r: (r.tid, r.start_ns, -r.dur_ns))


def chrome_events(tracer: Tracer, *, pid: int = 0) -> list[dict]:
    """The tracer's spans as Chrome-trace event dicts."""
    events: list[dict] = [
        {
            "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
            "args": {"name": tracer.process},
        }
    ]
    for tid, name in sorted(tracer.thread_names.items()):
        events.append(
            {
                "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                "args": {"name": name},
            }
        )
    for rec in _sorted_records(tracer.records()):
        event = {
            "name": rec.name,
            "cat": rec.cat or "repro",
            "ph": rec.phase,
            "ts": rec.start_ns / 1e3,  # Chrome trace wants microseconds
            "pid": pid,
            "tid": rec.tid,
            "args": _args_dict(rec),
        }
        if rec.phase == PHASE_SPAN:
            event["dur"] = rec.dur_ns / 1e3
        else:
            event["s"] = "t"  # instant event scoped to its thread
        events.append(event)
    return events


def to_chrome(tracer: Tracer, *, pid: int = 0) -> dict:
    """The full Chrome-trace JSON object (``traceEvents`` form)."""
    return {
        "traceEvents": chrome_events(tracer, pid=pid),
        "displayTimeUnit": "ms",
        "otherData": {
            "producer": "repro.obs",
            "spans": len(tracer.store),
            "dropped": tracer.store.dropped,
        },
    }


def write_chrome(path: str, tracer: Tracer) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(to_chrome(tracer), fh, ensure_ascii=True)
        fh.write("\n")


def ndjson_lines(tracer: Tracer):
    """One compact JSON object per span, document order."""
    names = tracer.thread_names
    for rec in _sorted_records(tracer.records()):
        yield json.dumps(
            {
                "name": rec.name,
                "cat": rec.cat,
                "phase": rec.phase,
                "thread": names.get(rec.tid, str(rec.tid)),
                "tid": rec.tid,
                "depth": rec.depth,
                "start_ns": rec.start_ns,
                "dur_ns": rec.dur_ns,
                "args": _args_dict(rec),
            },
            ensure_ascii=True,
            sort_keys=True,
        )


def write_ndjson(path: str, tracer: Tracer) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        for line in ndjson_lines(tracer):
            fh.write(line + "\n")


def write_trace(path: str, tracer: Tracer) -> None:
    """Write a trace, format chosen by suffix (the CLI ``--trace`` sink)."""
    lowered = str(path).lower()
    if lowered.endswith((".ndjson", ".jsonl")):
        write_ndjson(path, tracer)
    else:
        write_chrome(path, tracer)

"""Storage-layer descriptions.

A :class:`StorageLayer` captures the *hardware facts* of one layer of a
multi-layer I/O subsystem — capacity, peak bandwidths, device technology,
topology counts. Behavioral models (block placement, striping, staging,
bandwidth curves) live in :mod:`repro.iosim` and consume these facts.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ConfigurationError


class LayerKind(enum.Enum):
    """The two layer roles the paper distinguishes (§2.1)."""

    #: Capacity layer: a center-wide parallel file system (Alpine, Cori Scratch).
    PFS = "pfs"
    #: Performance layer inside the machine (SCNL, CBB).
    IN_SYSTEM = "insystem"


class Locality(enum.Enum):
    """Where an in-system layer's devices live (§2.1.1)."""

    NODE_LOCAL = "node-local"      # Summit SCNL: NVMe in every compute node
    SYSTEM_LOCAL = "system-local"  # Cori CBB: flash on dedicated service nodes
    CENTER_WIDE = "center-wide"    # PFS deployments


@dataclass(frozen=True)
class StorageLayer:
    """One layer of a supercomputer I/O subsystem."""

    #: Stable key used across the library and in record stores
    #: ("pfs" or "insystem").
    key: str
    #: Deployment name ("Alpine", "SCNL", "CBB", "Cori Scratch").
    name: str
    kind: LayerKind
    locality: Locality
    #: Software/hardware technology ("GPFS", "Lustre", "NVMe", "DataWarp").
    technology: str
    capacity_bytes: int
    peak_read_bw: float   # bytes/second, aggregate
    peak_write_bw: float  # bytes/second, aggregate
    #: Filesystem mount prefix on compute nodes.
    mount_point: str
    #: Number of servers/devices providing parallelism (NSDs, OSSes,
    #: burst-buffer nodes, or compute nodes for node-local NVMe).
    server_count: int = 1
    #: Per-access metadata/software-stack latency floor, seconds.
    base_latency: float = 50e-6
    #: Free-form technology parameters (block size, stripe defaults, ...).
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ConfigurationError(f"{self.name}: capacity must be positive")
        if self.peak_read_bw <= 0 or self.peak_write_bw <= 0:
            raise ConfigurationError(f"{self.name}: bandwidths must be positive")
        if self.server_count <= 0:
            raise ConfigurationError(f"{self.name}: server_count must be positive")
        if not self.mount_point.startswith("/"):
            raise ConfigurationError(
                f"{self.name}: mount point {self.mount_point!r} must be absolute"
            )

    @property
    def is_flash(self) -> bool:
        """True for SSD/NVMe-backed layers (the write-amplification
        discussion in Recommendation 4 applies to these)."""
        return self.technology in ("NVMe", "DataWarp", "SSD")

    @property
    def per_server_read_bw(self) -> float:
        return self.peak_read_bw / self.server_count

    @property
    def per_server_write_bw(self) -> float:
        return self.peak_write_bw / self.server_count

    def describe(self) -> str:
        """One-line summary for reports."""
        from repro.units import format_size

        return (
            f"{self.name} ({self.kind.value}, {self.technology}, "
            f"{self.locality.value}): {format_size(self.capacity_bytes)} capacity, "
            f"{format_size(self.peak_read_bw)}/s read, "
            f"{format_size(self.peak_write_bw)}/s write peak"
        )
